(* stobctl: command-line interface to the Stob reproduction.

   Subcommands cover the whole pipeline: dataset generation, the k-FP
   attack, defenses and overheads, the throughput experiments, and the
   architecture renderings.  `stobctl <cmd> --help` documents each. *)

open Cmdliner
open Stob_experiments

(* --- shared options --------------------------------------------------- *)

let seed =
  let doc = "Seed for all pseudo-randomness (experiments are reproducible)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs =
  let doc =
    "Worker domains for the parallel sections (dataset generation, forest training, \
     cross-validation, throughput sweeps).  Results are independent of this value; 1 means \
     sequential."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Run [f] with [Some pool] of [jobs] domains (or [None] when sequential),
   always joining the workers afterwards. *)
let with_jobs jobs f =
  if jobs <= 1 then f None
  else Stob_par.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

let samples =
  let doc = "Page-load samples to generate per site." in
  Arg.(value & opt int 100 & info [ "samples" ] ~docv:"N" ~doc)

let folds =
  let doc = "Cross-validation folds." in
  Arg.(value & opt int 5 & info [ "folds" ] ~docv:"K" ~doc)

let trees =
  let doc = "Random-forest size." in
  Arg.(value & opt int 100 & info [ "trees" ] ~docv:"N" ~doc)

let site =
  let doc = "Monitored site (one of the nine paper sites)." in
  Arg.(value & opt string "bing.com" & info [ "site" ] ~docv:"SITE" ~doc)

let policy_names = List.map fst (Stob_core.Strategies.all_named ())

let transport_arg =
  let doc = "Transport: tcp (HTTP/1.1 pool) or quic (HTTP/3 single connection)." in
  Arg.(value & opt (enum [ ("tcp", `Tcp); ("quic", `Quic) ]) `Tcp & info [ "transport" ] ~doc)

let policy_arg =
  let doc =
    Printf.sprintf "Server-side Stob policy: one of %s." (String.concat ", " policy_names)
  in
  Arg.(value & opt string "unmodified" & info [ "policy" ] ~docv:"POLICY" ~doc)

let resolve_policy name =
  match List.assoc_opt name (Stob_core.Strategies.all_named ()) with
  | Some p -> p
  | None ->
      Printf.eprintf "unknown policy %s (try one of: %s)\n" name (String.concat ", " policy_names);
      exit 2

(* --- gen-dataset ------------------------------------------------------ *)

let gen_dataset out samples seed policy jobs =
  let policy = resolve_policy policy in
  Printf.printf "generating %d samples/site for %d sites...\n%!" samples
    (List.length Stob_web.Sites.all);
  let dataset =
    with_jobs jobs (fun pool ->
        Stob_web.Dataset.generate ~samples_per_site:samples ~seed ~policy
          ~progress:(fun ~done_ ~total ->
            if done_ mod 50 = 0 then Printf.printf "  %d/%d visits\n%!" done_ total)
          ?pool ())
  in
  let clean = Stob_web.Dataset.sanitize dataset in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let labels = open_out (Filename.concat out "labels.csv") in
  Array.iteri
    (fun i s ->
      let path = Filename.concat out (Printf.sprintf "trace_%04d.csv" i) in
      Stob_net.Trace.save path s.Stob_web.Dataset.trace;
      Printf.fprintf labels "trace_%04d.csv,%d,%s\n" i s.Stob_web.Dataset.label
        s.Stob_web.Dataset.site)
    clean.Stob_web.Dataset.samples;
  close_out labels;
  Printf.printf "wrote %d sanitized traces (+labels.csv) to %s/\n"
    (Array.length clean.Stob_web.Dataset.samples)
    out

let gen_dataset_cmd =
  let out =
    Arg.(value & opt string "dataset" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "gen-dataset" ~doc:"Generate and sanitize a page-load trace corpus")
    Term.(const gen_dataset $ out $ samples $ seed $ policy_arg $ jobs)

(* --- attack ----------------------------------------------------------- *)

let attack samples folds trees seed policy transport jobs =
  let policy = resolve_policy policy in
  Printf.printf "corpus: %d samples/site, policy %s, transport %s\n%!" samples
    policy.Stob_core.Policy.name
    (match transport with `Tcp -> "tcp" | `Quic -> "quic");
  with_jobs jobs (fun pool ->
      let dataset =
        Stob_web.Dataset.sanitize
          (Stob_web.Dataset.generate ~samples_per_site:samples ~seed ~policy ~transport ?pool ())
      in
      let mean, std = Evalcommon.accuracy_cv ~folds ~trees ~seed ?pool dataset in
      Printf.printf "k-FP closed-world accuracy (%d-fold CV): %.3f +/- %.3f\n" folds mean std)

let attack_cmd =
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the k-FP closed-world attack against a (possibly defended) corpus")
    Term.(const attack $ samples $ folds $ trees $ seed $ policy_arg $ transport_arg $ jobs)

(* --- load ------------------------------------------------------------- *)

(* Unicode sparkline of per-bucket wire bytes for one direction. *)
let sparkline trace dir ~buckets =
  let module Trace = Stob_net.Trace in
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let duration = Float.max 1e-9 (Trace.duration trace) in
  let acc = Array.make buckets 0.0 in
  Array.iter
    (fun e ->
      if e.Trace.dir = dir then begin
        let b = min (buckets - 1) (int_of_float (e.Trace.time /. duration *. float_of_int buckets)) in
        acc.(b) <- acc.(b) +. float_of_int e.Trace.size
      end)
    trace;
  let peak = Array.fold_left Float.max 1.0 acc in
  String.init buckets (fun i ->
      let level = int_of_float (acc.(i) /. peak *. 7.0) in
      glyphs.(max 0 (min 7 level)))

let load_one site seed policy =
  let policy = resolve_policy policy in
  let profile =
    try Stob_web.Sites.find site
    with Not_found ->
      Printf.eprintf "unknown site %s (known: %s)\n" site
        (String.concat ", " Stob_web.Sites.names);
      exit 2
  in
  let rng = Stob_util.Rng.create seed in
  let r = Stob_web.Browser.load ~policy ~rng profile in
  Printf.printf "site: %s  policy: %s\n" site policy.Stob_core.Policy.name;
  Printf.printf "completed: %b  load time: %.3f s  downloaded: %d B (plaintext)\n"
    r.Stob_web.Browser.completed r.Stob_web.Browser.load_time r.Stob_web.Browser.bytes_downloaded;
  Format.printf "trace: %a@." Stob_net.Trace.pp_summary r.Stob_web.Browser.trace;
  let trace = Stob_net.Trace.shift_to_zero r.Stob_web.Browser.trace in
  Printf.printf "  down |%s|\n" (sparkline trace Stob_net.Packet.Incoming ~buckets:60);
  Printf.printf "  up   |%s|\n" (sparkline trace Stob_net.Packet.Outgoing ~buckets:60)

let load_cmd =
  Cmd.v
    (Cmd.info "load" ~doc:"Run one page load through the simulated stack and summarize its trace")
    Term.(const load_one $ site $ seed $ policy_arg)

(* --- policies --------------------------------------------------------- *)

let policies () =
  Printf.printf "built-in Stob policies:\n";
  List.iter
    (fun (name, p) -> Format.printf "  %-14s %a@." name Stob_core.Policy.pp p)
    (Stob_core.Strategies.all_named ())

let policies_cmd =
  Cmd.v (Cmd.info "policies" ~doc:"List the built-in obfuscation policies")
    Term.(const policies $ const ())

(* --- experiment wrappers ---------------------------------------------- *)

let table1 () = Table1.print (Table1.run ())

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 (defense taxonomy + measured overheads)")
    Term.(const table1 $ const ())

let table2 samples folds trees seed jobs =
  let config = { Table2.default_config with samples_per_site = samples; folds; forest_trees = trees; seed } in
  with_jobs jobs (fun pool -> Table2.print (Table2.run ~config ?pool ()))

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table 2 (k-FP accuracy under countermeasures)")
    Term.(const table2 $ samples $ folds $ trees $ seed $ jobs)

let fig3 jobs = with_jobs jobs (fun pool -> Fig3.print (Fig3.run ?pool ()))

let fig3_cmd =
  Cmd.v (Cmd.info "fig3" ~doc:"Reproduce Figure 3 (throughput under packet/TSO adjustment)")
    Term.(const fig3 $ jobs)

let arch () =
  Arch.print_figure1 ();
  print_newline ();
  Arch.print_figure2 ()

let arch_cmd =
  Cmd.v (Cmd.info "arch" ~doc:"Render Figures 1 and 2 (stack model and Stob architecture)")
    Term.(const arch $ const ())

let ablation_stack samples trees =
  Ablation.print_fidelity (Ablation.run_fidelity ~samples_per_site:samples ~trees ())

let ablation_stack_cmd =
  let samples =
    Arg.(value & opt int 40 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (Cmd.info "ablation-stack" ~doc:"E6: emulated vs. in-stack enforcement")
    Term.(const ablation_stack $ samples $ trees)

let ablation_cca () = Ablation.print_cca (Ablation.run_cca ())

let ablation_quic samples trees =
  Ablation.print_transport (Ablation.run_transport ~samples_per_site:samples ~trees ())

let ablation_quic_cmd =
  let samples =
    Arg.(value & opt int 40 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (Cmd.info "ablation-quic" ~doc:"E8b: TCP vs QUIC fingerprintability")
    Term.(const ablation_quic $ samples $ trees)

let ablation_cca_cmd =
  Cmd.v (Cmd.info "ablation-cca" ~doc:"E7: CCA interplay and the safety audit")
    Term.(const ablation_cca $ const ())

let openworld samples trees =
  Openworld.print (Openworld.run ~samples_per_site:samples ~trees ())

let openworld_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per monitored site.")
  in
  Cmd.v
    (Cmd.info "openworld" ~doc:"Open-world k-FP evaluation against unseen background sites")
    Term.(const openworld $ samples $ trees)

let cca_id flows trees =
  Cca_id.print (Cca_id.run ~flows_per_cca:flows ~trees ())

let cca_id_cmd =
  let flows = Arg.(value & opt int 40 & info [ "flows" ] ~docv:"N" ~doc:"Flows per CCA.") in
  Cmd.v (Cmd.info "cca-id" ~doc:"Passive CCA identification and Stob hiding (Section 5.2)")
    Term.(const cca_id $ flows $ trees)

let httpos samples trees =
  Httpos.print (Httpos.run ~samples_per_site:samples ~trees ())

let httpos_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v
    (Cmd.info "httpos" ~doc:"HTTPOS-style client-side defense: protection vs load-time cost")
    Term.(const httpos $ samples $ trees)

(* --- netem ------------------------------------------------------------ *)

let netem loss reorder dup jitter netem_seed cca rate delay bytes jobs =
  let module NE = Stob_tcp.Netem_eval in
  let bad_arg msg =
    prerr_endline ("stobctl netem: " ^ msg);
    exit 2
  in
  if not (loss >= 0.0 && loss <= 1.0) then bad_arg "--loss must be a probability in [0, 1]";
  if not (dup >= 0.0 && dup <= 1.0) then bad_arg "--dup must be a probability in [0, 1]";
  if jitter < 0.0 then bad_arg "--jitter must be non-negative";
  if rate <= 0.0 || delay <= 0.0 || bytes <= 0 then
    bad_arg "--rate, --delay and --bytes must be positive";
  let ccas =
    match cca with
    | "all" -> [ "reno"; "cubic"; "bbr" ]
    | c ->
        (* Validate the name up front; unknown CCAs raise Invalid_argument. *)
        let (_ : Stob_tcp.Cc.factory) = NE.cc_of_name c in
        [ c ]
  in
  let cells = List.map (fun cca -> { NE.cca; loss; reorder }) ccas in
  Printf.printf
    "netem: loss=%g reorder=%b dup=%g jitter=%g s  path %.0f Mb/s / %.0f ms  response %d B  seed \
     %d\n\n"
    loss reorder dup jitter (rate /. 1e6) (delay *. 1e3) bytes netem_seed;
  let results =
    with_jobs jobs (fun pool ->
        let rng = Stob_util.Rng.create netem_seed in
        let seeded = List.map (fun c -> (c, Stob_util.Rng.int rng max_int)) cells in
        let run (c, s) =
          NE.run_cell ~rate_bps:rate ~delay ~response:bytes ~duplicate:dup ~jitter ~seed:s c
        in
        match pool with
        | None -> List.map run seeded
        | Some pool -> Stob_par.Pool.map_list pool run seeded)
  in
  List.iter (fun r -> Format.printf "%a@." NE.pp_result r) results;
  let bad = List.filter (fun r -> not (NE.converged r)) results in
  if bad <> [] then begin
    Printf.printf "\n%d cell(s) failed to converge\n" (List.length bad);
    exit 1
  end;
  Printf.printf "\nall %d cells converged\n" (List.length results)

let netem_cmd =
  let loss =
    Arg.(value & opt float 0.01
         & info [ "loss" ] ~docv:"P" ~doc:"I.i.d. per-packet loss probability, both directions.")
  in
  let reorder =
    Arg.(value & flag & info [ "reorder" ] ~doc:"Also hold ~5% of packets back a few slots.")
  in
  let dup =
    Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc:"Duplication probability.")
  in
  let jitter =
    Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"SEC" ~doc:"Uniform extra delay bound.")
  in
  let netem_seed =
    Arg.(value & opt int 4242
         & info [ "netem-seed" ] ~docv:"SEED" ~doc:"Master seed for the impairment draws.")
  in
  let cca =
    Arg.(value & opt string "all"
         & info [ "cca" ] ~docv:"CCA" ~doc:"Congestion control: reno, cubic, bbr or all.")
  in
  let rate =
    Arg.(value & opt float 20e6 & info [ "rate" ] ~docv:"BPS" ~doc:"Bottleneck rate, bits/s.")
  in
  let delay =
    Arg.(value & opt float 0.015 & info [ "delay" ] ~docv:"SEC" ~doc:"One-way propagation delay.")
  in
  let bytes =
    Arg.(value & opt int 150_000 & info [ "bytes" ] ~docv:"N" ~doc:"Response size to transfer.")
  in
  Cmd.v
    (Cmd.info "netem"
       ~doc:
         "Drive one request/response/close connection per CCA through seeded netem-style \
          impairment (loss, reordering, duplication, jitter) and report recovery counters")
    Term.(
      const netem $ loss $ reorder $ dup $ jitter $ netem_seed $ cca $ rate $ delay $ bytes $ jobs)

let importance samples trees =
  Importance.print (Importance.run ~samples_per_site:samples ~trees ())

let importance_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (Cmd.info "importance" ~doc:"Feature importance before/after defense")
    Term.(const importance $ samples $ trees)

let main_cmd =
  let doc = "stack-level traffic obfuscation (Stob) reproduction toolkit" in
  Cmd.group (Cmd.info "stobctl" ~version:"1.0.0" ~doc)
    [
      gen_dataset_cmd; attack_cmd; load_cmd; policies_cmd; table1_cmd; table2_cmd; fig3_cmd;
      arch_cmd; ablation_stack_cmd; ablation_cca_cmd; ablation_quic_cmd; openworld_cmd;
      cca_id_cmd; httpos_cmd; importance_cmd; netem_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
