(* stobctl: command-line interface to the Stob reproduction.

   Subcommands cover the whole pipeline: dataset generation, the k-FP
   attack, defenses and overheads, the throughput experiments, the chaos
   battery, and the architecture renderings.  `stobctl <cmd> --help`
   documents each.

   Argument validation lives entirely in Cmdliner converters: a bad value
   is a parse error (exit code 124, documented under EXIT STATUS) rather
   than an ad-hoc mid-run exit.  Exit code 1 is reserved for failed
   evaluation gates. *)

open Cmdliner
open Stob_experiments
module Store = Stob_store.Store
module Journal = Stob_store.Journal
module Sv = Stob_store.Supervisor

(* --- exit codes -------------------------------------------------------- *)

(* One shared table so every subcommand's EXIT STATUS section documents
   the same contract. *)
let exits =
  Cmd.Exit.info 1
    ~doc:
      "on a failed evaluation gate: a netem cell failed to converge, or a chaos cell crashed, \
       livelocked, left its page load incomplete, or (no-fault cells) reported an invariant \
       violation.  Also: a sweep run with $(b,--strict) that recorded poisoned cells, \
       $(b,gen-dataset) refusing to overwrite an existing export, \
       $(b,resume)/$(b,status)/$(b,scrub)/$(b,compact) on a state directory that is missing, \
       empty, or not a stob sweep (foreign journal magic), and $(b,scrub) without \
       $(b,--repair) finding a damaged journal tail."
  :: Cmd.Exit.defaults

let cmd_info name ~doc = Cmd.info name ~doc ~exits

(* --- argument converters ----------------------------------------------- *)

let pos_int_conv ~docv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some _ | None -> Error (`Msg (Printf.sprintf "'%s' is not a positive integer" s))
  in
  Arg.conv ~docv (parse, Format.pp_print_int)

let nonneg_int_conv ~docv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | Some _ | None -> Error (`Msg (Printf.sprintf "'%s' is not a non-negative integer" s))
  in
  Arg.conv ~docv (parse, Format.pp_print_int)

let bounded_float ~docv ~what check =
  let parse s =
    match float_of_string_opt s with
    | Some v when check v -> Ok v
    | Some _ | None -> Error (`Msg (Printf.sprintf "'%s' is not %s" s what))
  in
  Arg.conv ~docv (parse, fun fmt v -> Format.fprintf fmt "%g" v)

let prob_conv =
  bounded_float ~docv:"P" ~what:"a probability in [0, 1]" (fun v -> v >= 0.0 && v <= 1.0)

let pos_float_conv ~docv = bounded_float ~docv ~what:"a positive number" (fun v -> v > 0.0)
let nonneg_float_conv ~docv = bounded_float ~docv ~what:"a non-negative number" (fun v -> v >= 0.0)

(* --- shared options --------------------------------------------------- *)

let seed =
  let doc = "Seed for all pseudo-randomness (experiments are reproducible)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs =
  let doc =
    "Worker domains for the parallel sections (dataset generation, forest training, \
     cross-validation, throughput sweeps).  Results are independent of this value; 1 means \
     sequential."
  in
  Arg.(value & opt (pos_int_conv ~docv:"N") 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Run [f] with [Some pool] of [jobs] domains (or [None] when sequential),
   always joining the workers afterwards. *)
let with_jobs jobs f =
  if jobs <= 1 then f None
  else Stob_par.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* Crash-safe sweep options, shared by every supervised experiment
   (table2, fig3, openworld, pareto, resume). *)

let state_dir_arg =
  let doc =
    "Durable sweep state: journal every finished cell into $(docv) so a killed run can be \
     picked up with $(b,stobctl resume) (or by re-running the same command), recomputing only \
     the missing cells.  One directory holds exactly one sweep."
  in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let retries_arg =
  let doc =
    "Retry a raising sweep cell up to $(docv) more times before recording it as poisoned."
  in
  Arg.(value & opt (nonneg_int_conv ~docv:"N") 0 & info [ "retries" ] ~docv:"N" ~doc)

let strict_arg =
  let doc =
    "Exit non-zero when any sweep cell ends up poisoned (default: report the failures and \
     complete)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let with_store state_dir f =
  match state_dir with
  | None -> f None
  | Some dir ->
      let store = Store.open_ dir in
      Fun.protect
        ~finally:(fun () ->
          (* Completion over durability: a sweep that lost its journal
             mid-run (disk full) still finishes, but the operator must
             hear about it — the degraded store report goes to stderr with
             the rest of the progress chatter. *)
          (if Store.degraded store <> None then
             Format.eprintf "@[store: %a@]@." Store.pp_report (Store.report store));
          Store.close store)
        (fun () -> f (Some store))

(* The tally goes to stderr with the rest of the progress chatter: stdout
   stays pure results, so a resumed run's stdout is byte-identical to an
   uninterrupted one. *)
let finish_sweep ~strict = function
  | None -> ()
  | Some (r : Sv.report) ->
      Format.eprintf "@[sweep: %a@]@." Sv.pp_report r;
      if strict && r.Sv.poisoned <> [] then exit 1

let samples =
  let doc = "Page-load samples to generate per site." in
  Arg.(value & opt (pos_int_conv ~docv:"N") 100 & info [ "samples" ] ~docv:"N" ~doc)

let folds =
  let doc = "Cross-validation folds." in
  Arg.(value & opt (pos_int_conv ~docv:"K") 5 & info [ "folds" ] ~docv:"K" ~doc)

let trees =
  let doc = "Random-forest size." in
  Arg.(value & opt (pos_int_conv ~docv:"N") 100 & info [ "trees" ] ~docv:"N" ~doc)

(* Resolves to (name, profile) at parse time: an unknown site is a usage
   error, not a mid-run crash. *)
let site_conv =
  let parse name =
    match Stob_web.Sites.find name with
    | profile -> Ok (name, profile)
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown site %s (known: %s)" name
                (String.concat ", " Stob_web.Sites.names)))
  in
  Arg.conv ~docv:"SITE" (parse, fun fmt (name, _) -> Format.pp_print_string fmt name)

let site =
  let doc = "Monitored site (one of the nine paper sites)." in
  Arg.(
    value
    & opt site_conv ("bing.com", Stob_web.Sites.find "bing.com")
    & info [ "site" ] ~docv:"SITE" ~doc)

let policy_names = List.map fst (Stob_core.Strategies.all_named ())

let transport_arg =
  let doc = "Transport: tcp (HTTP/1.1 pool) or quic (HTTP/3 single connection)." in
  Arg.(value & opt (enum [ ("tcp", `Tcp); ("quic", `Quic) ]) `Tcp & info [ "transport" ] ~doc)

(* Resolves the policy name to the policy itself at parse time. *)
let policy_conv =
  let parse name =
    match List.assoc_opt name (Stob_core.Strategies.all_named ()) with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown policy %s (expected one of: %s)" name
                (String.concat ", " policy_names)))
  in
  Arg.conv ~docv:"POLICY"
    (parse, fun fmt p -> Format.pp_print_string fmt p.Stob_core.Policy.name)

let policy_arg =
  let doc =
    Printf.sprintf "Server-side Stob policy: one of %s." (String.concat ", " policy_names)
  in
  Arg.(value & opt policy_conv Stob_core.Policy.unmodified & info [ "policy" ] ~docv:"POLICY" ~doc)

(* --- gen-dataset ------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let gen_dataset out samples seed policy jobs =
  (* The export appears atomically: traces and labels.csv are staged in a
     temp directory that is renamed into place only when complete, so a
     crash can never leave a half-written corpus under [out].  An existing
     non-empty target is refused up front rather than silently merged
     with a previous export. *)
  if Sys.file_exists out && ((not (Sys.is_directory out)) || Sys.readdir out <> [||]) then begin
    Printf.eprintf
      "stobctl gen-dataset: %s already exists and is not an empty directory; refusing to \
       overwrite a previous export — remove it or pick another --out\n"
      out;
    exit 1
  end;
  Printf.printf "generating %d samples/site for %d sites...\n%!" samples
    (List.length Stob_web.Sites.all);
  let dataset =
    with_jobs jobs (fun pool ->
        Stob_web.Dataset.generate ~samples_per_site:samples ~seed ~policy
          ~progress:(fun ~done_ ~total ->
            if done_ mod 50 = 0 then Printf.printf "  %d/%d visits\n%!" done_ total)
          ?pool ())
  in
  let clean = Stob_web.Dataset.sanitize dataset in
  let tmp = Printf.sprintf "%s.tmp.%d" out (Unix.getpid ()) in
  (try
     Unix.mkdir tmp 0o755;
     let labels = open_out (Filename.concat tmp "labels.csv") in
     Array.iteri
       (fun i s ->
         let path = Filename.concat tmp (Printf.sprintf "trace_%04d.csv" i) in
         Stob_net.Trace.save path s.Stob_web.Dataset.trace;
         Printf.fprintf labels "trace_%04d.csv,%d,%s\n" i s.Stob_web.Dataset.label
           s.Stob_web.Dataset.site)
       clean.Stob_web.Dataset.samples;
     close_out labels;
     Sys.rename tmp out
   with e ->
     rm_rf tmp;
     raise e);
  Printf.printf "wrote %d sanitized traces (+labels.csv) to %s/\n"
    (Array.length clean.Stob_web.Dataset.samples)
    out

let gen_dataset_cmd =
  let out =
    Arg.(value & opt string "dataset" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (cmd_info "gen-dataset" ~doc:"Generate and sanitize a page-load trace corpus")
    Term.(const gen_dataset $ out $ samples $ seed $ policy_arg $ jobs)

(* --- attack ----------------------------------------------------------- *)

let attack samples folds trees seed policy transport jobs =
  Printf.printf "corpus: %d samples/site, policy %s, transport %s\n%!" samples
    policy.Stob_core.Policy.name
    (match transport with `Tcp -> "tcp" | `Quic -> "quic");
  with_jobs jobs (fun pool ->
      let dataset =
        Stob_web.Dataset.sanitize
          (Stob_web.Dataset.generate ~samples_per_site:samples ~seed ~policy ~transport ?pool ())
      in
      let mean, std = Evalcommon.accuracy_cv ~folds ~trees ~seed ?pool dataset in
      Printf.printf "k-FP closed-world accuracy (%d-fold CV): %.3f +/- %.3f\n" folds mean std)

let attack_cmd =
  Cmd.v
    (cmd_info "attack" ~doc:"Run the k-FP closed-world attack against a (possibly defended) corpus")
    Term.(const attack $ samples $ folds $ trees $ seed $ policy_arg $ transport_arg $ jobs)

(* --- load ------------------------------------------------------------- *)

(* Unicode sparkline of per-bucket wire bytes for one direction. *)
let sparkline trace dir ~buckets =
  let module Trace = Stob_net.Trace in
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let duration = Float.max 1e-9 (Trace.duration trace) in
  let acc = Array.make buckets 0.0 in
  Array.iter
    (fun e ->
      if e.Trace.dir = dir then begin
        let b = min (buckets - 1) (int_of_float (e.Trace.time /. duration *. float_of_int buckets)) in
        acc.(b) <- acc.(b) +. float_of_int e.Trace.size
      end)
    trace;
  let peak = Array.fold_left Float.max 1.0 acc in
  String.init buckets (fun i ->
      let level = int_of_float (acc.(i) /. peak *. 7.0) in
      glyphs.(max 0 (min 7 level)))

let load_one (site, profile) seed policy =
  let rng = Stob_util.Rng.create seed in
  let r = Stob_web.Browser.load ~policy ~rng profile in
  Printf.printf "site: %s  policy: %s\n" site policy.Stob_core.Policy.name;
  Printf.printf "completed: %b  load time: %.3f s  downloaded: %d B (plaintext)\n"
    r.Stob_web.Browser.completed r.Stob_web.Browser.load_time r.Stob_web.Browser.bytes_downloaded;
  Format.printf "trace: %a@." Stob_net.Trace.pp_summary r.Stob_web.Browser.trace;
  let trace = Stob_net.Trace.shift_to_zero r.Stob_web.Browser.trace in
  Printf.printf "  down |%s|\n" (sparkline trace Stob_net.Packet.Incoming ~buckets:60);
  Printf.printf "  up   |%s|\n" (sparkline trace Stob_net.Packet.Outgoing ~buckets:60)

let load_cmd =
  Cmd.v
    (cmd_info "load" ~doc:"Run one page load through the simulated stack and summarize its trace")
    Term.(const load_one $ site $ seed $ policy_arg)

(* --- policies --------------------------------------------------------- *)

let policies () =
  Printf.printf "built-in Stob policies:\n";
  List.iter
    (fun (name, p) -> Format.printf "  %-14s %a@." name Stob_core.Policy.pp p)
    (Stob_core.Strategies.all_named ())

let policies_cmd =
  Cmd.v (cmd_info "policies" ~doc:"List the built-in obfuscation policies")
    Term.(const policies $ const ())

(* --- experiment wrappers ---------------------------------------------- *)

let table1 () = Table1.print (Table1.run ())

let table1_cmd =
  Cmd.v (cmd_info "table1" ~doc:"Reproduce Table 1 (defense taxonomy + measured overheads)")
    Term.(const table1 $ const ())

let table2 samples folds trees seed jobs state_dir retries strict =
  let config = { Table2.default_config with samples_per_site = samples; folds; forest_trees = trees; seed } in
  with_jobs jobs (fun pool ->
      with_store state_dir (fun store ->
          let report = ref None in
          Table2.print
            (Table2.run ~config ?pool ?store ~retries ~on_report:(fun r -> report := Some r) ());
          finish_sweep ~strict !report))

let table2_cmd =
  Cmd.v (cmd_info "table2" ~doc:"Reproduce Table 2 (k-FP accuracy under countermeasures)")
    Term.(
      const table2 $ samples $ folds $ trees $ seed $ jobs $ state_dir_arg $ retries_arg
      $ strict_arg)

let fig3 jobs state_dir retries strict =
  with_jobs jobs (fun pool ->
      with_store state_dir (fun store ->
          let report = ref None in
          Fig3.print (Fig3.run ?pool ?store ~retries ~on_report:(fun r -> report := Some r) ());
          finish_sweep ~strict !report))

let fig3_cmd =
  Cmd.v (cmd_info "fig3" ~doc:"Reproduce Figure 3 (throughput under packet/TSO adjustment)")
    Term.(const fig3 $ jobs $ state_dir_arg $ retries_arg $ strict_arg)

let arch () =
  Arch.print_figure1 ();
  print_newline ();
  Arch.print_figure2 ()

let arch_cmd =
  Cmd.v (cmd_info "arch" ~doc:"Render Figures 1 and 2 (stack model and Stob architecture)")
    Term.(const arch $ const ())

let ablation_stack samples trees =
  Ablation.print_fidelity (Ablation.run_fidelity ~samples_per_site:samples ~trees ())

let ablation_stack_cmd =
  let samples =
    Arg.(value & opt int 40 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (cmd_info "ablation-stack" ~doc:"E6: emulated vs. in-stack enforcement")
    Term.(const ablation_stack $ samples $ trees)

let ablation_cca () = Ablation.print_cca (Ablation.run_cca ())

let ablation_quic samples trees =
  Ablation.print_transport (Ablation.run_transport ~samples_per_site:samples ~trees ())

let ablation_quic_cmd =
  let samples =
    Arg.(value & opt int 40 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (cmd_info "ablation-quic" ~doc:"E8b: TCP vs QUIC fingerprintability")
    Term.(const ablation_quic $ samples $ trees)

let ablation_cca_cmd =
  Cmd.v (cmd_info "ablation-cca" ~doc:"E7: CCA interplay and the safety audit")
    Term.(const ablation_cca $ const ())

let openworld samples trees seed jobs state_dir retries strict =
  with_jobs jobs (fun pool ->
      with_store state_dir (fun store ->
          let report = ref None in
          Openworld.print
            (Openworld.run ~samples_per_site:samples ~trees ~seed ?pool ?store ~retries
               ~on_report:(fun r -> report := Some r)
               ());
          finish_sweep ~strict !report))

let openworld_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per monitored site.")
  in
  Cmd.v
    (cmd_info "openworld" ~doc:"Open-world k-FP evaluation against unseen background sites")
    Term.(
      const openworld $ samples $ trees $ seed $ jobs $ state_dir_arg $ retries_arg $ strict_arg)

let pareto samples trees folds seed jobs state_dir retries strict =
  with_jobs jobs (fun pool ->
      with_store state_dir (fun store ->
          let report = ref None in
          Pareto.print
            (Pareto.run ~samples_per_site:samples ~trees ~folds ~seed ?pool ?store ~retries
               ~on_report:(fun r -> report := Some r)
               ());
          finish_sweep ~strict !report))

let pareto_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  let folds =
    Arg.(value & opt (pos_int_conv ~docv:"K") 3 & info [ "folds" ] ~docv:"K" ~doc:"Cross-validation folds.")
  in
  Cmd.v
    (cmd_info "pareto"
       ~doc:"Sweep Stob policies and report the protection-vs-overhead Pareto frontier")
    Term.(const pareto $ samples $ trees $ folds $ seed $ jobs $ state_dir_arg $ retries_arg $ strict_arg)

let dl samples trees epochs seed population users jobs state_dir retries strict =
  with_jobs jobs (fun pool ->
      if population then begin
        let dir =
          match state_dir with
          | Some d -> d
          | None ->
              Printf.eprintf
                "stobctl dl: --population needs --state-dir (the corpus is generated, and \
                 resumed, there)\n";
              exit 1
        in
        Dl.print_population (Dl.run_population ~users ~trees ~epochs ~seed ?pool ~state_dir:dir ())
      end
      else
        with_store state_dir (fun store ->
            let report = ref None in
            Dl.print
              (Dl.run ~samples_per_site:samples ~trees ~epochs ~seed ?pool ?store ~retries
                 ~on_report:(fun r -> report := Some r)
                 ());
            finish_sweep ~strict !report))

let dl_cmd =
  let samples =
    Arg.(value & opt (pos_int_conv ~docv:"N") 60 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  let epochs =
    Arg.(value & opt (pos_int_conv ~docv:"N") 30 & info [ "epochs" ] ~docv:"N" ~doc:"DF-net training epochs.")
  in
  let population =
    Arg.(
      value & flag
      & info [ "population" ]
          ~doc:
            "Evaluate on the population-scale packed corpus (generated crash-safely under \
             --state-dir) instead of the standard per-site corpus.")
  in
  let users =
    Arg.(
      value
      & opt (pos_int_conv ~docv:"N") 80
      & info [ "users" ] ~docv:"N" ~doc:"Population size for --population.")
  in
  Cmd.v
    (cmd_info "dl"
       ~doc:
         "Deep-learning (DF-lite CNN) vs feature-engineered (k-FP) attacks, undefended and \
          under the combined defense")
    Term.(
      const dl $ samples $ trees $ epochs $ seed $ population $ users $ jobs $ state_dir_arg
      $ retries_arg $ strict_arg)

(* --- resume / status --------------------------------------------------- *)

(* [resume] rebuilds the interrupted sweep's exact configuration from the
   journaled manifest and re-runs it against the same store: finished cells
   replay from the cache, missing ones are computed, and the final artifact
   is bit-identical to an uninterrupted run.  The per-experiment field
   names below mirror what each experiment writes via [set_manifest]; the
   rebuilt run re-asserts its manifest on the same directory, so any
   divergence (e.g. a corpus regenerated differently) fails loudly instead
   of mixing sweeps. *)
let resume state_dir jobs retries strict =
  let store = Store.open_ state_dir in
  Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
  match Store.manifest store with
  | None ->
      Printf.eprintf "stobctl resume: %s records no sweep (run one with --state-dir first)\n"
        state_dir;
      exit 1
  | Some m -> (
      let field name =
        match List.assoc_opt name m.Store.fields with
        | Some v -> v
        | None ->
            Printf.eprintf
              "stobctl resume: manifest in %s lacks field %S (state dir from an older build?)\n"
              state_dir name;
            exit 1
      in
      let ints name = int_of_string (field name) in
      let floats name = float_of_string (field name) in
      let report = ref None in
      let on_report r = report := Some r in
      Printf.eprintf "resuming %s sweep from %s (%d cells)\n%!" m.Store.experiment state_dir
        m.Store.total;
      try
        with_jobs jobs (fun pool ->
            (match m.Store.experiment with
            | "table2" ->
                let config =
                  {
                    Table2.default_config with
                    samples_per_site = ints "samples_per_site";
                    folds = ints "folds";
                    forest_trees = ints "trees";
                    seed = ints "seed";
                  }
                in
                Table2.print (Table2.run ~config ?pool ~store ~retries ~on_report ())
            | "fig3" ->
                let cc_name = field "cc" in
                let config =
                  {
                    Fig3.alphas =
                      List.map int_of_string (String.split_on_char ',' (field "alphas"));
                    link_gbps = floats "link_gbps";
                    rtt = floats "rtt";
                    warmup = floats "warmup";
                    measure = floats "measure";
                    cc = Stob_tcp.Netem_eval.cc_of_name cc_name;
                    cc_name;
                  }
                in
                Fig3.print (Fig3.run ~config ?pool ~store ~retries ~on_report ())
            | "openworld" ->
                Openworld.print
                  (Openworld.run ~samples_per_site:(ints "samples_per_site")
                     ~background_train_sites:(ints "bg_train_sites")
                     ~background_test_sites:(ints "bg_test_sites") ~k:(ints "k")
                     ~trees:(ints "trees") ~seed:(ints "seed") ?pool ~store ~retries ~on_report
                     ())
            | "pareto" ->
                Pareto.print
                  (Pareto.run ~samples_per_site:(ints "samples_per_site") ~trees:(ints "trees")
                     ~folds:(ints "folds") ~seed:(ints "seed") ?pool ~store ~retries ~on_report
                     ())
            | "dl" ->
                Dl.print
                  (Dl.run ~samples_per_site:(ints "samples_per_site") ~trees:(ints "trees")
                     ~epochs:(ints "epochs") ~seed:(ints "seed") ?pool ~store ~retries ~on_report
                     ())
            | other ->
                Printf.eprintf "stobctl resume: don't know how to resume a %S sweep\n" other;
                exit 1);
            finish_sweep ~strict !report)
      with Failure msg ->
        Printf.eprintf "stobctl resume: %s\n" msg;
        exit 1)

let resume_cmd =
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"State directory of the interrupted sweep.")
  in
  Cmd.v
    (cmd_info "resume"
       ~doc:
         "Resume an interrupted sweep from its state directory, recomputing only the missing \
          cells (the merged artifact is bit-identical to an uninterrupted run)")
    Term.(const resume $ state_dir $ jobs $ retries_arg $ strict_arg)

let status state_dir =
  match Store.peek state_dir with
  | exception Journal.Corrupt msg ->
      Printf.eprintf
        "stobctl status: %s is not a stob sweep state directory (%s).\n\
         If it should be one, the journal was overwritten by something else; remove the \
         directory and re-run the sweep.\n"
        state_dir msg;
      exit 1
  | None, _ ->
      if not (Sys.file_exists state_dir) then
        Printf.eprintf
          "stobctl status: %s: no such directory (state directories are created by running a \
           sweep with --state-dir)\n"
          state_dir
      else
        Printf.eprintf "stobctl status: %s records no sweep (run one with --state-dir first)\n"
          state_dir;
      exit 1
  | Some m, entries ->
      Printf.printf "sweep: %s (%d cells expected)\n" m.Store.experiment m.Store.total;
      List.iter (fun (k, v) -> Printf.printf "  %-18s %s\n" k v) m.Store.fields;
      let done_ =
        List.length
          (List.filter (fun (_, _, s) -> match s with Store.Done _ -> true | _ -> false) entries)
      in
      let poisoned =
        List.filter_map
          (fun (_, label, s) ->
            match s with Store.Poisoned e -> Some (label, e) | Store.Done _ -> None)
          entries
      in
      Printf.printf "cells: %d done, %d poisoned, %d pending\n" done_ (List.length poisoned)
        (max 0 (m.Store.total - List.length entries));
      List.iter (fun (label, e) -> Printf.printf "  poisoned %s: %s\n" label e) poisoned;
      let s = Journal.verify (Store.journal_file state_dir) in
      Printf.printf "journal: %d frames, %d bytes%s\n" s.Journal.scrub_frames s.Journal.scrub_bytes
        (if s.Journal.torn_bytes > 0 then
           Printf.sprintf " (%d-byte torn tail — see stobctl scrub)" s.Journal.torn_bytes
         else "")

let status_cmd =
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"State directory to inspect.")
  in
  Cmd.v
    (cmd_info "status"
       ~doc:
         "Report a sweep state directory: its manifest, done/pending/poisoned cell counts, and \
          journal size/frame counts.  Read-only — safe to run while the sweep is still \
          executing.")
    Term.(const status $ state_dir)

(* --- scrub / compact --------------------------------------------------- *)

let scrub state_dir repair =
  let file = Store.journal_file state_dir in
  match Journal.verify file with
  | exception Journal.Corrupt msg ->
      Printf.eprintf "stobctl scrub: %s is not a stob journal (%s)\n" file msg;
      exit 1
  | { Journal.exists = false; _ } ->
      Printf.eprintf "stobctl scrub: %s: no journal (is %s a sweep state directory?)\n" file
        state_dir;
      exit 1
  | s ->
      Printf.printf "journal: %s\n" file;
      Printf.printf "frames:  %d valid (%d of %d bytes)\n" s.Journal.scrub_frames
        s.Journal.valid_bytes s.Journal.scrub_bytes;
      if s.Journal.torn_bytes = 0 then Printf.printf "tail:    clean\n"
      else begin
        Printf.printf "tail:    %d damaged bytes (%s)\n" s.Journal.torn_bytes
          (if s.Journal.crc_mismatch then "CRC mismatch: bytes flipped in place"
           else "write cut short by a crash");
        if repair then begin
          (* Store.open_ applies the recovery rule (truncate the torn
             tail, resume at the cut) and sweeps orphan tmps; we only
             borrow it for its side effects. *)
          let store = Store.open_ state_dir in
          let orphans = Store.orphans_swept store in
          Store.close store;
          let s' = Journal.verify file in
          Printf.printf "repair:  truncated to %d valid frames (%d bytes); %d orphan tmp file%s \
                         swept\n"
            s'.Journal.scrub_frames s'.Journal.valid_bytes orphans
            (if orphans = 1 then "" else "s")
        end
        else begin
          Printf.printf "run with --repair to truncate the damaged tail and resume from the \
                         valid prefix\n";
          exit 1
        end
      end

let scrub_cmd =
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"State directory whose journal to scrub.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Truncate a damaged tail back to the last valid frame and sweep orphan $(b,*.tmp) \
             files, instead of just reporting.  Identical to what the next sweep's open would \
             do; records past the cut are recomputed on resume.")
  in
  Cmd.v
    (cmd_info "scrub"
       ~doc:
         "CRC-walk a sweep journal and report its health: valid frames, total bytes, and any \
          damaged tail (torn write vs in-place corruption).  Read-only without $(b,--repair); \
          exits non-zero if damage is found and left in place.")
    Term.(const scrub $ state_dir $ repair)

let compact state_dir =
  if not (Sys.file_exists (Store.journal_file state_dir)) then begin
    Printf.eprintf "stobctl compact: %s: no journal (is it a sweep state directory?)\n" state_dir;
    exit 1
  end;
  match Store.compact state_dir with
  | exception Journal.Corrupt msg ->
      Printf.eprintf "stobctl compact: %s\n" msg;
      exit 1
  | exception Failure msg ->
      Printf.eprintf "stobctl compact: %s\n" msg;
      exit 1
  | c ->
      Printf.printf "compacted %s: %d -> %d frames, %d -> %d bytes (replay digest agrees)\n"
        state_dir c.Store.frames_before c.Store.frames_after c.Store.bytes_before
        c.Store.bytes_after

let compact_cmd =
  let state_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR" ~doc:"State directory to compact.")
  in
  Cmd.v
    (cmd_info "compact"
       ~doc:
         "Atomically rewrite a sweep journal down to the manifest plus the latest record per \
          cell (tmp + verify + rename).  The compacted journal is proven to replay to exactly \
          the pre-compaction state before it replaces the original; resume behaviour is \
          unchanged, only superseded frames are dropped.")
    Term.(const compact $ state_dir)

let cca_id flows trees =
  Cca_id.print (Cca_id.run ~flows_per_cca:flows ~trees ())

let cca_id_cmd =
  let flows = Arg.(value & opt int 40 & info [ "flows" ] ~docv:"N" ~doc:"Flows per CCA.") in
  Cmd.v (cmd_info "cca-id" ~doc:"Passive CCA identification and Stob hiding (Section 5.2)")
    Term.(const cca_id $ flows $ trees)

let httpos samples trees =
  Httpos.print (Httpos.run ~samples_per_site:samples ~trees ())

let httpos_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v
    (cmd_info "httpos" ~doc:"HTTPOS-style client-side defense: protection vs load-time cost")
    Term.(const httpos $ samples $ trees)

(* --- netem ------------------------------------------------------------ *)

let netem loss reorder dup jitter netem_seed ccas rate delay bytes jobs =
  let module NE = Stob_tcp.Netem_eval in
  let cells = List.map (fun cca -> { NE.cca; loss; reorder }) ccas in
  Printf.printf
    "netem: loss=%g reorder=%b dup=%g jitter=%g s  path %.0f Mb/s / %.0f ms  response %d B  seed \
     %d\n\n"
    loss reorder dup jitter (rate /. 1e6) (delay *. 1e3) bytes netem_seed;
  let results =
    with_jobs jobs (fun pool ->
        let rng = Stob_util.Rng.create netem_seed in
        let seeded = List.map (fun c -> (c, Stob_util.Rng.int rng max_int)) cells in
        let run (c, s) =
          NE.run_cell ~rate_bps:rate ~delay ~response:bytes ~duplicate:dup ~jitter ~seed:s c
        in
        match pool with
        | None -> List.map run seeded
        | Some pool -> Stob_par.Pool.map_list pool run seeded)
  in
  List.iter (fun r -> Format.printf "%a@." NE.pp_result r) results;
  let bad = List.filter (fun r -> not (NE.converged r)) results in
  if bad <> [] then begin
    Printf.printf "\n%d cell(s) failed to converge\n" (List.length bad);
    exit 1
  end;
  Printf.printf "\nall %d cells converged\n" (List.length results)

(* "all" or one validated CCA name, resolved to the list of cells to run. *)
let cca_conv =
  let parse = function
    | "all" -> Ok [ "reno"; "cubic"; "bbr" ]
    | c -> (
        match Stob_tcp.Netem_eval.cc_of_name c with
        | (_ : Stob_tcp.Cc.factory) -> Ok [ c ]
        | exception Invalid_argument _ ->
            Error (`Msg (Printf.sprintf "unknown CCA %s (expected reno, cubic, bbr or all)" c)))
  in
  let print fmt = function
    | [ c ] -> Format.pp_print_string fmt c
    | _ -> Format.pp_print_string fmt "all"
  in
  Arg.conv ~docv:"CCA" (parse, print)

let netem_cmd =
  let loss =
    Arg.(value & opt prob_conv 0.01
         & info [ "loss" ] ~docv:"P" ~doc:"I.i.d. per-packet loss probability, both directions.")
  in
  let reorder =
    Arg.(value & flag & info [ "reorder" ] ~doc:"Also hold ~5% of packets back a few slots.")
  in
  let dup =
    Arg.(value & opt prob_conv 0.0 & info [ "dup" ] ~docv:"P" ~doc:"Duplication probability.")
  in
  let jitter =
    Arg.(value & opt (nonneg_float_conv ~docv:"SEC") 0.0
         & info [ "jitter" ] ~docv:"SEC" ~doc:"Uniform extra delay bound.")
  in
  let netem_seed =
    Arg.(value & opt int 4242
         & info [ "netem-seed" ] ~docv:"SEED" ~doc:"Master seed for the impairment draws.")
  in
  let cca =
    Arg.(value & opt cca_conv [ "reno"; "cubic"; "bbr" ]
         & info [ "cca" ] ~docv:"CCA" ~doc:"Congestion control: reno, cubic, bbr or all.")
  in
  let rate =
    Arg.(value & opt (pos_float_conv ~docv:"BPS") 20e6
         & info [ "rate" ] ~docv:"BPS" ~doc:"Bottleneck rate, bits/s.")
  in
  let delay =
    Arg.(value & opt (pos_float_conv ~docv:"SEC") 0.015
         & info [ "delay" ] ~docv:"SEC" ~doc:"One-way propagation delay.")
  in
  let bytes =
    Arg.(value & opt (pos_int_conv ~docv:"N") 150_000
         & info [ "bytes" ] ~docv:"N" ~doc:"Response size to transfer.")
  in
  Cmd.v
    (cmd_info "netem"
       ~doc:
         "Drive one request/response/close connection per CCA through seeded netem-style \
          impairment (loss, reordering, duplication, jitter) and report recovery counters")
    Term.(
      const netem $ loss $ reorder $ dup $ jitter $ netem_seed $ cca $ rate $ delay $ bytes $ jobs)

(* --- chaos ------------------------------------------------------------ *)

let chaos smoke chaos_seed shrink jobs =
  let module C = Stob_check.Chaos in
  let scenarios = if smoke then C.smoke_scenarios () else C.default_scenarios () in
  let reports = with_jobs jobs (fun pool -> C.run_sweep ?pool ~seed:chaos_seed scenarios) in
  C.print_sweep reports;
  (* Same two gates as `bench/main.exe chaos`: every cell survives its page
     load, and cells with no fault injected are violation-free. *)
  let gate (r : C.report) =
    C.survived r && (r.C.scenario.C.fault <> None || C.clean r)
  in
  let failing = List.filter (fun r -> not (gate r)) reports in
  match failing with
  | [] ->
      Printf.printf "\nchaos: all gates passed (%d cells, seed %d)\n" (List.length reports)
        chaos_seed
  | fs ->
      List.iter
        (fun (r : C.report) ->
          Printf.printf "\nchaos FAILURE: %s (cell seed %d)\n" (C.scenario_name r.C.scenario)
            r.C.seed;
          if shrink then
            match C.shrink ~failed:(fun r' -> not (gate r')) ~seed:r.C.seed r.C.scenario with
            | None ->
                Printf.printf "  not reproducible from the fault plan alone (full replay passes)\n"
            | Some (k, prefix, _) ->
                Printf.printf "  minimal failing fault prefix: %d event(s)\n" k;
                List.iter (fun ev -> Format.printf "    %a@." Stob_sim.Fault.pp_event ev) prefix)
        fs;
      exit 1

let chaos_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ] ~doc:"Run the bounded smoke sweep instead of the full battery.")
  in
  let chaos_seed =
    Arg.(value & opt int 1337
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Master seed for the sweep; per-cell seeds are pre-split from it, so reports \
                   are identical at every $(b,--jobs) level.")
  in
  let shrink =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"On failure, shrink each failing cell to the minimal prefix of its \
                   time-sorted fault plan that still fails, and print it.")
  in
  Cmd.v
    (cmd_info "chaos"
       ~doc:
         "Run the chaos battery: seeded fault injection against monitored, \
          degradation-enabled page loads.  Gates: every cell survives (completes without \
          crash or livelock) and no-fault cells report zero invariant violations.")
    Term.(const chaos $ smoke $ chaos_seed $ shrink $ jobs)

let importance samples trees =
  Importance.print (Importance.run ~samples_per_site:samples ~trees ())

let importance_cmd =
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Samples per site.")
  in
  Cmd.v (cmd_info "importance" ~doc:"Feature importance before/after defense")
    Term.(const importance $ samples $ trees)

(* --- population ------------------------------------------------------- *)

let population users shards background zipf sessions visits cap mode pop_seed dir jobs =
  let config =
    {
      Population.default_config with
      Population.users;
      shards;
      background_sites = background;
      zipf_exponent = zipf;
      mean_sessions = sessions;
      mean_session_visits = visits;
      max_trace_events = cap;
      mode;
      seed = pop_seed;
    }
  in
  let summary = with_jobs jobs (fun pool -> Population.generate ?pool config ~state_dir:dir) in
  Format.printf "%a" Population.pp_summary summary

let population_cmd =
  let mode_conv =
    let parse = function
      | "synthetic" -> Ok Population.Synthetic
      | "browser" -> Ok Population.Browser
      | s -> Error (`Msg (Printf.sprintf "unknown mode %s (expected synthetic or browser)" s))
    in
    let print fmt = function
      | Population.Synthetic -> Format.pp_print_string fmt "synthetic"
      | Population.Browser -> Format.pp_print_string fmt "browser"
    in
    Arg.conv ~docv:"MODE" (parse, print)
  in
  let users =
    Arg.(value & opt (nonneg_int_conv ~docv:"N") Population.default_config.Population.users
         & info [ "users" ] ~docv:"N" ~doc:"Population size.")
  in
  let shards =
    Arg.(value & opt (pos_int_conv ~docv:"N") Population.default_config.Population.shards
         & info [ "shards" ] ~docv:"N"
             ~doc:"Fixed shard count (independent of $(b,--jobs); the corpus digest depends \
                   only on the config and seed).")
  in
  let background =
    Arg.(value
         & opt (nonneg_int_conv ~docv:"N")
             Population.default_config.Population.background_sites
         & info [ "background" ] ~docv:"N"
             ~doc:"Synthetic background sites appended after the nine monitored ones.")
  in
  let zipf =
    Arg.(value
         & opt (pos_float_conv ~docv:"S") Population.default_config.Population.zipf_exponent
         & info [ "zipf" ] ~docv:"S" ~doc:"Site-popularity zipf exponent.")
  in
  let sessions =
    Arg.(value
         & opt (pos_float_conv ~docv:"M") Population.default_config.Population.mean_sessions
         & info [ "sessions" ] ~docv:"M" ~doc:"Poisson mean sessions per user per day.")
  in
  let visits =
    Arg.(value
         & opt (pos_float_conv ~docv:"M")
             Population.default_config.Population.mean_session_visits
         & info [ "visits" ] ~docv:"M" ~doc:"Mean page visits per session (>= 1).")
  in
  let cap =
    Arg.(value
         & opt (pos_int_conv ~docv:"N") Population.default_config.Population.max_trace_events
         & info [ "events-cap" ] ~docv:"N" ~doc:"Per-trace event cap (capture truncation).")
  in
  let mode =
    Arg.(value & opt mode_conv Population.Synthetic
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Trace synthesis: $(b,synthetic) (fast statistical model) or $(b,browser) \
                   (full page-load simulation).")
  in
  let dir =
    Arg.(required & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Corpus directory: one journal file per shard plus the resume store.  \
                   Re-running the same config resumes, skipping finished shards.")
  in
  Cmd.v
    (cmd_info "population"
       ~doc:
         "Generate a population-scale packed-trace corpus: zipf site popularity, per-user \
          diurnal sessions, one journal per shard, O(shard) resident memory")
    Term.(
      const population $ users $ shards $ background $ zipf $ sessions $ visits $ cap $ mode
      $ seed $ dir $ jobs)

(* --- soak ------------------------------------------------------------- *)

let soak smoke transport users shards fault_period horizon soak_seed state_dir retries jobs =
  let module Soak = Stob_check.Soak in
  let base = if smoke then Soak.smoke_config else Soak.default_config in
  let population =
    {
      base.Soak.population with
      Population.users = Option.value users ~default:base.Soak.population.Population.users;
      shards = Option.value shards ~default:base.Soak.population.Population.shards;
      seed = soak_seed;
    }
  in
  let config = { Soak.population; flow_horizon = horizon; fault_period; transport } in
  let summary =
    with_jobs jobs (fun pool ->
        Soak.run ?pool ?state_dir ~retries
          ~on_shard:(fun r ->
            Printf.eprintf "soak: shard %02d%s %d/%d flows, %d probes, %d violations\n%!"
              r.Soak.shard
              (if r.Soak.faulted then " (faulted)" else "")
              r.Soak.completed r.Soak.flows r.Soak.persist_probes r.Soak.total_violations)
          config)
  in
  Format.printf "%a@." Soak.pp_summary summary;
  if summary.Soak.completed < summary.Soak.flows then begin
    Printf.eprintf "soak: %d flows incomplete\n"
      (summary.Soak.flows - summary.Soak.completed);
    exit 1
  end;
  if summary.Soak.fault_free_violations > 0 then begin
    Printf.eprintf "soak: %d invariant violations on fault-free shards\n"
      summary.Soak.fault_free_violations;
    exit 1
  end

let soak_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the CI-sized soak (a few thousand flows) instead of the full >= 1M-flow \
                   battery.")
  in
  let users =
    Arg.(value & opt (some (nonneg_int_conv ~docv:"N")) None
         & info [ "users" ] ~docv:"N"
             ~doc:"Override the population size (expected flows = users x sessions x visits).")
  in
  let shards =
    Arg.(value & opt (some (pos_int_conv ~docv:"N")) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Fixed shard count (independent of $(b,--jobs); reports are jobs-invariant).")
  in
  let transport_conv =
    Arg.conv
      ( (fun s ->
          try Ok (Stob_check.Soak.transport_of_name (String.lowercase_ascii s))
          with Invalid_argument _ ->
            Error (`Msg (Printf.sprintf "unknown transport %S (tcp|quic|mixed)" s))),
        fun fmt t -> Format.pp_print_string fmt (Stob_check.Soak.transport_name t) )
  in
  let transport =
    Arg.(value & opt transport_conv `Tcp
         & info [ "transport" ] ~docv:"TRANSPORT"
             ~doc:"Flow population: $(b,tcp), $(b,quic), or $(b,mixed) (50/50 split drawn \
                   per flow).")
  in
  let fault_period =
    Arg.(value & opt (nonneg_int_conv ~docv:"N") 4
         & info [ "fault-period" ] ~docv:"N"
             ~doc:"Arm the chaos dimension (TCP pacer-clock jumps, QUIC datagram blackholes) \
                   on every $(docv)th shard; 0 disables faults.")
  in
  let horizon =
    Arg.(value & opt (pos_float_conv ~docv:"SECONDS") 120.0
         & info [ "flow-horizon" ] ~docv:"SECONDS"
             ~doc:"Per-flow lifetime before the reaper harvests it.")
  in
  let soak_seed =
    Arg.(value & opt int 271
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Population seed; per-flow seeds are pre-split from the visit plan, so \
                   reports are identical at every $(b,--jobs) level.")
  in
  Cmd.v
    (cmd_info "soak"
       ~doc:
         "Run the transport endurance soak: population-scale request/response flows — TCP \
          (slow readers, zero windows, refused SACK/wscale, reduced MSS, lossy links, chaos \
          pacer faults), QUIC (idle-timeout closes, anti-amplification, PTO recovery, \
          datagram-blackhole faults), or a mixed population — with every endpoint under the \
          invariant monitor.  Gates: every flow completes and fault-free shards are \
          violation-free.  With $(b,--state-dir) the soak is crash-safe and resumable.")
    Term.(
      const soak $ smoke $ transport $ users $ shards $ fault_period $ horizon $ soak_seed
      $ state_dir_arg $ retries_arg $ jobs)

let main_cmd =
  let doc = "stack-level traffic obfuscation (Stob) reproduction toolkit" in
  Cmd.group (Cmd.info "stobctl" ~version:"1.0.0" ~doc ~exits)
    [
      gen_dataset_cmd; attack_cmd; load_cmd; policies_cmd; table1_cmd; table2_cmd; fig3_cmd;
      arch_cmd; ablation_stack_cmd; ablation_cca_cmd; ablation_quic_cmd; openworld_cmd;
      pareto_cmd; dl_cmd; resume_cmd; status_cmd; scrub_cmd; compact_cmd; cca_id_cmd;
      httpos_cmd; importance_cmd;
      netem_cmd; chaos_cmd; population_cmd; soak_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
