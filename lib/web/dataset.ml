module Rng = Stob_util.Rng
module Stats = Stob_util.Stats
module Trace = Stob_net.Trace
module Packet = Stob_net.Packet

type sample = {
  site : string;
  label : int;
  trace : Trace.t;
  completed : bool;
  total_in_bytes : int;
}

type t = { samples : sample array; site_names : string array }

let generate ?(samples_per_site = 100) ?(seed = 1) ?policy ?cc ?client_config ?(profiles = Sites.all)
    ?(failure_rate = 0.02) ?(transport = `Tcp) ?progress ?(pool = Stob_par.Pool.sequential) () =
  let master = Rng.create seed in
  let site_names = Array.of_list (List.map (fun p -> p.Profile.name) profiles) in
  let total = List.length profiles * samples_per_site in
  let done_ = Atomic.make 0 in
  (* Pre-split one generator per visit, in visit order, so the per-visit
     tasks are pure and the parallel map reproduces the sequential corpus
     bit-for-bit ([split] only consumes the master stream). *)
  let visits =
    List.concat
      (List.mapi
         (fun label profile ->
           List.init samples_per_site (fun _ -> (label, profile, Rng.split master)))
         profiles)
  in
  let visit (label, profile, rng) =
    let result =
      match transport with
      | `Tcp -> Browser.load ?policy ?cc ?client_config ~rng profile
      | `Quic -> Browser_quic.load ?policy ?cc ~rng profile
    in
    let d = Atomic.fetch_and_add done_ 1 + 1 in
    (match progress with Some f -> f ~done_:d ~total | None -> ());
    (* Inject occasional "connection error" captures: truncate the
       trace at a random point and mark the visit failed. *)
    let failed = Rng.bernoulli rng failure_rate in
    let trace =
      if failed then
        Trace.prefix result.Browser.trace
          (1 + Rng.int rng (max 1 (Trace.length result.Browser.trace)))
      else result.Browser.trace
    in
    {
      site = profile.Profile.name;
      label;
      trace;
      completed = result.Browser.completed && not failed;
      total_in_bytes = Trace.bytes ~dir:Packet.Incoming trace;
    }
  in
  { samples = Stob_par.Pool.map pool visit (Array.of_list visits); site_names }

let per_site_counts t =
  Array.to_list
    (Array.mapi
       (fun label site ->
         (site, Array.fold_left (fun acc s -> if s.label = label then acc + 1 else acc) 0 t.samples))
       t.site_names)

let sanitize t =
  let ok = Array.of_list (List.filter (fun s -> s.completed) (Array.to_list t.samples)) in
  (* Per-site Tukey fences on total download size. *)
  let surviving =
    Array.to_list t.site_names
    |> List.mapi (fun label _ ->
           let mine = List.filter (fun s -> s.label = label) (Array.to_list ok) in
           match mine with
           | [] -> []
           | _ ->
               let sizes = Array.of_list (List.map (fun s -> float_of_int s.total_in_bytes) mine) in
               let lo, hi = Stats.iqr_bounds sizes in
               List.filter
                 (fun s ->
                   let v = float_of_int s.total_in_bytes in
                   v >= lo && v <= hi)
                 mine)
  in
  let min_count =
    List.fold_left (fun acc l -> min acc (List.length l)) max_int surviving
  in
  let min_count = if min_count = max_int then 0 else min_count in
  let balanced = List.concat_map (fun l -> List.filteri (fun i _ -> i < min_count) l) surviving in
  { samples = Array.of_list balanced; site_names = t.site_names }

let by_label t =
  Array.to_list t.site_names
  |> List.mapi (fun label _ -> List.filter (fun s -> s.label = label) (Array.to_list t.samples))

let split t ~rng ~train_fraction =
  let train = ref [] and test = ref [] in
  List.iter
    (fun class_samples ->
      let arr = Array.of_list class_samples in
      Rng.shuffle rng arr;
      let n_train = int_of_float (train_fraction *. float_of_int (Array.length arr)) in
      Array.iteri (fun i s -> if i < n_train then train := s :: !train else test := s :: !test) arr)
    (by_label t);
  ( { samples = Array.of_list (List.rev !train); site_names = t.site_names },
    { samples = Array.of_list (List.rev !test); site_names = t.site_names } )

let folds t ~rng ~k =
  if k < 2 then invalid_arg "Dataset.folds: k must be >= 2";
  (* Assign each sample a fold within its class, then build k train/test
     pairs. *)
  let assignments = Hashtbl.create (Array.length t.samples) in
  List.iter
    (fun class_samples ->
      let arr = Array.of_list class_samples in
      Rng.shuffle rng arr;
      Array.iteri (fun i s -> Hashtbl.replace assignments s (i mod k)) arr)
    (by_label t);
  List.init k (fun fold ->
      let train = ref [] and test = ref [] in
      Array.iter
        (fun s ->
          if Hashtbl.find assignments s = fold then test := s :: !test else train := s :: !train)
        t.samples;
      ( { samples = Array.of_list (List.rev !train); site_names = t.site_names },
        { samples = Array.of_list (List.rev !test); site_names = t.site_names } ))

let map_traces t f =
  {
    t with
    samples =
      Array.map
        (fun s ->
          let trace = f s in
          { s with trace; total_in_bytes = Trace.bytes ~dir:Packet.Incoming trace })
        t.samples;
  }
