module Engine = Stob_sim.Engine
module Rng = Stob_util.Rng
module Trace = Stob_net.Trace
module Capture = Stob_net.Capture
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path
module Record = Stob_tls.Record

type result = {
  trace : Trace.t;
  completed : bool;
  load_time : float;
  bytes_downloaded : int;
  page : Resource.page;
  netem_stats : Stob_sim.Netem.stats;
}

(* Per-connection client state: what we are currently waiting for. *)
type conn = {
  c : Connection.t;
  mutable ready : bool;  (* TLS handshake finished *)
  mutable expecting : int;  (* ciphertext bytes still to arrive for the current response *)
  mutable received_ciphertext : int;
  mutable busy : bool;  (* a request is outstanding *)
  mutable on_response_done : unit -> unit;
}

let tls = Record.default

(* Frame [n] plaintext bytes into total ciphertext wire bytes. *)
let ciphertext_bytes n = Record.wire_bytes tls ~padding:Record.No_padding n

let load ?policy ?cc ?client_config ?client_netem ?server_netem ?(max_time = 60.0) ~rng profile =
  let engine = Engine.create () in
  let rate_bps, delay = Profile.sample_network profile rng in
  (* Bottleneck queue: a shallow-ish access-link buffer (about 50 ms at the
     link rate) so overload shows up as queueing and occasional loss. *)
  let queue_capacity = max 65536 (int_of_float (rate_bps *. 0.05 /. 8.0)) in
  let path = Path.create ~engine ~rate_bps ~delay ~queue_capacity ?client_netem ?server_netem () in
  let page = Profile.generate_page profile rng in
  let n_conns = max 1 profile.Profile.parallel_connections in

  (* --- server application ------------------------------------------- *)
  (* Per flow: a FIFO of pending (response_ciphertext, think) jobs plus the
     count of request bytes that announce each job. *)
  let server_jobs : (int, (int * int * float) Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let server_rx : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let jobs_of flow =
    match Hashtbl.find_opt server_jobs flow with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add server_jobs flow q;
        Hashtbl.add server_rx flow (ref 0);
        q
  in
  let rec server_progress flow server =
    let q = jobs_of flow in
    let rx = Hashtbl.find server_rx flow in
    match Queue.peek_opt q with
    | Some (req_bytes, resp_bytes, think) when !rx >= req_bytes ->
        ignore (Queue.pop q);
        rx := !rx - req_bytes;
        if resp_bytes > 0 then
          ignore
            (Engine.schedule engine ~delay:think (fun () ->
                 Endpoint.write server resp_bytes;
                 server_progress flow server))
        else server_progress flow server
    | _ -> ()
  in

  (* --- connections --------------------------------------------------- *)
  let conns =
    Array.init n_conns (fun i ->
        let flow = i + 1 in
        let server_hooks =
          Option.map
            (fun p ->
              Stob_core.Controller.hooks (Stob_core.Controller.create ~seed:(Rng.int rng 1_000_000) p))
            policy
        in
        let c = Connection.create ~engine ~path ~flow ?cc ?client_config ?server_hooks () in
        {
          c;
          ready = false;
          expecting = 0;
          received_ciphertext = 0;
          busy = false;
          on_response_done = (fun () -> ());
        })
  in

  let bytes_downloaded = ref 0 in
  let last_complete = ref 0.0 in

  (* Issue one exchange on a connection: client sends [send_bytes]; the
     server, once it has them, thinks and responds with [resp_bytes]; when
     the full response has arrived, [k] runs. *)
  let exchange conn ~send_bytes ~resp_bytes ~think k =
    let flow = Connection.flow conn.c in
    conn.busy <- true;
    conn.expecting <- resp_bytes;
    conn.received_ciphertext <- 0;
    conn.on_response_done <- k;
    Queue.add (send_bytes, resp_bytes, think) (jobs_of flow);
    Endpoint.write (Connection.client conn.c) send_bytes
  in

  (* --- work scheduler ------------------------------------------------ *)
  let head_queue = Queue.create () and body_queue = Queue.create () in
  List.iter (fun r -> Queue.add r head_queue) page.Resource.head_wave;
  List.iter (fun r -> Queue.add r body_queue) page.Resource.body_wave;
  let head_outstanding = ref 0 in
  (* With no head resources, the body wave unblocks as soon as the HTML is
     in (the release-on-head-completion path would otherwise never fire). *)
  let body_released = ref (Queue.is_empty head_queue) in
  let remaining =
    ref (1 + List.length page.Resource.head_wave + List.length page.Resource.body_wave)
  in

  let rec dispatch conn =
    if conn.ready && not conn.busy then begin
      let next =
        match Queue.take_opt head_queue with
        | Some r ->
            incr head_outstanding;
            Some (r, `Head)
        | None -> (
            if !body_released then
              match Queue.take_opt body_queue with Some r -> Some (r, `Body) | None -> None
            else None)
      in
      match next with
      | None -> ()
      | Some (r, wave) ->
          let resp = ciphertext_bytes r.Resource.size in
          exchange conn
            ~send_bytes:(ciphertext_bytes r.Resource.request_bytes)
            ~resp_bytes:resp ~think:r.Resource.think
            (fun () ->
              bytes_downloaded := !bytes_downloaded + r.Resource.size;
              last_complete := Engine.now engine;
              decr remaining;
              (match wave with
              | `Head ->
                  decr head_outstanding;
                  if Queue.is_empty head_queue && !head_outstanding = 0 then begin
                    (* Head wave done everywhere: the body wave unblocks. *)
                    body_released := true;
                    Array.iter dispatch conns
                  end
              | `Body -> ());
              dispatch conn)
    end
  in

  (* --- client receive plumbing --------------------------------------- *)
  Array.iter
    (fun conn ->
      let client = Connection.client conn.c and server = Connection.server conn.c in
      let flow = Connection.flow conn.c in
      Endpoint.set_on_receive server (fun n ->
          let rx = Hashtbl.find server_rx flow in
          rx := !rx + n;
          server_progress flow server);
      Endpoint.set_on_receive client (fun n ->
          conn.received_ciphertext <- conn.received_ciphertext + n;
          if conn.busy && conn.received_ciphertext >= conn.expecting then begin
            conn.busy <- false;
            let k = conn.on_response_done in
            conn.on_response_done <- (fun () -> ());
            k ()
          end))
    conns;

  (* --- page-load choreography ---------------------------------------- *)
  let handshake conn k =
    let hello = Record.client_hello_bytes rng in
    (* The server's handshake flight size is site-characteristic (its
       certificate chain); see Profile.tls_flight. *)
    let flight = Profile.sample_size profile.Profile.tls_flight rng in
    (* Handshake messages are not app-data records; their wire size is the
       message size itself. *)
    exchange conn ~send_bytes:hello ~resp_bytes:flight ~think:0.002 (fun () ->
        (* The finished flight needs no response; register a zero-response
           job so the server's request byte counter absorbs it rather than
           mis-crediting the next request. *)
        let finished = Record.client_finished_bytes rng in
        Queue.add (finished, 0, 0.0) (jobs_of (Connection.flow conn.c));
        Endpoint.write (Connection.client conn.c) finished;
        conn.ready <- true;
        k ())
  in

  let html_started = ref false in
  let open_secondary () =
    if not !html_started then begin
      html_started := true;
      Array.iteri
        (fun i conn ->
          if i > 0 then begin
            Connection.on_established conn.c (fun () -> handshake conn (fun () -> dispatch conn));
            Connection.open_ conn.c
          end)
        conns
    end
  in

  let primary = conns.(0) in
  Connection.on_established primary.c (fun () ->
      handshake primary (fun () ->
          (* Fetch the HTML; secondary connections open as it arrives. *)
          let resp = ciphertext_bytes page.Resource.html.Resource.size in
          exchange primary
            ~send_bytes:(ciphertext_bytes page.Resource.html.Resource.request_bytes)
            ~resp_bytes:resp ~think:page.Resource.html.Resource.think
            (fun () ->
              bytes_downloaded := !bytes_downloaded + page.Resource.html.Resource.size;
              last_complete := Engine.now engine;
              decr remaining;
              dispatch primary);
          ignore
            (Engine.schedule engine ~delay:0.001 (fun () -> open_secondary ()))));
  Connection.open_ primary.c;

  Engine.run ~until:max_time engine;
  let completed = !remaining = 0 in
  {
    trace = Trace.shift_to_zero (Capture.trace (Path.capture path));
    completed;
    load_time = !last_complete;
    bytes_downloaded = !bytes_downloaded;
    page;
    netem_stats = Path.netem_stats path;
  }
