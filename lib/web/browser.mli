(** The page-load driver: a browser model over the simulated stack.

    One page load builds a client-server path with the profile's sampled
    network conditions, opens the browser's connection pool, performs a
    TLS handshake per connection, fetches the HTML on the first connection,
    then fans the head wave (css/js/fonts) and afterwards the body wave
    (images/media/api) across the pool — one outstanding request per
    connection, HTTP/1.1 keep-alive style.  All response/request byte counts
    pass through TLS record framing, so wire sizes include record overhead.

    The returned trace is exactly what tcpdump at the client's vantage would
    record for the visit. *)

type result = {
  trace : Stob_net.Trace.t;  (** Time-zeroed capture of the whole visit. *)
  completed : bool;  (** Every object fully delivered within the cap. *)
  load_time : float;  (** Time of the last object's completion. *)
  bytes_downloaded : int;  (** Application bytes received (plaintext). *)
  page : Resource.page;  (** The composition that was fetched. *)
  netem_stats : Stob_sim.Netem.stats;
      (** Impairment counters over both directions (all zero when the visit
          ran without netem). *)
}

val load :
  ?policy:Stob_core.Policy.t ->
  ?cc:Stob_tcp.Cc.factory ->
  ?client_config:Stob_tcp.Config.t ->
  ?client_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  ?server_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  ?max_time:float ->
  rng:Stob_util.Rng.t ->
  Profile.t ->
  result
(** Run one visit.  [policy] installs a server-side Stob policy on every
    connection of the visit (one controller per flow, per Section 4.1's
    per-destination sharing).  [client_config] overrides the client
    endpoints' TCP configuration — e.g. an HTTPOS-style small advertised
    window.  [client_netem] impairs packets the client receives (the
    download direction) and [server_netem] those the server receives, as
    in {!Stob_tcp.Path.create}; the capture taps upstream of both, so the
    returned trace is the pre-impairment tcpdump view.  [max_time] caps
    simulated duration (default 60 s); a load still incomplete then
    reports [completed = false]. *)
