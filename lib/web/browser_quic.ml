module Engine = Stob_sim.Engine
module Rng = Stob_util.Rng
module Trace = Stob_net.Trace
module Capture = Stob_net.Capture
module Path = Stob_tcp.Path
module Qconn = Stob_quic.Connection
module Qendpoint = Stob_quic.Endpoint

(* HTTP/3 frame overhead per message (HEADERS/DATA frame headers, QPACK). *)
let h3_overhead = 24

let load ?policy ?cc ?client_netem ?server_netem ?(max_time = 60.0) ~rng profile =
  let engine = Engine.create () in
  let rate_bps, delay = Profile.sample_network profile rng in
  let queue_capacity = max 65536 (int_of_float (rate_bps *. 0.05 /. 8.0)) in
  let path = Path.create ~engine ~rate_bps ~delay ~queue_capacity ?client_netem ?server_netem () in
  let page = Profile.generate_page profile rng in
  let flight = Profile.sample_size profile.Profile.tls_flight rng in
  let server_hooks =
    Option.map
      (fun p ->
        Stob_core.Controller.hooks (Stob_core.Controller.create ~seed:(Rng.int rng 1_000_000) p))
      policy
  in
  let conn = Qconn.create ~engine ~path ~flow:1 ?cc ?server_hooks ~flight_bytes:flight () in
  let client = Qconn.client conn and server = Qconn.server conn in

  (* --- server application: one job per stream ----------------------- *)
  let jobs : (int, int * float) Hashtbl.t = Hashtbl.create 32 in
  Qendpoint.set_on_stream_fin server (fun ~stream ->
      match Hashtbl.find_opt jobs stream with
      | None -> ()
      | Some (resp_bytes, think) ->
          ignore
            (Engine.schedule engine ~delay:think (fun () ->
                 Qendpoint.send_stream server ~stream ~fin:true resp_bytes)));

  (* --- client: wave scheduler over streams --------------------------- *)
  let head_queue = Queue.create () and body_queue = Queue.create () in
  List.iter (fun r -> Queue.add r head_queue) page.Resource.head_wave;
  List.iter (fun r -> Queue.add r body_queue) page.Resource.body_wave;
  let body_released = ref (Queue.is_empty head_queue) in
  let head_outstanding = ref 0 in
  let remaining =
    ref (1 + List.length page.Resource.head_wave + List.length page.Resource.body_wave)
  in
  let bytes_downloaded = ref 0 in
  let last_complete = ref 0.0 in
  (* H3 browsers multiplex aggressively on the one connection. *)
  let max_concurrent = 2 * max 1 profile.Profile.parallel_connections in
  let in_flight = ref 0 in
  let next_stream = ref 4 in
  let stream_of : (int, Resource.t * [ `Html | `Head | `Body ]) Hashtbl.t = Hashtbl.create 32 in

  let issue (r : Resource.t) wave =
    let stream = !next_stream in
    next_stream := stream + 4;
    incr in_flight;
    Hashtbl.replace stream_of stream (r, wave);
    Hashtbl.replace jobs stream (r.Resource.size + h3_overhead, r.Resource.think);
    Qendpoint.send_stream client ~stream ~fin:true (r.Resource.request_bytes + h3_overhead)
  in
  let rec dispatch () =
    if !in_flight < max_concurrent then begin
      match Queue.take_opt head_queue with
      | Some r ->
          incr head_outstanding;
          issue r `Head;
          dispatch ()
      | None ->
          if !body_released then
            match Queue.take_opt body_queue with
            | Some r ->
                issue r `Body;
                dispatch ()
            | None -> ()
    end
  in
  Qendpoint.set_on_stream_fin client (fun ~stream ->
      match Hashtbl.find_opt stream_of stream with
      | None -> ()
      | Some (r, wave) ->
          decr in_flight;
          decr remaining;
          bytes_downloaded := !bytes_downloaded + r.Resource.size;
          last_complete := Engine.now engine;
          (match wave with
          | `Html ->
              (* HTML parsed: the head wave starts. *)
              dispatch ()
          | `Head ->
              decr head_outstanding;
              if Queue.is_empty head_queue && !head_outstanding = 0 then body_released := true;
              dispatch ()
          | `Body -> dispatch ()));

  Qconn.on_established conn (fun () ->
      (* Fetch the HTML first, alone. *)
      let html = page.Resource.html in
      let stream = !next_stream in
      next_stream := stream + 4;
      incr in_flight;
      Hashtbl.replace stream_of stream (html, `Html);
      Hashtbl.replace jobs stream (html.Resource.size + h3_overhead, html.Resource.think);
      Qendpoint.send_stream client ~stream ~fin:true (html.Resource.request_bytes + h3_overhead));
  Qconn.open_ conn;
  Engine.run ~until:max_time engine;
  {
    Browser.trace = Trace.shift_to_zero (Capture.trace (Path.capture path));
    completed = !remaining = 0;
    load_time = !last_complete;
    bytes_downloaded = !bytes_downloaded;
    page;
    netem_stats = Path.netem_stats path;
  }
