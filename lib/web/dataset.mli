(** Dataset generation and sanitization (the paper's Section 3 pipeline).

    Generates N visits per monitored site through the simulator, then
    sanitizes the corpus the way the paper does: visits with connection
    errors are dropped, outliers outside the Tukey fences of each site's
    total download size are removed, and classes are balanced down to the
    smallest surviving class (the paper lands on 74 per site from 100). *)

type sample = {
  site : string;
  label : int;  (** Index into {!site_names} order. *)
  trace : Stob_net.Trace.t;
  completed : bool;
  total_in_bytes : int;  (** Incoming wire bytes (download size). *)
}

type t = { samples : sample array; site_names : string array }

val generate :
  ?samples_per_site:int ->
  ?seed:int ->
  ?policy:Stob_core.Policy.t ->
  ?cc:Stob_tcp.Cc.factory ->
  ?client_config:Stob_tcp.Config.t ->
  ?profiles:Profile.t list ->
  ?failure_rate:float ->
  ?transport:[ `Tcp | `Quic ] ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?pool:Stob_par.Pool.t ->
  unit ->
  t
(** Defaults: 100 samples per site, the nine paper sites, seed 1,
    no Stob policy, CUBIC, TCP transport ([`Quic] loads each visit over a
    single HTTP/3-style QUIC connection instead).  [failure_rate] injects connection errors:
    that fraction of visits is truncated at a random point and marked
    incomplete (default 0.02), exercising the sanitization path the way
    flaky real-world captures did.

    [?pool] parallelizes visits across domains.  Per-visit generators are
    pre-split from [seed] in visit order, so the corpus is bit-identical
    for any domain count.  [progress] may then be called concurrently and
    out of order (its [done_] argument stays an accurate running count). *)

val sanitize : t -> t
(** Drop incomplete visits, apply the per-site IQR filter on total download
    size, and balance classes to the minimum surviving count. *)

val per_site_counts : t -> (string * int) list

val split :
  t -> rng:Stob_util.Rng.t -> train_fraction:float -> t * t
(** Stratified train/test split: the fraction applies within each class. *)

val folds : t -> rng:Stob_util.Rng.t -> k:int -> (t * t) list
(** [k] stratified cross-validation folds as (train, test) pairs. *)

val map_traces : t -> (sample -> Stob_net.Trace.t) -> t
(** Apply a trace transformation (a defense) to every sample, recomputing
    download sizes. *)
