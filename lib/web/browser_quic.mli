(** Page loads over QUIC (the HTTP/3 deployment model).

    Unlike the TCP driver ({!Browser}), a QUIC visit uses a {e single}
    connection: every resource is one bidirectional stream, with the
    browser capping concurrent streams.  The wire picture therefore differs
    from TCP exactly as it does in reality — one handshake, no per-
    connection TLS flights, stream multiplexing interleaving responses —
    which is what makes TCP-vs-QUIC fingerprintability comparable
    (Section 2.3 argues Stob's control points exist in both; the QCSD line
    of work studies the QUIC side).

    Returns the same {!Browser.result} record, so datasets can be generated
    over either transport interchangeably. *)

val load :
  ?policy:Stob_core.Policy.t ->
  ?cc:Stob_tcp.Cc.factory ->
  ?client_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  ?server_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  ?max_time:float ->
  rng:Stob_util.Rng.t ->
  Profile.t ->
  Browser.result
(** [policy] installs a server-side Stob policy on the connection's
    datagram path.  The handshake flight size is drawn from the profile's
    [tls_flight] (certificate chain), as in the TCP driver.
    [client_netem]/[server_netem] impair the respective receive directions
    exactly as in {!Browser.load}; the result's [netem_stats] reports what
    the stages did, and the hardened endpoint's loss detection and PTO
    machinery recover the visit. *)
