(** Crash-point fuzzer for the durable store.

    Runs a small supervised sweep through the {!Stob_store.Io_fault}
    syscall plane and hammers every durability promise the store makes:

    {ul
    {- {b Crash enumeration.}  Count the syscall boundaries of an
       uninterrupted run, then for every boundary [k] run a fresh sweep
       that dies at exactly [k] (possibly mid-frame, with a seeded
       partial write) and resume it with a clean plane.  The resumed
       results {e and the final journal bytes} must be bit-identical to
       the uninterrupted run — torn tails truncate away, cached cells
       are not re-journaled, and the supervisor's index-ordered [on_done]
       makes journal bytes jobs- and crash-invariant.}
    {- {b Short writes.}  Seeded split of every [write]: the sweep must
       produce byte-identical journals.}
    {- {b Transient errors.}  Periodic EIO bursts under the bounded
       retry envelope: the sweep heals invisibly and the store reports
       the retries.}
    {- {b Persistent ENOSPC.}  From a mid-run boundary on, every
       write/flush fails: the sweep must {e complete} in journaling-off
       degraded mode with an accurate {!Stob_store.Store.report}, the
       [store-durability-degraded] monitor edge must fire, and a later
       clean resume must reconverge to the reference journal bytes.}
    {- {b Compaction.}  Superseded records, [Store.checkpoint], the
       post-compaction replay-digest-agreement invariant, shrinkage, and
       crash enumeration {e inside} the checkpoint itself — replay
       digest must be unchanged by a crash at any checkpoint boundary
       (tmp+rename atomicity), and stranded tmps must be swept on the
       next open.}}

    The battery is deterministic in [seed] and runs sequentially (the
    supervisor's sequential pool) — crash points, not schedules, are the
    variable under test. *)

type report = {
  sweep_boundaries : int;  (** I/O boundaries in the uninterrupted sweep. *)
  sweep_crashes_passed : int;  (** Crash points whose resume was bit-identical. *)
  ckpt_boundaries : int;  (** Boundaries in open+checkpoint. *)
  ckpt_crashes_passed : int;  (** Checkpoint crash points with unchanged replay digest. *)
  orphans_reclaimed : int;  (** Stranded [*.tmp] files swept across all resumes. *)
  frames_scrubbed : int;  (** Frames walked by {!Stob_store.Journal.verify} calls. *)
  torn_tails_seen : int;  (** Scrubs that found a torn/partial tail. *)
  short_write_runs : int;
  short_writes_injected : int;
  transient_runs : int;
  transient_retried : int;  (** Transient errors absorbed by retries. *)
  enospc_degraded : bool;  (** The ENOSPC sweep completed in degraded mode. *)
  enospc_dropped : int;  (** Records the degraded sweep did not journal. *)
  degraded_edge_fired : bool;  (** [store-durability-degraded] recorded exactly once. *)
  compaction : Stob_store.Store.compaction option;
  failures : string list;  (** Human-readable assertion failures; empty = pass. *)
}

val run : ?smoke:bool -> ?seed:int -> ?real_sweep:bool -> unit -> report
(** Run the battery.  [smoke] (default false) shrinks the synthetic sweep
    for the [runtest] gate; the full battery uses more cells, more
    short-write seeds, and — with [real_sweep] (default [not smoke]) —
    additionally crash-enumerates a journaled quick Fig 3 sweep, so at
    least one enumeration covers real experiment payloads. *)

val print_report : report -> unit
