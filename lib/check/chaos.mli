(** The chaos battery: seeded fault sweeps over monitored page loads.

    A chaos {e cell} runs a defended workload (CCA x fault class x
    workload shape) with the full robustness stack engaged: the
    {!Monitor} watching every invariant, a {!Stob_sim.Fault} plan armed
    against the stack's components, and — when [degrade] is set — each
    flow's hook wrapped in {!Stob_core.Controller.guard}'s fallback
    ladder.  A cell is a pure function of its parameters and [seed]:
    {!run_sweep} pre-splits one seed per scenario in scenario order (the
    [lib/par] rule), so reports are identical at every [--jobs] level and
    a failing seed replays exactly.

    What counts as failure is deliberately split in two:
    - {!survived}: the page load completed and nothing escaped — the gate
      every degradation-enabled cell must pass.  Tripped invariants do
      {e not} fail this gate; for a fault cell they are the monitor doing
      its job.
    - {!clean}: survived {e and} zero violations — the bar for no-fault
      cells.

    Injected faults raise {!Stob_sim.Fault.Injected}, which is distinct
    from [Invalid_argument] by construction: an API-precondition bug
    (e.g. {!Stob_tcp.Endpoint.write} with a non-positive count) crashes
    the cell and is reported as such, never absorbed as chaos. *)

type workload =
  | Oneshot  (** One connection, one request/response/close. *)
  | Sequential of int  (** [n] connections back-to-back (later flows look up
                           policy mid-run — the {!Stob_sim.Fault.Policy_failure}
                           surface). *)
  | Fanout of int  (** [n] connections opening 300 ms apart, sharing the
                       server CPU and fq qdisc. *)

val workload_name : workload -> string

type scenario = {
  cca : string;  (** ["reno"], ["cubic"] or ["bbr"]. *)
  fault : Stob_sim.Fault.kind option;  (** [None] = control cell. *)
  workload : workload;
  degrade : bool;  (** Wrap hooks in the {!Stob_core.Controller.guard} ladder. *)
}

val scenario_name : scenario -> string

type degradation_summary = {
  final_rung : string;  (** Worst rung any flow ended on. *)
  trips : int;
  decisions : int;
  fallbacks : int;
  injected : int;
  stalls : int;
  hook_exceptions : int;
  unsafe_proposals : int;
}

type report = {
  scenario : scenario;
  seed : int;
  completed : bool;
  crashed : string option;
  livelock : bool;
  total_violations : int;
  violation_counts : (string * int) list;
  degradation : degradation_summary option;
  policy_fallbacks : int;
  client_received : int;
  fault_events : int;
  finish_time : float;
  pending_events : int;
}

val run_cell :
  ?rate_bps:float ->
  ?delay:float ->
  ?horizon:float ->
  ?fault_horizon:float ->
  ?events_per_kind:int ->
  ?request:int ->
  ?response:int ->
  ?stall_bound:float ->
  ?plan:Stob_sim.Fault.event list ->
  seed:int ->
  scenario ->
  report
(** One cell.  Defaults: 20 Mb/s, 15 ms one-way delay, 60 s run horizon,
    faults drawn inside the first [fault_horizon] (1 s — the thick of the
    transfer) with 2 events per kind, 2 KB requests, 400 KB responses,
    0.5 s progress-stall bound.
    [plan] overrides the drawn fault plan (used by {!shrink}).  The cell
    never raises: escaped exceptions land in [crashed], and
    {!Stob_sim.Engine.Livelock} is translated into an [engine-livelock]
    violation. *)

val default_scenarios : unit -> scenario list
(** \{reno, cubic, bbr\} x \{no-fault + every fault kind\}, fanout-3,
    degradation on: 21 cells. *)

val smoke_scenarios : unit -> scenario list
(** cubic x \{no-fault + every fault kind\}, fanout-2, degradation on:
    7 cells — the [dune runtest] / [@chaos] smoke. *)

val run_sweep :
  ?pool:Stob_par.Pool.t ->
  ?rate_bps:float ->
  ?delay:float ->
  ?horizon:float ->
  ?fault_horizon:float ->
  ?events_per_kind:int ->
  ?request:int ->
  ?response:int ->
  ?stall_bound:float ->
  seed:int ->
  scenario list ->
  report list
(** Run every scenario (in parallel over [pool] when given) with per-cell
    seeds pre-split from [seed].  Report order follows the input order and
    the reports are bit-identical for every pool size. *)

val survived : report -> bool
(** Completed, no crash, no livelock. *)

val clean : report -> bool
(** {!survived} with zero violations (the no-fault bar). *)

val shrink :
  ?failed:(report -> bool) ->
  ?rate_bps:float ->
  ?delay:float ->
  ?horizon:float ->
  ?fault_horizon:float ->
  ?events_per_kind:int ->
  ?request:int ->
  ?response:int ->
  ?stall_bound:float ->
  seed:int ->
  scenario ->
  (int * Stob_sim.Fault.event list * report) option
(** Minimise a failing cell to the shortest prefix of its time-sorted
    fault plan that still fails [failed] (default: [not (survived r)]).
    Returns [None] when the full plan does not fail; otherwise the prefix
    length, the prefix itself, and the report of the minimal replay.
    Deterministic: the same seed always shrinks to the same prefix. *)

val pp_report : Format.formatter -> report -> unit
val print_sweep : report list -> unit
