module Store = Stob_store.Store
module Journal = Stob_store.Journal
module Io_fault = Stob_store.Io_fault
module Vfs = Stob_store.Vfs
module Sv = Stob_store.Supervisor
module Fig3 = Stob_experiments.Fig3

type report = {
  sweep_boundaries : int;
  sweep_crashes_passed : int;
  ckpt_boundaries : int;
  ckpt_crashes_passed : int;
  orphans_reclaimed : int;
  frames_scrubbed : int;
  torn_tails_seen : int;
  short_write_runs : int;
  short_writes_injected : int;
  transient_runs : int;
  transient_retried : int;
  enospc_degraded : bool;
  enospc_dropped : int;
  degraded_edge_fired : bool;
  compaction : Store.compaction option;
  failures : string list;
}

(* Fast retry budget: same attempts as production, no sleeping — the
   fault plane is deterministic, so backoff buys nothing but wall time. *)
let retry_fast = { Journal.attempts = 3; backoff_s = 0. }

type ctx = {
  root : string;
  mutable dirs : int;
  mutable frames : int;
  mutable torn : int;
  mutable orphans : int;
  mutable fails : string list; (* newest first *)
}

let fail ctx fmt = Printf.ksprintf (fun s -> ctx.fails <- s :: ctx.fails) fmt

let fresh_dir ctx =
  ctx.dirs <- ctx.dirs + 1;
  Filename.concat ctx.root (Printf.sprintf "d%04d" ctx.dirs)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let scrub ctx path =
  match Journal.verify path with
  | s ->
      ctx.frames <- ctx.frames + s.Journal.scrub_frames;
      if s.Journal.torn_bytes > 0 then ctx.torn <- ctx.torn + 1
  | exception Journal.Corrupt msg -> fail ctx "scrub refused a journal we wrote: %s" msg

(* --- the synthetic sweep ------------------------------------------------- *)

(* Deterministic cells with payload sizes spanning the interesting journal
   shapes: the empty record, single bytes, and multi-KB frames whose
   writes a crash can cut anywhere. *)
let sizes = [| 0; 1; 9; 137; 1024; 10240 |]

let payload_of ~seed i =
  let len = sizes.(i mod Array.length sizes) + (i * 7 mod 13) in
  String.init len (fun j -> Char.chr ((i * 131 + j * 17 + seed) land 0xff))

let cells ~seed n =
  List.init n (fun i ->
      { Sv.label = Printf.sprintf "cell=%02d" i;
        config = [ ("i", string_of_int i) ];
        seed;
        run = (fun ~attempt:_ -> payload_of ~seed i) })

let run_synthetic ~seed ~n ~vfs ~dir =
  let store = Store.open_ ~vfs ~retry:retry_fast dir in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      Store.set_manifest store ~experiment:"storechaos"
        ~fields:[ ("n", string_of_int n) ]
        ~total:n;
      let outcomes =
        Sv.run ~store ~experiment:"storechaos" ~encode:Fun.id ~decode:Fun.id (cells ~seed n)
      in
      let results = List.map (fun (o : _ Sv.outcome) -> (o.Sv.label, o.Sv.result)) outcomes in
      (Marshal.to_string results [], Store.report store))

(* --- the real sweep (quick Fig 3) ---------------------------------------- *)

let fig3_cfg =
  { Fig3.default_config with Fig3.alphas = [ 0; 16; 32 ]; warmup = 0.02; measure = 0.04 }

let run_fig3 ~vfs ~dir =
  let store = Store.open_ ~vfs ~retry:retry_fast dir in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      let pts = Fig3.run ~config:fig3_cfg ~store () in
      (Marshal.to_string pts [], Store.report store))

(* --- crash-point enumeration --------------------------------------------- *)

(* For every syscall boundary of an uninterrupted [run_sweep]: die there
   (possibly mid-frame), resume with a clean plane, and demand results
   and final journal bytes bit-identical to the uninterrupted run. *)
let enumerate ctx ~name ~seed ~run_sweep =
  let ref_dir = fresh_dir ctx in
  let res_ref, _ = run_sweep ~vfs:Vfs.unix ~dir:ref_dir in
  let bytes_ref = read_file (Store.journal_file ref_dir) in
  scrub ctx (Store.journal_file ref_dir);
  let counter = Io_fault.arm Io_fault.quiet in
  let res_quiet, _ = run_sweep ~vfs:(Io_fault.vfs counter) ~dir:(fresh_dir ctx) in
  if res_quiet <> res_ref then fail ctx "%s: counting plane perturbed the results" name;
  let n = Io_fault.ops counter in
  let passed = ref 0 in
  for k = 1 to n do
    let dir = fresh_dir ctx in
    let fault = Io_fault.arm { Io_fault.quiet with Io_fault.seed; crash_at = Some k } in
    (match run_sweep ~vfs:(Io_fault.vfs fault) ~dir with
    | _ -> fail ctx "%s: crash point %d/%d never fired" name k n
    | exception Io_fault.Crash _ | exception Fun.Finally_raised (Io_fault.Crash _) ->
        scrub ctx (Store.journal_file dir);
        let res, rep = run_sweep ~vfs:Vfs.unix ~dir in
        ctx.orphans <- ctx.orphans + rep.Store.r_orphans_swept;
        let bytes = read_file (Store.journal_file dir) in
        if res <> res_ref then
          fail ctx "%s: resume after crash at boundary %d/%d computed different results" name k n
        else if bytes <> bytes_ref then
          fail ctx "%s: resume after crash at boundary %d/%d left different journal bytes" name
            k n
        else incr passed)
  done;
  (n, !passed)

(* --- degraded mode (persistent ENOSPC) ----------------------------------- *)

let enospc_phase ctx ~seed ~n =
  let ref_res, _ = run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir:(fresh_dir ctx) in
  let ref_bytes = ref "" in
  (let d = fresh_dir ctx in
   ignore (run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir:d);
   ref_bytes := read_file (Store.journal_file d));
  let dir = fresh_dir ctx in
  (* Mid-run: past the store open (first ~5 boundaries) so the sweep is
     underway when the disk "fills". *)
  let k = 6 + (2 * n / 3) in
  let fault =
    Io_fault.arm { Io_fault.quiet with Io_fault.seed; fail_from = Some (Unix.ENOSPC, k) }
  in
  let engine = Stob_sim.Engine.create () in
  let monitor = Monitor.create engine in
  let degraded = ref false and dropped = ref 0 and edge = ref false in
  (match Store.open_ ~vfs:(Io_fault.vfs fault) ~retry:retry_fast dir with
  | exception e -> fail ctx "enospc: store open failed: %s" (Printexc.to_string e)
  | store ->
      Monitor.watch_store monitor ~name:"storechaos" store;
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          Store.set_manifest store ~experiment:"storechaos"
            ~fields:[ ("n", string_of_int n) ]
            ~total:n;
          match
            Sv.run ~store ~experiment:"storechaos" ~encode:Fun.id ~decode:Fun.id
              (cells ~seed n)
          with
          | exception e ->
              fail ctx "enospc: sweep aborted instead of degrading: %s" (Printexc.to_string e)
          | outcomes ->
              let results =
                List.map (fun (o : _ Sv.outcome) -> (o.Sv.label, o.Sv.result)) outcomes
              in
              if Marshal.to_string results [] <> ref_res then
                fail ctx "enospc: degraded sweep computed different results";
              (* Edge-triggered: two sweeps of the watches, one violation. *)
              Monitor.check_now monitor ~now:0.0;
              Monitor.check_now monitor ~now:1.0;
              edge :=
                Monitor.counts monitor = [ ("store-durability-degraded", 1) ];
              if not !edge then
                fail ctx "enospc: expected exactly one store-durability-degraded edge, got %s"
                  (String.concat ","
                     (List.map
                        (fun (k, c) -> Printf.sprintf "%s=%d" k c)
                        (Monitor.counts monitor)));
              let rep = Store.report store in
              degraded := rep.Store.degraded_reason <> None;
              dropped := rep.Store.dropped;
              if not !degraded then fail ctx "enospc: store never degraded";
              if rep.Store.dropped < 1 then fail ctx "enospc: no records counted as dropped";
              if rep.Store.journal_frames + rep.Store.dropped <> n + 1 then
                fail ctx "enospc: report does not account for all records (%d frames + %d dropped <> %d)"
                  rep.Store.journal_frames rep.Store.dropped (n + 1)));
  (* Journaling-off must still have left a valid prefix: a clean resume
     recomputes the dropped cells and reconverges byte-for-byte. *)
  let res, _ = run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir in
  if res <> ref_res then fail ctx "enospc: clean resume after degraded run differs";
  if read_file (Store.journal_file dir) <> !ref_bytes then
    fail ctx "enospc: clean resume did not reconverge to the reference journal bytes";
  (!degraded, !dropped, !edge)

(* --- compaction ----------------------------------------------------------- *)

(* Supersede every other cell so the journal holds stale frames, then
   checkpoint and hold the replay-digest-agreement invariant. *)
let supersede store =
  let n = ref 0 in
  List.iteri
    (fun i (key, label, status) ->
      if i mod 2 = 0 then
        match status with
        | Store.Done s ->
            incr n;
            Store.record store ~key ~label (Store.Done (s ^ "!"))
        | Store.Poisoned _ -> ())
    (Store.entries store);
  !n

let compaction_phase ctx ~seed ~n =
  let dir = fresh_dir ctx in
  ignore (run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir);
  let store = Store.open_ dir in
  let stale = supersede store in
  let digest_pre = Store.digest store in
  let rep = Store.report store in
  if rep.Store.stale_frames <> stale then
    fail ctx "compaction: expected %d stale frames, report says %d" stale rep.Store.stale_frames;
  (* Size gate: a small journal is left alone... *)
  if Store.maybe_checkpoint ~threshold_bytes:max_int store <> None then
    fail ctx "compaction: maybe_checkpoint ignored its size threshold";
  (* ...a big-enough one with stale frames is compacted... *)
  let c =
    match Store.maybe_checkpoint ~threshold_bytes:1 store with
    | Some c -> Some c
    | None ->
        fail ctx "compaction: maybe_checkpoint refused a stale journal";
        None
  in
  (match c with
  | Some c ->
      if c.Store.frames_after <> n + 1 then
        fail ctx "compaction: expected %d frames after, got %d" (n + 1) c.Store.frames_after;
      if c.Store.frames_after >= c.Store.frames_before then
        fail ctx "compaction: frame count did not shrink (%d -> %d)" c.Store.frames_before
          c.Store.frames_after;
      if c.Store.bytes_after >= c.Store.bytes_before then
        fail ctx "compaction: journal did not shrink (%d B -> %d B)" c.Store.bytes_before
          c.Store.bytes_after
  | None -> ());
  (* ...and once compacted there is nothing stale left to reclaim. *)
  if Store.maybe_checkpoint ~threshold_bytes:1 store <> None then
    fail ctx "compaction: second maybe_checkpoint found stale frames in a fresh rewrite";
  Store.close store;
  if Store.replay_digest dir <> digest_pre then
    fail ctx "compaction: post-compaction replay digest disagrees with pre-compaction state";
  let _, ents = Store.peek dir in
  if List.length ents <> n then
    fail ctx "compaction: compacted journal replays %d cells, expected %d" (List.length ents) n;
  (* Rename-failure class: a flaky rename under the bounded retry budget
     must not break an offline compaction. *)
  let flaky =
    Io_fault.arm { Io_fault.quiet with Io_fault.seed; rename_fails = 1 }
  in
  let dir2 = fresh_dir ctx in
  ignore (run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir:dir2);
  let store2 = Store.open_ ~vfs:(Io_fault.vfs flaky) ~retry:retry_fast dir2 in
  ignore (supersede store2);
  let digest2 = Store.digest store2 in
  (match Store.checkpoint store2 with
  | _ -> ()
  | exception e ->
      fail ctx "compaction: retry did not absorb a single rename failure: %s"
        (Printexc.to_string e));
  Store.close store2;
  if Store.replay_digest dir2 <> digest2 then
    fail ctx "compaction: flaky-rename compaction changed the replay digest";
  c

(* Crash at every boundary of open+checkpoint: tmp+rename atomicity means
   the replay digest must be unchanged whichever side of the rename the
   crash lands on, and stranded tmps must be swept by the next open. *)
let ckpt_crash_phase ctx ~seed ~n =
  let setup () =
    let dir = fresh_dir ctx in
    ignore (run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir);
    let store = Store.open_ dir in
    ignore (supersede store);
    Store.close store;
    (dir, Store.replay_digest dir)
  in
  let dir0, digest0 = setup () in
  let counter = Io_fault.arm Io_fault.quiet in
  let store = Store.open_ ~vfs:(Io_fault.vfs counter) ~retry:retry_fast dir0 in
  ignore (Store.checkpoint store);
  Store.close store;
  let m = Io_fault.ops counter in
  if Store.replay_digest dir0 <> digest0 then
    fail ctx "ckpt-crash: counting run changed the replay digest";
  let passed = ref 0 in
  for k = 1 to m do
    let dir, digest_pre = setup () in
    (match
       let store = Store.open_ ~vfs:(Io_fault.vfs (Io_fault.arm { Io_fault.quiet with Io_fault.seed; crash_at = Some k })) ~retry:retry_fast dir in
       Fun.protect
         ~finally:(fun () -> Store.close store)
         (fun () -> ignore (Store.checkpoint store))
     with
    | () -> fail ctx "ckpt-crash: crash point %d/%d never fired" k m
    | exception Io_fault.Crash _ | exception Fun.Finally_raised (Io_fault.Crash _) ->
        if Store.replay_digest dir <> digest_pre then
          fail ctx "ckpt-crash: crash at boundary %d/%d changed the replay digest" k m
        else begin
          scrub ctx (Store.journal_file dir);
          let store = Store.open_ dir in
          ctx.orphans <- ctx.orphans + Store.orphans_swept store;
          if Store.digest store <> digest_pre then
            fail ctx "ckpt-crash: reopen after crash at %d/%d replays differently" k m
          else incr passed;
          Store.close store
        end)
  done;
  (m, !passed)

(* --- battery -------------------------------------------------------------- *)

let run ?(smoke = false) ?(seed = 42) ?real_sweep () =
  let real_sweep = Option.value real_sweep ~default:(not smoke) in
  let n = if smoke then 6 else 18 in
  let short_runs = if smoke then 2 else 6 in
  let transient_runs = if smoke then 1 else 3 in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stob-storechaos.%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root)));
  Unix.mkdir root 0o755;
  let ctx = { root; dirs = 0; frames = 0; torn = 0; orphans = 0; fails = [] } in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () ->
      (* 1. crash enumeration over the synthetic sweep *)
      let sweep_boundaries, sweep_passed =
        enumerate ctx ~name:"synthetic" ~seed ~run_sweep:(fun ~vfs ~dir ->
            run_synthetic ~seed ~n ~vfs ~dir)
      in
      (* 1b. and over a real (quick Fig 3) sweep for the full battery *)
      let fig3_boundaries, fig3_passed =
        if real_sweep then enumerate ctx ~name:"fig3" ~seed ~run_sweep:run_fig3 else (0, 0)
      in
      (* 2. short writes: seeded splits must leave journal bytes identical *)
      let ref_dir = fresh_dir ctx in
      let ref_res, _ = run_synthetic ~seed ~n ~vfs:Vfs.unix ~dir:ref_dir in
      let ref_bytes = read_file (Store.journal_file ref_dir) in
      let shorts = ref 0 in
      for s = 1 to short_runs do
        let fault =
          Io_fault.arm { Io_fault.quiet with Io_fault.seed = seed + s; short_writes = true }
        in
        let dir = fresh_dir ctx in
        let res, _ = run_synthetic ~seed ~n ~vfs:(Io_fault.vfs fault) ~dir in
        shorts := !shorts + Io_fault.injected fault;
        if res <> ref_res then fail ctx "short-writes: run %d computed different results" s;
        if read_file (Store.journal_file dir) <> ref_bytes then
          fail ctx "short-writes: run %d left different journal bytes" s
      done;
      if !shorts = 0 then fail ctx "short-writes: plane never split a write";
      (* 3. transient EIO bursts healed by the retry envelope *)
      let retried = ref 0 in
      for s = 1 to transient_runs do
        let fault =
          Io_fault.arm
            { Io_fault.quiet with Io_fault.seed = seed + s;
              transient = Some (Unix.EIO, 5, 2) }
        in
        let dir = fresh_dir ctx in
        match run_synthetic ~seed ~n ~vfs:(Io_fault.vfs fault) ~dir with
        | exception e ->
            fail ctx "transient: run %d did not heal: %s" s (Printexc.to_string e)
        | res, rep ->
            retried := !retried + rep.Store.retried;
            if res <> ref_res then fail ctx "transient: run %d computed different results" s;
            if read_file (Store.journal_file dir) <> ref_bytes then
              fail ctx "transient: run %d left different journal bytes" s
      done;
      if !retried = 0 then fail ctx "transient: retry envelope never engaged";
      (* 4. persistent ENOSPC: degrade, report, monitor edge, reconverge *)
      let enospc_degraded, enospc_dropped, degraded_edge_fired = enospc_phase ctx ~seed ~n in
      (* 5. compaction + replay-digest agreement + rename-failure class *)
      let compaction = compaction_phase ctx ~seed ~n in
      (* 6. crash enumeration inside the checkpoint *)
      let ckpt_boundaries, ckpt_passed = ckpt_crash_phase ctx ~seed ~n in
      if ctx.orphans = 0 then
        fail ctx "ckpt-crash: no crash point ever stranded an orphan tmp for the sweep to reclaim";
      { sweep_boundaries = sweep_boundaries + fig3_boundaries;
        sweep_crashes_passed = sweep_passed + fig3_passed;
        ckpt_boundaries;
        ckpt_crashes_passed = ckpt_passed;
        orphans_reclaimed = ctx.orphans;
        frames_scrubbed = ctx.frames;
        torn_tails_seen = ctx.torn;
        short_write_runs = short_runs;
        short_writes_injected = !shorts;
        transient_runs;
        transient_retried = !retried;
        enospc_degraded;
        enospc_dropped;
        degraded_edge_fired;
        compaction;
        failures = List.rev ctx.fails })

let print_report r =
  Printf.printf "  crash points     : %d/%d sweep, %d/%d checkpoint\n" r.sweep_crashes_passed
    r.sweep_boundaries r.ckpt_crashes_passed r.ckpt_boundaries;
  Printf.printf "  scrub            : %d frames walked, %d torn tails truncated-on-resume\n"
    r.frames_scrubbed r.torn_tails_seen;
  Printf.printf "  orphan tmp swept : %d\n" r.orphans_reclaimed;
  Printf.printf "  short writes     : %d splits over %d runs, journals byte-identical\n"
    r.short_writes_injected r.short_write_runs;
  Printf.printf "  transient EIO    : %d retries absorbed over %d runs\n" r.transient_retried
    r.transient_runs;
  Printf.printf "  persistent ENOSPC: degraded=%b dropped=%d monitor-edge=%b\n"
    r.enospc_degraded r.enospc_dropped r.degraded_edge_fired;
  (match r.compaction with
  | Some c ->
      Printf.printf "  compaction       : %d -> %d frames, %d -> %d bytes, replay digest agrees\n"
        c.Store.frames_before c.Store.frames_after c.Store.bytes_before c.Store.bytes_after
  | None -> Printf.printf "  compaction       : FAILED\n");
  List.iter (fun f -> Printf.printf "  FAIL: %s\n" f) r.failures
