(** Always-on runtime invariant monitor.

    The monitor hangs observe-only checks off the simulation's natural
    boundaries — the engine's per-event probe ({!Stob_sim.Engine.set_probe})
    and the endpoint's per-segment hook ({!Stob_tcp.Hooks}) — and turns
    failures into structured {!Violation.t} values.  In [Raise] mode the
    first violation aborts the run at its detection point (what the test
    battery wants); in [Collect] mode violations accumulate for a post-run
    report (what the chaos sweep wants).

    The monitor never changes behaviour: checks read state, wrap hooks
    transparently, and draw no randomness, so a monitored run is
    byte-identical to an unmonitored one.

    {b Invariant catalogue} (names as they appear in reports):
    - [engine-clock-monotone] — the virtual clock never moves backwards.
    - [qdisc-backlog-bound] — qdisc backlog within its admission limit
      (trips when {!Stob_sim.Fault.Qdisc_collapse} strands a backlog).
    - [cpu-backlog-bound] — the CPU core is never booked more than a bound
      ahead of the clock (trips under {!Stob_sim.Fault.Cpu_overload}).
    - [progress-stall] — while work is pending, observable activity changes
      at least once per stall bound (trips under
      {!Stob_sim.Fault.Pacer_jump}).
    - [tcp-seq-order] — [snd_una <= snd_nxt].
    - [tcp-cwnd-bounds] — cwnd within [[1, max snd_buf rcv_wnd]].
    - [tcp-sack-sanity] — SACK scoreboard sorted, disjoint, non-empty, and
      inside [(snd_una, snd_nxt]].
    - [tcp-recovery-window] — recovery bookkeeping within the outstanding
      window.
    - [tcp-tsq-accounting], [tcp-app-queue] — byte accounting never
      negative.
    - [tcp-adv-window] — the receive window granted to the peer plus
      delivered-but-unread bytes never exceeds the receive buffer (the
      advertisement never promises space the receiver does not have), and
      is never negative.
    - [tcp-peer-window] — the wscale-decoded peer window is never negative.
    - [tcp-window-respect] — at hook (commitment) time the stack never
      proposes a segment pushing [snd_nxt] past
      [snd_una + min cwnd peer_rwnd].  Persist probes and retransmissions
      bypass the hook, so recovery traffic cannot false-positive here.
    - [tcp-pacing-monotone] — the booked fq horizon never moves backwards.
    - [tcp-stack-departure] — the stack never proposes a departure in the
      past.
    - [defense-safety] — {!Stob_core.Safety.is_safe} holds for every hook
      answer (Section 4.2 promoted to a monitored invariant).
    - [rtx-oracle-agreement] — endpoint retransmission counters agree with
      the capture's {!Stob_net.Packet.t}[.rtx] oracle marks (loss-free,
      drained runs only).
    - [quic-pn-monotonic] — a QUIC endpoint's packet-number sequence never
      moves backwards across hook decisions.
    - [quic-ack-sanity] — the peer never acknowledges a packet number the
      endpoint has not sent ([largest_acked < pn_next]).
    - [quic-amplification] — the server's pre-handshake anti-amplification
      credit never goes negative (RFC 9000 §8.1: it never sends more than
      [amp_factor] times what it received).
    - [quic-inflight-accounting] — the endpoint's incremental inflight
      ledger equals the sum over its unacked sent packets, and is never
      negative.
    - [quic-quiesce] — a closed QUIC endpoint holds no armed idle timer
      (the close-time quiesce actually ran).
    - [quic-cwnd-bounds] — cwnd at least one byte.
    - [store-durability-degraded] — a result store dropped to
      journaling-off "completion over durability" mode after a journal
      write failed past its bounded retry budget (persistent
      ENOSPC/EIO).  The sweep still completes; its artifacts are not
      durable and are excluded from parity claims.
    - [store-replay-agreement] — see {!check_store_canary}; also stated
      across compactions by [Stob_store.Store.checkpoint].
    - [engine-livelock] is reported by the chaos harness when
      {!Stob_sim.Engine.Livelock} fires; the engine cannot depend on this
      library, so it raises its own exception and the harness translates. *)

type mode =
  | Raise  (** Raise {!Violation.Violated} at the detection point. *)
  | Collect  (** Accumulate; read {!violations} after the run. *)

type t

val create : ?mode:mode -> ?max_stored:int -> Stob_sim.Engine.t -> t
(** Fresh monitor bound to an engine's clock.  [mode] defaults to
    [Collect]; at most [max_stored] violations are kept (default 200) while
    {!total} keeps counting past the cap.  Raises [Invalid_argument] when
    [max_stored < 1]. *)

val mode : t -> mode

val record : t -> Violation.t -> unit
(** Count (and in [Raise] mode, raise) a violation detected externally —
    the chaos harness feeds {!Stob_sim.Engine.Livelock} through this. *)

val violations : t -> Violation.t list
(** Stored violations, oldest first. *)

val total : t -> int
(** All violations counted, including any beyond the storage cap. *)

val counts : t -> (string * int) list
(** Per-invariant totals, sorted by invariant name (stable across runs —
    the chaos determinism tests compare these). *)

(** {1 Registration} *)

val register : t -> name:string -> ?flow:int -> (now:float -> string option) -> unit
(** Install a custom invariant: the callback returns [Some detail] while
    the invariant fails.  Checks are {e edge-triggered}: a violation is
    recorded when the check transitions from passing to failing, so a
    persistently broken component yields one violation per episode, not one
    per event. *)

val attach_engine : t -> unit
(** Install the engine probe: after every executed event, verify clock
    monotonicity and run all registered checks.  One monitor per engine;
    raises [Invalid_argument] on a second attach. *)

val detach_engine : t -> unit

val check_now : t -> now:float -> unit
(** Run all registered checks immediately (e.g. after {!Stob_sim.Engine.run}
    returns, to catch state the final event left broken). *)

val watch_qdisc : t -> name:string -> 'a Stob_tcp.Qdisc.t -> unit
(** Register [qdisc-backlog-bound] over the given qdisc. *)

val watch_cpu : t -> ?backlog_bound:float -> name:string -> Stob_sim.Cpu.t -> unit
(** Register [cpu-backlog-bound]: the core may never be booked more than
    [backlog_bound] seconds (default 0.5) beyond the current virtual time. *)

val watch_progress :
  t -> ?stall:float -> name:string -> pending:(unit -> bool) -> activity:(unit -> int) -> unit -> unit
(** Register [progress-stall]: while [pending ()] holds, [activity ()] must
    change at least once per [stall] seconds (default 1.0) of virtual time.
    This is how pacer-clock faults surface: at the hook boundary the
    stack's departure always equals [now] (the endpoint waits out its own
    pacing before consulting the hook), so a parked pacing clock manifests
    as silence, not as a visible bad departure. *)

val watch_store : t -> name:string -> Stob_store.Store.t -> unit
(** Register [store-durability-degraded] over the given result store:
    edge-triggers once when {!Stob_store.Store.degraded} becomes [Some]
    (journaling off after the retry budget, see the store's module doc).
    Pair with {!check_now} at shard boundaries for sweeps that run
    without an engine probe. *)

(** {1 Endpoint observation} *)

val observe_endpoint : t -> name:string -> Stob_tcp.Endpoint.t -> unit
(** Wrap the endpoint's {e currently installed} hook chain with observe-only
    checks (state invariants, pacing monotonicity, the [defense-safety]
    predicate on the chain's answer).  Install the full chain (controller,
    fault wrapper, degradation guard) {e first}, then observe.  Exceptions
    from the chain pass through untouched. *)

val observe_quic : t -> name:string -> Stob_quic.Endpoint.t -> unit
(** QUIC analogue of {!observe_endpoint}: wrap the endpoint's installed
    hook chain with the [quic-*] state invariants, packet-number
    monotonicity across decisions, and [defense-safety] on the chain's
    answer.  Install the full chain first, then observe. *)

val check_quic_inspection :
  Stob_quic.Endpoint.inspection -> (string * string) option
(** The pure state checks behind {!observe_quic}, exposed for reap-time
    sweeps: the first failing [(invariant, detail)] pair, or [None]. *)

(** {1 End-of-run checks} *)

val check_rtx_oracle :
  t ->
  capture:Stob_net.Capture.t ->
  endpoints:Stob_tcp.Endpoint.t list ->
  drops:int ->
  drained:bool ->
  unit
(** Record [rtx-oracle-agreement] if the endpoints' retransmission counters
    disagree with the capture's oracle-marked packet count.  Only checked
    when [drops = 0] and [drained] — the capture taps the link at
    transmit start, after bottleneck-queue drops, so the counts are only
    comparable on loss-free, fully drained runs. *)

val check_quic_rtx_oracle :
  t ->
  capture:Stob_net.Capture.t ->
  endpoints:Stob_quic.Endpoint.t list ->
  drops:int ->
  drained:bool ->
  unit
(** QUIC variant of {!check_rtx_oracle}: compares the endpoints'
    {!Stob_quic.Endpoint.rtx_datagrams} against the capture's marked-packet
    count.  The capture taps before netem impairment, so netem loss does
    not disqualify the check — only bottleneck-queue [drops] do. *)

val check_store_canary :
  t ->
  sample:int ->
  seed:int ->
  entries:(string * string) list ->
  recompute:(string -> string option) ->
  unit
(** Cache-poisoning canary over a sweep's result store: draw [sample]
    entries (deterministically from [seed]) out of [entries] — the
    journal's [(label, payload)] records — recompute each via [recompute]
    and record a [store-replay-agreement] violation for every payload that
    is not byte-identical (or that [recompute] no longer recognizes).
    Sampling keeps the canary affordable on large sweeps; [sample >= length
    entries] checks everything. *)
