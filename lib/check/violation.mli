(** Structured runtime-invariant violations.

    A violation is a value, not a log line: it carries the virtual time it
    was detected at, the flow it concerns (when one does), the name of the
    invariant that failed and a rendered snapshot of the offending state.
    The monitor ({!Monitor}) either raises {!Violated} at the detection
    point (tests) or collects violations for a post-run report (the chaos
    sweep). *)

type t = {
  invariant : string;  (** Short stable name, e.g. ["tcp-seq-order"]. *)
  time : float;  (** Virtual time of detection. *)
  flow : int option;  (** Flow the violation concerns, when per-flow. *)
  detail : string;  (** Rendered snapshot of the offending state. *)
}

exception Violated of t
(** Raised by a monitor in [Raise] mode. *)

val make : invariant:string -> time:float -> ?flow:int -> string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
