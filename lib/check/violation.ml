type t = { invariant : string; time : float; flow : int option; detail : string }

exception Violated of t

let make ~invariant ~time ?flow detail = { invariant; time; flow; detail }

let pp ppf v =
  Format.fprintf ppf "[%.6fs]%s %s: %s" v.time
    (match v.flow with None -> "" | Some f -> Printf.sprintf " flow %d" f)
    v.invariant v.detail

let to_string v = Format.asprintf "%a" pp v

let () =
  Printexc.register_printer (function
    | Violated v -> Some ("Stob_check.Violation.Violated " ^ to_string v)
    | _ -> None)
