module Engine = Stob_sim.Engine
module Rng = Stob_util.Rng
module Packet = Stob_net.Packet
module Endpoint = Stob_tcp.Endpoint
module Quic = Stob_quic.Endpoint
module Config = Stob_tcp.Config
module Netem_eval = Stob_tcp.Netem_eval
module Population = Stob_experiments.Population
module Pool = Stob_par.Pool
module Store = Stob_store.Store

(* ------------------------------------------------------------------ *)
(* Flow specification and per-flow driver.                              *)

type transport = Tcp | Quic

type flow_spec = {
  seed : int;
  transport : transport;
  cca : string;
  request : int;
  response : int;
  delay : float;
  loss : float;
  client : Config.t;
  server : Config.t;
  slow_reader : bool;
  read_chunk : int;
  read_interval : float;
  read_stall : float;
  pacer_jump : (float * float) option;
  flight : int;  (* QUIC: server handshake-flight bytes *)
  blackhole : (float * float) option;
      (* QUIC fault: [(after, duration)] — every datagram in both
         directions vanishes inside the window *)
  horizon : float;
}

type flow_result = {
  completed : bool;
  client_received : int;
  server_received : int;
  client_closed : bool;
  server_closed : bool;
  retransmissions : int;
  persist_probes : int;
  zero_windows : int;
  sack_negotiated : bool;
  wscale_negotiated : bool;
  snd_mss : int;
  pto_events : int;
  time_loss_detections : int;
  persistent_congestions : int;
  idle_closed : int;  (* endpoints that closed via the idle timeout (0-2) *)
}

(* The whole flow mix is drawn from one per-flow generator, in a fixed
   order, so a flow is a pure function of its seed (the jobs-parity and
   resume contracts both lean on this). *)
let spec_of_rng ?(horizon = 120.0) ?(transport = `Tcp) ~fault rng =
  (* The transport draw happens first and ONLY in [`Mixed] mode, and the
     QUIC-specific draws happen last and only for QUIC flows, so a [`Tcp]
     soak's per-flow draw streams are byte-identical to the pre-QUIC
     battery. *)
  let flow_transport =
    match transport with
    | `Tcp -> Tcp
    | `Quic -> Quic
    | `Mixed -> if Rng.bool rng then Quic else Tcp
  in
  let slow = Rng.int rng 8 = 0 in
  let sack_off = Rng.int rng 4 = 0 in
  let wscale_off = Rng.int rng 4 = 0 in
  let small_mss = Rng.int rng 6 = 0 in
  let lossy = Rng.int rng 4 = 0 in
  let delack = Rng.bool rng in
  let cca = Rng.choice rng [| "reno"; "cubic"; "bbr" |] in
  let request = 120 + Rng.int rng 1800 in
  let response = 2_000 + Rng.int rng 30_000 in
  let delay = 0.004 +. Rng.float rng 0.04 in
  let loss = if lossy then 0.002 +. Rng.float rng 0.018 else 0.0 in
  let read_chunk = 512 + Rng.int rng 4096 in
  let read_interval = 0.01 +. Rng.float rng 0.05 in
  (* Half the slow readers stall before their first read: the window stays
     closed across several persist backoffs, so zero-window probes actually
     fire (a reader that drains every few ms reopens the window before the
     first probe is due). *)
  let read_stall = if slow && Rng.bool rng then 0.5 +. Rng.float rng 2.5 else 0.0 in
  let rcv_wnd =
    if slow then (4 * 1024) + Rng.int rng (12 * 1024) else Config.default.Config.rcv_wnd
  in
  let pacer_jump =
    if fault && Rng.int rng 16 = 0 then Some (Rng.float rng 2.0, 0.05 +. Rng.float rng 0.2)
    else None
  in
  let seed = Rng.int rng 1_000_000_000 in
  let flight, blackhole =
    match flow_transport with
    | Tcp -> (0, None)
    | Quic ->
        (* Flight sized so a default client Initial's 3x amplification
           credit covers some flights and not others — both sides of the
           server's credit gate get population-scale exercise. *)
        let flight = 2_000 + Rng.int rng 3_000 in
        let blackhole =
          if fault && Rng.int rng 16 = 0 then Some (Rng.float rng 1.5, 0.05 +. Rng.float rng 0.4)
          else None
        in
        (flight, blackhole)
  in
  let client =
    {
      Config.default with
      Config.rcv_wnd;
      sack = not sack_off;
      wscale = not wscale_off;
      mss = (if small_mss then 536 else Config.default.Config.mss);
      delayed_ack = (if delack then 0.04 else 0.0);
    }
  in
  {
    seed;
    transport = flow_transport;
    cca;
    request;
    response;
    delay;
    loss;
    client;
    server = Config.default;
    slow_reader = slow;
    read_chunk;
    read_interval;
    read_stall;
    pacer_jump;
    flight;
    blackhole;
    horizon;
  }

(* One request/response/close flow over a direct endpoint-to-endpoint
   link: fixed one-way delay, i.i.d. loss in both directions, no shared
   bottleneck.  The flow starts at [start] and is reaped exactly
   [spec.horizon] later: its result is harvested and every reference the
   harness holds is dropped, so shard memory stays O(active flows), never
   O(flows).  Late packets and timers of a reaped flow hit dead refs and
   are no-ops. *)
let add_flow ~engine ~monitor ~id ~start ~on_done spec =
  ignore
    (Engine.schedule_at engine ~time:start (fun () ->
         let rng = Rng.create spec.seed in
         let client_ref = ref None and server_ref = ref None in
         let live = ref true in
         let tx src dst pkts =
           Array.iter
             (fun p ->
               let lost = spec.loss > 0.0 && Rng.bernoulli rng spec.loss in
               (match !src with Some e -> Endpoint.notify_serialized e p | None -> ());
               if not lost then
                 ignore
                   (Engine.schedule engine ~delay:spec.delay (fun () ->
                        match !dst with Some e -> Endpoint.receive e p | None -> ())))
             pkts
         in
         let factory = Netem_eval.cc_of_name spec.cca in
         let client =
           Endpoint.create ~engine ~config:spec.client ~cc:(factory spec.client) ~flow:id
             ~dir:Packet.Outgoing ~tx:(tx client_ref server_ref) ()
         in
         let server =
           Endpoint.create ~engine ~config:spec.server ~cc:(factory spec.server) ~flow:id
             ~dir:Packet.Incoming ~tx:(tx server_ref client_ref) ()
         in
         client_ref := Some client;
         server_ref := Some server;
         Monitor.observe_endpoint monitor ~name:(Printf.sprintf "flow-%d/client" id) client;
         Monitor.observe_endpoint monitor ~name:(Printf.sprintf "flow-%d/server" id) server;
         let client_received = ref 0 and server_received = ref 0 and responded = ref false in
         Endpoint.set_on_receive server (fun n ->
             server_received := !server_received + n;
             if (not !responded) && !server_received >= spec.request then begin
               responded := true;
               Endpoint.write server spec.response;
               Endpoint.close server
             end);
         Endpoint.set_on_receive client (fun n -> client_received := !client_received + n);
         Endpoint.set_on_fin client (fun () -> Endpoint.close client);
         if spec.slow_reader then begin
           Endpoint.set_auto_read client false;
           let rec pump () =
             if !live then begin
               ignore (Endpoint.read client spec.read_chunk);
               ignore (Engine.schedule engine ~delay:spec.read_interval pump)
             end
           in
           let first = if spec.read_stall > 0.0 then spec.read_stall else spec.read_interval in
           ignore (Engine.schedule engine ~delay:first pump)
         end;
         (match spec.pacer_jump with
         | Some (after, jump) ->
             ignore
               (Engine.schedule engine ~delay:after (fun () ->
                    match !server_ref with
                    | Some e when !live -> Endpoint.inject_pacer_jump e jump
                    | _ -> ()))
         | None -> ());
         Endpoint.set_on_established client (fun () -> Endpoint.write client spec.request);
         Endpoint.connect client;
         ignore
           (Engine.schedule engine ~delay:spec.horizon (fun () ->
                live := false;
                let ci = Endpoint.inspect client and si = Endpoint.inspect server in
                let r =
                  {
                    completed =
                      !client_received = spec.response
                      && !server_received = spec.request
                      && Endpoint.closed client && Endpoint.closed server;
                    client_received = !client_received;
                    server_received = !server_received;
                    client_closed = Endpoint.closed client;
                    server_closed = Endpoint.closed server;
                    retransmissions =
                      Endpoint.retransmissions client + Endpoint.retransmissions server;
                    persist_probes =
                      Endpoint.persist_probes client + Endpoint.persist_probes server;
                    zero_windows = Endpoint.zero_windows client + Endpoint.zero_windows server;
                    sack_negotiated = si.Endpoint.sack_ok;
                    wscale_negotiated =
                      ci.Endpoint.rcv_wscale > 0 || si.Endpoint.rcv_wscale > 0;
                    snd_mss = si.Endpoint.snd_mss;
                    pto_events = 0;
                    time_loss_detections = 0;
                    persistent_congestions = 0;
                    idle_closed = 0;
                  }
                in
                client_ref := None;
                server_ref := None;
                on_done r))))

(* One QUIC request/response flow over the same kind of direct link: fixed
   one-way delay, i.i.d. loss, and optionally a datagram-blackhole window
   (both directions vanish).  The client sends its request on stream 4 at
   handshake confirmation; the server answers on its own stream 4 at the
   request FIN and is then left to the {e idle timeout} — every clean QUIC
   flow exercises the idle-close + quiesce path at population scale.  The
   client closes shortly after the response FIN (a grace delay lets its
   final delayed ACK out before close quiesces the ACK timer). *)
let add_quic_flow ~engine ~monitor ~id ~start ~on_done spec =
  ignore
    (Engine.schedule_at engine ~time:start (fun () ->
         let rng = Rng.create spec.seed in
         let client_ref = ref None and server_ref = ref None in
         let wire = Hashtbl.create 64 in
         let bh =
           Option.map (fun (after, dur) -> (start +. after, start +. after +. dur)) spec.blackhole
         in
         let tx dst pkts =
           Array.iter
             (fun p ->
               let nw = Engine.now engine in
               let blackholed =
                 match bh with Some (a, b) -> nw >= a && nw < b | None -> false
               in
               let lost = spec.loss > 0.0 && Rng.bernoulli rng spec.loss in
               if not (blackholed || lost) then
                 ignore
                   (Engine.schedule engine ~delay:spec.delay (fun () ->
                        match !dst with Some e -> Quic.receive e p | None -> ())))
             pkts
         in
         let factory = Netem_eval.cc_of_name spec.cca in
         let qconfig = Quic.default_config in
         let client =
           Quic.create ~engine ~config:qconfig ~cc:(factory qconfig) ~flow:id
             ~dir:Packet.Outgoing ~wire ~tx:(tx server_ref) ()
         in
         let server =
           Quic.create ~engine ~config:qconfig ~cc:(factory qconfig) ~flow:id
             ~dir:Packet.Incoming ~wire ~tx:(tx client_ref) ()
         in
         client_ref := Some client;
         server_ref := Some server;
         Monitor.observe_quic monitor ~name:(Printf.sprintf "flow-%d/client" id) client;
         Monitor.observe_quic monitor ~name:(Printf.sprintf "flow-%d/server" id) server;
         let client_received = ref 0 and server_received = ref 0 and responded = ref false in
         Quic.set_on_stream server (fun ~stream:_ n -> server_received := !server_received + n);
         Quic.set_on_stream_fin server (fun ~stream:_ ->
             if not !responded then begin
               responded := true;
               Quic.send_stream server ~stream:4 ~fin:true spec.response
             end);
         Quic.set_on_stream client (fun ~stream:_ n -> client_received := !client_received + n);
         Quic.set_on_stream_fin client (fun ~stream:_ ->
             ignore
               (Engine.schedule engine ~delay:0.06 (fun () ->
                    match !client_ref with Some c -> Quic.close c | None -> ())));
         Quic.set_on_established client (fun () ->
             Quic.send_stream client ~stream:4 ~fin:true spec.request);
         Quic.listen server ~flight_bytes:spec.flight;
         Quic.connect client ~flight_bytes:spec.flight ();
         ignore
           (Engine.schedule engine ~delay:spec.horizon (fun () ->
                (* Reap-time state sweep: the hook observer only fires on
                   sends, so a flow that wedged silently is still checked
                   here. *)
                List.iter
                  (fun (name, ep) ->
                    match Monitor.check_quic_inspection (Quic.inspect ep) with
                    | Some (invariant, detail) ->
                        Monitor.record monitor
                          (Violation.make ~invariant ~time:(Engine.now engine) ~flow:id
                             (Printf.sprintf "flow-%d/%s: %s" id name detail))
                    | None -> ())
                  [ ("client", client); ("server", server) ];
                let idle_closed ep =
                  if Quic.close_reason ep = Some "idle-timeout" then 1 else 0
                in
                let r =
                  {
                    completed =
                      !client_received = spec.response
                      && !server_received = spec.request
                      && Quic.closed client && Quic.closed server;
                    client_received = !client_received;
                    server_received = !server_received;
                    client_closed = Quic.closed client;
                    server_closed = Quic.closed server;
                    retransmissions = Quic.rtx_datagrams client + Quic.rtx_datagrams server;
                    persist_probes = 0;
                    zero_windows = 0;
                    sack_negotiated = false;
                    wscale_negotiated = false;
                    snd_mss = qconfig.Config.mss;
                    pto_events = Quic.pto_events client + Quic.pto_events server;
                    time_loss_detections =
                      Quic.time_loss_detections client + Quic.time_loss_detections server;
                    persistent_congestions =
                      Quic.persistent_congestions client + Quic.persistent_congestions server;
                    idle_closed = idle_closed client + idle_closed server;
                  }
                in
                client_ref := None;
                server_ref := None;
                on_done r))))

let run_flow spec =
  let engine = Engine.create () in
  let monitor = Monitor.create ~mode:Monitor.Collect engine in
  Monitor.attach_engine monitor;
  let out = ref None in
  let add = match spec.transport with Tcp -> add_flow | Quic -> add_quic_flow in
  add ~engine ~monitor ~id:1 ~start:0.0 ~on_done:(fun r -> out := Some r) spec;
  Engine.run ~until:(spec.horizon +. 1.0) engine;
  match !out with
  | Some r -> (r, Monitor.counts monitor)
  | None -> failwith "Soak.run_flow: flow was never reaped"

(* ------------------------------------------------------------------ *)
(* Shards: one engine, one monitor, every visit of the shard's users.   *)

type config = {
  population : Population.config;
      (* [plan_shard] supplies arrival times and per-flow seeds; expected
         flow count is users * mean_sessions * mean_session_visits. *)
  flow_horizon : float;  (* per-flow lifetime before the reaper fires, seconds *)
  fault_period : int;
      (* every [n]th shard arms faults (TCP pacer jumps, QUIC datagram
         blackholes); 0 = never *)
  transport : [ `Tcp | `Quic | `Mixed ];  (* flow population mix *)
}

let default_config =
  {
    population =
      {
        Population.default_config with
        Population.users = 110_000;
        shards = 64;
        mean_sessions = 2.5;
        mean_session_visits = 4.0;
        seed = 271;
      };
    flow_horizon = 120.0;
    fault_period = 4;
    transport = `Tcp;
  }

let smoke_config =
  {
    population =
      {
        Population.default_config with
        Population.users = 220;
        shards = 4;
        mean_sessions = 2.5;
        mean_session_visits = 4.0;
        day_seconds = 3_600.0;
        seed = 271;
      };
    flow_horizon = 120.0;
    fault_period = 4;
    transport = `Tcp;
  }

type shard_report = {
  shard : int;
  flows : int;
  quic_flows : int;
  completed : int;
  client_bytes : int;
  retransmissions : int;
  persist_probes : int;
  zero_window_flows : int;
  slow_reader_flows : int;
  sack_off_flows : int;
  wscale_off_flows : int;
  pto_events : int;
  time_loss_detections : int;
  persistent_congestions : int;
  idle_closed : int;
  faulted : bool;
  faults : int;  (* pacer jumps + datagram blackholes actually armed *)
  violations : (string * int) list;
  total_violations : int;
  sim_seconds : float;
}

let fault_shard config shard =
  config.fault_period > 0 && shard mod config.fault_period = config.fault_period - 1

(* Pure in (config, shard): all randomness comes from the plan's per-visit
   seeds, so shards can run on any pool, in any order, with identical
   reports. *)
let run_shard config shard =
  let engine = Engine.create () in
  let monitor = Monitor.create ~mode:Monitor.Collect engine in
  Monitor.attach_engine monitor;
  let visits = Population.plan_shard config.population ~shard in
  let faulted = fault_shard config shard in
  let completed = ref 0
  and bytes = ref 0
  and rtx = ref 0
  and probes = ref 0
  and zero_wnd = ref 0
  and slow = ref 0
  and sack_off = ref 0
  and wscale_off = ref 0
  and quic = ref 0
  and ptos = ref 0
  and time_loss = ref 0
  and persistent = ref 0
  and idle = ref 0
  and faults = ref 0 in
  Array.iteri
    (fun i v ->
      let rng = Rng.create v.Population.trace_seed in
      let spec =
        spec_of_rng ~horizon:config.flow_horizon ~transport:config.transport ~fault:faulted rng
      in
      let add =
        match spec.transport with
        | Tcp ->
            if spec.pacer_jump <> None then incr faults;
            add_flow
        | Quic ->
            incr quic;
            if spec.blackhole <> None then incr faults;
            add_quic_flow
      in
      if spec.slow_reader then incr slow;
      if not spec.client.Config.sack then incr sack_off;
      if not spec.client.Config.wscale then incr wscale_off;
      add ~engine ~monitor ~id:i ~start:v.Population.start spec ~on_done:(fun r ->
          if r.completed then incr completed;
          bytes := !bytes + r.client_received;
          rtx := !rtx + r.retransmissions;
          probes := !probes + r.persist_probes;
          ptos := !ptos + r.pto_events;
          time_loss := !time_loss + r.time_loss_detections;
          persistent := !persistent + r.persistent_congestions;
          idle := !idle + r.idle_closed;
          if r.zero_windows > 0 then incr zero_wnd))
    visits;
  (* Horizon past the LAST arrival (session dwell pushes visits past the
     day boundary, so day_seconds alone would strand late reaps) plus one
     persist-probe cap of slack for straggler timers. *)
  let last_start =
    Array.fold_left (fun acc v -> Float.max acc v.Population.start) 0.0 visits
  in
  Engine.run ~until:(last_start +. config.flow_horizon +. 61.0) engine;
  Monitor.check_now monitor ~now:(Engine.now engine);
  {
    shard;
    flows = Array.length visits;
    quic_flows = !quic;
    completed = !completed;
    client_bytes = !bytes;
    retransmissions = !rtx;
    persist_probes = !probes;
    zero_window_flows = !zero_wnd;
    slow_reader_flows = !slow;
    sack_off_flows = !sack_off;
    wscale_off_flows = !wscale_off;
    pto_events = !ptos;
    time_loss_detections = !time_loss;
    persistent_congestions = !persistent;
    idle_closed = !idle;
    faulted;
    faults = !faults;
    violations = Monitor.counts monitor;
    total_violations = Monitor.total monitor;
    sim_seconds = Engine.now engine;
  }

(* ------------------------------------------------------------------ *)
(* Whole-soak driver: resumable, retryable, heap-watched.               *)

type summary = {
  shards : int;
  cached_shards : int;
  flows : int;
  quic_flows : int;
  completed : int;
  client_bytes : int;
  retransmissions : int;
  persist_probes : int;
  zero_window_flows : int;
  slow_reader_flows : int;
  sack_off_flows : int;
  wscale_off_flows : int;
  pto_events : int;
  time_loss_detections : int;
  persistent_congestions : int;
  idle_closed : int;
  faults : int;
  violations : (string * int) list;
  fault_free_violations : int;
  sim_flow_hours : float;
  peak_heap_growth_words : int;
  reports : shard_report list;
}

let merge_counts a b =
  List.fold_left
    (fun acc (k, n) ->
      let prev = try List.assoc k acc with Not_found -> 0 in
      (k, prev + n) :: List.remove_assoc k acc)
    a b
  |> List.sort compare

let shard_key i = Printf.sprintf "soak/shard=%03d" i

let transport_name = function `Tcp -> "tcp" | `Quic -> "quic" | `Mixed -> "mixed"

let transport_of_name = function
  | "tcp" -> `Tcp
  | "quic" -> `Quic
  | "mixed" -> `Mixed
  | s -> invalid_arg ("Soak.transport_of_name: unknown transport " ^ s)

let config_fields config =
  ("flow_horizon", Printf.sprintf "%g" config.flow_horizon)
  :: ("fault_period", string_of_int config.fault_period)
  :: ("transport", transport_name config.transport)
  :: ("population_seed", string_of_int config.population.Population.seed)
  :: Population.config_fields config.population

let run ?(pool = Pool.sequential) ?state_dir ?(retries = 0) ?on_shard config =
  let n = config.population.Population.shards in
  let store = Option.map Store.open_ state_dir in
  Fun.protect ~finally:(fun () -> Option.iter Store.close store) @@ fun () ->
  Option.iter
    (fun s ->
      Store.set_manifest s ~experiment:"tcp-soak" ~fields:(config_fields config) ~total:n)
    store;
  (* Replay the journal up front (never from worker domains): shards with a
     recorded report are served from the cache, only the rest recompute. *)
  let cached =
    Array.init n (fun i ->
        match store with
        | None -> None
        | Some s -> (
            match Store.find s (shard_key i) with
            | Some (Store.Done payload) -> Some (Marshal.from_string payload 0 : shard_report)
            | Some (Store.Poisoned _) | None -> None))
  in
  let cached_shards = ref 0 in
  Gc.full_major ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let peak_growth = ref 0 in
  let compute i =
    match cached.(i) with
    | Some r -> r
    | None ->
        let rec attempt k = try run_shard config i with _ when k < retries -> attempt (k + 1) in
        attempt 0
  in
  let reports =
    Pool.map pool compute
      (Array.init n (fun i -> i))
      ~on_done:(fun i r ->
        (match (store, cached.(i)) with
        | Some s, None ->
            Store.record s ~key:(shard_key i) ~label:(shard_key i)
              (Store.Done (Marshal.to_string r []));
            (* Shard boundary: size-bounded auto-compaction so a long
               soak's journal stops growing monotonically. *)
            ignore (Store.maybe_checkpoint s)
        | Some _, Some _ -> incr cached_shards
        | None, _ -> ());
        Gc.full_major ();
        peak_growth := max !peak_growth ((Gc.stat ()).Gc.live_words - baseline);
        Option.iter (fun f -> f r) on_shard)
  in
  let reports = Array.to_list reports in
  let sum (f : shard_report -> int) =
    List.fold_left (fun acc r -> acc + f r) 0 reports
  in
  {
    shards = n;
    cached_shards = !cached_shards;
    flows = sum (fun r -> r.flows);
    quic_flows = sum (fun r -> r.quic_flows);
    completed = sum (fun r -> r.completed);
    client_bytes = sum (fun r -> r.client_bytes);
    retransmissions = sum (fun r -> r.retransmissions);
    persist_probes = sum (fun r -> r.persist_probes);
    zero_window_flows = sum (fun r -> r.zero_window_flows);
    slow_reader_flows = sum (fun r -> r.slow_reader_flows);
    sack_off_flows = sum (fun r -> r.sack_off_flows);
    wscale_off_flows = sum (fun r -> r.wscale_off_flows);
    pto_events = sum (fun r -> r.pto_events);
    time_loss_detections = sum (fun r -> r.time_loss_detections);
    persistent_congestions = sum (fun r -> r.persistent_congestions);
    idle_closed = sum (fun r -> r.idle_closed);
    faults = sum (fun r -> r.faults);
    violations =
      List.fold_left (fun acc (r : shard_report) -> merge_counts acc r.violations) [] reports;
    fault_free_violations =
      sum (fun r -> if r.faulted then 0 else r.total_violations);
    sim_flow_hours =
      float_of_int (sum (fun r -> r.flows)) *. config.flow_horizon /. 3_600.0;
    peak_heap_growth_words = !peak_growth;
    reports;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>flows %d (%d quic; completed %d, %.4f%%), %d shards (%d cached)@,\
     client bytes %d, rtx %d@,\
     persist probes %d, zero-window flows %d, slow readers %d@,\
     sack-off flows %d, wscale-off flows %d, faults %d@,\
     quic: ptos %d, time-loss %d, persistent-cc %d, idle-closed %d@,\
     simulated flow-hours %.1f, peak heap growth %d MiB@,\
     violations: %s@]"
    s.flows s.quic_flows s.completed
    (if s.flows = 0 then 0.0 else 100.0 *. float_of_int s.completed /. float_of_int s.flows)
    s.shards s.cached_shards s.client_bytes s.retransmissions s.persist_probes
    s.zero_window_flows s.slow_reader_flows s.sack_off_flows s.wscale_off_flows s.faults
    s.pto_events s.time_loss_detections s.persistent_congestions s.idle_closed
    s.sim_flow_hours
    (s.peak_heap_growth_words * 8 / 1_048_576)
    (if s.violations = [] then "none"
     else
       String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) s.violations))
