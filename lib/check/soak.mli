(** Million-flow TCP soak: population-scale endurance testing of the
    endpoint under the invariant monitor.

    The soak drives one full TCP connection (request, response, close) per
    {!Stob_experiments.Population.plan_shard} visit — the same planning
    layer that feeds the packed-trace factory supplies arrival times and
    per-flow seeds, so a soak models a whole user population's day of
    browsing at the {e transport} layer.  Each flow runs over a direct
    endpoint-to-endpoint link with i.i.d. loss and draws its shape from a
    per-flow generator: slow readers with tiny receive buffers (the
    zero-window / persist-probe path), peers refusing SACK or window
    scaling, reduced-MSS peers, delayed-ACK receivers, and all three CCAs.
    Every endpoint is observed by {!Monitor} ([Collect] mode), so the
    window-sanity invariants ([tcp-adv-window], [tcp-peer-window],
    [tcp-window-respect]) and the rest of the catalogue are armed on every
    segment of every flow.

    On shards selected by [fault_period] the chaos dimension is armed:
    a random subset of flows receives a forward pacer-clock jump
    ({!Stob_tcp.Endpoint.inject_pacer_jump}) mid-flow.  Faulted shards are
    reported separately so the fault-free gate stays strict.

    Memory: flows are reaped exactly [flow_horizon] after they start —
    results harvested, references dropped — so a shard's resident set is
    O(concurrently active flows).  {!run} asserts this with a heap-growth
    watchdog ([Gc.live_words] after each shard against the pre-run
    baseline).

    Determinism and durability: a shard report is a pure function of
    [(config, shard)] (per-visit pre-split seeds), so results are
    jobs-invariant; with [state_dir] each finished shard is journaled to a
    {!Stob_store.Store} and a killed soak resumes bit-identically, like
    every other sweep. *)

(** {1 Single flows} *)

type transport = Tcp | Quic

type flow_spec = {
  seed : int;  (** Seeds the flow's link-loss and nothing else. *)
  transport : transport;
  cca : string;  (** ["reno"], ["cubic"] or ["bbr"]. *)
  request : int;
  response : int;
  delay : float;  (** One-way link delay, seconds. *)
  loss : float;  (** I.i.d. per-packet loss, each direction. *)
  client : Stob_tcp.Config.t;
  server : Stob_tcp.Config.t;
  slow_reader : bool;
      (** Client reads manually ([read_chunk] bytes every [read_interval])
          instead of auto-consuming — the path that closes the window. *)
  read_chunk : int;
  read_interval : float;
  read_stall : float;
      (** Delay before the slow reader's {e first} read: a stalled reader
          holds the window closed across several persist backoffs, which is
          what makes zero-window probes actually fire. *)
  pacer_jump : (float * float) option;
      (** [(after, jump)]: jump the server's pacing clock forward by [jump]
          seconds, [after] seconds into the flow.  TCP flows only. *)
  flight : int;  (** QUIC: server handshake-flight bytes. *)
  blackhole : (float * float) option;
      (** QUIC fault: [(after, duration)] — every datagram in both
          directions vanishes inside the window
          ({!Stob_sim.Fault.Datagram_blackhole} at flow granularity). *)
  horizon : float;  (** Reap time relative to flow start, seconds. *)
}

type flow_result = {
  completed : bool;
      (** Exactly [response] bytes delivered to the client, the full
          request to the server, and both endpoints closed, by reap time. *)
  client_received : int;
  server_received : int;
  client_closed : bool;
  server_closed : bool;
  retransmissions : int;  (** Both endpoints. *)
  persist_probes : int;
  zero_windows : int;  (** Open->zero window transitions seen by senders. *)
  sack_negotiated : bool;
  wscale_negotiated : bool;
  snd_mss : int;  (** The server's negotiated send MSS. *)
  pto_events : int;  (** QUIC: probe-timeout firings, both endpoints. *)
  time_loss_detections : int;  (** QUIC: time-threshold loss declarations. *)
  persistent_congestions : int;  (** QUIC: persistent-congestion declarations. *)
  idle_closed : int;  (** QUIC: endpoints closed by the idle timeout (0-2). *)
}

val spec_of_rng :
  ?horizon:float ->
  ?transport:[ `Tcp | `Quic | `Mixed ] ->
  fault:bool ->
  Stob_util.Rng.t ->
  flow_spec
(** Draw one flow from the soak mix (slow reader 1/8, SACK refused 1/4,
    wscale refused 1/4, MSS 536 1/6, lossy link 1/4, delayed ACKs 1/2,
    uniform CCA; with [fault], 1/16 of TCP flows get a pacer jump and 1/16
    of QUIC flows a datagram-blackhole window).  All draws come from [rng]
    in a fixed order; [`Mixed] splits QUIC/TCP 50/50 with a leading draw,
    and QUIC-only draws (flight size, blackhole) trail, so a [`Tcp]
    (default) stream is identical to the pre-QUIC battery. *)

val add_flow :
  engine:Stob_sim.Engine.t ->
  monitor:Monitor.t ->
  id:int ->
  start:float ->
  on_done:(flow_result -> unit) ->
  flow_spec ->
  unit
(** Schedule one TCP flow on a shared engine: it starts at [start]
    (absolute virtual time) and is reaped — result handed to [on_done],
    references dropped — exactly [horizon] later. *)

val add_quic_flow :
  engine:Stob_sim.Engine.t ->
  monitor:Monitor.t ->
  id:int ->
  start:float ->
  on_done:(flow_result -> unit) ->
  flow_spec ->
  unit
(** QUIC counterpart of {!add_flow}: request on stream 4 at handshake
    confirmation, response at the request FIN, client closes shortly after
    the response FIN, and the {e server} is left to close via the idle
    timeout — so every clean flow also exercises idle-close + quiesce.
    Both endpoints run under {!Monitor.observe_quic}, with a reap-time
    {!Monitor.check_quic_inspection} sweep for flows that wedged without
    sending. *)

val run_flow : flow_spec -> flow_result * (string * int) list
(** Run one flow (TCP or QUIC, per [spec.transport]) on a private engine
    under a private monitor; returns the reaped result and the monitor's
    violation counts.  This is the unit the randomized
    window-advertisement property battery drives. *)

(** {1 Shards and full runs} *)

type config = {
  population : Stob_experiments.Population.config;
      (** Supplies shard count, arrival times and per-visit seeds; expected
          flows = users x mean_sessions x mean_session_visits. *)
  flow_horizon : float;
  fault_period : int;  (** Arm faults on every [n]th shard; [0] disables. *)
  transport : [ `Tcp | `Quic | `Mixed ];  (** Flow population mix. *)
}

val default_config : config
(** The full soak: ~1.1M expected flows across 64 shards of a simulated
    day, faults on every 4th shard. *)

val smoke_config : config
(** CI variant: ~2.2k expected flows across 4 shards of a simulated hour —
    same mix, same gates, seconds of wall clock. *)

type shard_report = {
  shard : int;
  flows : int;
  quic_flows : int;
  completed : int;
  client_bytes : int;
  retransmissions : int;
  persist_probes : int;
  zero_window_flows : int;
  slow_reader_flows : int;
  sack_off_flows : int;
  wscale_off_flows : int;
  pto_events : int;
  time_loss_detections : int;
  persistent_congestions : int;
  idle_closed : int;
  faulted : bool;  (** Chaos dimension armed on this shard. *)
  faults : int;  (** Pacer jumps + datagram blackholes actually injected. *)
  violations : (string * int) list;  (** Monitor counts, invariant-sorted. *)
  total_violations : int;
  sim_seconds : float;
}

val fault_shard : config -> int -> bool
val run_shard : config -> int -> shard_report
(** Pure in [(config, shard)] — the jobs-parity and resume contracts. *)

type summary = {
  shards : int;
  cached_shards : int;  (** Served from a previous run's journal. *)
  flows : int;
  quic_flows : int;
  completed : int;
  client_bytes : int;
  retransmissions : int;
  persist_probes : int;
  zero_window_flows : int;
  slow_reader_flows : int;
  sack_off_flows : int;
  wscale_off_flows : int;
  pto_events : int;
  time_loss_detections : int;
  persistent_congestions : int;
  idle_closed : int;
  faults : int;
  violations : (string * int) list;
  fault_free_violations : int;
      (** Violations on shards with the chaos dimension off — the strict
          gate: must be zero. *)
  sim_flow_hours : float;
  peak_heap_growth_words : int;
      (** Max [Gc.live_words] growth over the baseline, sampled after each
          shard — the O(active flows) memory gate. *)
  reports : shard_report list;
}

val run :
  ?pool:Stob_par.Pool.t ->
  ?state_dir:string ->
  ?retries:int ->
  ?on_shard:(shard_report -> unit) ->
  config ->
  summary
(** Run (or resume) the soak.  With [state_dir], finished shards are
    journaled as they complete ([on_shard] fires after the record is
    durable, in increasing shard order) and already-journaled shards are
    served from the cache; [retries] re-attempts a shard that raised
    before giving up.  Raises [Failure] if [state_dir] belongs to a
    different run. *)

val transport_name : [ `Tcp | `Quic | `Mixed ] -> string
val transport_of_name : string -> [ `Tcp | `Quic | `Mixed ]
(** Raises [Invalid_argument] on an unknown name. *)

val config_fields : config -> (string * string) list
val pp_summary : Format.formatter -> summary -> unit
