module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Endpoint = Stob_tcp.Endpoint
module Hooks = Stob_tcp.Hooks
module Qdisc = Stob_tcp.Qdisc
module Config = Stob_tcp.Config
module Capture = Stob_net.Capture
module Safety = Stob_core.Safety

type mode = Raise | Collect

(* A registered invariant: [check ~now] returns [Some detail] while the
   invariant is violated.  Checks are edge-triggered — a violation is
   recorded when the invariant transitions from holding to failing, not on
   every event while it keeps failing — so a single broken component does
   not flood the report. *)
type watch = { w_name : string; w_flow : int option; check : now:float -> string option; mutable failing : bool }

type t = {
  engine : Engine.t;
  mode : mode;
  max_stored : int;
  mutable stored : Violation.t list;  (* newest first *)
  mutable total : int;
  counts : (string, int) Hashtbl.t;
  mutable watches : watch list;  (* registration order preserved via rev *)
  mutable last_now : float;
  mutable attached : bool;
}

let create ?(mode = Collect) ?(max_stored = 200) engine =
  if max_stored < 1 then invalid_arg "Monitor.create: max_stored must be >= 1";
  {
    engine;
    mode;
    max_stored;
    stored = [];
    total = 0;
    counts = Hashtbl.create 16;
    watches = [];
    last_now = Engine.now engine;
    attached = false;
  }

let mode t = t.mode
let total t = t.total

let record t v =
  t.total <- t.total + 1;
  Hashtbl.replace t.counts v.Violation.invariant
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts v.Violation.invariant));
  if List.length t.stored < t.max_stored then t.stored <- v :: t.stored;
  match t.mode with Raise -> raise (Violation.Violated v) | Collect -> ()

let violations t = List.rev t.stored

let counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let register t ~name ?flow check =
  t.watches <- { w_name = name; w_flow = flow; check; failing = false } :: t.watches

let run_watch t ~now w =
  match w.check ~now with
  | None -> w.failing <- false
  | Some detail ->
      if not w.failing then begin
        w.failing <- true;
        record t (Violation.make ~invariant:w.w_name ~time:now ?flow:w.w_flow detail)
      end

let check_now t ~now = List.iter (run_watch t ~now) (List.rev t.watches)

(* ------------------------------------------------------------------ *)
(* Engine probe: clock sanity plus all registered watches.              *)

let attach_engine t =
  if t.attached then invalid_arg "Monitor.attach_engine: already attached";
  t.attached <- true;
  t.last_now <- Engine.now t.engine;
  Engine.set_probe t.engine (fun ~now ->
      if now < t.last_now then
        record t
          (Violation.make ~invariant:"engine-clock-monotone" ~time:now
             (Printf.sprintf "clock moved backwards: %.9f -> %.9f" t.last_now now));
      t.last_now <- Float.max t.last_now now;
      check_now t ~now)

let detach_engine t =
  if t.attached then begin
    t.attached <- false;
    Engine.clear_probe t.engine
  end

(* ------------------------------------------------------------------ *)
(* Component watches.                                                   *)

let watch_qdisc t ~name q =
  register t ~name:"qdisc-backlog-bound" (fun ~now:_ ->
      let backlog = Qdisc.backlog_bytes q and limit = Qdisc.limit_bytes q in
      if backlog > limit then
        Some (Printf.sprintf "%s: backlog %d B exceeds limit %d B" name backlog limit)
      else None)

let watch_cpu t ?(backlog_bound = 0.5) ~name cpu =
  if backlog_bound <= 0.0 then invalid_arg "Monitor.watch_cpu: backlog_bound must be positive";
  register t ~name:"cpu-backlog-bound" (fun ~now ->
      let lead = Cpu.busy_until cpu -. now in
      if lead > backlog_bound then
        Some
          (Printf.sprintf "%s: core booked %.4f s ahead (bound %.4f s, queue depth %d)" name lead
             backlog_bound (Cpu.queue_depth cpu))
      else None)

(* Progress watch.  The check must fire even though the stalled period
   itself contains no events (the probe only runs on events): at each
   event we first ask whether the gap since the last activity change
   exceeds the bound *while work was pending*, and only then credit any
   new activity.  Otherwise the event that ends a stall would also hide
   it. *)
let watch_progress t ?(stall = 1.0) ~name ~pending ~activity () =
  if stall <= 0.0 then invalid_arg "Monitor.watch_progress: stall must be positive";
  let last_activity = ref (activity ()) in
  let last_change = ref (Engine.now t.engine) in
  let was_pending = ref (pending ()) in
  register t ~name:"progress-stall" (fun ~now ->
      let a = activity () in
      let stalled = !was_pending && now -. !last_change > stall in
      let detail =
        if stalled then
          Some
            (Printf.sprintf "%s: no progress for %.4f s (bound %.4f s) with work pending" name
               (now -. !last_change) stall)
        else None
      in
      if a <> !last_activity then begin
        last_activity := a;
        last_change := now
      end;
      was_pending := pending ();
      detail)

(* Durability watch: edge-triggers when a result store drops to
   journaling-off "completion over durability" mode (a journal error past
   the bounded retry budget, e.g. persistent ENOSPC).  The sweep keeps
   running to its artifact; the violation marks that artifact as
   non-resumable-without-recompute — EXPERIMENTS.md excludes such runs
   from parity claims. *)
let watch_store t ~name store =
  register t ~name:"store-durability-degraded" (fun ~now:_ ->
      match Stob_store.Store.degraded store with
      | Some reason -> Some (name ^ ": " ^ reason)
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Endpoint invariants, checked at the hook boundary.                   *)

let check_inspection ~config (i : Endpoint.inspection) =
  if i.Endpoint.snd_una > i.snd_nxt then
    Some
      ( "tcp-seq-order",
        Printf.sprintf "snd_una %d > snd_nxt %d (inflight %d)" i.snd_una i.snd_nxt i.inflight )
  else if i.cwnd < 1 then Some ("tcp-cwnd-bounds", Printf.sprintf "cwnd %d < 1" i.cwnd)
  else if
    i.cwnd > max config.Config.snd_buf config.Config.rcv_wnd
  then
    Some
      ( "tcp-cwnd-bounds",
        Printf.sprintf "cwnd %d exceeds buffer bound %d" i.cwnd
          (max config.Config.snd_buf config.Config.rcv_wnd) )
  else if i.in_stack < 0 then Some ("tcp-tsq-accounting", Printf.sprintf "in_stack %d < 0" i.in_stack)
  else if i.app_queue < 0 then
    Some ("tcp-app-queue", Printf.sprintf "app_queue %d < 0" i.app_queue)
  else if i.adv_wnd < 0 then Some ("tcp-adv-window", Printf.sprintf "adv_wnd %d < 0" i.adv_wnd)
  else if i.adv_wnd + i.rcv_buffered > i.rcv_capacity then
    (* The window granted to the peer plus data already delivered-but-unread
       must fit the receive buffer, or the advertisement promises space the
       receiver does not have. *)
    Some
      ( "tcp-adv-window",
        Printf.sprintf "advertised window %d + buffered %d exceeds buffer %d" i.adv_wnd
          i.rcv_buffered i.rcv_capacity )
  else if i.peer_rwnd < 0 then
    Some ("tcp-peer-window", Printf.sprintf "decoded peer window %d < 0" i.peer_rwnd)
  else begin
    (* SACK sanity: sorted, disjoint, non-empty blocks inside (snd_una, snd_nxt]. *)
    let rec sack_bad prev_hi = function
      | [] -> None
      | (lo, hi) :: rest ->
          if hi <= lo then Some (Printf.sprintf "empty SACK block [%d, %d)" lo hi)
          else if lo < prev_hi then
            Some (Printf.sprintf "overlapping/unsorted SACK block [%d, %d) after hi %d" lo hi prev_hi)
          else if lo < i.snd_una || hi > i.snd_nxt then
            Some
              (Printf.sprintf "SACK block [%d, %d) outside [snd_una %d, snd_nxt %d]" lo hi i.snd_una
                 i.snd_nxt)
          else sack_bad hi rest
    in
    match sack_bad i.snd_una i.sacked with
    | Some d -> Some ("tcp-sack-sanity", d)
    | None ->
        if i.in_recovery && (i.rtx_next < i.snd_una - 1 || i.recover_point > i.snd_nxt) then
          Some
            ( "tcp-recovery-window",
              Printf.sprintf "rtx_next %d / recover_point %d outside [snd_una %d, snd_nxt %d]"
                i.rtx_next i.recover_point i.snd_una i.snd_nxt )
        else None
  end

(* Wrap an endpoint's installed hook chain with observe-only checks:
   endpoint-state invariants before the decision, pacing-horizon
   monotonicity across decisions, and the Section 4.2 safety predicate on
   whatever the chain answers.  Exceptions from the chain pass through
   untouched — whether a fault escapes or is absorbed is the degradation
   ladder's business, not the monitor's. *)
let observe_endpoint t ~name ep =
  let config = Endpoint.config ep in
  let inner = Endpoint.hooks ep in
  let last_horizon = ref neg_infinity in
  let on_segment ~now ~flow ~phase (d : Hooks.decision) =
    let i = Endpoint.inspect ep in
    (match check_inspection ~config i with
    | Some (invariant, detail) ->
        record t (Violation.make ~invariant ~time:now ~flow (name ^ ": " ^ detail))
    | None -> ());
    (* Sender window respect, checked at commitment time: the stack may
       never propose a segment that pushes snd_nxt past
       snd_una + min(cwnd, peer window).  (Persist probes and
       retransmissions bypass the hook, so they cannot false-positive
       here.) *)
    let usable = max 0 (min i.Endpoint.cwnd i.Endpoint.peer_rwnd - i.Endpoint.inflight) in
    if d.Hooks.tso_bytes > usable then
      record t
        (Violation.make ~invariant:"tcp-window-respect" ~time:now ~flow
           (Printf.sprintf
              "%s: stack proposed %d bytes with only %d usable (cwnd %d, peer_rwnd %d, inflight %d)"
              name d.Hooks.tso_bytes usable i.Endpoint.cwnd i.Endpoint.peer_rwnd
              i.Endpoint.inflight));
    if i.Endpoint.pacer_next_free < !last_horizon then
      record t
        (Violation.make ~invariant:"tcp-pacing-monotone" ~time:now ~flow
           (Printf.sprintf "%s: pacing horizon moved backwards: %.9f -> %.9f" name !last_horizon
              i.Endpoint.pacer_next_free));
    last_horizon := Float.max !last_horizon i.Endpoint.pacer_next_free;
    if d.Hooks.earliest_departure < now -. 1e-9 then
      record t
        (Violation.make ~invariant:"tcp-stack-departure" ~time:now ~flow
           (Printf.sprintf "%s: stack proposed departure %.9f in the past (now %.9f)" name
              d.Hooks.earliest_departure now));
    let result = inner.Hooks.on_segment ~now ~flow ~phase d in
    if not (Safety.is_safe ~stack:d result) then
      record t
        (Violation.make ~invariant:"defense-safety" ~time:now ~flow
           (Printf.sprintf
              "%s: hook answer (tso %d, payload %d, dep %.9f) more aggressive than stack (tso %d, \
               payload %d, dep %.9f)"
              name result.Hooks.tso_bytes result.Hooks.packet_payload
              result.Hooks.earliest_departure d.Hooks.tso_bytes d.Hooks.packet_payload
              d.Hooks.earliest_departure));
    result
  in
  Endpoint.set_hooks ep { Hooks.on_segment }

(* ------------------------------------------------------------------ *)
(* QUIC endpoint invariants.                                            *)

module Quic = Stob_quic.Endpoint

(* Pure state checks over a QUIC inspection snapshot; shared between the
   hook observer below and the soak's reap-time sweep.  Returns the first
   failing (invariant, detail) pair. *)
let check_quic_inspection (i : Quic.inspection) =
  if i.Quic.largest_acked >= i.pn_next then
    (* The peer acknowledged a packet number we never sent. *)
    Some
      ( "quic-ack-sanity",
        Printf.sprintf "largest_acked %d >= pn_next %d (ack of unsent)" i.Quic.largest_acked
          i.pn_next )
  else if i.inflight < 0 then
    Some ("quic-inflight-accounting", Printf.sprintf "inflight %d < 0" i.inflight)
  else if i.inflight <> i.unacked_bytes then
    Some
      ( "quic-inflight-accounting",
        Printf.sprintf "inflight ledger %d B != %d B across %d unacked packets" i.inflight
          i.unacked_bytes i.unacked_packets )
  else if i.amp_credit < 0 then
    Some
      ( "quic-amplification",
        Printf.sprintf "amplification credit %d B negative (sent %d B, received %d B)"
          i.amp_credit i.bytes_sent i.bytes_received )
  else if i.closed && i.idle_armed then
    Some ("quic-quiesce", "closed endpoint still has its idle timer armed")
  else if i.cwnd < 1 then Some ("quic-cwnd-bounds", Printf.sprintf "cwnd %d < 1" i.cwnd)
  else None

(* QUIC analogue of [observe_endpoint]: wrap the installed hook chain with
   observe-only checks — state invariants, packet-number monotonicity
   across decisions, and the safety predicate on the chain's answer. *)
let observe_quic t ~name ep =
  let inner = Quic.hooks ep in
  let last_pn = ref (-1) in
  let on_segment ~now ~flow ~phase (d : Hooks.decision) =
    let i = Quic.inspect ep in
    (match check_quic_inspection i with
    | Some (invariant, detail) ->
        record t (Violation.make ~invariant ~time:now ~flow (name ^ ": " ^ detail))
    | None -> ());
    if i.Quic.pn_next < !last_pn then
      record t
        (Violation.make ~invariant:"quic-pn-monotonic" ~time:now ~flow
           (Printf.sprintf "%s: packet number sequence moved backwards: %d -> %d" name !last_pn
              i.Quic.pn_next));
    last_pn := max !last_pn i.Quic.pn_next;
    let result = inner.Hooks.on_segment ~now ~flow ~phase d in
    if not (Safety.is_safe ~stack:d result) then
      record t
        (Violation.make ~invariant:"defense-safety" ~time:now ~flow
           (Printf.sprintf
              "%s: hook answer (tso %d, payload %d, dep %.9f) more aggressive than stack (tso %d, \
               payload %d, dep %.9f)"
              name result.Hooks.tso_bytes result.Hooks.packet_payload
              result.Hooks.earliest_departure d.Hooks.tso_bytes d.Hooks.packet_payload
              d.Hooks.earliest_departure));
    result
  in
  Quic.set_hooks ep { Hooks.on_segment }

(* ------------------------------------------------------------------ *)
(* End-of-run oracle checks.                                            *)

let check_rtx_oracle t ~capture ~endpoints ~drops ~drained =
  if drops = 0 && drained then begin
    let counted = List.fold_left (fun acc ep -> acc + Endpoint.retransmissions ep) 0 endpoints in
    let captured = Capture.rtx_count capture in
    if counted <> captured then
      record t
        (Violation.make ~invariant:"rtx-oracle-agreement" ~time:(Engine.now t.engine)
           (Printf.sprintf "endpoints count %d retransmissions, capture saw %d marked packets"
              counted captured))
  end

(* QUIC variant: datagrams carrying a retransmitted stream chunk are marked
   [rtx] on the wire, so the capture's count must equal the endpoints'
   [rtx_datagrams].  The capture taps the link before netem impairment, so
   the check also holds under netem loss — only bottleneck-queue [drops]
   (which happen before the tap) disqualify the comparison. *)
let check_quic_rtx_oracle t ~capture ~endpoints ~drops ~drained =
  if drops = 0 && drained then begin
    let counted = List.fold_left (fun acc ep -> acc + Quic.rtx_datagrams ep) 0 endpoints in
    let captured = Capture.rtx_count capture in
    if counted <> captured then
      record t
        (Violation.make ~invariant:"rtx-oracle-agreement" ~time:(Engine.now t.engine)
           (Printf.sprintf
              "QUIC endpoints count %d rtx datagrams, capture saw %d marked packets" counted
              captured))
  end

(* Cache-poisoning canary: a sampled subset of a finished sweep's journal
   records is recomputed from scratch and compared byte-for-byte against
   the journaled payloads.  Any disagreement means the result cache would
   have silently served a wrong value on resume — exactly the failure the
   chaos battery must surface. *)
let check_store_canary t ~sample ~seed ~entries ~recompute =
  if sample < 1 then invalid_arg "Monitor.check_store_canary: sample must be >= 1";
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let chosen =
    if sample >= n then Array.init n Fun.id
    else Stob_util.Rng.sample_without_replacement (Stob_util.Rng.create seed) sample n
  in
  Array.iter
    (fun i ->
      let label, payload = entries.(i) in
      let disagree detail =
        record t
          (Violation.make ~invariant:"store-replay-agreement" ~time:(Engine.now t.engine)
             detail)
      in
      match recompute label with
      | None -> disagree (Printf.sprintf "%s: journaled cell could not be recomputed" label)
      | Some fresh when not (String.equal fresh payload) ->
          disagree
            (Printf.sprintf
               "%s: journal payload (%d B) differs from fresh recomputation (%d B)" label
               (String.length payload) (String.length fresh))
      | Some _ -> ())
    chosen
