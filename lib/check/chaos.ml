module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Fault = Stob_sim.Fault
module Rng = Stob_util.Rng
module Units = Stob_util.Units
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path
module Qdisc = Stob_tcp.Qdisc
module Hooks = Stob_tcp.Hooks
module Cpu_costs = Stob_tcp.Cpu_costs
module Netem_eval = Stob_tcp.Netem_eval
module Policy = Stob_core.Policy
module Policy_table = Stob_core.Policy_table
module Controller = Stob_core.Controller
module Strategies = Stob_core.Strategies

type workload = Oneshot | Sequential of int | Fanout of int

let workload_name = function
  | Oneshot -> "oneshot"
  | Sequential n -> Printf.sprintf "seq%d" n
  | Fanout n -> Printf.sprintf "fanout%d" n

let workload_conns = function Oneshot -> 1 | Sequential n -> max 1 n | Fanout n -> max 1 n

type scenario = { cca : string; fault : Fault.kind option; workload : workload; degrade : bool }

let scenario_name s =
  Printf.sprintf "%s/%s/%s/%s" s.cca
    (match s.fault with None -> "no-fault" | Some k -> Fault.kind_name k)
    (workload_name s.workload)
    (if s.degrade then "degrade" else "raw")

type degradation_summary = {
  final_rung : string;
  trips : int;
  decisions : int;
  fallbacks : int;
  injected : int;
  stalls : int;
  hook_exceptions : int;
  unsafe_proposals : int;
}

type report = {
  scenario : scenario;
  seed : int;
  completed : bool;  (** Every connection of the workload opened and closed. *)
  crashed : string option;  (** Exception that escaped the simulation, if any. *)
  livelock : bool;
  total_violations : int;
  violation_counts : (string * int) list;
  degradation : degradation_summary option;
  policy_fallbacks : int;  (** Policy-table lookups that failed and fell back. *)
  client_received : int;
  fault_events : int;
  finish_time : float;
  pending_events : int;
}

let rung_rank = function
  | Controller.Full_policy -> 0
  | Controller.Clamp_only -> 1
  | Controller.Passthrough -> 2

let summarize_degradation reports =
  match reports with
  | [] -> None
  | _ ->
      let worst =
        List.fold_left
          (fun acc (r : Controller.degradation_report) ->
            if rung_rank r.Controller.rung > rung_rank acc then r.Controller.rung else acc)
          Controller.Full_policy reports
      in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
      Some
        {
          final_rung = Controller.rung_name worst;
          trips = sum (fun r -> List.length r.Controller.trips);
          decisions = sum (fun r -> r.Controller.decisions);
          fallbacks = sum (fun r -> r.Controller.fallbacks);
          injected = sum (fun r -> r.Controller.injected_faults);
          stalls = sum (fun r -> r.Controller.stalls);
          hook_exceptions = sum (fun r -> r.Controller.hook_exceptions);
          unsafe_proposals = sum (fun r -> r.Controller.unsafe_proposals);
        }

(* ------------------------------------------------------------------ *)
(* One chaos cell.                                                      *)

let run_cell ?(rate_bps = Units.mbps 20.0) ?(delay = 0.015) ?(horizon = 60.0)
    ?(fault_horizon = 1.0) ?(events_per_kind = 2) ?(request = 2_000) ?(response = 400_000)
    ?(stall_bound = 0.5) ?plan ~seed scenario =
  let engine = Engine.create () in
  (* A chaos run must never hang the battery: zero-delay rescheduling bugs
     become a Livelock we translate into a violation below. *)
  Engine.set_same_instant_budget engine 200_000;
  let monitor = Monitor.create engine in
  let path = Path.create ~engine ~rate_bps ~delay ~queue_capacity:(256 * 1024) ~server_fq:true () in
  let cpu = Cpu.create engine in
  let costs = Cpu_costs.default_server in
  let cc = Netem_eval.cc_of_name scenario.cca in
  (* The defended policy under test: split + delay, the paper's "Combined". *)
  let table = Policy_table.create () in
  Policy_table.set_global table (Strategies.stack_combined ());
  (* --- fault surfaces, toggled by the armed plan --- *)
  let hook_fail = ref false in
  let hook_stall = ref 0.0 in
  let policy_fail = ref false in
  let qdisc_saved_limit = ref None in
  let servers = ref [] in
  let policy_fallbacks = ref 0 in
  let fault_plan =
    match plan with
    | Some p -> p
    | None ->
        Fault.plan
          {
            Fault.kinds = Option.to_list scenario.fault;
            events_per_kind;
            horizon = fault_horizon;
            seed;
          }
  in
  let apply (ev : Fault.event) =
    match ev.Fault.kind with
    | Fault.Hook_exception -> hook_fail := true
    | Fault.Hook_stall -> hook_stall := ev.Fault.magnitude
    | Fault.Policy_failure -> policy_fail := true
    | Fault.Cpu_overload -> Cpu.set_overload cpu ev.Fault.magnitude
    | Fault.Pacer_jump ->
        List.iter (fun ep -> Endpoint.inject_pacer_jump ep ev.Fault.magnitude) !servers
    | Fault.Qdisc_collapse -> (
        match Path.server_qdisc path with
        | None -> ()
        | Some q ->
            if !qdisc_saved_limit = None then qdisc_saved_limit := Some (Qdisc.limit_bytes q);
            Qdisc.set_limit_bytes q (int_of_float ev.Fault.magnitude))
    (* QUIC wire faults are armed by the soak's QUIC flows, not by this
       TCP-component harness. *)
    | Fault.Datagram_blackhole | Fault.Ack_delay_inflation | Fault.Handshake_stall -> ()
  in
  let revert (ev : Fault.event) =
    match ev.Fault.kind with
    | Fault.Hook_exception -> hook_fail := false
    | Fault.Hook_stall -> hook_stall := 0.0
    | Fault.Policy_failure -> policy_fail := false
    | Fault.Cpu_overload -> Cpu.set_overload cpu 1.0
    | Fault.Pacer_jump -> ()
    | Fault.Qdisc_collapse -> (
        match (Path.server_qdisc path, !qdisc_saved_limit) with
        | Some q, Some limit -> Qdisc.set_limit_bytes q limit
        | _ -> ())
    | Fault.Datagram_blackhole | Fault.Ack_delay_inflation | Fault.Handshake_stall -> ()
  in
  Fault.arm ~engine ~apply ~revert fault_plan;
  (* --- monitored components --- *)
  (match Path.server_qdisc path with
  | Some q -> Monitor.watch_qdisc monitor ~name:"server-fq" q
  | None -> ());
  Monitor.watch_cpu monitor ~name:"server-core" cpu;
  (* --- workload --- *)
  let expected = workload_conns scenario.workload in
  let conns = ref [] in
  let created = ref 0 in
  let client_received = ref 0 in
  let last_event = ref 0.0 in
  let guard_reports = ref [] in
  let touch () = last_event := Engine.now engine in
  let attach_controller flow =
    (* The Policy_failure fault surfaces here: a failed lookup raises
       [Fault.Injected]; the harness degrades that flow to an unmodified
       policy rather than refusing the connection. *)
    try
      if !policy_fail then
        raise (Fault.Injected { kind = Fault.Policy_failure; at = Engine.now engine });
      Policy_table.attach table ~seed:flow flow
    with Fault.Injected _ ->
      incr policy_fallbacks;
      Controller.create ~seed:flow Policy.unmodified
  in
  let rec start_conn i =
    if i < expected then begin
      let flow = i + 1 in
      created := !created + 1;
      let conn = Connection.create ~engine ~path ~flow ~cc ~server_cpu:(cpu, costs) () in
      conns := !conns @ [ conn ];
      let client = Connection.client conn and server = Connection.server conn in
      let ctrl = attach_controller flow in
      let base = Controller.hooks ctrl in
      let faulty =
        {
          Hooks.on_segment =
            (fun ~now ~flow ~phase d ->
              if !hook_fail then raise (Fault.Injected { kind = Fault.Hook_exception; at = now });
              let r = base.Hooks.on_segment ~now ~flow ~phase d in
              if (not scenario.degrade) && !hook_stall > 0.0 then
                (* No guard to model the watchdog: a slow hook simply
                   delays the release (the safe direction). *)
                { r with Hooks.earliest_departure = r.Hooks.earliest_departure +. !hook_stall }
              else r);
        }
      in
      let chain =
        if scenario.degrade then begin
          let guarded, report = Controller.guard ~latency:(fun ~now:_ -> !hook_stall) faulty in
          guard_reports := !guard_reports @ [ report ];
          guarded
        end
        else faulty
      in
      Endpoint.set_hooks server chain;
      Monitor.observe_endpoint monitor ~name:(Printf.sprintf "server-%d" flow) server;
      let received = ref 0 in
      Endpoint.set_on_receive client (fun n ->
          touch ();
          received := !received + n;
          client_received := !client_received + n;
          if !received >= response then
            match scenario.workload with
            | Sequential _ ->
                ignore (Engine.schedule engine ~delay:0.05 (fun () -> start_conn (i + 1)))
            | Oneshot | Fanout _ -> ());
      let responded = ref false in
      let server_received = ref 0 in
      Endpoint.set_on_receive server (fun n ->
          touch ();
          server_received := !server_received + n;
          if (not !responded) && !server_received >= request then begin
            responded := true;
            Endpoint.write server response;
            Endpoint.close server
          end);
      Endpoint.set_on_fin client (fun () ->
          touch ();
          Endpoint.close client);
      Connection.on_established conn (fun () -> Endpoint.write client request);
      servers := server :: !servers;
      Connection.open_ conn;
      match scenario.workload with
      | Fanout _ -> ignore (Engine.schedule engine ~delay:0.3 (fun () -> start_conn (i + 1)))
      | Oneshot | Sequential _ -> ()
    end
  in
  (* Progress watch over the whole workload: packets keep flowing (or
     connections keep opening) until everything is closed. *)
  Monitor.watch_progress monitor ~stall:stall_bound ~name:"workload"
    ~pending:(fun () ->
      !created < expected
      || List.exists
           (fun c ->
             not (Endpoint.closed (Connection.client c) && Endpoint.closed (Connection.server c)))
           !conns)
    ~activity:(fun () ->
      List.fold_left
        (fun acc c ->
          acc
          + Endpoint.packets_sent (Connection.client c)
          + Endpoint.packets_sent (Connection.server c))
        !created !conns)
    ();
  Monitor.attach_engine monitor;
  start_conn 0;
  let crashed = ref None in
  let livelock = ref false in
  (try Engine.run ~until:horizon engine with
  | Engine.Livelock { time; events } ->
      livelock := true;
      Monitor.record monitor
        (Violation.make ~invariant:"engine-livelock" ~time
           (Printf.sprintf "%d consecutive events without clock advance" events))
  | e -> crashed := Some (Printexc.to_string e));
  Monitor.check_now monitor ~now:(Engine.now engine);
  let drained = Engine.pending engine = 0 && !crashed = None && not !livelock in
  Monitor.check_rtx_oracle monitor ~capture:(Path.capture path)
    ~endpoints:
      (List.concat_map (fun c -> [ Connection.client c; Connection.server c ]) !conns)
    ~drops:(Path.drops path) ~drained;
  Monitor.detach_engine monitor;
  let completed =
    !crashed = None && !created = expected
    && List.for_all
         (fun c -> Endpoint.closed (Connection.client c) && Endpoint.closed (Connection.server c))
         !conns
  in
  {
    scenario;
    seed;
    completed;
    crashed = !crashed;
    livelock = !livelock;
    total_violations = Monitor.total monitor;
    violation_counts = Monitor.counts monitor;
    degradation = summarize_degradation (List.map (fun r -> r ()) !guard_reports);
    policy_fallbacks = !policy_fallbacks;
    client_received = !client_received;
    fault_events = List.length fault_plan;
    finish_time = !last_event;
    pending_events = Engine.pending engine;
  }

(* ------------------------------------------------------------------ *)
(* Sweep, gate and shrinking.                                           *)

let all_fault_options () = None :: List.map (fun k -> Some k) Fault.all_kinds

let default_scenarios () =
  List.concat_map
    (fun cca ->
      List.map (fun fault -> { cca; fault; workload = Fanout 3; degrade = true })
        (all_fault_options ()))
    [ "reno"; "cubic"; "bbr" ]

let smoke_scenarios () =
  List.map (fun fault -> { cca = "cubic"; fault; workload = Fanout 2; degrade = true })
    (all_fault_options ())

let run_sweep ?(pool = Stob_par.Pool.sequential) ?rate_bps ?delay ?horizon ?fault_horizon
    ?events_per_kind ?request ?response ?stall_bound ~seed scenarios =
  (* Pre-split-RNG rule: one seed per scenario, drawn in scenario order
     before the tasks reach the pool. *)
  let master = Rng.create seed in
  let tasks = Array.of_list (List.map (fun s -> (s, Rng.int master max_int)) scenarios) in
  Array.to_list
    (Stob_par.Pool.map pool
       (fun (s, cell_seed) ->
         run_cell ?rate_bps ?delay ?horizon ?fault_horizon ?events_per_kind ?request ?response
           ?stall_bound ~seed:cell_seed s)
       tasks)

let survived r =
  (* The gate a degradation-enabled cell must pass: the page load finishes
     and nothing escapes.  Tripped invariants are NOT failures here — for a
     fault cell they are the monitor doing its job. *)
  r.crashed = None && (not r.livelock) && r.completed

let clean r = survived r && r.total_violations = 0

let shrink ?(failed = fun r -> not (survived r)) ?rate_bps ?delay ?horizon ?fault_horizon
    ?events_per_kind ?request ?response ?stall_bound ~seed scenario =
  let run plan =
    run_cell ?rate_bps ?delay ?horizon ?fault_horizon ?events_per_kind ?request ?response
      ?stall_bound ~plan ~seed scenario
  in
  let full_plan =
    Fault.plan
      {
        Fault.kinds = Option.to_list scenario.fault;
        events_per_kind = Option.value ~default:2 events_per_kind;
        horizon = Option.value ~default:1.0 fault_horizon;
        seed;
      }
  in
  if not (failed (run full_plan)) then None
  else begin
    (* Smallest prefix of the time-sorted plan that still fails.  Linear
       scan from the front keeps the result canonical: the answer is the
       earliest fault event that matters, not an arbitrary local minimum. *)
    let arr = Array.of_list full_plan in
    let rec find k =
      if k > Array.length arr then Array.length arr
      else begin
        let prefix = Array.to_list (Array.sub arr 0 k) in
        if failed (run prefix) then k else find (k + 1)
      end
    in
    let k = find 0 in
    let prefix = Array.to_list (Array.sub arr 0 (min k (Array.length arr))) in
    Some (k, prefix, run prefix)
  end

(* ------------------------------------------------------------------ *)
(* Reporting.                                                           *)

let pp_report ppf r =
  Format.fprintf ppf "%-40s %-5s %-8s viol=%-3d%s%s rx=%-7d t=%7.3fs fev=%d"
    (scenario_name r.scenario)
    (if r.completed then "ok" else "FAIL")
    (match r.crashed with
    | Some _ -> "CRASH"
    | None -> if r.livelock then "LIVELOCK" else "-")
    r.total_violations
    (match r.violation_counts with
    | [] -> ""
    | counts ->
        " ["
        ^ String.concat ","
            (List.map (fun (name, n) -> Printf.sprintf "%s:%d" name n) counts)
        ^ "]")
    (match r.degradation with
    | None -> ""
    | Some d ->
        Printf.sprintf " rung=%s trips=%d fallbacks=%d%s" d.final_rung d.trips d.fallbacks
          (if r.policy_fallbacks > 0 then Printf.sprintf " pfb=%d" r.policy_fallbacks else ""))
    r.client_received r.finish_time r.fault_events

let print_sweep results =
  List.iter (fun r -> Format.printf "%a@." pp_report r) results;
  let surv = List.length (List.filter survived results) in
  Format.printf "%d/%d cells survived (completed, no crash/livelock)@." surv
    (List.length results)
