(** The seed's naive row-major CART trainer, kept verbatim.

    This is {e not} a production path: it re-sorts sample indices per
    feature per node with polymorphic [compare] and partitions children
    through list round-trips, exactly as the original
    {!Decision_tree.train} did.  It exists for two jobs only:

    - the parity oracle in [test/test_ml.ml] — the presorted column-major
      trainer must reproduce its trees bit-for-bit (structure, thresholds,
      leaf ids and distributions, feature gains) on any input;
    - the "before" baseline of [bench/main.exe forest], which records the
      naive-vs-presorted wall-clock ratio in [BENCH_forest.json].

    The node type is exposed concretely so tests can compare tree shapes
    structurally (see {!Decision_tree.fold}). *)

type node =
  | Leaf of { id : int; label : int; dist : float array }
  | Split of { feature : int; threshold : float; left : node; right : node }

type tree = { root : node; n_leaves : int; depth : int; gains : float array }

val train_tree :
  ?params:Decision_tree.params ->
  rng:Stob_util.Rng.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  tree
(** Byte-for-byte the seed [Decision_tree.train]: per-node per-feature
    re-sorts, midpoint thresholds, [<=] partitioning, first-strictly-better
    tie-breaking in feature order. *)

val tree_predict : tree -> float array -> int
val tree_leaf_id : tree -> float array -> int

type forest = { trees : tree array; n_classes : int }

val train_forest :
  ?params:Random_forest.params ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  forest
(** The seed [Random_forest.train] restricted to its sequential path:
    per-tree generators pre-split in tree order, bootstrap rows copied
    into fresh per-tree arrays (the allocation behaviour being benchmarked
    against). *)

val forest_predict : forest -> float array -> int
val forest_fingerprint : forest -> float array -> int array
val forest_importance : forest -> float array
