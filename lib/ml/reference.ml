(* The seed trainer, preserved as-is.  Do not "improve" this file: its
   whole value is being the unoptimized original whose behaviour the
   presorted trainer must reproduce bit-for-bit. *)

module Rng = Stob_util.Rng

type node =
  | Leaf of { id : int; label : int; dist : float array }
  | Split of { feature : int; threshold : float; left : node; right : node }

type tree = { root : node; n_leaves : int; depth : int; gains : float array }

let class_counts ~n_classes labels indices =
  let counts = Array.make n_classes 0 in
  Array.iter (fun i -> counts.(labels.(i)) <- counts.(labels.(i)) + 1) indices;
  counts

let gini_of_counts counts total =
  if total = 0 then 0.0
  else
    let t = float_of_int total in
    1.0
    -. Array.fold_left
         (fun acc c ->
           let p = float_of_int c /. t in
           acc +. (p *. p))
         0.0 counts

let majority counts =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best

let best_split_on_feature ~features ~labels ~n_classes indices feature =
  let n = Array.length indices in
  let order = Array.copy indices in
  Array.sort (fun a b -> compare features.(a).(feature) features.(b).(feature)) order;
  let total_counts = class_counts ~n_classes labels order in
  let left_counts = Array.make n_classes 0 in
  let best = ref None in
  for i = 0 to n - 2 do
    let idx = order.(i) in
    left_counts.(labels.(idx)) <- left_counts.(labels.(idx)) + 1;
    let v = features.(idx).(feature) and v' = features.(order.(i + 1)).(feature) in
    if v < v' then begin
      let n_left = i + 1 in
      let n_right = n - n_left in
      let right_counts = Array.mapi (fun c total -> total - left_counts.(c)) total_counts in
      let score =
        (float_of_int n_left *. gini_of_counts left_counts n_left
        +. float_of_int n_right *. gini_of_counts right_counts n_right)
        /. float_of_int n
      in
      let threshold = (v +. v') /. 2.0 in
      match !best with
      | Some (_, s) when s <= score -> ()
      | _ -> best := Some (threshold, score)
    end
  done;
  !best

let train_tree ?(params = Decision_tree.default_params) ~rng ~n_classes ~features ~labels () =
  if Array.length features = 0 then invalid_arg "Reference.train_tree: no samples";
  if Array.length features <> Array.length labels then
    invalid_arg "Reference.train_tree: features/labels length mismatch";
  let n_features = Array.length features.(0) in
  let n_root = float_of_int (Array.length features) in
  let gains = Array.make n_features 0.0 in
  let next_leaf = ref 0 in
  let max_depth_seen = ref 0 in
  let make_leaf counts total depth =
    if depth > !max_depth_seen then max_depth_seen := depth;
    let id = !next_leaf in
    incr next_leaf;
    let dist = Array.map (fun c -> float_of_int c /. float_of_int (max 1 total)) counts in
    Leaf { id; label = majority counts; dist }
  in
  let feature_candidates () =
    match params.Decision_tree.features_per_split with
    | None -> Array.init n_features (fun i -> i)
    | Some k -> Rng.sample_without_replacement rng (min k n_features) n_features
  in
  let rec grow indices depth =
    let total = Array.length indices in
    let counts = class_counts ~n_classes labels indices in
    let pure = Array.exists (fun c -> c = total) counts in
    if
      pure
      || depth >= params.Decision_tree.max_depth
      || total < 2 * params.Decision_tree.min_samples_leaf
    then make_leaf counts total depth
    else begin
      let best = ref None in
      Array.iter
        (fun f ->
          match best_split_on_feature ~features ~labels ~n_classes indices f with
          | None -> ()
          | Some (threshold, score) -> (
              match !best with
              | Some (_, _, s) when s <= score -> ()
              | _ -> best := Some (f, threshold, score)))
        (feature_candidates ());
      match !best with
      | None -> make_leaf counts total depth
      | Some (feature, threshold, score) ->
          let left_idx =
            Array.of_list
              (List.filter (fun i -> features.(i).(feature) <= threshold) (Array.to_list indices))
          in
          let right_idx =
            Array.of_list
              (List.filter (fun i -> features.(i).(feature) > threshold) (Array.to_list indices))
          in
          if
            Array.length left_idx < params.Decision_tree.min_samples_leaf
            || Array.length right_idx < params.Decision_tree.min_samples_leaf
          then make_leaf counts total depth
          else begin
            let parent_gini = gini_of_counts counts total in
            gains.(feature) <-
              gains.(feature) +. ((parent_gini -. score) *. float_of_int total /. n_root);
            let left = grow left_idx (depth + 1) in
            let right = grow right_idx (depth + 1) in
            Split { feature; threshold; left; right }
          end
    end
  in
  let root = grow (Array.init (Array.length features) (fun i -> i)) 0 in
  { root; n_leaves = !next_leaf; depth = !max_depth_seen; gains }

let rec descend node x =
  match node with
  | Leaf _ -> node
  | Split { feature; threshold; left; right } ->
      if x.(feature) <= threshold then descend left x else descend right x

let tree_predict t x =
  match descend t.root x with Leaf { label; _ } -> label | Split _ -> assert false

let tree_leaf_id t x =
  match descend t.root x with Leaf { id; _ } -> id | Split _ -> assert false

type forest = { trees : tree array; n_classes : int }

let train_forest ?(params = Random_forest.default_params) ~n_classes ~features ~labels () =
  let n = Array.length features in
  if n = 0 then invalid_arg "Reference.train_forest: no samples";
  let n_features = Array.length features.(0) in
  let per_split =
    match params.Random_forest.features_per_split with
    | `All -> None
    | `Sqrt -> Some (max 1 (int_of_float (sqrt (float_of_int n_features))))
    | `N k -> Some (max 1 k)
  in
  let tree_params =
    {
      Decision_tree.max_depth = params.Random_forest.max_depth;
      min_samples_leaf = params.Random_forest.min_samples_leaf;
      features_per_split = per_split;
    }
  in
  let master = Rng.create params.Random_forest.seed in
  let rngs = Array.init params.Random_forest.n_trees (fun _ -> Rng.split master) in
  let train_one rng =
    let boot_features = Array.make n features.(0) in
    let boot_labels = Array.make n 0 in
    for i = 0 to n - 1 do
      let j = Rng.int rng n in
      boot_features.(i) <- features.(j);
      boot_labels.(i) <- labels.(j)
    done;
    train_tree ~params:tree_params ~rng ~n_classes ~features:boot_features ~labels:boot_labels ()
  in
  { trees = Array.map train_one rngs; n_classes }

let forest_predict t x =
  let votes = Array.make t.n_classes 0 in
  Array.iter
    (fun tree ->
      let c = tree_predict tree x in
      votes.(c) <- votes.(c) + 1)
    t.trees;
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best

let forest_fingerprint t x = Array.map (fun tree -> tree_leaf_id tree x) t.trees

let forest_importance t =
  let n_features =
    match Array.length t.trees with 0 -> 0 | _ -> Array.length t.trees.(0).gains
  in
  let acc = Array.make n_features 0.0 in
  Array.iter (fun tree -> Array.iteri (fun i g -> acc.(i) <- acc.(i) +. g) tree.gains) t.trees;
  let total = Array.fold_left ( +. ) 0.0 acc in
  if total <= 0.0 then acc else Array.map (fun v -> v /. total) acc
