module Rng = Stob_util.Rng
module Pool = Stob_par.Pool

type params = {
  n_trees : int;
  max_depth : int;
  min_samples_leaf : int;
  features_per_split : [ `Sqrt | `All | `N of int ];
  seed : int;
}

let default_params =
  { n_trees = 100; max_depth = 32; min_samples_leaf = 1; features_per_split = `Sqrt; seed = 0 }

type t = { trees : Decision_tree.t array; n_classes : int }

let train_m ?(params = default_params) ?(pool = Pool.sequential) ~n_classes ~matrix ~labels () =
  let n = Matrix.n_rows matrix in
  if n = 0 then invalid_arg "Random_forest.train: no samples";
  if Array.length labels <> n then
    invalid_arg "Random_forest.train: labels/matrix length mismatch";
  let n_features = Matrix.n_cols matrix in
  let per_split =
    match params.features_per_split with
    | `All -> None
    | `Sqrt -> Some (max 1 (int_of_float (sqrt (float_of_int n_features))))
    | `N k -> Some (max 1 k)
  in
  let tree_params =
    {
      Decision_tree.max_depth = params.max_depth;
      min_samples_leaf = params.min_samples_leaf;
      features_per_split = per_split;
    }
  in
  (* The column matrix and its presort are immutable: one copy is shared
     by every tree and every domain.  A tree allocates only its bootstrap
     index array (plus the trainer's per-tree scratch) — no row copies. *)
  let orders = Matrix.presorted matrix in
  let master = Rng.create params.seed in
  (* Pre-split one generator per tree, in tree order; [split] only consumes
     the master stream, so this matches the sequential interleaving
     bit-for-bit and makes per-tree training order-independent. *)
  let rngs = Array.init params.n_trees (fun _ -> Rng.split master) in
  let train_tree rng =
    let sample = Array.make n 0 in
    for i = 0 to n - 1 do
      sample.(i) <- Rng.int rng n
    done;
    Decision_tree.train_presorted ~params:tree_params ~rng ~n_classes ~matrix ~labels ~sample
      ~orders ()
  in
  { trees = Pool.map pool train_tree rngs; n_classes }

let train ?params ?pool ~n_classes ~features ~labels () =
  if Array.length features = 0 then invalid_arg "Random_forest.train: no samples";
  train_m ?params ?pool ~n_classes ~matrix:(Matrix.of_rows features) ~labels ()

let predict_proba t x =
  let acc = Array.make t.n_classes 0.0 in
  Array.iter (fun tree -> Decision_tree.add_dist tree x ~into:acc) t.trees;
  let n = float_of_int (Array.length t.trees) in
  for c = 0 to t.n_classes - 1 do
    acc.(c) <- acc.(c) /. n
  done;
  acc

let vote_argmax votes =
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best

let predict t x =
  let votes = Array.make t.n_classes 0 in
  Array.iter
    (fun tree ->
      let c = Decision_tree.predict tree x in
      votes.(c) <- votes.(c) + 1)
    t.trees;
  vote_argmax votes

let predict_all t m =
  let votes = Array.make t.n_classes 0 in
  Array.init (Matrix.n_rows m) (fun row ->
      Array.fill votes 0 t.n_classes 0;
      Array.iter
        (fun tree ->
          let c = Decision_tree.predict_m tree m row in
          votes.(c) <- votes.(c) + 1)
        t.trees;
      vote_argmax votes)

let leaf_fingerprint t x = Array.map (fun tree -> Decision_tree.leaf_id tree x) t.trees

let leaf_fingerprint_m t m row =
  Array.map (fun tree -> Decision_tree.leaf_id_m tree m row) t.trees

let leaf_fingerprints t m = Array.init (Matrix.n_rows m) (fun row -> leaf_fingerprint_m t m row)

let n_trees t = Array.length t.trees
let n_classes t = t.n_classes

let trees t = Array.copy t.trees

let feature_importance t =
  let n_features =
    match Array.length t.trees with
    | 0 -> 0
    | _ -> Array.length (Decision_tree.feature_gains t.trees.(0))
  in
  let acc = Array.make n_features 0.0 in
  Array.iter
    (fun tree ->
      Array.iteri (fun i g -> acc.(i) <- acc.(i) +. g) (Decision_tree.feature_gains tree))
    t.trees;
  let total = Array.fold_left ( +. ) 0.0 acc in
  if total <= 0.0 then acc else Array.map (fun v -> v /. total) acc
