(** Column-major feature matrices for the classifier hot path.

    The trainers and batch predictors in this library work on a dense
    [n_rows x n_cols] matrix stored one {e unboxed} [floatarray] per
    column, so a split scan over one feature walks contiguous memory
    instead of chasing one boxed row pointer per sample.  A matrix is
    immutable after construction and safe to share across domains.

    {!presorted} computes the classic CART presort — for every column,
    the row indices ordered by value with a monomorphic float comparator
    — once per matrix; forests reuse it for every tree and bootstrap
    sample instead of re-sorting per node. *)

type t

val of_rows : float array array -> t
(** [of_rows rows] transposes a row-major sample array (one [float array]
    per sample, the historical representation) into column storage.  All
    rows must share a length; raises [Invalid_argument] otherwise.  An
    empty array yields the [0 x 0] matrix. *)

val n_rows : t -> int
val n_cols : t -> int

val get : t -> int -> int -> float
(** [get m row col].  Bounds-checked. *)

val col : t -> int -> floatarray
(** The raw column — {b do not mutate}.  For read-only hot loops. *)

val row : t -> int -> float array
(** Materialize one row (fresh array); for interop with row-based APIs. *)

val presorted : t -> int array array
(** [presorted m] is one array per column holding the row indices of [m]
    sorted by that column's value under [Float.compare] (total order,
    NaN first).  Row order within runs of equal values is unspecified —
    split results never depend on it.  O(cols x rows log rows); compute
    once and share. *)
