(** k-nearest-neighbour classification over leaf fingerprints.

    k-FP's open-world classifier: a test instance's forest fingerprint is
    compared to every training fingerprint by Hamming distance; the label
    is the majority among the k closest.

    Neighbour order — and therefore every tie — is governed by the
    lexicographic [(distance, training index)] order with explicit int
    comparisons: among equal distances, the sample that appeared {e
    earlier in the training set} wins.  (The seed implementation sorted
    [(distance, label)] tuples with polymorphic [compare], which broke
    ties by label value; that behaviour was an accident of representation
    and is pinned against by a regression test.)  Selection is a bounded
    top-k pass, not a full sort of the distance array. *)

val hamming : int array -> int array -> int
(** Number of differing positions.  Raises on length mismatch. *)

type t

val create : fingerprints:int array array -> labels:int array -> n_classes:int -> t

val classify : t -> k:int -> int array -> int
(** Majority label among the [k] nearest training fingerprints (ties
    between classes break toward the smaller class index). *)

val nearest : t -> k:int -> int array -> (int * int) list
(** The [k] nearest as [(label, distance)] pairs, closest first, ordered
    by [(distance, training index)]. *)
