let hamming a b =
  if Array.length a <> Array.length b then invalid_arg "Knn.hamming: length mismatch";
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then incr d
  done;
  !d

type t = { fingerprints : int array array; labels : int array; n_classes : int }

let create ~fingerprints ~labels ~n_classes =
  if Array.length fingerprints <> Array.length labels then
    invalid_arg "Knn.create: fingerprints/labels length mismatch";
  if Array.length fingerprints = 0 then invalid_arg "Knn.create: empty training set";
  { fingerprints; labels; n_classes }

(* Bounded top-k selection, ordered by (distance, training index) with
   explicit int comparisons: the k best live in [bd]/[bi] as a sorted
   prefix; insertion shifts only past strictly-greater distances, and a
   candidate that merely ties the current worst is rejected — so among
   equal distances the earliest training samples win, and the result is
   independent of label values.  O(n k) worst case with k small, no
   full-array sort, no tuple allocation. *)
let nearest t ~k x =
  let n = Array.length t.fingerprints in
  let k = min k n in
  if k <= 0 then []
  else begin
    let bd = Array.make k 0 and bi = Array.make k 0 in
    let filled = ref 0 in
    for i = 0 to n - 1 do
      let d = hamming t.fingerprints.(i) x in
      let limit =
        if !filled < k then begin
          incr filled;
          !filled - 1
        end
        else if d < bd.(k - 1) then k - 1
        else -1
      in
      if limit >= 0 then begin
        let pos = ref limit in
        while !pos > 0 && bd.(!pos - 1) > d do
          decr pos
        done;
        for j = limit downto !pos + 1 do
          bd.(j) <- bd.(j - 1);
          bi.(j) <- bi.(j - 1)
        done;
        bd.(!pos) <- d;
        bi.(!pos) <- i
      end
    done;
    List.init k (fun j -> (t.labels.(bi.(j)), bd.(j)))
  end

let classify t ~k x =
  let votes = Array.make t.n_classes 0 in
  List.iter (fun (l, _) -> votes.(l) <- votes.(l) + 1) (nearest t ~k x);
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best
