(** CART decision trees (Gini impurity) with random feature subsets.

    The building block of the random forest behind k-FP.  Trees grow fully
    (until purity or the configured limits) on bootstrap samples; at each
    split only a random subset of features is considered, which is what
    decorrelates the forest's trees.

    Training uses classic CART presorting over a column-major
    {!Matrix.t}: every feature is sorted once per matrix (shared across a
    whole forest), node splits walk the precomputed orders with
    incremental class counts, and children are carved out by stable
    in-place partition — no per-node sorting, no list round-trips, no
    allocation in the scan loop.  The produced trees are bit-identical to
    the seed's naive row-major trainer (kept as {!Reference}); the
    tie-breaking rules that guarantee this are documented in HACKING.md
    ("Classifier hot path") and pinned by the parity battery in
    [test/test_ml.ml]. *)

type params = {
  max_depth : int;
  min_samples_leaf : int;
  features_per_split : int option;
      (** [None] = all features; forests pass ~sqrt(n_features). *)
}

val default_params : params
(** Depth 32, leaf size 1, all features. *)

type t

val train :
  ?params:params ->
  rng:Stob_util.Rng.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** [features] is row-major: one float array per sample.  All rows must
    share a length; labels must lie in [\[0, n_classes)].  Convenience
    wrapper: builds the column matrix and presort, then calls
    {!train_presorted} on the identity sample. *)

val train_presorted :
  ?params:params ->
  rng:Stob_util.Rng.t ->
  n_classes:int ->
  matrix:Matrix.t ->
  labels:int array ->
  sample:int array ->
  orders:int array array ->
  unit ->
  t
(** The forest hot path.  [matrix] and [orders = Matrix.presorted matrix]
    are immutable and shared across trees and domains; [sample] maps each
    bootstrap position to a matrix row (duplicates welcome); [labels] is
    indexed by matrix row.  Only per-tree scratch is allocated. *)

val predict : t -> float array -> int
val predict_dist : t -> float array -> float array
(** Class distribution at the reached leaf (fresh copy). *)

val add_dist : t -> float array -> into:float array -> unit
(** Accumulate the reached leaf's distribution into [into] without
    copying — the forest [predict_proba] hot path.  [into] must have at
    least [n_classes] slots. *)

val leaf_id : t -> float array -> int
(** Identifier of the leaf a sample lands in (k-FP's fingerprint element).
    Leaves are numbered consecutively from 0 in construction order. *)

val predict_m : t -> Matrix.t -> int -> int
(** [predict_m t m row]: {!predict} reading row [row] of a column matrix
    directly — batch inference without materializing rows. *)

val leaf_id_m : t -> Matrix.t -> int -> int

val n_leaves : t -> int
val depth : t -> int

val feature_gains : t -> float array
(** Per-feature total impurity decrease (Gini importance), weighted by the
    fraction of training samples reaching each split.  Length equals the
    training feature count. *)

val fold :
  t ->
  leaf:(id:int -> label:int -> dist:float array -> 'a) ->
  split:(feature:int -> threshold:float -> 'a -> 'a -> 'a) ->
  'a
(** Bottom-up structural fold, used by the parity tests to compare a tree
    against the {!Reference} oracle node-for-node. *)
