(** Random forests: bagged CART trees with random feature subsets.

    This is the classifier inside k-FP (Hayes & Danezis): each tree trains
    on a bootstrap resample considering ~sqrt(d) features per split;
    classification is the majority vote.  [leaf_fingerprint] exposes the
    per-tree leaf identifiers — the "fingerprint" that gives k-FP its name,
    used with Hamming-distance k-NN in the open-world attack variant.

    Training runs on the column-major presorted path ({!Matrix},
    {!Decision_tree.train_presorted}): the matrix and its per-feature
    presort are built once and shared — immutably — across all trees and
    worker domains; each tree draws only a bootstrap {e index} array
    instead of copying row pointers. *)

type params = {
  n_trees : int;
  max_depth : int;
  min_samples_leaf : int;
  features_per_split : [ `Sqrt | `All | `N of int ];
  seed : int;
}

val default_params : params
(** 100 trees, depth 32, leaf 1, sqrt features, seed 0. *)

type t

val train :
  ?params:params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** Row-major convenience wrapper over {!train_m} ([Matrix.of_rows] once,
    then the shared-presort path). *)

val train_m :
  ?params:params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  matrix:Matrix.t ->
  labels:int array ->
  unit ->
  t
(** [?pool] parallelizes per-tree training.  The per-tree generators are
    pre-split from the seed in tree order, so the forest is bit-identical
    for any domain count (and to the historical sequential behavior).
    Build the matrix once per fold and share it — it is read-only. *)

val predict : t -> float array -> int
(** Majority vote over the trees (ties break toward the lower label). *)

val predict_all : t -> Matrix.t -> int array
(** Batch {!predict} over every row of a test matrix (one reusable vote
    buffer, no row materialization). *)

val predict_proba : t -> float array -> float array
(** Mean leaf class distribution over trees (accumulated in place — no
    per-tree copies). *)

val leaf_fingerprint : t -> float array -> int array
(** One leaf id per tree. *)

val leaf_fingerprint_m : t -> Matrix.t -> int -> int array
(** [leaf_fingerprint] for one row of a column matrix. *)

val leaf_fingerprints : t -> Matrix.t -> int array array
(** Batch fingerprints for every row of a matrix. *)

val feature_importance : t -> float array
(** Mean Gini importance over the trees, normalized to sum to 1 (all zeros
    for a forest of stumps that never split). *)

val n_trees : t -> int
val n_classes : t -> int

val trees : t -> Decision_tree.t array
(** The individual trees, in training order (fresh array, shared trees) —
    for the parity battery and the forest benchmark. *)
