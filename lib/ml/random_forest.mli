(** Random forests: bagged CART trees with random feature subsets.

    This is the classifier inside k-FP (Hayes & Danezis): each tree trains
    on a bootstrap resample considering ~sqrt(d) features per split;
    classification is the majority vote.  [leaf_fingerprint] exposes the
    per-tree leaf identifiers — the "fingerprint" that gives k-FP its name,
    used with Hamming-distance k-NN in the open-world attack variant. *)

type params = {
  n_trees : int;
  max_depth : int;
  min_samples_leaf : int;
  features_per_split : [ `Sqrt | `All | `N of int ];
  seed : int;
}

val default_params : params
(** 100 trees, depth 32, leaf 1, sqrt features, seed 0. *)

type t

val train :
  ?params:params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** [?pool] parallelizes per-tree training.  The per-tree generators are
    pre-split from the seed in tree order, so the forest is bit-identical
    for any domain count (and to the historical sequential behavior). *)

val predict : t -> float array -> int
(** Majority vote over the trees (ties break toward the lower label). *)

val predict_proba : t -> float array -> float array
(** Mean leaf class distribution over trees. *)

val leaf_fingerprint : t -> float array -> int array
(** One leaf id per tree. *)

val feature_importance : t -> float array
(** Mean Gini importance over the trees, normalized to sum to 1 (all zeros
    for a forest of stumps that never split). *)

val n_trees : t -> int
val n_classes : t -> int
