module Rng = Stob_util.Rng

type params = { max_depth : int; min_samples_leaf : int; features_per_split : int option }

let default_params = { max_depth = 32; min_samples_leaf = 1; features_per_split = None }

type leaf = { id : int; label : int; dist : float array }

type node = Leaf of leaf | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_leaves : int; depth : int; gains : float array }

(* Gini impurity over counts.(0 .. n_classes-1).  The accumulation order
   matches the seed trainer's [Array.fold_left] exactly so that split
   scores — and therefore tie-breaking — stay bit-identical. *)
let gini_counts counts n_classes total =
  if total = 0 then 0.0
  else begin
    let t = float_of_int total in
    let acc = ref 0.0 in
    for c = 0 to n_classes - 1 do
      let p = float_of_int (Array.unsafe_get counts c) /. t in
      acc := !acc +. (p *. p)
    done;
    1.0 -. !acc
  end

let majority counts =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best

(* Presorted CART.  Instead of re-sorting the node's samples per feature
   per node (the seed's O(depth x features x n log n) with polymorphic
   [compare] on boxed rows), each tree keeps, per feature, its bootstrap
   positions in ascending value order.  The orders are derived once from
   the matrix-wide presort shared by the whole forest, and every split
   maintains them by a stable in-place partition of ints — values are
   gathered from the (cache-resident) columns on demand, so partitions
   move no floats at all.  Children that are provably leaves (pure,
   depth-capped or below the size floor — all decidable from class counts
   alone) never get their segments partitioned, which prunes the d x m
   partition cost exactly where fully-grown trees spend it: the bottom
   levels.

   Determinism contract (bit-for-bit with the seed trainer, pinned by the
   Reference parity battery in test/test_ml.ml):
   - boundaries are considered in ascending value order, only where the
     value strictly increases; thresholds are midpoints [(v +. v') /. 2.];
   - a candidate replaces the incumbent only when strictly better, with
     features scanned in candidate order — first-best wins ties;
   - partitioning sends [value <= threshold] left (by value, not by scan
     position: midpoint rounding can land on the right-hand value);
   - the RNG is consumed once per non-terminal node, in pre-order;
   - leaves are numbered in the seed's construction order (left subtree
     fully before the right child), also when built without recursing. *)
let train_presorted ?(params = default_params) ~rng ~n_classes ~matrix ~labels ~sample ~orders
    () =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Decision_tree.train_presorted: no samples";
  let n_rows = Matrix.n_rows matrix in
  if Array.length labels <> n_rows then
    invalid_arg "Decision_tree.train_presorted: labels/matrix length mismatch";
  let d = Matrix.n_cols matrix in
  if Array.length orders <> d then
    invalid_arg "Decision_tree.train_presorted: orders/matrix column mismatch";
  let n_root = float_of_int n in
  let gains = Array.make d 0.0 in
  (* Bucket bootstrap positions by original row (counting sort) so each
     feature's position order falls out of the shared presort in
     O(n_rows + n), with no per-tree sorting at all. *)
  let row_count = Array.make n_rows 0 in
  Array.iter
    (fun r ->
      if r < 0 || r >= n_rows then invalid_arg "Decision_tree.train_presorted: sample out of range";
      row_count.(r) <- row_count.(r) + 1)
    sample;
  let row_start = Array.make n_rows 0 in
  let acc = ref 0 in
  for r = 0 to n_rows - 1 do
    row_start.(r) <- !acc;
    acc := !acc + row_count.(r)
  done;
  let row_fill = Array.copy row_start in
  let row_pos = Array.make n 0 in
  Array.iteri
    (fun p r ->
      row_pos.(row_fill.(r)) <- p;
      row_fill.(r) <- row_fill.(r) + 1)
    sample;
  let ylab = Array.make n 0 in
  Array.iteri (fun p r -> ylab.(p) <- labels.(r)) sample;
  let cols = Array.init d (fun f -> Matrix.col matrix f) in
  (* Value of bootstrap position [p] under column [col]. *)
  let value col p = Float.Array.unsafe_get col (Array.unsafe_get sample p) in
  (* Column-major per-tree state: segment f of [order] holds the tree's
     positions sorted by feature f. *)
  let order = Array.make (max 1 (d * n)) 0 in
  for f = 0 to d - 1 do
    let ord_f = orders.(f) in
    let j = ref (f * n) in
    for idx = 0 to n_rows - 1 do
      let r = Array.unsafe_get ord_f idx in
      let c = Array.unsafe_get row_count r in
      (* c = 1 is the common bootstrap case; the loop handles duplicates. *)
      if c = 1 then begin
        Array.unsafe_set order !j (Array.unsafe_get row_pos (Array.unsafe_get row_start r));
        incr j
      end
      else if c > 1 then begin
        let s = Array.unsafe_get row_start r in
        for k = 0 to c - 1 do
          Array.unsafe_set order !j (Array.unsafe_get row_pos (s + k));
          incr j
        done
      end
    done
  done;
  (* Node membership (any order) — the one list that exists even with
     zero features — plus reusable scratch for partitions and counts. *)
  let pos = Array.init n (fun p -> p) in
  let mask = Bytes.make n '\000' in
  let sc_i = Array.make n 0 in
  let node_counts = Array.make n_classes 0 in
  let left_counts = Array.make n_classes 0 in
  let right_counts = Array.make n_classes 0 in
  let best_feature = ref (-1) in
  let best_threshold = ref 0.0 in
  let best_score = ref infinity in
  let best_found = ref false in
  (* Exact-score pre-filter.  The seed accepts a boundary iff its
     computed float score strictly beats the incumbent's.  Minimizing the
     exact score over a node is equivalent to maximizing
     G = Sl/nl + Sr/nr, where Sl/Sr are the sums of squared left/right
     class counts — a rational [g_num/g_den] in pure integers,
     maintained in O(1) per sample.  The seed's computed score sits
     within E < 5e-15 (absolute) of the exact score — a few dozen IEEE
     roundings over values in [0, 1] — so whenever the candidate's exact
     score trails the incumbent's by at least 2E, its computed score
     cannot win the strict [<] test, and the candidate is rejected on
     integer arithmetic alone.  Exact ties and near-ties (within the
     slack) fall through to the seed's division-heavy float formula and
     its accept test verbatim, so rounding collisions resolve exactly as
     the seed resolves them.  In score units the slack is 1e-13 — two
     orders of magnitude above the bound.  Cross products stay under
     2^62 for node sizes up to ~8k; larger nodes skip the filter. *)
  let best_gnum = ref 0 in
  let best_gden = ref 1 in
  let sq_node = ref 0 in
  let sl = ref 0 in
  let sr = ref 0 in
  let scan_feature f lo hi total =
    Array.fill left_counts 0 n_classes 0;
    Array.blit node_counts 0 right_counts 0 n_classes;
    sl := 0;
    sr := !sq_node;
    let exact_filter = total <= 8192 in
    let col = Array.unsafe_get cols f in
    let base = f * n in
    let ftotal = float_of_int total in
    let prev = ref (value col (Array.unsafe_get order (base + lo))) in
    for i = lo to hi - 2 do
      let p = Array.unsafe_get order (base + i) in
      let l = Array.unsafe_get ylab p in
      (* Counts and squared sums move one sample at a time — integer
         arithmetic is exact, identical to a recompute. *)
      let lc = Array.unsafe_get left_counts l in
      let rc = Array.unsafe_get right_counts l in
      Array.unsafe_set left_counts l (lc + 1);
      Array.unsafe_set right_counts l (rc - 1);
      sl := !sl + (2 * lc) + 1;
      sr := !sr - (2 * rc) + 1;
      let v = !prev in
      let v' = value col (Array.unsafe_get order (base + i + 1)) in
      prev := v';
      if v < v' then begin
        let n_left = i - lo + 1 in
        let n_right = total - n_left in
        let g_num = (!sl * n_right) + (!sr * n_left) in
        let g_den = n_left * n_right in
        if
          (not !best_found)
          || (not exact_filter)
          || float_of_int ((!best_gnum * g_den) - (g_num * !best_gden))
             < 1e-13 *. ftotal *. float_of_int !best_gden
               *. float_of_int g_den
        then begin
          let score =
            (float_of_int n_left *. gini_counts left_counts n_classes n_left
            +. float_of_int n_right *. gini_counts right_counts n_classes n_right)
            /. ftotal
          in
          if (not !best_found) || score < !best_score then begin
            best_found := true;
            best_feature := f;
            best_threshold := (v +. v') /. 2.0;
            best_score := score;
            best_gnum := g_num;
            best_gden := g_den
          end
        end
      end
    done
  in
  let next_leaf = ref 0 in
  let max_depth_seen = ref 0 in
  let fresh_leaf ~label ~dist depth =
    if depth > !max_depth_seen then max_depth_seen := depth;
    let id = !next_leaf in
    incr next_leaf;
    Leaf { id; label; dist }
  in
  let leaf_dist counts total =
    Array.map (fun c -> float_of_int c /. float_of_int (max 1 total)) counts
  in
  let make_leaf counts total depth =
    fresh_leaf ~label:(majority counts) ~dist:(leaf_dist counts total) depth
  in
  let feature_candidates () =
    match params.features_per_split with
    | None -> Array.init d (fun i -> i)
    | Some k -> Rng.sample_without_replacement rng (min k d) d
  in
  (* A child whose class counts are already known is a leaf — without
     scanning — iff it is too small to split, depth-capped, or pure. *)
  let child_is_leaf counts total depth =
    total < 2 * params.min_samples_leaf
    || depth >= params.max_depth
    || Array.exists (fun c -> c = total) counts
  in
  let rec grow lo hi depth =
    let total = hi - lo in
    Array.fill node_counts 0 n_classes 0;
    for j = lo to hi - 1 do
      let l = Array.unsafe_get ylab (Array.unsafe_get pos j) in
      Array.unsafe_set node_counts l (Array.unsafe_get node_counts l + 1)
    done;
    let pure = Array.exists (fun c -> c = total) node_counts in
    if pure || depth >= params.max_depth || total < 2 * params.min_samples_leaf then
      make_leaf node_counts total depth
    else begin
      best_found := false;
      best_score := infinity;
      sq_node := 0;
      for c = 0 to n_classes - 1 do
        let k = Array.unsafe_get node_counts c in
        sq_node := !sq_node + (k * k)
      done;
      Array.iter (fun f -> scan_feature f lo hi total) (feature_candidates ());
      if not !best_found then make_leaf node_counts total depth
      else begin
        let bf = !best_feature and thr = !best_threshold and score = !best_score in
        let bbase = bf * n in
        let bcol = Array.unsafe_get cols bf in
        let going_left = ref 0 in
        for j = lo to hi - 1 do
          let p = Array.unsafe_get order (bbase + j) in
          if value bcol p <= thr then begin
            Bytes.unsafe_set mask p '\001';
            incr going_left
          end
          else Bytes.unsafe_set mask p '\000'
        done;
        let n_left = !going_left in
        let n_right = total - n_left in
        if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf then
          make_leaf node_counts total depth
        else begin
          (* Gini importance: impurity decrease weighted by node mass. *)
          let parent_gini = gini_counts node_counts n_classes total in
          gains.(bf) <- gains.(bf) +. ((parent_gini -. score) *. float_of_int total /. n_root);
          let mid = lo + n_left in
          let child_depth = depth + 1 in
          (* Child class counts from the mask, so immediate leaves need no
             partitioned segments at all. *)
          Array.fill left_counts 0 n_classes 0;
          for j = lo to hi - 1 do
            let p = Array.unsafe_get pos j in
            if Bytes.unsafe_get mask p = '\001' then begin
              let l = Array.unsafe_get ylab p in
              Array.unsafe_set left_counts l (Array.unsafe_get left_counts l + 1)
            end
          done;
          for c = 0 to n_classes - 1 do
            right_counts.(c) <- node_counts.(c) - left_counts.(c)
          done;
          let left_leaf = child_is_leaf left_counts n_left child_depth in
          let right_leaf = child_is_leaf right_counts n_right child_depth in
          if left_leaf && right_leaf then begin
            (* Neither child recurses: skip all partitioning. *)
            let left = make_leaf left_counts n_left child_depth in
            let right = make_leaf right_counts n_right child_depth in
            Split { feature = bf; threshold = thr; left; right }
          end
          else if left_leaf then begin
            (* Only the right child's segments matter: one-sided stable
               partition through the scratch (each side stays sorted). *)
            let left = make_leaf left_counts n_left child_depth in
            (* Branchless: always write, advance the cursor by the mask
               bit — stray writes are overwritten or sit past the end. *)
            for f = 0 to d - 1 do
              let base = f * n in
              let r = ref 0 in
              for j = lo to hi - 1 do
                let p = Array.unsafe_get order (base + j) in
                Array.unsafe_set sc_i !r p;
                r := !r + 1 - Char.code (Bytes.unsafe_get mask p)
              done;
              Array.blit sc_i 0 order (base + mid) !r
            done;
            let r = ref 0 in
            for j = lo to hi - 1 do
              let p = Array.unsafe_get pos j in
              Array.unsafe_set sc_i !r p;
              r := !r + 1 - Char.code (Bytes.unsafe_get mask p)
            done;
            Array.blit sc_i 0 pos mid !r;
            let right = grow mid hi child_depth in
            Split { feature = bf; threshold = thr; left; right }
          end
          else if right_leaf then begin
            (* Only the left child recurses: compact lefts in place
               (writes trail reads).  The right leaf's label and
               distribution are fixed before recursion clobbers the count
               scratch; its id is drawn after the left subtree, matching
               the seed's construction order. *)
            let right_label = majority right_counts in
            let right_dist = leaf_dist right_counts n_right in
            (* Branchless in-place compaction: the write index trails the
               read index, and strays land in the dead right half. *)
            for f = 0 to d - 1 do
              let base = f * n in
              let l = ref lo in
              for j = lo to hi - 1 do
                let p = Array.unsafe_get order (base + j) in
                Array.unsafe_set order (base + !l) p;
                l := !l + Char.code (Bytes.unsafe_get mask p)
              done
            done;
            let l = ref lo in
            for j = lo to hi - 1 do
              let p = Array.unsafe_get pos j in
              Array.unsafe_set pos !l p;
              l := !l + Char.code (Bytes.unsafe_get mask p)
            done;
            let left = grow lo mid child_depth in
            let right = fresh_leaf ~label:right_label ~dist:right_dist child_depth in
            Split { feature = bf; threshold = thr; left; right }
          end
          else begin
            (* Stable in-place partition of every feature segment: lefts
               compact in place (writes trail reads), rights spill into
               the scratch and blit back — each side stays value-sorted.
               Branchless: both targets are written unconditionally and
               the mask bit picks which cursor advances; stray writes are
               overwritten by later elements or by the blit. *)
            for f = 0 to d - 1 do
              let base = f * n in
              let l = ref lo and r = ref 0 in
              for j = lo to hi - 1 do
                let p = Array.unsafe_get order (base + j) in
                Array.unsafe_set order (base + !l) p;
                Array.unsafe_set sc_i !r p;
                let m = Char.code (Bytes.unsafe_get mask p) in
                l := !l + m;
                r := !r + 1 - m
              done;
              Array.blit sc_i 0 order (base + mid) !r
            done;
            let l = ref lo and r = ref 0 in
            for j = lo to hi - 1 do
              let p = Array.unsafe_get pos j in
              Array.unsafe_set pos !l p;
              Array.unsafe_set sc_i !r p;
              let m = Char.code (Bytes.unsafe_get mask p) in
              l := !l + m;
              r := !r + 1 - m
            done;
            Array.blit sc_i 0 pos mid !r;
            let left = grow lo mid child_depth in
            let right = grow mid hi child_depth in
            Split { feature = bf; threshold = thr; left; right }
          end
        end
      end
    end
  in
  let root = grow 0 n 0 in
  { root; n_leaves = !next_leaf; depth = !max_depth_seen; gains }

let train ?(params = default_params) ~rng ~n_classes ~features ~labels () =
  if Array.length features = 0 then invalid_arg "Decision_tree.train: no samples";
  if Array.length features <> Array.length labels then
    invalid_arg "Decision_tree.train: features/labels length mismatch";
  let matrix = Matrix.of_rows features in
  let orders = Matrix.presorted matrix in
  let sample = Array.init (Array.length features) (fun i -> i) in
  train_presorted ~params ~rng ~n_classes ~matrix ~labels ~sample ~orders ()

let rec descend node x =
  match node with
  | Leaf l -> l
  | Split { feature; threshold; left; right } ->
      if x.(feature) <= threshold then descend left x else descend right x

let predict t x = (descend t.root x).label
let predict_dist t x = Array.copy (descend t.root x).dist
let leaf_id t x = (descend t.root x).id

let add_dist t x ~into =
  let dist = (descend t.root x).dist in
  for c = 0 to Array.length dist - 1 do
    into.(c) <- into.(c) +. dist.(c)
  done

let rec descend_m node m row =
  match node with
  | Leaf l -> l
  | Split { feature; threshold; left; right } ->
      if Matrix.get m row feature <= threshold then descend_m left m row
      else descend_m right m row

let predict_m t m row = (descend_m t.root m row).label
let leaf_id_m t m row = (descend_m t.root m row).id

let n_leaves t = t.n_leaves
let depth t = t.depth

let feature_gains t = Array.copy t.gains

let fold t ~leaf ~split =
  let rec go = function
    | Leaf l -> leaf ~id:l.id ~label:l.label ~dist:(Array.copy l.dist)
    | Split { feature; threshold; left; right } -> split ~feature ~threshold (go left) (go right)
  in
  go t.root
