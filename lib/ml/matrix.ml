type t = { n_rows : int; n_cols : int; cols : floatarray array }

let of_rows rows =
  let n_rows = Array.length rows in
  let n_cols = if n_rows = 0 then 0 else Array.length rows.(0) in
  Array.iteri
    (fun i r ->
      if Array.length r <> n_cols then
        invalid_arg
          (Printf.sprintf "Matrix.of_rows: row %d has %d columns, expected %d" i
             (Array.length r) n_cols))
    rows;
  let cols =
    Array.init n_cols (fun c ->
        let col = Float.Array.create n_rows in
        for r = 0 to n_rows - 1 do
          Float.Array.set col r rows.(r).(c)
        done;
        col)
  in
  { n_rows; n_cols; cols }

let n_rows m = m.n_rows
let n_cols m = m.n_cols

let get m r c =
  if r < 0 || r >= m.n_rows then invalid_arg "Matrix.get: row out of bounds";
  Float.Array.get m.cols.(c) r

let col m c = m.cols.(c)

let row m r =
  if r < 0 || r >= m.n_rows then invalid_arg "Matrix.row: out of bounds";
  Array.init m.n_cols (fun c -> Float.Array.get m.cols.(c) r)

let presorted m =
  Array.init m.n_cols (fun c ->
      let col = m.cols.(c) in
      let order = Array.init m.n_rows (fun i -> i) in
      Array.sort (fun a b -> Float.compare (Float.Array.get col a) (Float.Array.get col b)) order;
      order)
