module Pool = Stob_par.Pool

type 'a cell = {
  label : string;
  config : (string * string) list;
  seed : int;
  run : attempt:int -> 'a;
}

type 'a outcome = {
  label : string;
  key : string;
  result : ('a, string) result;
  cached : bool;
  attempts : int;
}

type report = {
  total : int;
  computed : int;
  cached : int;
  retried : int;
  poisoned : (string * string) list;
}

let run ?(pool = Pool.sequential) ?(retries = 0) ?inject ?store ~experiment ~encode ~decode
    cells =
  if retries < 0 then invalid_arg "Supervisor.run: retries must be >= 0";
  let cells = Array.of_list cells in
  let keys =
    Array.map (fun c -> Cell.digest ~experiment ~config:c.config ~seed:c.seed) cells
  in
  let seen = Hashtbl.create (Array.length cells) in
  Array.iteri
    (fun i k ->
      match Hashtbl.find_opt seen k with
      | Some j ->
          invalid_arg
            (Printf.sprintf "Supervisor.run: cells %S and %S share digest %s" cells.(j).label
               cells.(i).label k)
      | None -> Hashtbl.add seen k i)
    keys;
  let cached_status = Array.map (fun k -> Option.bind store (fun s -> Store.find s k)) keys in
  let decode_cached i payload =
    try decode payload
    with e ->
      failwith
        (Printf.sprintf
           "Stob_store: cached cell %S does not decode (%s) — stale state dir from another \
            build? remove it and rerun"
           cells.(i).label (Printexc.to_string e))
  in
  (* Everything not already journaled, in cell order. *)
  let task_idx =
    Array.of_list
      (List.filter (fun i -> cached_status.(i) = None)
         (List.init (Array.length cells) Fun.id))
  in
  let attempt_cell i =
    let c = cells.(i) in
    let rec go attempt =
      match
        (match inject with Some f -> f ~label:c.label ~attempt | None -> ());
        c.run ~attempt
      with
      | v -> (Ok v, attempt + 1)
      | exception e ->
          if attempt < retries then go (attempt + 1)
          else (Error (Printexc.to_string e), attempt + 1)
    in
    go 0
  in
  (* The on-completion hook fires in task-index order whatever the domain
     count, so the journal's record sequence — hence its bytes — is
     jobs-invariant. *)
  let on_done ti ((res : _ result), _attempts) =
    match store with
    | None -> ()
    | Some s ->
        let i = task_idx.(ti) in
        let status =
          match res with Ok v -> Store.Done (encode v) | Error msg -> Store.Poisoned msg
        in
        Store.record s ~key:keys.(i) ~label:cells.(i).label status
  in
  let task_results = Pool.map ~on_done pool attempt_cell task_idx in
  let by_cell = Hashtbl.create (Array.length task_idx) in
  Array.iteri (fun ti i -> Hashtbl.replace by_cell i task_results.(ti)) task_idx;
  List.init (Array.length cells) (fun i ->
      match cached_status.(i) with
      | Some (Store.Done payload) ->
          { label = cells.(i).label; key = keys.(i); result = Ok (decode_cached i payload);
            cached = true; attempts = 0 }
      | Some (Store.Poisoned msg) ->
          { label = cells.(i).label; key = keys.(i); result = Error msg; cached = true;
            attempts = 0 }
      | None ->
          let result, attempts = Hashtbl.find by_cell i in
          { label = cells.(i).label; key = keys.(i); result; cached = false; attempts })

let report (outcomes : _ outcome list) =
  let total = List.length outcomes in
  let cached = List.length (List.filter (fun (o : _ outcome) -> o.cached) outcomes) in
  let retried = List.length (List.filter (fun (o : _ outcome) -> o.attempts > 1) outcomes) in
  let poisoned =
    List.filter_map
      (fun (o : _ outcome) ->
        match o.result with Error msg -> Some (o.label, msg) | Ok _ -> None)
      outcomes
  in
  let fresh_poisoned =
    List.length
      (List.filter (fun (o : _ outcome) -> (not o.cached) && Result.is_error o.result) outcomes)
  in
  { total; computed = total - cached - fresh_poisoned; cached; retried; poisoned }

let pp_report ppf r =
  Format.fprintf ppf "%d cells: %d computed, %d cached, %d retried, %d poisoned" r.total
    r.computed r.cached r.retried
    (List.length r.poisoned);
  List.iter (fun (label, msg) -> Format.fprintf ppf "@.  poisoned %s: %s" label msg) r.poisoned
