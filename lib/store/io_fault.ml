module Rng = Stob_util.Rng

exception Crash of int

type plan = {
  seed : int;
  crash_at : int option;
  short_writes : bool;
  transient : (Unix.error * int * int) option;
  fail_from : (Unix.error * int) option;
  rename_fails : int;
}

let quiet =
  { seed = 0; crash_at = None; short_writes = false; transient = None; fail_from = None;
    rename_fails = 0 }

type t = {
  plan : plan;
  base : Vfs.t;
  short_rng : Rng.t;
  crash_rng : Rng.t;
  mutable ops : int;
  mutable wf_seq : int;  (* write/flush calls seen, for transient periods *)
  mutable burst_left : int;  (* remaining transient failures in the current burst *)
  mutable renames_failed : int;
  mutable dead : bool;
  mutable crash_op : int;
  mutable injected : int;
}

let arm ?(base = Vfs.unix) plan =
  (* Pre-split per concern, Stob_sim.Fault-style: the crash prefix draw
     does not move if the short-write stream consumes more or fewer
     values. *)
  let root = Rng.create plan.seed in
  let short_rng = Rng.split root in
  let crash_rng = Rng.split root in
  { plan; base; short_rng; crash_rng; ops = 0; wf_seq = 0; burst_left = 0; renames_failed = 0;
    dead = false; crash_op = 0; injected = 0 }

let ops t = t.ops
let crashed t = t.dead
let injected t = t.injected

let die t =
  t.dead <- true;
  t.crash_op <- t.ops;
  t.injected <- t.injected + 1;
  raise (Crash t.ops)

(* Count one boundary; returns true when this is the crash boundary.  The
   caller decides what "dying here" means (plain ops raise immediately,
   writes first emit a seeded prefix). *)
let boundary t =
  if t.dead then raise (Crash t.crash_op);
  t.ops <- t.ops + 1;
  match t.plan.crash_at with Some k when t.ops = k -> true | _ -> false

(* Transient / persistent error injection shared by write and flush. *)
let write_side_fault t ~syscall ~path =
  (match t.plan.fail_from with
  | Some (err, k) when t.ops >= k ->
      t.injected <- t.injected + 1;
      raise (Unix.Unix_error (err, syscall, path))
  | _ -> ());
  t.wf_seq <- t.wf_seq + 1;
  if t.burst_left > 0 then begin
    t.burst_left <- t.burst_left - 1;
    match t.plan.transient with
    | Some (err, _, _) ->
        t.injected <- t.injected + 1;
        raise (Unix.Unix_error (err, syscall, path))
    | None -> ()
  end
  else
    match t.plan.transient with
    | Some (err, period, times) when period > 0 && t.wf_seq mod period = 0 ->
        t.burst_left <- times - 1;
        t.injected <- t.injected + 1;
        raise (Unix.Unix_error (err, syscall, path))
    | _ -> ()

let plain t f =
  if boundary t then die t;
  f ()

let vfs t =
  let b = t.base in
  {
    Vfs.open_append = (fun path -> plain t (fun () -> b.Vfs.open_append path));
    open_trunc = (fun path -> plain t (fun () -> b.Vfs.open_trunc path));
    write =
      (fun fd buf ~pos ~len ->
        if boundary t then begin
          (* Die mid-write: a seeded prefix of the buffer reaches the
             file — the torn-tail case recovery must absorb. *)
          let prefix = if len = 0 then 0 else Rng.int t.crash_rng len in
          if prefix > 0 then Vfs.write_all b fd (Bytes.sub buf pos prefix);
          die t
        end;
        write_side_fault t ~syscall:"write" ~path:"<fd>";
        let len =
          if t.plan.short_writes && len > 1 then begin
            let cut = 1 + Rng.int t.short_rng len in
            if cut < len then t.injected <- t.injected + 1;
            min cut len
          end
          else len
        in
        b.Vfs.write fd buf ~pos ~len);
    flush =
      (fun fd ->
        if boundary t then die t;
        write_side_fault t ~syscall:"flush" ~path:"<fd>";
        b.Vfs.flush fd);
    close =
      (fun fd ->
        (* No-op after death so finalizers unwind cleanly; a crash at
           the close boundary itself is still a real crash point. *)
        if t.dead then ()
        else if boundary t then die t
        else b.Vfs.close fd);
    rename =
      (fun src dst ->
        if boundary t then die t;
        if t.renames_failed < t.plan.rename_fails then begin
          t.renames_failed <- t.renames_failed + 1;
          t.injected <- t.injected + 1;
          raise (Unix.Unix_error (Unix.EIO, "rename", src))
        end;
        b.Vfs.rename src dst);
    truncate = (fun path len -> plain t (fun () -> b.Vfs.truncate path len));
    file_size = b.Vfs.file_size;  (* read-only: not a boundary *)
    remove = (fun path -> plain t (fun () -> b.Vfs.remove path));
  }
