(** Supervised cell execution: run a sweep's cells through a
    {!Stob_par.Pool}, serving finished cells from the {!Store} cache and
    journaling each newly computed one the moment it completes — in
    deterministic cell-index order, so the journal bytes (and of course
    the results) are identical at every [--jobs] level.

    {b Retries and poisoning.}  A cell whose [run] raises — including
    [Stob_sim.Fault.Injected] under chaos and the engine's
    [Stob_sim.Engine.Livelock] virtual-time budget — is retried up to
    [retries] times, each attempt tagged with a fresh-but-deterministic
    [~attempt] index the cell may fold into its own derived seeds.  A cell
    that exhausts its attempts is recorded as {e poisoned} with the final
    exception; the rest of the sweep completes and the report lists the
    failures instead of the whole run aborting.

    {b Durability degradation.}  The store applies the same
    completion-over-durability policy to itself: if journaling a finished
    cell fails past the bounded retry budget (persistent ENOSPC), the
    supervisor keeps running on the store's in-memory index and the
    condition is surfaced through {!Store.report} /
    [Monitor.watch_store]'s [store-durability-degraded] edge — drivers
    print the store report after the sweep instead of losing the run. *)

type 'a cell = {
  label : string;  (** Human-readable name, for reports and the journal. *)
  config : (string * string) list;  (** Digested via {!Cell.digest}. *)
  seed : int;
  run : attempt:int -> 'a;
      (** Must be deterministic in [(config, seed, attempt)] and must not
          depend on scheduling — the same pre-split-RNG rule as
          {!Stob_par.Pool}. *)
}

type 'a outcome = {
  label : string;
  key : string;  (** The cell digest. *)
  result : ('a, string) result;  (** [Error] carries the poisoning exception text. *)
  cached : bool;  (** Served from the journal rather than computed. *)
  attempts : int;  (** 0 when cached. *)
}

type report = {
  total : int;
  computed : int;
  cached : int;
  retried : int;  (** Cells that needed more than one attempt. *)
  poisoned : (string * string) list;  (** [(label, exception text)], cell order. *)
}

val run :
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Store.t ->
  experiment:string ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  'a cell list ->
  'a outcome list
(** Outcomes in cell order.  [retries] defaults to 0 (one attempt).
    [inject] runs before every attempt (the chaos hook: raise to fault the
    attempt); it must be deterministic in [(label, attempt)].  With a
    [store], the manifest must already be set by the caller; cached cells
    decode from their journal payload ([Failure] with a wipe-the-state-dir
    hint if the payload does not decode).  Raises [Invalid_argument] on
    negative [retries] or on two cells sharing a digest. *)

val report : 'a outcome list -> report

val pp_report : Format.formatter -> report -> unit
(** One line: totals plus one indented line per poisoned cell. *)
