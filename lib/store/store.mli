(** Durable run state: a state directory holding one write-ahead journal
    that doubles as a content-addressed result cache.

    The journal records a {e manifest} (which sweep this directory belongs
    to) followed by one record per finished cell — either its serialized
    result ([Done]) or the exception that poisoned it ([Poisoned]).  A
    killed sweep resumes by replaying the journal: cells already recorded
    are served from the cache, only missing cells are recomputed, and the
    merged output is bit-identical to an uninterrupted run (the payloads
    round-trip results exactly).

    Poisoned cells are cached like results: a resume reports them again
    rather than silently retrying — deterministic failures stay failed
    until the operator removes the state directory.

    {b Durability degradation.}  Journal writes ride a bounded
    retry-with-backoff envelope ({!Journal.retry}); when an error
    persists past it (disk full, dying media), the store switches to
    {e completion over durability}: the in-memory index keeps the sweep
    running to its final artifact, newly finished cells are simply no
    longer journaled, and the condition is surfaced through {!degraded},
    {!report} and the [store-durability-degraded] monitor edge rather
    than by aborting hours of compute.  The journal on disk remains a
    valid replayable prefix; a later resume recomputes the dropped
    cells. *)

type status =
  | Done of string  (** Serialized cell result. *)
  | Poisoned of string  (** [Printexc.to_string] of the final attempt's exception. *)

type manifest = { experiment : string; fields : (string * string) list; total : int }
(** Which run owns this state dir: experiment id, the run-level parameters
    (canonical string fields, sorted), and the expected cell count. *)

type t

val open_ : ?vfs:Vfs.t -> ?retry:Journal.retry -> string -> t
(** Open (creating the directory and journal as needed) and replay.  Torn
    journal tails are truncated; raises {!Journal.Corrupt} if the file is
    not a journal.  Orphan [*.tmp] files stranded by crashed atomic
    writes or compactions are swept away first ({!orphans_swept}).
    [vfs]/[retry] select the syscall plane and the transient-error retry
    budget for every write this handle performs. *)

val close : t -> unit
val dir : t -> string

val journal_file : string -> string
(** The journal's path inside a state directory (for polling/tests). *)

val manifest : t -> manifest option

val set_manifest : t -> experiment:string -> fields:(string * string) list -> total:int -> unit
(** Record the run identity.  Idempotent when it matches the replayed
    manifest; raises [Failure] when the directory already belongs to a
    different run — resuming with changed parameters must not silently mix
    two sweeps' cells. *)

val find : t -> string -> status option
(** Cached status of a cell digest, if any. *)

val record : t -> key:string -> label:string -> status -> unit
(** Append one cell record (journal write + in-memory index).  Thread-safe;
    callers serialize ordering via {!Stob_par.Pool.map}[ ~on_done].  Never
    raises on I/O trouble: persistent journal errors degrade the store
    (see module doc) instead of losing the in-memory result. *)

val entries : t -> (string * string * status) list
(** All cell records as [(key, label, status)], in first-recorded order. *)

val peek : string -> manifest option * (string * string * status) list
(** Read-only replay of a state directory — same result as {!open_} +
    {!manifest}/{!entries} but never truncates, creates or locks anything,
    so it is safe against a journal another process is appending to
    (status/progress inspection).  A missing directory reads as
    [(None, [])]. *)

val counts : t -> done_:int ref -> poisoned:int ref -> unit

(** {1 Durability report} *)

val degraded : t -> string option
(** Why journaling is off, if it is ([None] = fully durable). *)

val orphans_swept : t -> int
(** Orphan [*.tmp] files removed by {!open_}'s sweep. *)

type report = {
  journal_bytes : int;  (** Journal size on disk. *)
  journal_frames : int;  (** Frames replayed + appended through this handle. *)
  stale_frames : int;  (** Frames superseded by a newer record for the same key. *)
  r_orphans_swept : int;
  retried : int;  (** Transient syscall errors absorbed by retries. *)
  dropped : int;  (** Records not journaled since degrading. *)
  degraded_reason : string option;
}

val report : t -> report
val pp_report : Format.formatter -> report -> unit
(** One line of durability counters, plus a DEGRADED line when journaling
    is off. *)

(** {1 Checkpoint / compaction}

    A long sweep's journal accumulates superseded frames (a re-recorded
    key keeps its latest status on replay).  A {e checkpoint} atomically
    rewrites the journal down to the manifest plus the latest record per
    cell digest — tmp + verify + rename, via {!Journal.rewrite} — and
    proves the {e replay-digest-agreement} invariant: the compacted
    journal replays to exactly the pre-compaction state, or the rewrite
    is refused. *)

type compaction = {
  frames_before : int;
  frames_after : int;
  bytes_before : int;
  bytes_after : int;
}

val checkpoint : t -> compaction
(** Compact now.  Raises [Failure] on a degraded store (there is nothing
    durable to compact) or if the replay-digest agreement fails. *)

val maybe_checkpoint : ?threshold_bytes:int -> t -> compaction option
(** Size-bounded auto-compaction for shard boundaries (Soak/Population):
    checkpoints only when the journal exceeds [threshold_bytes]
    (default {!auto_checkpoint_bytes}) {e and} at least a quarter of its
    frames are stale — so journals stop growing monotonically without
    long sweeps re-copying their history at every boundary. *)

val auto_checkpoint_bytes : int
(** Default [maybe_checkpoint] threshold (1 MiB). *)

val compact : ?vfs:Vfs.t -> ?retry:Journal.retry -> string -> compaction
(** Offline compaction of a state directory ([stobctl compact]): open,
    checkpoint, close. *)

val replay_digest : string -> string
(** Digest of a state directory's replayed state (manifest + entries in
    first-recorded order) — read-only, via {!peek}.  Two directories with
    equal digests resume identically; the chaos battery and [stobctl
    compact] use it to state the replay-agreement invariant across
    compactions and crashes. *)

val digest : t -> string
(** {!replay_digest} of this handle's in-memory state. *)
