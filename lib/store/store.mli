(** Durable run state: a state directory holding one write-ahead journal
    that doubles as a content-addressed result cache.

    The journal records a {e manifest} (which sweep this directory belongs
    to) followed by one record per finished cell — either its serialized
    result ([Done]) or the exception that poisoned it ([Poisoned]).  A
    killed sweep resumes by replaying the journal: cells already recorded
    are served from the cache, only missing cells are recomputed, and the
    merged output is bit-identical to an uninterrupted run (the payloads
    round-trip results exactly).

    Poisoned cells are cached like results: a resume reports them again
    rather than silently retrying — deterministic failures stay failed
    until the operator removes the state directory. *)

type status =
  | Done of string  (** Serialized cell result. *)
  | Poisoned of string  (** [Printexc.to_string] of the final attempt's exception. *)

type manifest = { experiment : string; fields : (string * string) list; total : int }
(** Which run owns this state dir: experiment id, the run-level parameters
    (canonical string fields, sorted), and the expected cell count. *)

type t

val open_ : string -> t
(** Open (creating the directory and journal as needed) and replay.  Torn
    journal tails are truncated; raises {!Journal.Corrupt} if the file is
    not a journal. *)

val close : t -> unit
val dir : t -> string

val journal_file : string -> string
(** The journal's path inside a state directory (for polling/tests). *)

val manifest : t -> manifest option

val set_manifest : t -> experiment:string -> fields:(string * string) list -> total:int -> unit
(** Record the run identity.  Idempotent when it matches the replayed
    manifest; raises [Failure] when the directory already belongs to a
    different run — resuming with changed parameters must not silently mix
    two sweeps' cells. *)

val find : t -> string -> status option
(** Cached status of a cell digest, if any. *)

val record : t -> key:string -> label:string -> status -> unit
(** Append one cell record (journal write + in-memory index).  Thread-safe;
    callers serialize ordering via {!Stob_par.Pool.map}[ ~on_done]. *)

val entries : t -> (string * string * status) list
(** All cell records as [(key, label, status)], in first-recorded order. *)

val peek : string -> manifest option * (string * string * status) list
(** Read-only replay of a state directory — same result as {!open_} +
    {!manifest}/{!entries} but never truncates, creates or locks anything,
    so it is safe against a journal another process is appending to
    (status/progress inspection).  A missing directory reads as
    [(None, [])]. *)

val counts : t -> done_:int ref -> poisoned:int ref -> unit
