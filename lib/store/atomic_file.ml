(* The per-process counter keeps concurrent writers (worker domains
   journaling side artifacts) from colliding on the temporary name; the
   pid keeps concurrent processes apart. *)
let counter = Atomic.make 0

let with_tmp path k =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add counter 1)
  in
  let oc = open_out_bin tmp in
  (match k oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let write path contents = with_tmp path (fun oc -> output_string oc contents)
let write_lines path emit = with_tmp path emit
