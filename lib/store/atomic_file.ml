(* The per-process counter keeps concurrent writers (worker domains
   journaling side artifacts) from colliding on the temporary name; the
   pid keeps concurrent processes apart. *)
let counter = Atomic.make 0

let with_tmp vfs path emit =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add counter 1)
  in
  let fd = vfs.Vfs.open_trunc tmp in
  (match emit (fun s -> Vfs.write_all vfs fd (Bytes.of_string s)) with
  | () ->
      vfs.Vfs.flush fd;
      vfs.Vfs.close fd
  | exception e ->
      (* Narrow catches only: a fault plane's simulated process death
         must not be swallowed by cleanup — the orphan tmp it strands is
         exactly what Store.open_'s sweep exists to collect. *)
      (try vfs.Vfs.close fd with Unix.Unix_error _ | Sys_error _ -> ());
      (try vfs.Vfs.remove tmp with Unix.Unix_error _ | Sys_error _ -> ());
      raise e);
  vfs.Vfs.rename tmp path

let write ?(vfs = Vfs.unix) path contents = with_tmp vfs path (fun put -> put contents)

let write_lines ?(vfs = Vfs.unix) path emit =
  with_tmp vfs path (fun put ->
      let b = Buffer.create 256 in
      emit b;
      put (Buffer.contents b))
