let digest ~experiment ~config ~seed =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) config in
  let rec check_dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Stob_store.Cell.digest: duplicate config field %S" a);
        check_dup rest
    | _ -> ()
  in
  check_dup sorted;
  (* Length-prefixing makes the serialization injective whatever bytes the
     values contain — no escaping rules to get wrong. *)
  let canon =
    String.concat ";"
      (List.map
         (fun (k, v) -> Printf.sprintf "%d:%s=%d:%s" (String.length k) k (String.length v) v)
         sorted)
  in
  Digest.to_hex (Digest.string (Printf.sprintf "stob-cell-v1|%s|%d|%s" experiment seed canon))
