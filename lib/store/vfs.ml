type file = Unix.file_descr

type t = {
  open_append : string -> file;
  open_trunc : string -> file;
  write : file -> bytes -> pos:int -> len:int -> int;
  flush : file -> unit;
  close : file -> unit;
  rename : string -> string -> unit;
  truncate : string -> int -> unit;
  file_size : string -> int option;
  remove : string -> unit;
}

let unix =
  {
    open_append =
      (fun path -> Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644);
    open_trunc =
      (fun path -> Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644);
    write = (fun fd b ~pos ~len -> Unix.write fd b pos len);
    (* Unix.write goes straight to the descriptor — there is no userspace
       buffer to drain — but the boundary stays so fault planes can treat
       "frame committed" as its own syscall. *)
    flush = (fun _ -> ());
    close = Unix.close;
    rename = Unix.rename;
    truncate = Unix.truncate;
    file_size =
      (fun path ->
        match Unix.stat path with
        | st -> Some st.Unix.st_size
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None);
    remove = (fun path -> Unix.unlink path);
  }

let write_all t fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n = t.write fd b ~pos:!pos ~len:(len - !pos) in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", "no progress"));
    pos := !pos + n
  done
