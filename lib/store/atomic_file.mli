(** Crash-safe whole-file writes: the contents land under a temporary name
    in the target's directory and are [rename]d into place, so readers (and
    a crash at any instant) see either the old file or the complete new one
    — never a torn prefix. *)

val write : string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents].
    On any error the temporary file is removed and [path] is untouched. *)

val write_lines : string -> (out_channel -> unit) -> unit
(** [write_lines path emit] is [write] for producers that want a channel:
    [emit] writes the body, then the file is renamed into place. *)
