(** Crash-safe whole-file writes: the contents land under a temporary name
    in the target's directory and are [rename]d into place, so readers (and
    a crash at any instant) see either the old file or the complete new one
    — never a torn prefix.

    All I/O goes through a {!Vfs.t} shim (default {!Vfs.unix}); a crash
    injected between the tmp write and the rename strands a [*.tmp] file,
    which [Store.open_] sweeps up on the next run. *)

val write : ?vfs:Vfs.t -> string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents].
    On any error the temporary file is removed and [path] is untouched. *)

val write_lines : ?vfs:Vfs.t -> string -> (Buffer.t -> unit) -> unit
(** [write_lines path emit] is {!write} for producers that build the body
    incrementally: [emit] fills a buffer, then the whole buffer is
    written and renamed into place. *)
