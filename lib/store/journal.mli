(** Write-ahead journal: an append-only file of length+CRC framed records.

    Layout: a fixed magic header, then zero or more records of
    [u32 length (big-endian) | u32 CRC-32 of payload | payload bytes].
    Appends are flushed to the OS before returning, so a record survives
    the writing {e process} being SIGKILLed the instant [append] returns
    (surviving power loss would additionally need fsync, which the
    evaluation sweeps deliberately skip — the failure model is crashed
    runs, not crashed hosts).

    Recovery ({!open_}) replays the longest valid prefix: the first frame
    whose header is short, whose length runs past end-of-file, or whose
    CRC disagrees marks a {e torn tail} — everything from there on is
    truncated away, and appending resumes at the cut.  A file that exists
    but does not start with the magic is refused ({!Corrupt}) rather than
    clobbered. *)

type t

exception Corrupt of string
(** The file is not a stob journal (bad magic), or a replayed record does
    not deserialize.  Torn tails are {e not} corruption — they are
    recovered silently. *)

val open_ : string -> t * string list
(** [open_ path] creates or recovers the journal at [path] and returns it
    together with the replayed record payloads, oldest first.  Torn tails
    are truncated from the file as a side effect. *)

val append : t -> string -> unit
(** Frame, append and flush one record.  Thread-safe. *)

val close : t -> unit
(** Flush and close.  Idempotent. *)

val path : t -> string

val magic : string
(** The fixed file header.  Exposed so kill/resume tests can compute frame
    offsets and craft torn tails byte-accurately. *)

val read : string -> string list
(** Read-only replay of the valid record prefix — same recovery rule as
    {!open_} but never truncates or creates the file (what a concurrent
    observer, e.g. a progress poller, must use).  Missing file = []. *)
