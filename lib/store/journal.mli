(** Write-ahead journal: an append-only file of length+CRC framed records.

    Layout: a fixed magic header, then zero or more records of
    [u32 length (big-endian) | u32 CRC-32 of payload | payload bytes].
    Appends are flushed to the OS before returning, so a record survives
    the writing {e process} being SIGKILLed the instant [append] returns
    (surviving power loss would additionally need fsync, which the
    evaluation sweeps deliberately skip — the failure model is crashed
    runs, not crashed hosts).

    Recovery ({!open_}) replays the longest valid prefix: the first frame
    whose header is short, whose length runs past end-of-file, or whose
    CRC disagrees marks a {e torn tail} — everything from there on is
    truncated away, and appending resumes at the cut.  A file that exists
    but does not start with the magic is refused ({!Corrupt}) rather than
    clobbered.

    All writes go through a {!Vfs.t} syscall shim (default {!Vfs.unix})
    with short-write loops and a bounded {!retry} envelope around each
    syscall, so the journal behaves identically under the {!Io_fault}
    chaos plane and on a real filesystem. *)

type t

exception Corrupt of string
(** The file is not a stob journal (bad magic), or a replayed record does
    not deserialize.  Torn tails are {e not} corruption — they are
    recovered silently. *)

type retry = { attempts : int; backoff_s : float }
(** Bounded retry for transient syscall errors (EINTR/EAGAIN/EIO/ENOSPC):
    up to [attempts] tries per syscall with doubling backoff starting at
    [backoff_s].  Non-transient errors, and anything that is not a
    [Unix_error] (notably {!Io_fault.Crash}), propagate immediately. *)

val default_retry : retry
(** 4 attempts, 2 ms initial backoff. *)

val no_retry : retry
(** One attempt, no backoff — for tests that want the raw error. *)

val open_ : ?vfs:Vfs.t -> ?retry:retry -> string -> t * string list
(** [open_ path] creates or recovers the journal at [path] and returns it
    together with the replayed record payloads, oldest first.  Torn tails
    are truncated from the file as a side effect. *)

val append : t -> string -> unit
(** Frame, append and flush one record.  Thread-safe.  Transient errors
    are retried per the handle's {!retry}; a persistent error raises
    [Unix_error] and may leave a torn (partial) frame at the tail, which
    the next {!open_} truncates away. *)

val close : t -> unit
(** Close the descriptor.  Idempotent. *)

val path : t -> string

val frames : t -> int
(** Frames known to this handle: replayed at {!open_} plus successfully
    appended since. *)

val retried : t -> int
(** Transient syscall errors absorbed by the retry envelope since
    {!open_} (includes retries spent during [open_] itself). *)

val magic : string
(** The fixed file header.  Exposed so kill/resume tests can compute frame
    offsets and craft torn tails byte-accurately. *)

val read : string -> string list
(** Read-only replay of the valid record prefix — same recovery rule as
    {!open_} but never truncates or creates the file (what a concurrent
    observer, e.g. a progress poller, must use).  Missing file = []. *)

type scrub = {
  exists : bool;
  scrub_frames : int;  (** Valid frames. *)
  scrub_bytes : int;  (** Total file size. *)
  valid_bytes : int;  (** Magic + valid frames. *)
  torn_bytes : int;  (** [scrub_bytes - valid_bytes]; [> 0] means a torn tail. *)
  crc_mismatch : bool;
      (** The invalid tail begins with a frame whose payload fails its
          CRC — bytes flipped in place, as opposed to a write cut short. *)
}

val verify : string -> scrub
(** CRC scrub walk: read-only, never truncates — safe on a live journal.
    Raises {!Corrupt} only for a bad magic (not a stob journal at all). *)

val rewrite : ?vfs:Vfs.t -> ?retry:retry -> string -> string list -> int
(** [rewrite path payloads] atomically replaces [path] with a fresh
    journal holding exactly [payloads]: the bytes land in a [.tmp.]
    sibling, are re-read and compared against [payloads] (a rewrite that
    cannot replay its own input must not replace the journal — raises
    {!Corrupt}), and only then renamed into place.  The compaction
    primitive under [Store.checkpoint].  Returns the number of transient
    errors retried away. *)
