type status = Done of string | Poisoned of string

type manifest = { experiment : string; fields : (string * string) list; total : int }

(* The journal's record payloads: marshaled values of this (stable) type.
   Framing integrity is the journal's job (length+CRC); this type only has
   to stay in sync within one build of the binary — the digest rules
   (Cell.digest) are what survive across builds. *)
type record = Manifest of manifest | Cell of { key : string; label : string; status : status }

type t = {
  dir : string;
  journal : Journal.t;
  cells : (string, string * status) Hashtbl.t; (* key -> (label, status) *)
  mutable order : string list; (* keys, newest first *)
  mutable manifest : manifest option;
  mu : Mutex.t;
}

let journal_file dir = Filename.concat dir "journal.stob"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Fold replayed payloads into (manifest, cells, keys newest-first). *)
let replay ~file payloads =
  let manifest = ref None in
  let cells = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      let r =
        try (Marshal.from_string p 0 : record)
        with e ->
          raise
            (Journal.Corrupt
               (Printf.sprintf "%s: record does not deserialize (%s) — stale state dir from \
                                another build? remove it and rerun"
                  file (Printexc.to_string e)))
      in
      match r with
      | Manifest m -> manifest := Some m
      | Cell { key; label; status } ->
          if not (Hashtbl.mem cells key) then order := key :: !order;
          Hashtbl.replace cells key (label, status))
    payloads;
  (!manifest, cells, !order)

let open_ dir =
  mkdir_p dir;
  let journal, payloads = Journal.open_ (journal_file dir) in
  let manifest, cells, order = replay ~file:(journal_file dir) payloads in
  { dir; journal; cells; order; manifest; mu = Mutex.create () }

let peek dir =
  let file = journal_file dir in
  let manifest, cells, order = replay ~file (Journal.read file) in
  let entries =
    List.rev_map
      (fun key ->
        let label, status = Hashtbl.find cells key in
        (key, label, status))
      order
  in
  (manifest, entries)

let close t = Journal.close t.journal
let dir t = t.dir
let manifest t = t.manifest

let set_manifest t ~experiment ~fields ~total =
  let m = { experiment; fields = List.sort compare fields; total } in
  Mutex.protect t.mu (fun () ->
      match t.manifest with
      | Some m' when m' = m -> ()
      | Some m' ->
          failwith
            (Printf.sprintf
               "Stob_store: state dir %s belongs to run %s (%d cells), refusing to reuse it for \
                %s (%d cells) — use a fresh --state-dir per sweep"
               t.dir m'.experiment m'.total experiment total)
      | None ->
          t.manifest <- Some m;
          Journal.append t.journal (Marshal.to_string (Manifest m) []))

let find t key =
  Mutex.protect t.mu (fun () -> Option.map snd (Hashtbl.find_opt t.cells key))

let record t ~key ~label status =
  Mutex.protect t.mu (fun () ->
      if not (Hashtbl.mem t.cells key) then t.order <- key :: t.order;
      Hashtbl.replace t.cells key (label, status);
      Journal.append t.journal (Marshal.to_string (Cell { key; label; status }) []))

let entries t =
  Mutex.protect t.mu (fun () ->
      List.rev_map
        (fun key ->
          let label, status = Hashtbl.find t.cells key in
          (key, label, status))
        t.order)

let counts t ~done_ ~poisoned =
  List.iter
    (fun (_, _, status) ->
      match status with Done _ -> incr done_ | Poisoned _ -> incr poisoned)
    (entries t)
