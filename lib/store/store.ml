type status = Done of string | Poisoned of string

type manifest = { experiment : string; fields : (string * string) list; total : int }

(* The journal's record payloads: marshaled values of this (stable) type.
   Framing integrity is the journal's job (length+CRC); this type only has
   to stay in sync within one build of the binary — the digest rules
   (Cell.digest) are what survive across builds. *)
type record = Manifest of manifest | Cell of { key : string; label : string; status : status }

type t = {
  dir : string;
  vfs : Vfs.t;
  retry : Journal.retry;
  mutable journal : Journal.t;  (* swapped on checkpoint *)
  cells : (string, string * status) Hashtbl.t; (* key -> (label, status) *)
  mutable order : string list; (* keys, newest first *)
  mutable manifest : manifest option;
  mutable degraded : string option;  (* journaling-off reason *)
  mutable dropped : int;  (* records not journaled since degrading *)
  mutable retried_past : int;  (* retries from journal handles closed by checkpoints *)
  orphans_swept : int;
  mu : Mutex.t;
}

let journal_file dir = Filename.concat dir "journal.stob"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Fold replayed payloads into (manifest, cells, keys newest-first). *)
let replay ~file payloads =
  let manifest = ref None in
  let cells = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      let r =
        try (Marshal.from_string p 0 : record)
        with e ->
          raise
            (Journal.Corrupt
               (Printf.sprintf "%s: record does not deserialize (%s) — stale state dir from \
                                another build? remove it and rerun"
                  file (Printexc.to_string e)))
      in
      match r with
      | Manifest m -> manifest := Some m
      | Cell { key; label; status } ->
          if not (Hashtbl.mem cells key) then order := key :: !order;
          Hashtbl.replace cells key (label, status))
    payloads;
  (!manifest, cells, !order)

let contains_tmp name =
  let pat = ".tmp." in
  let n = String.length name and pn = String.length pat in
  let rec go i = i + pn <= n && (String.sub name i pn = pat || go (i + 1)) in
  go 0

(* A crash between an atomic tmp-write and its rename strands the tmp
   forever (the dying process cannot run its cleanup handler).  Nobody
   else will ever reference it — tmp names embed pid and a counter — so
   opening the directory is the safe moment to reclaim them. *)
let sweep_orphans vfs dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun acc name ->
          if contains_tmp name then (
            match vfs.Vfs.remove (Filename.concat dir name) with
            | () -> acc + 1
            | exception (Unix.Unix_error _ | Sys_error _) -> acc)
          else acc)
        0 names

let open_ ?(vfs = Vfs.unix) ?(retry = Journal.default_retry) dir =
  mkdir_p dir;
  let orphans_swept = sweep_orphans vfs dir in
  let journal, payloads = Journal.open_ ~vfs ~retry (journal_file dir) in
  let manifest, cells, order = replay ~file:(journal_file dir) payloads in
  { dir; vfs; retry; journal; cells; order; manifest; degraded = None; dropped = 0;
    retried_past = 0; orphans_swept; mu = Mutex.create () }

let peek dir =
  let file = journal_file dir in
  let manifest, cells, order = replay ~file (Journal.read file) in
  let entries =
    List.rev_map
      (fun key ->
        let label, status = Hashtbl.find cells key in
        (key, label, status))
      order
  in
  (manifest, entries)

let close t = Journal.close t.journal
let dir t = t.dir
let manifest t = t.manifest
let degraded t = Mutex.protect t.mu (fun () -> t.degraded)
let orphans_swept t = t.orphans_swept

(* Completion over durability: a sweep whose journal hits a persistent
   error (disk full, dying media) finishes on the in-memory index instead
   of aborting hours of compute.  The cost is honest and reported — the
   dropped records will be recomputed on a resume — and the journal file
   itself stays a valid replayable prefix (a torn trailing frame is
   truncated by the next open). *)
let journal_append_locked t ~what payload =
  match t.degraded with
  | Some _ -> t.dropped <- t.dropped + 1
  | None -> (
      try Journal.append t.journal payload
      with Unix.Unix_error (e, fn, _) ->
        t.degraded <-
          Some
            (Printf.sprintf "%s failed persistently (%s in %s) — journaling off, completing \
                             without durability"
               what (Unix.error_message e) fn);
        t.dropped <- t.dropped + 1)

let set_manifest t ~experiment ~fields ~total =
  let m = { experiment; fields = List.sort compare fields; total } in
  Mutex.protect t.mu (fun () ->
      match t.manifest with
      | Some m' when m' = m -> ()
      | Some m' ->
          failwith
            (Printf.sprintf
               "Stob_store: state dir %s belongs to run %s (%d cells), refusing to reuse it for \
                %s (%d cells) — use a fresh --state-dir per sweep"
               t.dir m'.experiment m'.total experiment total)
      | None ->
          t.manifest <- Some m;
          journal_append_locked t ~what:"manifest write" (Marshal.to_string (Manifest m) []))

let find t key =
  Mutex.protect t.mu (fun () -> Option.map snd (Hashtbl.find_opt t.cells key))

let record t ~key ~label status =
  Mutex.protect t.mu (fun () ->
      if not (Hashtbl.mem t.cells key) then t.order <- key :: t.order;
      Hashtbl.replace t.cells key (label, status);
      journal_append_locked t ~what:"cell record" (Marshal.to_string (Cell { key; label; status }) []))

let entries_locked t =
  List.rev_map
    (fun key ->
      let label, status = Hashtbl.find t.cells key in
      (key, label, status))
    t.order

let entries t = Mutex.protect t.mu (fun () -> entries_locked t)

let counts t ~done_ ~poisoned =
  List.iter
    (fun (_, _, status) ->
      match status with Done _ -> incr done_ | Poisoned _ -> incr poisoned)
    (entries t)

(* --- durability report --------------------------------------------------- *)

type report = {
  journal_bytes : int;
  journal_frames : int;
  stale_frames : int;  (* frames superseded by a newer record for the same key *)
  r_orphans_swept : int;
  retried : int;
  dropped : int;
  degraded_reason : string option;
}

let stale_locked t =
  let live = Hashtbl.length t.cells + match t.manifest with Some _ -> 1 | None -> 0 in
  max 0 (Journal.frames t.journal - live)

let report t =
  Mutex.protect t.mu (fun () ->
      { journal_bytes = Option.value ~default:0 (t.vfs.Vfs.file_size (journal_file t.dir));
        journal_frames = Journal.frames t.journal;
        stale_frames = stale_locked t;
        r_orphans_swept = t.orphans_swept;
        retried = t.retried_past + Journal.retried t.journal;
        dropped = t.dropped;
        degraded_reason = t.degraded })

let pp_report ppf r =
  Format.fprintf ppf "journal %d frames (%d stale), %d bytes; %d orphan tmp swept; %d retried"
    r.journal_frames r.stale_frames r.journal_bytes r.r_orphans_swept r.retried;
  match r.degraded_reason with
  | None -> ()
  | Some reason ->
      Format.fprintf ppf "@.  DURABILITY DEGRADED: %s (%d records not journaled)" reason
        r.dropped

(* --- checkpoint / compaction --------------------------------------------- *)

type compaction = {
  frames_before : int;
  frames_after : int;
  bytes_before : int;
  bytes_after : int;
}

let state_digest manifest entries =
  Digest.to_hex (Digest.string (Marshal.to_string (manifest, entries) []))

let replay_digest dir =
  let manifest, entries = peek dir in
  state_digest manifest entries

let digest t = Mutex.protect t.mu (fun () -> state_digest t.manifest (entries_locked t))

let checkpoint_locked t =
  (match t.degraded with
  | Some reason ->
      failwith ("Stob_store: refusing to checkpoint a durability-degraded store: " ^ reason)
  | None -> ());
  let file = journal_file t.dir in
  let bytes_before = Option.value ~default:0 (t.vfs.Vfs.file_size file) in
  let frames_before = Journal.frames t.journal in
  let payloads =
    (match t.manifest with Some m -> [ Marshal.to_string (Manifest m) [] ] | None -> [])
    @ List.rev_map
        (fun key ->
          let label, status = Hashtbl.find t.cells key in
          Marshal.to_string (Cell { key; label; status }) [])
        t.order
  in
  let before = state_digest t.manifest (entries_locked t) in
  (* Close before rename: appending through a descriptor that still
     points at the renamed-away inode would silently lose records. *)
  t.retried_past <- t.retried_past + Journal.retried t.journal;
  Journal.close t.journal;
  t.retried_past <- t.retried_past + Journal.rewrite ~vfs:t.vfs ~retry:t.retry file payloads;
  let journal, replayed = Journal.open_ ~vfs:t.vfs ~retry:t.retry file in
  t.journal <- journal;
  (* Replay-digest agreement: the compacted journal must replay to the
     exact state it was written from.  Journal.rewrite already verified
     the bytes before renaming; this closes the loop at the semantic
     (deserialized) level. *)
  let manifest', cells', order' = replay ~file replayed in
  let entries' =
    List.rev_map
      (fun key ->
        let label, status = Hashtbl.find cells' key in
        (key, label, status))
      order'
  in
  if state_digest manifest' entries' <> before then
    failwith
      (Printf.sprintf "Stob_store: post-compaction replay digest disagrees with pre-compaction \
                       state in %s" t.dir);
  { frames_before; frames_after = Journal.frames journal; bytes_before;
    bytes_after = Option.value ~default:0 (t.vfs.Vfs.file_size file) }

let checkpoint t = Mutex.protect t.mu (fun () -> checkpoint_locked t)

let auto_checkpoint_bytes = 1 lsl 20

let maybe_checkpoint ?(threshold_bytes = auto_checkpoint_bytes) t =
  Mutex.protect t.mu (fun () ->
      let bytes = Option.value ~default:0 (t.vfs.Vfs.file_size (journal_file t.dir)) in
      let frames = Journal.frames t.journal in
      (* Compaction only reclaims superseded frames, so rewriting is worth
         the I/O only once the journal is both big and at least a quarter
         garbage — otherwise a long sweep would re-copy its whole history
         at every shard boundary. *)
      if t.degraded = None && bytes > threshold_bytes && stale_locked t * 4 > frames then
        Some (checkpoint_locked t)
      else None)

let compact ?vfs ?retry dir =
  let t = open_ ?vfs ?retry dir in
  Fun.protect ~finally:(fun () -> close t) (fun () -> checkpoint t)
