type t = { path : string; mutable oc : out_channel option; mu : Mutex.t }

exception Corrupt of string

let magic = "STOBJRNL1\n"

(* A frame length beyond this is treated as a torn/garbage tail rather
   than an instruction to allocate gigabytes. *)
let max_record = 1 lsl 28

let frame payload =
  let len = String.length payload in
  let b = Buffer.create (len + 8) in
  let hdr = Bytes.create 8 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int32_be hdr 4 (Crc32.string payload);
  Buffer.add_bytes b hdr;
  Buffer.add_string b payload;
  Buffer.contents b

(* Longest valid prefix of [path]: the replayed payloads plus the byte
   offset where validity ends ([None] when the file does not exist). *)
let recover path =
  if not (Sys.file_exists path) then ([], None)
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let ml = String.length magic in
        if size < ml then ([], Some 0) (* torn header: recover to empty *)
        else if really_input_string ic ml <> magic then
          raise (Corrupt (path ^ ": not a stob journal (bad magic)"))
        else begin
          let records = ref [] in
          let pos = ref ml in
          (try
             while !pos + 8 <= size do
               let hdr = Bytes.of_string (really_input_string ic 8) in
               let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
               let crc = Bytes.get_int32_be hdr 4 in
               if len < 0 || len > max_record || !pos + 8 + len > size then raise Exit;
               let payload = really_input_string ic len in
               if Crc32.string payload <> crc then raise Exit;
               records := payload :: !records;
               pos := !pos + 8 + len
             done
           with Exit -> ());
          (List.rev !records, Some !pos)
        end)
  end

let read path = fst (recover path)

let open_ path =
  let records, valid = recover path in
  (match valid with
  | Some v when v < (Unix.stat path).Unix.st_size -> Unix.truncate path v
  | Some _ | None -> ());
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  (match valid with
  | None | Some 0 ->
      output_string oc magic;
      flush oc
  | Some _ -> ());
  ({ path; oc = Some oc; mu = Mutex.create () }, records)

let append t payload =
  Mutex.protect t.mu (fun () ->
      match t.oc with
      | None -> invalid_arg "Journal.append: closed journal"
      | Some oc ->
          output_string oc (frame payload);
          flush oc)

let close t =
  Mutex.protect t.mu (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          t.oc <- None;
          close_out oc)

let path t = t.path
