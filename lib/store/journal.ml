exception Corrupt of string

let magic = "STOBJRNL1\n"

(* A frame length beyond this is treated as a torn/garbage tail rather
   than an instruction to allocate gigabytes. *)
let max_record = 1 lsl 28

type retry = { attempts : int; backoff_s : float }

let default_retry = { attempts = 4; backoff_s = 0.002 }
let no_retry = { attempts = 1; backoff_s = 0. }

type t = {
  path : string;
  vfs : Vfs.t;
  retry : retry;
  mutable fd : Vfs.file option;
  mu : Mutex.t;
  mutable frames : int;  (* replayed + successfully appended through this handle *)
  mutable retried : int;  (* transient syscall errors absorbed by retries *)
}

(* Errors worth retrying: interruptions and the transient face of media
   trouble.  ENOSPC is included — an operator freeing space mid-sweep is
   the realistic recovery — and when it persists the bounded retry gives
   up quickly and the store degrades instead (Store.record). *)
let transient = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EIO | Unix.ENOSPC -> true
  | _ -> false

(* Bounded retry with doubling backoff around one syscall.  Only
   [Unix_error]s are candidates: a fault plane's simulated process death
   (Io_fault.Crash) is not an I/O error and must propagate untouched. *)
let with_retry retry count f =
  let rec go attempt =
    try f ()
    with Unix.Unix_error (e, _, _) when transient e && attempt + 1 < retry.attempts ->
      if retry.backoff_s > 0. then Unix.sleepf (retry.backoff_s *. float_of_int (1 lsl attempt));
      incr count;
      go (attempt + 1)
  in
  go 0

(* Whole-buffer write with a per-syscall retry envelope.  Retrying the
   individual [write] (not the loop) is what makes short writes safe: a
   transient error reports no progress, so reissuing from the current
   offset never duplicates bytes. *)
let write_bytes vfs retry count fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n = with_retry retry count (fun () -> vfs.Vfs.write fd b ~pos:!pos ~len:(len - !pos)) in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", "no progress"));
    pos := !pos + n
  done

let frame payload =
  let len = String.length payload in
  let b = Buffer.create (len + 8) in
  let hdr = Bytes.create 8 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int32_be hdr 4 (Crc32.string payload);
  Buffer.add_bytes b hdr;
  Buffer.add_string b payload;
  Buffer.contents b

type cut = Clean | Torn | Crc_mismatch

type scan = { payloads : string list; valid : int option; size : int; cut : cut }

(* Longest valid prefix of [path], with the cut classified: the replayed
   payloads plus the byte offset where validity ends ([valid = None] when
   the file does not exist). *)
let scan path =
  if not (Sys.file_exists path) then { payloads = []; valid = None; size = 0; cut = Clean }
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let ml = String.length magic in
        if size < ml then
          (* torn header: recover to empty *)
          { payloads = []; valid = Some 0; size; cut = Torn }
        else if really_input_string ic ml <> magic then
          raise (Corrupt (path ^ ": not a stob journal (bad magic)"))
        else begin
          let records = ref [] in
          let pos = ref ml in
          let cut = ref Clean in
          (try
             while !pos + 8 <= size do
               let hdr = Bytes.of_string (really_input_string ic 8) in
               let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
               let crc = Bytes.get_int32_be hdr 4 in
               if len < 0 || len > max_record || !pos + 8 + len > size then begin
                 cut := Torn;
                 raise Exit
               end;
               let payload = really_input_string ic len in
               if Crc32.string payload <> crc then begin
                 cut := Crc_mismatch;
                 raise Exit
               end;
               records := payload :: !records;
               pos := !pos + 8 + len
             done;
             if !pos < size then cut := Torn (* trailing sub-header bytes *)
           with Exit -> ());
          { payloads = List.rev !records; valid = Some !pos; size; cut = !cut }
        end)
  end

let read path = (scan path).payloads

type scrub = {
  exists : bool;
  scrub_frames : int;
  scrub_bytes : int;  (** Total file size. *)
  valid_bytes : int;  (** Magic + valid frames. *)
  torn_bytes : int;  (** [scrub_bytes - valid_bytes]. *)
  crc_mismatch : bool;  (** The invalid tail begins with a CRC-failing frame. *)
}

let verify path =
  let s = scan path in
  match s.valid with
  | None ->
      { exists = false; scrub_frames = 0; scrub_bytes = 0; valid_bytes = 0; torn_bytes = 0;
        crc_mismatch = false }
  | Some v ->
      { exists = true; scrub_frames = List.length s.payloads; scrub_bytes = s.size;
        valid_bytes = v; torn_bytes = s.size - v; crc_mismatch = s.cut = Crc_mismatch }

let open_ ?(vfs = Vfs.unix) ?(retry = default_retry) path =
  let s = scan path in
  let count = ref 0 in
  (match s.valid with
  | Some v when v < s.size -> with_retry retry count (fun () -> vfs.Vfs.truncate path v)
  | Some _ | None -> ());
  let fd = with_retry retry count (fun () -> vfs.Vfs.open_append path) in
  (match s.valid with
  | None | Some 0 ->
      write_bytes vfs retry count fd (Bytes.of_string magic);
      with_retry retry count (fun () -> vfs.Vfs.flush fd)
  | Some _ -> ());
  ( { path; vfs; retry; fd = Some fd; mu = Mutex.create (); frames = List.length s.payloads;
      retried = !count },
    s.payloads )

let append t payload =
  Mutex.protect t.mu (fun () ->
      match t.fd with
      | None -> invalid_arg "Journal.append: closed journal"
      | Some fd ->
          let count = ref 0 in
          Fun.protect
            ~finally:(fun () -> t.retried <- t.retried + !count)
            (fun () ->
              write_bytes t.vfs t.retry count fd (Bytes.of_string (frame payload));
              with_retry t.retry count (fun () -> t.vfs.Vfs.flush fd);
              t.frames <- t.frames + 1))

let close t =
  Mutex.protect t.mu (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
          t.fd <- None;
          t.vfs.Vfs.close fd)

let path t = t.path
let frames t = Mutex.protect t.mu (fun () -> t.frames)
let retried t = Mutex.protect t.mu (fun () -> t.retried)

let rewrite_counter = Atomic.make 0

let rewrite ?(vfs = Vfs.unix) ?(retry = default_retry) path payloads =
  let count = ref 0 in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add rewrite_counter 1)
  in
  let fd = with_retry retry count (fun () -> vfs.Vfs.open_trunc tmp) in
  (try
     write_bytes vfs retry count fd (Bytes.of_string magic);
     List.iter (fun p -> write_bytes vfs retry count fd (Bytes.of_string (frame p))) payloads;
     with_retry retry count (fun () -> vfs.Vfs.flush fd);
     vfs.Vfs.close fd
   with e ->
     (try vfs.Vfs.close fd with Unix.Unix_error _ | Sys_error _ -> ());
     (try vfs.Vfs.remove tmp with Unix.Unix_error _ | Sys_error _ -> ());
     raise e);
  (* Byte-level half of the replay-digest-agreement invariant: a rewrite
     that cannot replay exactly what it was asked to persist must not
     replace the journal. *)
  if read tmp <> payloads then begin
    (try vfs.Vfs.remove tmp with Unix.Unix_error _ | Sys_error _ -> ());
    raise (Corrupt (tmp ^ ": rewrite verify failed — fresh journal does not replay its input"))
  end;
  with_retry retry count (fun () -> vfs.Vfs.rename tmp path);
  !count
