(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) — the checksum
    that frames every journal record, so a torn or bit-flipped tail is
    detected on recovery instead of being replayed as a result. *)

val string : string -> int32
(** Checksum of the whole string (initial value 0, final complement —
    the same convention as zlib's [crc32]). *)
