(** Syscall shim for the durable-store write path.

    Every write-side syscall the store issues — journal appends, torn-tail
    truncation, atomic tmp+rename file replacement, compaction rewrites —
    goes through one of these records, so tests and the chaos battery can
    interpose short writes, transient errors and crash-at-boundary faults
    ({!Io_fault}) without patching any store logic.  {!unix} is the
    identity plane used in production.

    Read paths (journal replay, {!Store.peek}, {!Journal.verify})
    deliberately stay on plain [in_channel]s: recovery must work on files
    produced under any plane, and a reader holds no durability state worth
    fault-injecting. *)

type file
(** A writable file handle (a [Unix.file_descr] underneath). *)

type t = {
  open_append : string -> file;  (** [O_WRONLY|O_CREAT|O_APPEND], 0o644. *)
  open_trunc : string -> file;
      (** [O_WRONLY|O_CREAT|O_TRUNC], 0o644 — for tmp files later
          [rename]d into place. *)
  write : file -> bytes -> pos:int -> len:int -> int;
      (** May write fewer than [len] bytes (short write); returns the
          count actually written.  Callers must loop ({!write_all}). *)
  flush : file -> unit;
      (** Commit buffered bytes to the OS.  A no-op for raw descriptors,
          but kept as an explicit syscall boundary: it is the point where
          a journal frame becomes durable against the process dying, and
          the fault plane counts and faults it like any other op. *)
  close : file -> unit;
  rename : string -> string -> unit;
  truncate : string -> int -> unit;
  file_size : string -> int option;
      (** [stat].st_size; [None] when the file does not exist.  The one
          read-only op in the shim — fault planes do not count it as a
          syscall boundary. *)
  remove : string -> unit;
}

val unix : t
(** The real thing: [Unix.openfile]/[write]/[rename]/[truncate]/[stat]/
    [unlink]. *)

val write_all : t -> file -> bytes -> unit
(** Loop over short writes until the whole buffer is written; raises
    [Unix_error (EIO, _, _)] if a write makes no progress.  No retry on
    errors — layering bounded retries over individual ops is the
    journal's job ({!Journal.retry}). *)
