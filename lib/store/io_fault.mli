(** Seeded fault injection for the durable-store syscall plane.

    Wraps a base {!Vfs.t} and perturbs it according to a {!plan}: short
    writes, bursts of transient errors, a persistent error from some
    boundary on (the ENOSPC story), failed renames, and a simulated
    process death at the k-th syscall boundary.  Same discipline as
    [Stob_sim.Fault]: everything is driven by the plan's integer seed, so
    a given plan over a given operation sequence injects the same faults,
    byte for byte, on every run.

    {b Boundaries.}  Every shimmed operation except the read-only
    [file_size] counts as one syscall boundary, numbered from 1 in call
    order.  A short-write plane makes the caller's write loop issue more
    [write] ops, so the boundary count of a run depends on the plan —
    the crash-point fuzzer enumerates with {!quiet} first and then
    crashes at each boundary of {e that} sequence.

    {b Crash semantics.}  At boundary [crash_at = Some k] the plane
    writes a seeded {e prefix} of the in-flight buffer (when the op is a
    write — a real process can die half-way through a frame), marks
    itself dead, and raises {!Crash}.  Every subsequent op also raises
    {!Crash} — a dead process neither writes nor cleans up, so e.g. the
    [*.tmp] removal in an exception handler fails and the orphan survives
    for [Store.open_]'s sweep to find — except [close], which becomes a
    no-op so that [Fun.protect] finalizers unwind without masking the
    crash with [Finally_raised]. *)

exception Crash of int
(** Simulated process death at the given boundary.  Deliberately {e not}
    a [Unix.Unix_error]: retry and graceful-degradation logic must never
    treat a crash as a transient I/O error. *)

type plan = {
  seed : int;  (** Drives short-write split points and crash prefixes. *)
  crash_at : int option;  (** Die at this boundary (1-based). *)
  short_writes : bool;  (** Split every multi-byte write at a seeded point. *)
  transient : (Unix.error * int * int) option;
      (** [(err, period, times)]: every [period]-th write/flush starts a
          burst that raises [err] on [times] consecutive write/flush
          calls before letting one succeed.  Heals under bounded retry
          when [retry.attempts > times]. *)
  fail_from : (Unix.error * int) option;
      (** [(err, k)]: every write/flush from boundary [k] on raises
          [err], forever — persistent ENOSPC is [(ENOSPC, k)]. *)
  rename_fails : int;  (** The first [n] renames raise [EIO]. *)
}

val quiet : plan
(** No faults, seed 0 — arms a pure boundary counter. *)

type t

val arm : ?base:Vfs.t -> plan -> t
(** Build a fault plane over [base] (default {!Vfs.unix}). *)

val vfs : t -> Vfs.t
(** The perturbed shim to hand to [Store.open_ ~vfs]. *)

val ops : t -> int
(** Syscall boundaries seen so far. *)

val crashed : t -> bool
(** The plane has simulated death (a {!Crash} was raised). *)

val injected : t -> int
(** Faults injected so far: short splits, raised errors, the crash. *)
