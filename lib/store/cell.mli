(** Stable cell identity.

    A sweep is decomposed into deterministic, idempotent {e cells} (one
    Table 2 variant, one Figure 3 alpha point, one grid point of the
    open-world / Pareto sweeps).  A cell is addressed by a digest of
    [(experiment id, canonicalized config, seed)]: the config is a flat
    [(field, value)] list that is {e sorted by field name} and
    length-prefixed before hashing, so the digest does not depend on field
    order or on any separator characters appearing inside values.

    What invalidates a cache entry is exactly what changes the digest: the
    experiment id, the seed, or any config field's name or value.  Code
    changes do {e not} — after changing an algorithm, wipe the state dir
    (or the `store-replay-agreement` canary will catch the drift). *)

val digest : experiment:string -> config:(string * string) list -> seed:int -> string
(** Hex digest (stable across runs, processes and field reordering).
    Raises [Invalid_argument] on duplicate field names. *)
