type t = { mutable events : Trace.event list; mutable n : int; mutable rtx : int }

let create () = { events = []; n = 0; rtx = 0 }

let record t ~time (p : Packet.t) =
  t.events <- { Trace.time; dir = p.dir; size = Packet.wire_size p } :: t.events;
  t.n <- t.n + 1;
  if p.rtx then t.rtx <- t.rtx + 1

let observe t ~dir ~time (p : Packet.t) =
  t.events <- { Trace.time; dir; size = Packet.wire_size p } :: t.events;
  t.n <- t.n + 1;
  if p.rtx then t.rtx <- t.rtx + 1

let trace t = Trace.sort (Array.of_list (List.rev t.events))

let clear t =
  t.events <- [];
  t.n <- 0;
  t.rtx <- 0

let count t = t.n
let rtx_count t = t.rtx
