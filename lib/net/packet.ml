type direction = Outgoing | Incoming

let opposite = function Outgoing -> Incoming | Incoming -> Outgoing
let direction_sign = function Outgoing -> 1 | Incoming -> -1

let pp_direction fmt = function
  | Outgoing -> Format.pp_print_string fmt "out"
  | Incoming -> Format.pp_print_string fmt "in"

type t = {
  flow : int;
  dir : direction;
  seq : int;
  ack : int;
  payload : int;
  header : int;
  syn : bool;
  fin : bool;
  is_ack : bool;
  dummy : bool;
  rtx : bool;
  rwnd : int;
  sack : (int * int) list;
  mss_opt : int option;
  wscale_opt : int option;
  sack_permitted : bool;
}

let default_header_bytes = 52

let wire_size t = t.payload + t.header

let data ~flow ~dir ~seq ~ack ~payload ?(header = default_header_bytes) ?(fin = false)
    ?(dummy = false) ?(rtx = false) ~rwnd () =
  if payload < 0 then invalid_arg "Packet.data: negative payload";
  {
    flow;
    dir;
    seq;
    ack;
    payload;
    header;
    syn = false;
    fin;
    is_ack = true;
    dummy;
    rtx;
    rwnd;
    sack = [];
    mss_opt = None;
    wscale_opt = None;
    sack_permitted = false;
  }

let pure_ack ~flow ~dir ~seq ~ack ?(header = default_header_bytes) ?(sack = []) ~rwnd () =
  let header = header + (8 * List.length sack) + if sack = [] then 0 else 4 in
  {
    flow;
    dir;
    seq;
    ack;
    payload = 0;
    header;
    syn = false;
    fin = false;
    is_ack = true;
    dummy = false;
    rtx = false;
    rwnd;
    sack;
    mss_opt = None;
    wscale_opt = None;
    sack_permitted = false;
  }

let syn ~flow ~dir ~seq ?(ack = None) ?(rtx = false) ?mss ?wscale ?(sack_permitted = false) ~rwnd
    () =
  let ackn, is_ack = match ack with None -> (0, false) | Some a -> (a, true) in
  let option_bytes =
    (* MSS option is 4 bytes, wscale 3, SACK-permitted 2; pad to a word. *)
    let b =
      (match mss with Some _ -> 4 | None -> 0)
      + (match wscale with Some _ -> 3 | None -> 0)
      + if sack_permitted then 2 else 0
    in
    (b + 3) / 4 * 4
  in
  {
    flow;
    dir;
    seq;
    ack = ackn;
    payload = 0;
    header = default_header_bytes + option_bytes;
    syn = true;
    fin = false;
    is_ack;
    dummy = false;
    rtx;
    rwnd;
    sack = [];
    mss_opt = mss;
    wscale_opt = wscale;
    sack_permitted;
  }

let seq_end t =
  let ctrl = (if t.syn then 1 else 0) + if t.fin then 1 else 0 in
  t.seq + (if t.dummy then 0 else t.payload) + ctrl

let pp fmt t =
  Format.fprintf fmt "[flow %d %a seq=%d ack=%d len=%d%s%s%s%s%s]" t.flow pp_direction t.dir t.seq
    t.ack t.payload
    (if t.syn then " SYN" else "")
    (if t.fin then " FIN" else "")
    (if t.is_ack then " ACK" else "")
    (if t.dummy then " DUMMY" else "")
    (if t.rtx then " RTX" else "")
