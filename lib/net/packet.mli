(** Wire packets.

    This is the unit the links carry and the unit a passive eavesdropper
    observes.  The fields cover what the TCP model needs (sequence and ACK
    numbers, flags, advertised window) plus what traffic-analysis code needs
    (direction, sizes, dummy marking). *)

type direction = Outgoing | Incoming
(** From the client's point of view: [Outgoing] flows client -> server. *)

val opposite : direction -> direction
val direction_sign : direction -> int
(** [+1] for [Outgoing], [-1] for [Incoming] — the signed representation WF
    literature uses. *)

val pp_direction : Format.formatter -> direction -> unit

type t = {
  flow : int;  (** Connection identifier (demux key on a shared path). *)
  dir : direction;
  seq : int;  (** Sequence number of the first payload byte. *)
  ack : int;  (** Cumulative acknowledgement number. *)
  payload : int;  (** Payload bytes carried. *)
  header : int;  (** Header bytes (IP + TCP). *)
  syn : bool;
  fin : bool;
  is_ack : bool;  (** ACK flag set (true on everything but the initial SYN). *)
  dummy : bool;  (** Padding packet carrying no real data. *)
  rtx : bool;
      (** Retransmission of previously sent sequence space.  Not a real wire
          bit — an oracle the simulation keeps so captures can separate
          first transmissions from recovery traffic under impairment. *)
  rwnd : int;
      (** Advertised receive window.  On a SYN the field is the raw unscaled
          window (at most 65535); after a successful window-scale negotiation
          every other segment carries the window right-shifted by the
          advertiser's shift count (RFC 7323). *)
  sack : (int * int) list;
      (** SACK blocks: received-but-not-yet-acked [lo, hi) byte ranges (at
          most three, like real TCP options). *)
  mss_opt : int option;  (** SYN-only MSS option. *)
  wscale_opt : int option;  (** SYN-only window-scale option (shift count). *)
  sack_permitted : bool;  (** SYN-only SACK-permitted option. *)
}

val default_header_bytes : int
(** IPv4 + TCP with timestamps: 52 bytes. *)

val wire_size : t -> int
(** [payload + header]: the size an eavesdropper observes. *)

val data :
  flow:int ->
  dir:direction ->
  seq:int ->
  ack:int ->
  payload:int ->
  ?header:int ->
  ?fin:bool ->
  ?dummy:bool ->
  ?rtx:bool ->
  rwnd:int ->
  unit ->
  t
(** Data-bearing packet (ACK flag set). *)

val pure_ack :
  flow:int ->
  dir:direction ->
  seq:int ->
  ack:int ->
  ?header:int ->
  ?sack:(int * int) list ->
  rwnd:int ->
  unit ->
  t
(** Payload-less acknowledgement, optionally carrying SACK blocks. *)

val syn :
  flow:int ->
  dir:direction ->
  seq:int ->
  ?ack:int option ->
  ?rtx:bool ->
  ?mss:int ->
  ?wscale:int ->
  ?sack_permitted:bool ->
  rwnd:int ->
  unit ->
  t
(** SYN, or SYN|ACK when [ack] is provided.  Occupies one sequence number.
    The options default to absent, which models a peer that negotiates
    nothing (no MSS clamp, no window scaling, no SACK). *)

val seq_end : t -> int
(** Sequence number just past this packet's payload (SYN/FIN occupy one
    sequence number each, per TCP). *)

val pp : Format.formatter -> t -> unit
