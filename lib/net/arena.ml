(* Bump allocator for in-flight packet metadata.

   Trace builders (the capture path of a simulated visit, the synthetic
   population generator) produce events one at a time without knowing the
   final count.  Materializing each event as a [Trace.event] record costs
   three boxed words plus a boxed float; at population scale that is the
   allocation hot path.  The arena instead bumps events into fixed-size
   bigarray chunks — one float64 lane for timestamps, one int32 lane for
   the packed direction+size word — and hands the whole run to
   {!Packed_trace.of_arena} with two blits per chunk.  [reset] recycles
   the chunks, so a per-shard worker reuses one arena for every trace it
   builds. *)

module BA1 = Bigarray.Array1

type times_chunk = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type meta_chunk = (int32, Bigarray.int32_elt, Bigarray.c_layout) BA1.t

type t = {
  chunk_events : int;
  (* Full chunks, oldest first (kept in reverse, newest first). *)
  mutable full : (times_chunk * meta_chunk) list;
  mutable cur_times : times_chunk;
  mutable cur_meta : meta_chunk;
  mutable cur_len : int;
  mutable full_len : int;
  (* Spare chunks recycled by [reset]. *)
  mutable spare : (times_chunk * meta_chunk) list;
}

let default_chunk_events = 4096

(* size in [0, 2^30): the packed word is [size lsl 1 lor dir] in an int32,
   keeping direction distinguishable even for zero-size events (a signed
   encoding could not). *)
let max_size = (1 lsl 30) - 1

let encode ~dir ~size =
  if size < 0 || size > max_size then
    invalid_arg (Printf.sprintf "Arena.add: size %d outside [0, %d]" size max_size);
  Int32.of_int ((size lsl 1) lor (match dir with Packet.Outgoing -> 1 | Packet.Incoming -> 0))

let decode_size m = Int32.to_int m lsr 1
let decode_dir m = if Int32.to_int m land 1 = 1 then Packet.Outgoing else Packet.Incoming

let alloc_chunk n =
  (BA1.create Bigarray.float64 Bigarray.c_layout n, BA1.create Bigarray.int32 Bigarray.c_layout n)

let create ?(chunk_events = default_chunk_events) () =
  if chunk_events < 1 then invalid_arg "Arena.create: chunk_events must be positive";
  let times, meta = alloc_chunk chunk_events in
  {
    chunk_events;
    full = [];
    cur_times = times;
    cur_meta = meta;
    cur_len = 0;
    full_len = 0;
    spare = [];
  }

let length t = t.full_len + t.cur_len

let add t ~time ~dir ~size =
  if t.cur_len = t.chunk_events then begin
    t.full <- (t.cur_times, t.cur_meta) :: t.full;
    t.full_len <- t.full_len + t.chunk_events;
    let times, meta =
      match t.spare with
      | c :: rest ->
          t.spare <- rest;
          c
      | [] -> alloc_chunk t.chunk_events
    in
    t.cur_times <- times;
    t.cur_meta <- meta;
    t.cur_len <- 0
  end;
  BA1.unsafe_set t.cur_times t.cur_len time;
  BA1.unsafe_set t.cur_meta t.cur_len (encode ~dir ~size);
  t.cur_len <- t.cur_len + 1

let reset t =
  t.spare <- List.rev_append t.full t.spare;
  t.full <- [];
  t.full_len <- 0;
  t.cur_len <- 0

(* Copy the arena's events, in insertion order, into [times]/[meta]
   starting at index 0.  Destination length must be [length t]. *)
let blit t ~times ~meta =
  let n = length t in
  if BA1.dim times <> n || BA1.dim meta <> n then
    invalid_arg "Arena.blit: destination length mismatch";
  let off = ref 0 in
  List.iter
    (fun (ct, cm) ->
      BA1.blit ct (BA1.sub times !off t.chunk_events);
      BA1.blit cm (BA1.sub meta !off t.chunk_events);
      off := !off + t.chunk_events)
    (List.rev t.full);
  if t.cur_len > 0 then begin
    BA1.blit (BA1.sub t.cur_times 0 t.cur_len) (BA1.sub times !off t.cur_len);
    BA1.blit (BA1.sub t.cur_meta 0 t.cur_len) (BA1.sub meta !off t.cur_len)
  end
