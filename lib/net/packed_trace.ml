(* Compact trace representation: two bigarray lanes instead of an array of
   boxed event records.

   [Trace.t = event array] is a public, pattern-matched type all over the
   codebase, so this module is a mirrored-API sibling rather than a silent
   replacement: every observer (`sort`, `prefix`, `interarrivals`,
   `to_csv`, ...) is reimplemented here with identical semantics, and the
   net.packed battery holds the two representations to exact agreement.
   12 bytes/event (8 time + 4 direction|size) vs ~40 for the record
   array, with prefix/suffix as zero-copy views — what lets the
   population factory hold a shard of traces, not a corpus. *)

module BA1 = Bigarray.Array1

type times_lane = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type meta_lane = (int32, Bigarray.int32_elt, Bigarray.c_layout) BA1.t

(* Treat values as immutable: views share storage. *)
type t = { times : times_lane; meta : meta_lane }

let alloc n =
  { times = BA1.create Bigarray.float64 Bigarray.c_layout n;
    meta = BA1.create Bigarray.int32 Bigarray.c_layout n }

let empty = alloc 0

let length t = BA1.dim t.times

let time t i = BA1.get t.times i
let dir t i = Arena.decode_dir (BA1.get t.meta i)
let size t i = Arena.decode_size (BA1.get t.meta i)
let get t i = { Trace.time = time t i; dir = dir t i; size = size t i }

let sub t pos len = { times = BA1.sub t.times pos len; meta = BA1.sub t.meta pos len }

let raw_times t = t.times
let raw_meta t = t.meta

(* --- conversions --- *)

let of_trace (tr : Trace.t) =
  let n = Array.length tr in
  let p = alloc n in
  for i = 0 to n - 1 do
    let e = tr.(i) in
    BA1.unsafe_set p.times i e.Trace.time;
    BA1.unsafe_set p.meta i (Arena.encode ~dir:e.Trace.dir ~size:e.Trace.size)
  done;
  p

let to_trace t = Array.init (length t) (get t)

let of_arena arena =
  let p = alloc (Arena.length arena) in
  Arena.blit arena ~times:p.times ~meta:p.meta;
  p

(* --- observers, semantics identical to Trace --- *)

let is_sorted t =
  let ok = ref true in
  for i = 1 to length t - 1 do
    if BA1.unsafe_get t.times i < BA1.unsafe_get t.times (i - 1) then ok := false
  done;
  !ok

let sort t =
  let n = length t in
  (* Same comparator as Trace.sort: by time, original index breaking ties,
     so equal timestamps keep their relative order. *)
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let ti = BA1.unsafe_get t.times i and tj = BA1.unsafe_get t.times j in
      if ti <> tj then compare ti tj else compare i j)
    idx;
  let p = alloc n in
  Array.iteri
    (fun k i ->
      BA1.unsafe_set p.times k (BA1.unsafe_get t.times i);
      BA1.unsafe_set p.meta k (BA1.unsafe_get t.meta i))
    idx;
  p

let prefix t n = if n >= length t then t else sub t 0 (max n 0)

let duration t =
  let n = length t in
  if n < 2 then 0.0 else BA1.get t.times (n - 1) -. BA1.get t.times 0

let dir_bit = function Packet.Outgoing -> 1 | Packet.Incoming -> 0

let count ?dir t =
  match dir with
  | None -> length t
  | Some d ->
      let b = dir_bit d in
      let c = ref 0 in
      for i = 0 to length t - 1 do
        if Int32.to_int (BA1.unsafe_get t.meta i) land 1 = b then incr c
      done;
      !c

let bytes ?dir t =
  let acc = ref 0 in
  (match dir with
  | None ->
      for i = 0 to length t - 1 do
        acc := !acc + (Int32.to_int (BA1.unsafe_get t.meta i) lsr 1)
      done
  | Some d ->
      let b = dir_bit d in
      for i = 0 to length t - 1 do
        let m = Int32.to_int (BA1.unsafe_get t.meta i) in
        if m land 1 = b then acc := !acc + (m lsr 1)
      done);
  !acc

let filtered_floats ?dir t ~value =
  match dir with
  | None -> Array.init (length t) (fun i -> value t i)
  | Some d ->
      let b = dir_bit d in
      let n = count ~dir:d t in
      let out = Array.make n 0.0 in
      let k = ref 0 in
      for i = 0 to length t - 1 do
        if Int32.to_int (BA1.unsafe_get t.meta i) land 1 = b then begin
          out.(!k) <- value t i;
          incr k
        end
      done;
      out

let times ?dir t = filtered_floats ?dir t ~value:(fun t i -> BA1.unsafe_get t.times i)

let sizes ?dir t =
  filtered_floats ?dir t ~value:(fun t i ->
      float_of_int (Int32.to_int (BA1.unsafe_get t.meta i) lsr 1))

let interarrivals ?dir t =
  let ts = times ?dir t in
  let n = Array.length ts in
  if n < 2 then [||] else Array.init (n - 1) (fun i -> ts.(i + 1) -. ts.(i))

let signed_sizes t =
  Array.init (length t) (fun i ->
      let m = Int32.to_int (BA1.unsafe_get t.meta i) in
      float_of_int ((m lsr 1) * (if m land 1 = 1 then 1 else -1)))

let shift_to_zero t =
  let n = length t in
  if n = 0 then t
  else begin
    let t0 = BA1.get t.times 0 in
    let times = BA1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      BA1.unsafe_set times i (BA1.unsafe_get t.times i -. t0)
    done;
    (* meta is immutable, so the lane can be shared. *)
    { times; meta = t.meta }
  end

let concat ts =
  let n = List.fold_left (fun acc t -> acc + length t) 0 ts in
  let p = alloc n in
  let off = ref 0 in
  List.iter
    (fun t ->
      let l = length t in
      if l > 0 then begin
        BA1.blit t.times (BA1.sub p.times !off l);
        BA1.blit t.meta (BA1.sub p.meta !off l);
        off := !off + l
      end)
    ts;
  p

let concat_sorted ts = sort (concat ts)

(* --- text and binary codecs --- *)

let to_csv t =
  let buf = Buffer.create (length t * 24) in
  for i = 0 to length t - 1 do
    let m = Int32.to_int (BA1.unsafe_get t.meta i) in
    Buffer.add_string buf
      (Printf.sprintf "%.9f,%d,%d\n" (BA1.unsafe_get t.times i)
         (if m land 1 = 1 then 1 else -1)
         (m lsr 1))
  done;
  Buffer.contents buf

(* Shares Trace's parser so malformed-input behaviour (and its error
   messages) cannot drift between the representations. *)
let of_csv text = of_trace (Trace.of_csv text)

let save path t = Stob_store.Atomic_file.write path (to_csv t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_csv (really_input_string ic len))

(* Binary framing for journal payloads: magic, little-endian u32 count,
   raw float64 times, raw int32 meta words. *)
let magic = "SPKT1\x00"

let to_bytes t =
  let n = length t in
  let b = Bytes.create (String.length magic + 4 + (n * 12)) in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int32_le b (String.length magic) (Int32.of_int n);
  let off_t = String.length magic + 4 in
  let off_m = off_t + (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (off_t + (i * 8)) (Int64.bits_of_float (BA1.unsafe_get t.times i));
    Bytes.set_int32_le b (off_m + (i * 4)) (BA1.unsafe_get t.meta i)
  done;
  Bytes.unsafe_to_string b

let of_bytes s =
  let fail why = failwith ("Packed_trace.of_bytes: " ^ why) in
  let mlen = String.length magic in
  if String.length s < mlen + 4 || String.sub s 0 mlen <> magic then fail "bad magic";
  let n = Int32.to_int (String.get_int32_le s mlen) in
  if n < 0 || String.length s <> mlen + 4 + (n * 12) then fail "bad length";
  let p = alloc n in
  let off_t = mlen + 4 in
  let off_m = off_t + (n * 8) in
  for i = 0 to n - 1 do
    BA1.unsafe_set p.times i (Int64.float_of_bits (String.get_int64_le s (off_t + (i * 8))));
    BA1.unsafe_set p.meta i (String.get_int32_le s (off_m + (i * 4)))
  done;
  p

let pp_summary fmt t =
  Format.fprintf fmt "%d pkts (%d out / %d in), %d B out, %d B in, %.3f s" (length t)
    (count ~dir:Packet.Outgoing t) (count ~dir:Packet.Incoming t) (bytes ~dir:Packet.Outgoing t)
    (bytes ~dir:Packet.Incoming t) (duration t)
