(** Compact packed traces: bigarray-backed (time, direction, size) lanes.

    A mirrored-API sibling of {!Trace} — same operations, exactly the same
    semantics (the net.packed battery proves agreement event-for-event and
    byte-for-byte on the codecs) — at 12 bytes/event instead of a boxed
    record per event, with {!prefix}/{!sub} as zero-copy views and a raw
    binary codec for journal payloads.  Built either from an existing
    {!Trace.t} or streamed through an {!Arena}.

    Values are immutable by convention; views share storage. *)

type t

val empty : t
val length : t -> int

(** {1 Per-event access} *)

val time : t -> int -> float
val dir : t -> int -> Packet.direction
val size : t -> int -> int
val get : t -> int -> Trace.event

(** {1 Conversions} *)

val of_trace : Trace.t -> t
(** Raises [Invalid_argument] if an event's size is outside
    [[0, {!Arena.max_size}]]. *)

val to_trace : t -> Trace.t
val of_arena : Arena.t -> t

(** {1 Observers (each agrees exactly with its {!Trace} namesake)} *)

val is_sorted : t -> bool

val sort : t -> t
(** Stable sort by timestamp (preserves relative order of equal times). *)

val prefix : t -> int -> t
(** First [n] events — a zero-copy view. *)

val sub : t -> int -> int -> t
(** [sub t pos len]: zero-copy view of a slice. *)

val duration : t -> float
val count : ?dir:Packet.direction -> t -> int
val bytes : ?dir:Packet.direction -> t -> int
val times : ?dir:Packet.direction -> t -> float array
val sizes : ?dir:Packet.direction -> t -> float array
val interarrivals : ?dir:Packet.direction -> t -> float array
val signed_sizes : t -> float array
val shift_to_zero : t -> t

val concat : t list -> t
(** Concatenation in list order, no re-sorting. *)

val concat_sorted : t list -> t

(** {1 Codecs} *)

val to_csv : t -> string
(** Byte-identical to [Trace.to_csv] of the same events. *)

val of_csv : string -> t
(** Shares {!Trace.of_csv}'s parser; raises the same [Failure]s. *)

val save : string -> t -> unit
val load : string -> t

val to_bytes : t -> string
(** Raw binary framing (magic, u32 count, float64 times, int32 meta) for
    journal payloads; ~2x smaller than CSV and bit-exact. *)

val of_bytes : string -> t
(** Inverse of {!to_bytes}.  Raises [Failure] on framing errors. *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Zero-copy bulk access (the k-FP featurizer path)} *)

val raw_times : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
val raw_meta : t -> (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
