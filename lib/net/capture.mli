(** Passive capture point (the simulated tcpdump).

    A capture accumulates trace events as packets hit the wire.  Attach one
    to both directions of a path and every packet of every connection on
    that path is recorded — the same vantage the paper's eavesdropper (and
    its data collection) has. *)

type t

val create : unit -> t

val record : t -> time:float -> Packet.t -> unit
(** Record one packet.  Pure ACKs and dummies are recorded like any other
    packet: they are visible on the wire. *)

val observe : t -> dir:Packet.direction -> time:float -> Packet.t -> unit
(** Like {!record} but overrides the direction label — used when tapping a
    unidirectional link whose orientation is known. *)

val trace : t -> Trace.t
(** Snapshot of everything recorded so far, time-ordered. *)

val clear : t -> unit
val count : t -> int

val rtx_count : t -> int
(** Packets recorded so far that carried the simulation's retransmission
    oracle mark ({!Packet.t}[.rtx]).  A real eavesdropper cannot see this
    bit; it exists so experiments under impairment can report how much of
    a captured trace is recovery traffic. *)
