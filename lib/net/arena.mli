(** Bump allocator for in-flight packet metadata.

    A growable, chunked store of (timestamp, direction, wire size) cells in
    bigarray lanes — no per-event boxing.  Trace builders [add] events as
    they occur and hand the arena to {!Packed_trace.of_arena}; [reset]
    recycles the chunks so one arena serves every trace a worker builds.

    The packed word is [size lsl 1 lor dir_bit] in an int32; sizes must lie
    in [[0, 2^30)] (any real wire size does). *)

type t

val default_chunk_events : int
(** 4096 events (48 KiB) per chunk. *)

val max_size : int
(** Largest representable wire size, [2^30 - 1]. *)

val create : ?chunk_events:int -> unit -> t
(** Raises [Invalid_argument] when [chunk_events < 1]. *)

val length : t -> int
(** Events added since the last [reset]. *)

val add : t -> time:float -> dir:Packet.direction -> size:int -> unit
(** Append one event.  Raises [Invalid_argument] when [size] is outside
    [[0, {!max_size}]]. *)

val reset : t -> unit
(** Forget the contents, keeping the allocated chunks for reuse. *)

(** {1 Consumption (used by {!Packed_trace})} *)

val blit :
  t ->
  times:(float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  meta:(int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  unit
(** Copy the events, in insertion order, into the destination lanes (whose
    length must equal [length t]). *)

(** {1 Packed-word codec (shared with {!Packed_trace})} *)

val encode : dir:Packet.direction -> size:int -> int32
val decode_size : int32 -> int
val decode_dir : int32 -> Packet.direction
