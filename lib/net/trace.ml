type event = { time : float; dir : Packet.direction; size : int }

type t = event array

let empty = [||]
let length = Array.length

let is_sorted t =
  let ok = ref true in
  for i = 1 to Array.length t - 1 do
    if t.(i).time < t.(i - 1).time then ok := false
  done;
  !ok

let sort t =
  let copy = Array.copy t in
  (* Array.sort is not stable; sort (time, original index) pairs instead so
     equal timestamps keep their relative order. *)
  let indexed = Array.mapi (fun i e -> (e.time, i, e)) copy in
  Array.sort (fun (t1, i1, _) (t2, i2, _) -> if t1 <> t2 then compare t1 t2 else compare i1 i2) indexed;
  Array.map (fun (_, _, e) -> e) indexed

let prefix t n = if n >= Array.length t then Array.copy t else Array.sub t 0 (max n 0)

let duration t =
  let n = Array.length t in
  if n < 2 then 0.0 else t.(n - 1).time -. t.(0).time

let select ?dir t =
  match dir with None -> t | Some d -> Array.of_list (List.filter (fun e -> e.dir = d) (Array.to_list t))

let count ?dir t = Array.length (select ?dir t)

let bytes ?dir t = Array.fold_left (fun acc e -> acc + e.size) 0 (select ?dir t)

let times ?dir t = Array.map (fun e -> e.time) (select ?dir t)
let sizes ?dir t = Array.map (fun e -> float_of_int e.size) (select ?dir t)

let interarrivals ?dir t =
  let ts = times ?dir t in
  let n = Array.length ts in
  if n < 2 then [||] else Array.init (n - 1) (fun i -> ts.(i + 1) -. ts.(i))

let signed_sizes t =
  Array.map (fun e -> float_of_int (e.size * Packet.direction_sign e.dir)) t

let shift_to_zero t =
  if Array.length t = 0 then [||]
  else
    let t0 = t.(0).time in
    Array.map (fun e -> { e with time = e.time -. t0 }) t

let concat_sorted traces = sort (Array.concat traces)

let to_csv t =
  let buf = Buffer.create (Array.length t * 24) in
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%.9f,%d,%d\n" e.time (Packet.direction_sign e.dir) e.size))
    t;
  Buffer.contents buf

let of_csv text =
  let parse_line line =
    match String.split_on_char ',' (String.trim line) with
    | [ time; dir; size ] ->
        let dir =
          match int_of_string (String.trim dir) with
          | 1 -> Packet.Outgoing
          | -1 -> Packet.Incoming
          | d -> failwith (Printf.sprintf "Trace.of_csv: bad direction %d" d)
        in
        { time = float_of_string (String.trim time); dir; size = int_of_string (String.trim size) }
    | _ -> failwith (Printf.sprintf "Trace.of_csv: malformed line %S" line)
  in
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map parse_line
  |> Array.of_list

(* Atomic (write-to-temp then rename): a crash mid-save can leave a stray
   temp file but never a truncated trace under the target name. *)
let save path t = Stob_store.Atomic_file.write path (to_csv t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_csv buf)

let pp_summary fmt t =
  Format.fprintf fmt "%d pkts (%d out / %d in), %d B out, %d B in, %.3f s" (length t)
    (count ~dir:Packet.Outgoing t) (count ~dir:Packet.Incoming t) (bytes ~dir:Packet.Outgoing t)
    (bytes ~dir:Packet.Incoming t) (duration t)
