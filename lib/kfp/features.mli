(** The k-FP feature set (Hayes & Danezis, USENIX Security 2016).

    Extracts a fixed-length vector of traffic-metadata features from a wire
    trace: packet and byte counts, inter-arrival statistics, transmission-
    time percentiles, packet-ordering statistics, outgoing-packet
    concentration over 20-packet chunks, packets-per-second statistics,
    first/last-30 composition, burst statistics, packet-size band counts and
    a CUMUL-style sampled cumulative size curve.

    Every feature is total on degenerate traces (empty, single-packet,
    single-direction): missing statistics default to 0, so defended and
    truncated traces featurize without special cases. *)

val names : string array
(** Feature names, index-aligned with {!extract}'s output. *)

val dimension : int
(** Length of the feature vector ([Array.length names]). *)

val extract : Stob_net.Trace.t -> float array
(** Featurize one trace.  The result always has {!dimension} entries. *)

val extract_packed : Stob_net.Packed_trace.t -> float array
(** [extract] over the packed representation, reading the bigarray lanes
    directly (prefix/suffix windows are zero-copy views) — no event
    records are materialized.  Bit-identical to
    [extract (Packed_trace.to_trace pt)]; the kfp.packed parity test is
    the gate. *)

val chunk_size : int
(** Packets per concentration chunk (20, as in the original attack). *)
