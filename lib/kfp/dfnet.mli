(** DF-lite: a Deep-Fingerprinting-style CNN attack, batched.

    The paper's threat model centres on deep-learning WF attacks (Sirinam
    et al.'s Deep Fingerprinting, Var-CNN) that reach >95 % closed-world
    accuracy on Tor.  This is a scaled-down clean-room version of that
    architecture: the input is the sequence of packet {e directions} (+1
    outgoing, -1 incoming, zero-padded), fed through two 1-D
    convolution/ReLU/max-pool blocks and two dense layers — no
    hand-engineered features at all, which is exactly what made the DL
    attacks notable.

    Training and inference run on the batched float32 engine
    ({!Stob_nn.Tensor}/{!Stob_nn.Network}); [build_reference] exposes the
    same architecture on the kept-as-oracle per-sample engine
    ({!Stob_nn.Reference}) for the parity and BENCH_dfnet gates.  Both
    builders draw from the RNG in the same order, so the same seed gives
    the batched net the float32 rounding of the reference net's weights.

    Scaled for CPU training on simulator corpora: 600-step input, 8/16
    filters (the original uses 5000 steps and hundreds of filters on a
    GPU). *)

type t = Stob_nn.Network.t
(** Transparent so the bench/parity harnesses can reach the engine's
    [logits_m]/[weights_digest] hooks directly. *)

val input_length : int
(** Number of leading packet directions consumed (600). *)

val encode : Stob_net.Trace.t -> float array
(** Signed-direction encoding, zero-padded/truncated to {!input_length}. *)

val encode_batch : Stob_net.Trace.t array -> Stob_nn.Tensor.t
(** One {!encode}d row per trace. *)

val encode_packed : Stob_net.Packed_trace.t array -> Stob_nn.Tensor.t
(** {!encode_batch} for packed traces, reading direction bits straight off
    the raw meta lane — no per-event records, no [Trace.t] round trip.
    Row [i] equals [encode (Packed_trace.to_trace traces.(i))] exactly. *)

val build : rng:Stob_util.Rng.t -> n_classes:int -> t
(** The DF architecture on the batched engine. *)

val build_reference : rng:Stob_util.Rng.t -> n_classes:int -> Stob_nn.Reference.Network.t
(** The same architecture, same draw order, on the per-sample float64
    oracle — the baseline for the parity/speedup gates. *)

val train :
  ?epochs:int ->
  ?seed:int ->
  ?pool:Stob_par.Pool.t ->
  ?on_epoch:(Stob_nn.Network.progress -> unit) ->
  n_classes:int ->
  xs:Stob_nn.Tensor.t ->
  labels:int array ->
  unit ->
  t
(** Train on encoded traces (one row per sample).  Default 30 epochs.
    [?pool] parallelizes minibatch shards; the trained weights are
    bit-identical at any pool size ({!Stob_nn.Network.fit}'s contract). *)

val predict_m : ?pool:Stob_par.Pool.t -> t -> Stob_nn.Tensor.t -> int array
val accuracy_m : ?pool:Stob_par.Pool.t -> t -> xs:Stob_nn.Tensor.t -> labels:int array -> float
