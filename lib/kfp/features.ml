module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Stats = Stob_util.Stats

let chunk_size = 20

(* Evenly-spaced subsample of an arbitrary-length series, padded with 0. *)
let sampled n series =
  let len = Array.length series in
  Array.init n (fun i ->
      if len = 0 then 0.0
      else
        let idx = i * len / n in
        series.(min idx (len - 1)))

(* Size bands (wire bytes) counted per direction. *)
let size_bands = [| 100; 300; 600; 900; 1200; 1500 |]

let band_counts sizes =
  let counts = Array.make (Array.length size_bands) 0.0 in
  Array.iter
    (fun s ->
      let rec place i =
        if i >= Array.length size_bands - 1 then counts.(Array.length size_bands - 1) <- counts.(Array.length size_bands - 1) +. 1.0
        else if s <= float_of_int size_bands.(i) then counts.(i) <- counts.(i) +. 1.0
        else place (i + 1)
      in
      place 0)
    sizes;
  Array.to_list counts

(* Burst lengths: maximal runs of consecutive same-direction packets. *)
let burst_lengths trace dir =
  let bursts = ref [] and current = ref 0 in
  Array.iter
    (fun e ->
      if e.Trace.dir = dir then incr current
      else if !current > 0 then begin
        bursts := float_of_int !current :: !bursts;
        current := 0
      end)
    trace;
  if !current > 0 then bursts := float_of_int !current :: !bursts;
  Array.of_list (List.rev !bursts)

(* Counting fold — the seed materialized the matching elements through an
   [Array.to_list -> List.filter -> Array.of_list] round-trip just to take
   a length. *)
let count_ge bursts threshold =
  Array.fold_left (fun acc b -> if b >= threshold then acc +. 1.0 else acc) 0.0 bursts

let concentration trace =
  let n = Trace.length trace in
  let n_chunks = (n + chunk_size - 1) / chunk_size in
  Array.init n_chunks (fun c ->
      let lo = c * chunk_size and hi = min n ((c + 1) * chunk_size) in
      let count = ref 0 in
      for i = lo to hi - 1 do
        if trace.(i).Trace.dir = Packet.Outgoing then incr count
      done;
      float_of_int !count)

let packets_per_bucket trace ~bucket =
  let n = Trace.length trace in
  if n = 0 then [||]
  else begin
    let duration = Trace.duration trace in
    let buckets = max 1 (1 + int_of_float (duration /. bucket)) in
    let counts = Array.make buckets 0.0 in
    let t0 = trace.(0).Trace.time in
    Array.iter
      (fun e ->
        let b = min (buckets - 1) (int_of_float ((e.Trace.time -. t0) /. bucket)) in
        counts.(b) <- counts.(b) +. 1.0)
      trace;
    counts
  end

let time_percentiles times = List.map (Stats.percentile times) [ 25.0; 50.0; 75.0; 100.0 ]

let interarrival_block gaps =
  [ Stats.max_ gaps; Stats.mean gaps; Stats.std gaps; Stats.percentile gaps 75.0 ]

(* Positions (indices) of packets of one direction within the trace. *)
let positions trace dir =
  let pos = ref [] in
  Array.iteri (fun i e -> if e.Trace.dir = dir then pos := float_of_int i :: !pos) trace;
  Array.of_list (List.rev !pos)

let safe_frac num den = if den = 0.0 then 0.0 else num /. den

(* Everything [assemble] needs, precomputed from either representation.
   The two view builders below must compute each field with the same
   formulas — the kfp.packed parity test holds them to bit-identical
   feature vectors. *)
type view = {
  n : float;
  n_in : float;
  n_out : float;
  bytes_total : float;
  bytes_in : float;
  bytes_out : float;
  sizes_in : float array;
  sizes_out : float array;
  gaps : float array;
  gaps_in : float array;
  gaps_out : float array;
  rel_times : float array;
  rel_times_in : float array;
  rel_times_out : float array;
  pos_out : float array;
  pos_in : float array;
  conc : float array;
  pps : float array;
  first30_in : float;
  first30_out : float;
  last30_in : float;
  last30_out : float;
  bursts_out : float array;
  bursts_in : float array;
  cumul : float array;
  duration : float;
}

let view_of_trace trace =
  let rel_times_dir dir =
    let ts = Trace.times ~dir trace in
    let all = Trace.times trace in
    if Array.length all = 0 then [||] else Array.map (fun t -> t -. all.(0)) ts
  in
  let first30 = Trace.prefix trace 30 in
  let last30 =
    let len = Trace.length trace in
    if len <= 30 then Array.copy trace else Array.sub trace (len - 30) 30
  in
  {
    n = float_of_int (Trace.length trace);
    n_in = float_of_int (Trace.count ~dir:Packet.Incoming trace);
    n_out = float_of_int (Trace.count ~dir:Packet.Outgoing trace);
    bytes_total = float_of_int (Trace.bytes trace);
    bytes_in = float_of_int (Trace.bytes ~dir:Packet.Incoming trace);
    bytes_out = float_of_int (Trace.bytes ~dir:Packet.Outgoing trace);
    sizes_in = Trace.sizes ~dir:Packet.Incoming trace;
    sizes_out = Trace.sizes ~dir:Packet.Outgoing trace;
    gaps = Trace.interarrivals trace;
    gaps_in = Trace.interarrivals ~dir:Packet.Incoming trace;
    gaps_out = Trace.interarrivals ~dir:Packet.Outgoing trace;
    rel_times =
      (let ts = Trace.times trace in
       if Array.length ts = 0 then [||] else Array.map (fun t -> t -. ts.(0)) ts);
    rel_times_in = rel_times_dir Packet.Incoming;
    rel_times_out = rel_times_dir Packet.Outgoing;
    pos_out = positions trace Packet.Outgoing;
    pos_in = positions trace Packet.Incoming;
    conc = concentration trace;
    pps = packets_per_bucket trace ~bucket:0.25;
    first30_in = float_of_int (Trace.count ~dir:Packet.Incoming first30);
    first30_out = float_of_int (Trace.count ~dir:Packet.Outgoing first30);
    last30_in = float_of_int (Trace.count ~dir:Packet.Incoming last30);
    last30_out = float_of_int (Trace.count ~dir:Packet.Outgoing last30);
    bursts_out = burst_lengths trace Packet.Outgoing;
    bursts_in = burst_lengths trace Packet.Incoming;
    cumul = Stats.cumulative (Trace.signed_sizes trace);
    duration = Trace.duration trace;
  }

let assemble v =
  let n = v.n
  and n_in = v.n_in
  and n_out = v.n_out
  and bytes_total = v.bytes_total
  and bytes_in = v.bytes_in
  and bytes_out = v.bytes_out
  and sizes_in = v.sizes_in
  and sizes_out = v.sizes_out
  and gaps = v.gaps
  and gaps_in = v.gaps_in
  and gaps_out = v.gaps_out
  and rel_times = v.rel_times
  and pos_out = v.pos_out
  and pos_in = v.pos_in
  and conc = v.conc
  and pps = v.pps
  and bursts_out = v.bursts_out
  and bursts_in = v.bursts_in
  and cumul = v.cumul in
  let block name values = List.map (fun (suffix, v) -> (name ^ "." ^ suffix, v)) values in
  let stats_named prefix a =
    block prefix
      [ ("mean", Stats.mean a); ("std", Stats.std a); ("median", Stats.median a);
        ("min", Stats.min_ a); ("max", Stats.max_ a) ]
  in
  let indexed prefix values =
    List.mapi (fun i v -> (Printf.sprintf "%s.%02d" prefix i, v)) (Array.to_list values)
  in
  List.concat
    [
      (* 1. counts *)
      [
        ("count.total", n);
        ("count.in", n_in);
        ("count.out", n_out);
        ("count.frac_in", safe_frac n_in n);
        ("count.frac_out", safe_frac n_out n);
      ];
      (* 2. bytes and size stats *)
      [
        ("bytes.total", bytes_total);
        ("bytes.in", bytes_in);
        ("bytes.out", bytes_out);
        ("bytes.frac_in", safe_frac bytes_in bytes_total);
      ];
      stats_named "size.in" sizes_in;
      stats_named "size.out" sizes_out;
      (* 3. inter-arrival stats *)
      block "iat.total"
        (List.map2 (fun k v -> (k, v)) [ "max"; "mean"; "std"; "p75" ] (interarrival_block gaps));
      block "iat.in"
        (List.map2 (fun k v -> (k, v)) [ "max"; "mean"; "std"; "p75" ] (interarrival_block gaps_in));
      block "iat.out"
        (List.map2 (fun k v -> (k, v)) [ "max"; "mean"; "std"; "p75" ] (interarrival_block gaps_out));
      (* 4. transmission-time percentiles *)
      block "time.total"
        (List.map2 (fun k v -> (k, v)) [ "p25"; "p50"; "p75"; "p100" ] (time_percentiles rel_times));
      block "time.in"
        (List.map2
           (fun k v -> (k, v))
           [ "p25"; "p50"; "p75"; "p100" ]
           (time_percentiles v.rel_times_in));
      block "time.out"
        (List.map2
           (fun k v -> (k, v))
           [ "p25"; "p50"; "p75"; "p100" ]
           (time_percentiles v.rel_times_out));
      (* 5. ordering *)
      [
        ("order.out.mean", Stats.mean pos_out);
        ("order.out.std", Stats.std pos_out);
        ("order.in.mean", Stats.mean pos_in);
        ("order.in.std", Stats.std pos_in);
      ];
      (* 6. concentration of outgoing packets (20-packet chunks) *)
      stats_named "conc" conc;
      [ ("conc.sum", Stats.sum conc) ];
      indexed "conc.sample" (sampled 20 conc);
      (* 7. packets per 0.25 s *)
      stats_named "pps" pps;
      indexed "pps.sample" (sampled 20 pps);
      (* 8. first/last 30 packets *)
      [
        ("first30.in", v.first30_in);
        ("first30.out", v.first30_out);
        ("last30.in", v.last30_in);
        ("last30.out", v.last30_out);
      ];
      (* 9. bursts *)
      [
        ("burst.out.count", float_of_int (Array.length bursts_out));
        ("burst.out.mean", Stats.mean bursts_out);
        ("burst.out.max", Stats.max_ bursts_out);
        ("burst.out.ge5", count_ge bursts_out 5.0);
        ("burst.out.ge10", count_ge bursts_out 10.0);
        ("burst.in.count", float_of_int (Array.length bursts_in));
        ("burst.in.mean", Stats.mean bursts_in);
        ("burst.in.max", Stats.max_ bursts_in);
        ("burst.in.ge5", count_ge bursts_in 5.0);
        ("burst.in.ge10", count_ge bursts_in 10.0);
      ];
      (* 10. size bands *)
      List.mapi
        (fun i v -> (Printf.sprintf "band.in.%02d" i, v))
        (band_counts sizes_in);
      List.mapi
        (fun i v -> (Printf.sprintf "band.out.%02d" i, v))
        (band_counts sizes_out);
      (* 11. duration *)
      [ ("duration", v.duration) ];
      (* 12. CUMUL-style sampled cumulative signed size *)
      indexed "cumul" (sampled 20 cumul);
    ]

let named_features trace = assemble (view_of_trace trace)

(* --- packed-trace path: same features, no event-record materialization --- *)

module P = Stob_net.Packed_trace

let burst_lengths_packed pt d =
  let bursts = ref [] and current = ref 0 in
  for i = 0 to P.length pt - 1 do
    if P.dir pt i = d then incr current
    else if !current > 0 then begin
      bursts := float_of_int !current :: !bursts;
      current := 0
    end
  done;
  if !current > 0 then bursts := float_of_int !current :: !bursts;
  Array.of_list (List.rev !bursts)

let concentration_packed pt =
  let n = P.length pt in
  let n_chunks = (n + chunk_size - 1) / chunk_size in
  Array.init n_chunks (fun c ->
      let lo = c * chunk_size and hi = min n ((c + 1) * chunk_size) in
      let count = ref 0 in
      for i = lo to hi - 1 do
        if P.dir pt i = Packet.Outgoing then incr count
      done;
      float_of_int !count)

let packets_per_bucket_packed pt ~bucket =
  let n = P.length pt in
  if n = 0 then [||]
  else begin
    let duration = P.duration pt in
    let buckets = max 1 (1 + int_of_float (duration /. bucket)) in
    let counts = Array.make buckets 0.0 in
    let t0 = P.time pt 0 in
    for i = 0 to n - 1 do
      let b = min (buckets - 1) (int_of_float ((P.time pt i -. t0) /. bucket)) in
      counts.(b) <- counts.(b) +. 1.0
    done;
    counts
  end

let positions_packed pt d =
  let pos = ref [] in
  for i = 0 to P.length pt - 1 do
    if P.dir pt i = d then pos := float_of_int i :: !pos
  done;
  Array.of_list (List.rev !pos)

let view_of_packed pt =
  let rel_times_dir dir =
    let ts = P.times ~dir pt in
    let all = P.times pt in
    if Array.length all = 0 then [||] else Array.map (fun t -> t -. all.(0)) ts
  in
  (* Zero-copy views, not copies: prefix/sub share the bigarray lanes. *)
  let first30 = P.prefix pt 30 in
  let last30 =
    let len = P.length pt in
    if len <= 30 then pt else P.sub pt (len - 30) 30
  in
  {
    n = float_of_int (P.length pt);
    n_in = float_of_int (P.count ~dir:Packet.Incoming pt);
    n_out = float_of_int (P.count ~dir:Packet.Outgoing pt);
    bytes_total = float_of_int (P.bytes pt);
    bytes_in = float_of_int (P.bytes ~dir:Packet.Incoming pt);
    bytes_out = float_of_int (P.bytes ~dir:Packet.Outgoing pt);
    sizes_in = P.sizes ~dir:Packet.Incoming pt;
    sizes_out = P.sizes ~dir:Packet.Outgoing pt;
    gaps = P.interarrivals pt;
    gaps_in = P.interarrivals ~dir:Packet.Incoming pt;
    gaps_out = P.interarrivals ~dir:Packet.Outgoing pt;
    rel_times =
      (let ts = P.times pt in
       if Array.length ts = 0 then [||] else Array.map (fun t -> t -. ts.(0)) ts);
    rel_times_in = rel_times_dir Packet.Incoming;
    rel_times_out = rel_times_dir Packet.Outgoing;
    pos_out = positions_packed pt Packet.Outgoing;
    pos_in = positions_packed pt Packet.Incoming;
    conc = concentration_packed pt;
    pps = packets_per_bucket_packed pt ~bucket:0.25;
    first30_in = float_of_int (P.count ~dir:Packet.Incoming first30);
    first30_out = float_of_int (P.count ~dir:Packet.Outgoing first30);
    last30_in = float_of_int (P.count ~dir:Packet.Incoming last30);
    last30_out = float_of_int (P.count ~dir:Packet.Outgoing last30);
    bursts_out = burst_lengths_packed pt Packet.Outgoing;
    bursts_in = burst_lengths_packed pt Packet.Incoming;
    cumul = Stats.cumulative (P.signed_sizes pt);
    duration = P.duration pt;
  }

let named_features_packed pt = assemble (view_of_packed pt)

(* The names are fixed; compute them once from an empty trace. *)
let names = Array.of_list (List.map fst (named_features Trace.empty))

let dimension = Array.length names

let extract trace = Array.of_list (List.map snd (named_features trace))
let extract_packed pt = Array.of_list (List.map snd (named_features_packed pt))
