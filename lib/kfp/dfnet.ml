module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Packed_trace = Stob_net.Packed_trace
module Layer = Stob_nn.Layer
module Network = Stob_nn.Network
module Reference = Stob_nn.Reference
module Tensor = Stob_nn.Tensor
module Rng = Stob_util.Rng

let input_length = 600

let encode trace =
  Array.init input_length (fun i ->
      if i < Trace.length trace then float_of_int (Packet.direction_sign trace.(i).Trace.dir)
      else 0.0)

let encode_batch traces =
  let n = Array.length traces in
  let t = Tensor.create n input_length in
  Array.iteri
    (fun i trace ->
      let len = min (Trace.length trace) input_length in
      for p = 0 to len - 1 do
        Tensor.set t i p (float_of_int (Packet.direction_sign trace.(p).Trace.dir))
      done)
    traces;
  t

(* Straight off the packed meta lane (bit 0 is the direction), no
   per-event record or Trace.t materialized — the zero-copy path for the
   population corpus. *)
let encode_packed traces =
  let n = Array.length traces in
  let t = Tensor.create n input_length in
  Array.iteri
    (fun i packed ->
      let meta = Packed_trace.raw_meta packed in
      let len = min (Packed_trace.length packed) input_length in
      for p = 0 to len - 1 do
        let dir_bit = Int32.to_int (Bigarray.Array1.unsafe_get meta p) land 1 in
        Tensor.set t i p (if dir_bit = 1 then 1.0 else -1.0)
      done)
    traces;
  t

type t = Network.t

(* Two conv/relu/pool blocks then two dense layers — the DF shape.  The
   layer order, shapes and RNG draw order are identical to
   [build_reference], so the same seed yields the float32 rounding of the
   reference net's weights (what the parity gates rely on). *)
let shape ~n_classes =
  let l1 = input_length in
  let c1 = Layer.conv_output_length ~length:l1 ~kernel:8 in
  let p1 = Layer.pool_output_length ~length:c1 ~factor:3 in
  let c2 = Layer.conv_output_length ~length:p1 ~kernel:8 in
  let p2 = Layer.pool_output_length ~length:c2 ~factor:3 in
  (l1, c1, p1, c2, p2, n_classes)

let build ~rng ~n_classes =
  let l1, c1, p1, c2, p2, _ = shape ~n_classes in
  Network.create
    [
      Layer.conv1d ~rng ~in_channels:1 ~out_channels:8 ~kernel:8 ~length:l1;
      Layer.relu ~size:(8 * c1);
      Layer.maxpool1d ~channels:8 ~length:c1 ~factor:3;
      Layer.conv1d ~rng ~in_channels:8 ~out_channels:16 ~kernel:8 ~length:p1;
      Layer.relu ~size:(16 * c2);
      Layer.maxpool1d ~channels:16 ~length:c2 ~factor:3;
      Layer.dense ~rng ~inputs:(16 * p2) ~outputs:64;
      Layer.relu ~size:64;
      Layer.dense ~rng ~inputs:64 ~outputs:n_classes;
    ]

(* The pre-batching build, verbatim, on the kept-as-oracle engine. *)
let build_reference ~rng ~n_classes =
  let module L = Reference.Layer in
  let l1, c1, p1, c2, p2, _ = shape ~n_classes in
  Reference.Network.create
    [
      L.conv1d ~rng ~in_channels:1 ~out_channels:8 ~kernel:8 ~length:l1;
      L.relu ();
      L.maxpool1d ~channels:8 ~length:c1 ~factor:3;
      L.conv1d ~rng ~in_channels:8 ~out_channels:16 ~kernel:8 ~length:p1;
      L.relu ();
      L.maxpool1d ~channels:16 ~length:c2 ~factor:3;
      L.dense ~rng ~inputs:(16 * p2) ~outputs:64;
      L.relu ();
      L.dense ~rng ~inputs:64 ~outputs:n_classes;
    ]

let train ?(epochs = 30) ?(seed = 0) ?pool ?on_epoch ~n_classes ~xs ~labels () =
  let rng = Rng.create seed in
  let net = build ~rng ~n_classes in
  Network.fit net ~rng ~xs ~labels ~epochs ?pool ?on_epoch ();
  net

let predict_m = Network.predict_m
let accuracy_m = Network.accuracy_m
