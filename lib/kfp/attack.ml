module Rf = Stob_ml.Random_forest
module Knn = Stob_ml.Knn
module Eval = Stob_ml.Eval
module Matrix = Stob_ml.Matrix

type mode = Forest_vote | Leaf_knn of int

type t = { forest : Rf.t; knn : Knn.t }

let train_m ?(forest = Rf.default_params) ?pool ~n_classes ~matrix ~labels () =
  let rf = Rf.train_m ~params:forest ?pool ~n_classes ~matrix ~labels () in
  let fingerprints = Rf.leaf_fingerprints rf matrix in
  let knn = Knn.create ~fingerprints ~labels ~n_classes in
  { forest = rf; knn }

let train ?forest ?pool ~n_classes ~features ~labels () =
  train_m ?forest ?pool ~n_classes ~matrix:(Matrix.of_rows features) ~labels ()

let predict t ~mode x =
  match mode with
  | Forest_vote -> Rf.predict t.forest x
  | Leaf_knn k -> Knn.classify t.knn ~k (Rf.leaf_fingerprint t.forest x)

let predict_all_m t ~mode m =
  match mode with
  | Forest_vote -> Rf.predict_all t.forest m
  | Leaf_knn k ->
      Array.init (Matrix.n_rows m) (fun row ->
          Knn.classify t.knn ~k (Rf.leaf_fingerprint_m t.forest m row))

let predict_all t ~mode xs = predict_all_m t ~mode (Matrix.of_rows xs)

let evaluate_m t ~mode ~matrix ~labels =
  Eval.accuracy ~predicted:(predict_all_m t ~mode matrix) ~actual:labels

let evaluate t ~mode ~features ~labels =
  evaluate_m t ~mode ~matrix:(Matrix.of_rows features) ~labels

let open_world_of_nearest = function
  | [] -> None
  | (first, _) :: rest -> if List.for_all (fun (l, _) -> l = first) rest then Some first else None

let predict_open_world t ~k x =
  open_world_of_nearest (Knn.nearest t.knn ~k (Rf.leaf_fingerprint t.forest x))

let predict_open_world_all t ~k m =
  Array.init (Matrix.n_rows m) (fun row ->
      open_world_of_nearest (Knn.nearest t.knn ~k (Rf.leaf_fingerprint_m t.forest m row)))

let forest t = t.forest
