module Rf = Stob_ml.Random_forest
module Knn = Stob_ml.Knn
module Eval = Stob_ml.Eval

type mode = Forest_vote | Leaf_knn of int

type t = { forest : Rf.t; knn : Knn.t }

let train ?(forest = Rf.default_params) ?pool ~n_classes ~features ~labels () =
  let rf = Rf.train ~params:forest ?pool ~n_classes ~features ~labels () in
  let fingerprints = Array.map (Rf.leaf_fingerprint rf) features in
  let knn = Knn.create ~fingerprints ~labels ~n_classes in
  { forest = rf; knn }

let predict t ~mode x =
  match mode with
  | Forest_vote -> Rf.predict t.forest x
  | Leaf_knn k -> Knn.classify t.knn ~k (Rf.leaf_fingerprint t.forest x)

let predict_all t ~mode xs = Array.map (predict t ~mode) xs

let evaluate t ~mode ~features ~labels =
  Eval.accuracy ~predicted:(predict_all t ~mode features) ~actual:labels

let predict_open_world t ~k x =
  match Knn.nearest t.knn ~k (Rf.leaf_fingerprint t.forest x) with
  | [] -> None
  | (first, _) :: rest -> if List.for_all (fun (l, _) -> l = first) rest then Some first else None

let forest t = t.forest
