(** The k-FP attack pipeline.

    Train on featurized traces; classify in one of two modes:
    - [Forest_vote]: the random forest's majority vote — the closed-world
      configuration the paper's Table 2 reports ("k-FP Random Forest
      accuracy rates");
    - [Leaf_knn k]: k-nearest-neighbour over forest leaf fingerprints with
      Hamming distance — the original k-FP formulation, needed for
      open-world settings.

    The [_m] variants take a column-major {!Stob_ml.Matrix.t}; build one
    per fold ([Matrix.of_rows] over the cached feature rows) and share it
    across forest training, fingerprinting and evaluation — it is
    immutable and domain-safe. *)

type mode = Forest_vote | Leaf_knn of int

type t

val train :
  ?forest:Stob_ml.Random_forest.params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** Row-major convenience wrapper over {!train_m}. *)

val train_m :
  ?forest:Stob_ml.Random_forest.params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  matrix:Stob_ml.Matrix.t ->
  labels:int array ->
  unit ->
  t
(** [?pool] parallelizes forest training (deterministically — see
    {!Stob_ml.Random_forest.train_m}).  Training fingerprints are computed
    in one batch over the same matrix. *)

val predict : t -> mode:mode -> float array -> int

val predict_all : t -> mode:mode -> float array array -> int array

val predict_all_m : t -> mode:mode -> Stob_ml.Matrix.t -> int array
(** Batch prediction straight off a feature matrix. *)

val evaluate : t -> mode:mode -> features:float array array -> labels:int array -> float
(** Accuracy on a labelled test set. *)

val evaluate_m : t -> mode:mode -> matrix:Stob_ml.Matrix.t -> labels:int array -> float

val predict_open_world : t -> k:int -> float array -> int option
(** The original k-FP open-world rule: classify as monitored site [s] only
    when {e all} [k] nearest training fingerprints (Hamming distance over
    forest leaves) carry label [s]; any disagreement means "unmonitored"
    ([None]).  Train the attack on monitored sites plus background traffic
    collapsed into one extra class. *)

val predict_open_world_all : t -> k:int -> Stob_ml.Matrix.t -> int option array
(** Batch {!predict_open_world} over every row of a test matrix. *)

val forest : t -> Stob_ml.Random_forest.t
