(** The k-FP attack pipeline.

    Train on featurized traces; classify in one of two modes:
    - [Forest_vote]: the random forest's majority vote — the closed-world
      configuration the paper's Table 2 reports ("k-FP Random Forest
      accuracy rates");
    - [Leaf_knn k]: k-nearest-neighbour over forest leaf fingerprints with
      Hamming distance — the original k-FP formulation, needed for
      open-world settings. *)

type mode = Forest_vote | Leaf_knn of int

type t

val train :
  ?forest:Stob_ml.Random_forest.params ->
  ?pool:Stob_par.Pool.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** [?pool] parallelizes forest training (deterministically — see
    {!Stob_ml.Random_forest.train}). *)

val predict : t -> mode:mode -> float array -> int

val predict_all : t -> mode:mode -> float array array -> int array

val evaluate : t -> mode:mode -> features:float array array -> labels:int array -> float
(** Accuracy on a labelled test set. *)

val predict_open_world : t -> k:int -> float array -> int option
(** The original k-FP open-world rule: classify as monitored site [s] only
    when {e all} [k] nearest training fingerprints (Hamming distance over
    forest leaves) carry label [s]; any disagreement means "unmonitored"
    ([None]).  Train the attack on monitored sites plus background traffic
    collapsed into one extra class. *)

val forest : t -> Stob_ml.Random_forest.t
