module Hooks = Stob_tcp.Hooks

type stats = { segments : int; modified : int; added_delay : float; stood_down : int }

type t = {
  policy : Policy.t;
  rng : Stob_util.Rng.t;
  mutable size_step : int;  (* position in a Cycle_reduction *)
  mutable tso_step : int;  (* position in a Cycle_tso_reduction *)
  mutable last_release : float option;
  mutable segments : int;
  mutable modified : int;
  mutable added_delay : float;
  mutable stood_down : int;
}

let create ?(seed = 0) policy =
  (match Policy.validate policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Controller.create: invalid policy: " ^ msg));
  {
    policy;
    rng = Stob_util.Rng.create seed;
    size_step = 0;
    tso_step = 0;
    last_release = None;
    segments = 0;
    modified = 0;
    added_delay = 0.0;
    stood_down = 0;
  }

let apply_size t ~stack_payload =
  match t.policy.Policy.size with
  | Policy.Default_size -> stack_payload
  | Policy.Fixed_payload n -> min n stack_payload
  | Policy.Split_above threshold ->
      let wire = stack_payload + Stob_net.Packet.default_header_bytes in
      if wire > threshold then (stack_payload + 1) / 2 else stack_payload
  | Policy.Cycle_reduction { step; max_steps } ->
      let k = t.size_step in
      t.size_step <- (if k >= max_steps then 0 else k + 1);
      max 1 (stack_payload - (step * k))
  | Policy.Sampled_size h ->
      min stack_payload (max 1 (int_of_float (Stob_util.Histogram.sample h t.rng)))

let apply_tso t ~stack_tso ~payload =
  let stack_packets = max 1 (stack_tso / max 1 payload) in
  match t.policy.Policy.tso with
  | Policy.Default_tso -> stack_tso
  | Policy.Fixed_tso_packets n -> min stack_tso (max 1 (min n stack_packets) * payload)
  | Policy.Single_packet_tso -> min stack_tso payload
  | Policy.Cycle_tso_reduction { step; max_steps } ->
      let k = t.tso_step in
      t.tso_step <- (if k >= max_steps then 0 else k + 1);
      let packets = max 1 (stack_packets - (step * k)) in
      min stack_tso (packets * payload)

let apply_timing t ~now ~bytes ~stack_departure =
  ignore bytes;
  match t.policy.Policy.timing with
  | Policy.Default_timing -> stack_departure
  | Policy.Add_constant d -> stack_departure +. d
  | Policy.Add_uniform (lo, hi) -> stack_departure +. Stob_util.Rng.uniform t.rng lo hi
  | Policy.Stretch_gap (lo, hi) -> (
      (* The first segment has no predecessor: nothing to stretch. *)
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = Float.max 0.0 (stack_departure -. last) in
          stack_departure +. (gap *. Stob_util.Rng.uniform t.rng lo hi))
  | Policy.Sampled_gap h -> (
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = Stob_util.Histogram.sample h t.rng in
          Float.max stack_departure (last +. gap) |> Float.max now)
  | Policy.Pace_at rate -> (
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = float_of_int (bytes * 8) /. rate in
          Float.max stack_departure (last +. gap))

let hooks t =
  {
    Hooks.on_segment =
      (fun ~now ~flow:_ ~phase (d : Hooks.decision) ->
        t.segments <- t.segments + 1;
        if List.mem phase t.policy.Policy.exempt_phases then begin
          t.stood_down <- t.stood_down + 1;
          t.last_release <-
            Some
              (Float.max
                 (Option.value ~default:neg_infinity t.last_release)
                 d.Hooks.earliest_departure);
          d
        end
        else begin
          let payload = apply_size t ~stack_payload:d.Hooks.packet_payload in
          let tso = apply_tso t ~stack_tso:d.Hooks.tso_bytes ~payload in
          let departure =
            apply_timing t ~now ~bytes:tso ~stack_departure:d.Hooks.earliest_departure
          in
          let result =
            { Hooks.tso_bytes = tso; packet_payload = payload; earliest_departure = departure }
          in
          if result <> d then t.modified <- t.modified + 1;
          t.added_delay <- t.added_delay +. Float.max 0.0 (departure -. d.Hooks.earliest_departure);
          t.last_release <- Some (Float.max departure d.Hooks.earliest_departure);
          result
        end);
  }

let stats t =
  { segments = t.segments; modified = t.modified; added_delay = t.added_delay; stood_down = t.stood_down }

let policy t = t.policy

(* ------------------------------------------------------------------ *)
(* Graceful degradation: the fallback ladder and its circuit breaker.    *)

type rung = Full_policy | Clamp_only | Passthrough

let rung_name = function
  | Full_policy -> "full-policy"
  | Clamp_only -> "clamp-only"
  | Passthrough -> "passthrough"

type breaker = { trip_failures : int; window : float; stall_budget : float }

let default_breaker = { trip_failures = 3; window = 1.0; stall_budget = 0.05 }

type degradation_report = {
  rung : rung;
  decisions : int;
  full_policy_decisions : int;
  clamp_only_decisions : int;
  passthrough_decisions : int;
  hook_exceptions : int;
  injected_faults : int;
  stalls : int;
  fallbacks : int;
  unsafe_proposals : int;
  trips : (float * rung) list;
}

type guard_state = {
  breaker : breaker;
  latency : (now:float -> float) option;
  mutable g_rung : rung;
  mutable failures : float list;  (* newest first, within the sliding window *)
  mutable g_decisions : int;
  mutable g_full : int;
  mutable g_clamp : int;
  mutable g_pass : int;
  mutable g_exceptions : int;
  mutable g_injected : int;
  mutable g_stalls : int;
  mutable g_fallbacks : int;
  mutable g_unsafe : int;
  mutable g_trips : (float * rung) list;  (* newest first *)
}

let next_rung = function
  | Full_policy -> Clamp_only
  | Clamp_only | Passthrough -> Passthrough

(* Record one failure at [now]; trip to the next rung when the sliding
   window fills.  Tripping clears the window so each rung gets a fresh
   chance before the breaker escalates again. *)
let record_failure g ~now =
  g.failures <- now :: List.filter (fun t -> now -. t <= g.breaker.window) g.failures;
  if List.length g.failures >= g.breaker.trip_failures && g.g_rung <> Passthrough then begin
    g.g_rung <- next_rung g.g_rung;
    g.g_trips <- (now, g.g_rung) :: g.g_trips;
    g.failures <- []
  end

let guard ?(breaker = default_breaker) ?latency hooks =
  if breaker.trip_failures < 1 then invalid_arg "Controller.guard: trip_failures must be >= 1";
  if breaker.window <= 0.0 then invalid_arg "Controller.guard: window must be positive";
  if breaker.stall_budget < 0.0 then invalid_arg "Controller.guard: negative stall_budget";
  let g =
    {
      breaker;
      latency;
      g_rung = Full_policy;
      failures = [];
      g_decisions = 0;
      g_full = 0;
      g_clamp = 0;
      g_pass = 0;
      g_exceptions = 0;
      g_injected = 0;
      g_stalls = 0;
      g_fallbacks = 0;
      g_unsafe = 0;
      g_trips = [];
    }
  in
  let on_segment ~now ~flow ~phase (d : Hooks.decision) =
    g.g_decisions <- g.g_decisions + 1;
    match g.g_rung with
    | Passthrough ->
        (* Defense off: the hook is not even consulted. *)
        g.g_pass <- g.g_pass + 1;
        d
    | rung -> (
        (match rung with
        | Full_policy -> g.g_full <- g.g_full + 1
        | _ -> g.g_clamp <- g.g_clamp + 1);
        (* The stall budget models a watchdog on hook compute time: a
           consultation that would blow the budget is killed (the stack
           decision ships unmodified) and counts toward the breaker. *)
        let lat = match g.latency with None -> 0.0 | Some f -> f ~now in
        if lat > g.breaker.stall_budget then begin
          g.g_stalls <- g.g_stalls + 1;
          g.g_fallbacks <- g.g_fallbacks + 1;
          record_failure g ~now;
          d
        end
        else
          match hooks.Hooks.on_segment ~now ~flow ~phase d with
          | proposed ->
              if not (Safety.is_safe ~stack:d proposed) then begin
                (* The clamp corrects it below, but a policy that has to be
                   corrected is misbehaving: feed the breaker. *)
                g.g_unsafe <- g.g_unsafe + 1;
                record_failure g ~now
              end;
              let clamped = Hooks.clamp ~stack:d proposed in
              let result =
                match rung with
                | Full_policy ->
                    (* Hook compute time delays the departure — the safe
                       direction; never an earlier release. *)
                    if lat > 0.0 then
                      { clamped with Hooks.earliest_departure = clamped.Hooks.earliest_departure +. lat }
                    else clamped
                | Clamp_only | Passthrough ->
                    (* Clamp-only rung: size decisions survive, the timing
                       proposal is discarded (timing faults were what
                       tripped us off the full-policy rung). *)
                    { clamped with Hooks.earliest_departure = d.Hooks.earliest_departure }
              in
              result
          | exception Stob_sim.Fault.Injected _ ->
              g.g_injected <- g.g_injected + 1;
              g.g_fallbacks <- g.g_fallbacks + 1;
              record_failure g ~now;
              d
          | exception _ ->
              g.g_exceptions <- g.g_exceptions + 1;
              g.g_fallbacks <- g.g_fallbacks + 1;
              record_failure g ~now;
              d)
  in
  let report () =
    {
      rung = g.g_rung;
      decisions = g.g_decisions;
      full_policy_decisions = g.g_full;
      clamp_only_decisions = g.g_clamp;
      passthrough_decisions = g.g_pass;
      hook_exceptions = g.g_exceptions;
      injected_faults = g.g_injected;
      stalls = g.g_stalls;
      fallbacks = g.g_fallbacks;
      unsafe_proposals = g.g_unsafe;
      trips = List.rev g.g_trips;
    }
  in
  ({ Hooks.on_segment }, report)

let pp_degradation_report ppf r =
  Format.fprintf ppf
    "@[<v>rung: %s@,decisions: %d (full %d / clamp %d / passthrough %d)@,\
     failures: %d exceptions, %d injected, %d stalls, %d unsafe proposals@,\
     fallback decisions: %d@,trips: %a@]"
    (rung_name r.rung) r.decisions r.full_policy_decisions r.clamp_only_decisions
    r.passthrough_decisions r.hook_exceptions r.injected_faults r.stalls r.unsafe_proposals
    r.fallbacks
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (t, rung) -> Format.fprintf ppf "%.4fs->%s" t (rung_name rung)))
    r.trips
