(** The packet-sequence controller: compiles a {!Policy.t} into stack hooks.

    One controller instance serves one flow; it carries the mutable state a
    policy needs (cycle counters, RNG stream, last release time) and emits a
    {!Stob_tcp.Hooks.t} the endpoint consults once per segment.  The
    controller never proposes anything more aggressive than the stack's own
    decision — and even if a buggy policy did, the endpoint clamps it (see
    {!Stob_tcp.Hooks.clamp} and {!Safety}). *)

type t

type stats = {
  segments : int;  (** Segment decisions seen. *)
  modified : int;  (** Decisions the policy actually changed. *)
  added_delay : float;  (** Total departure delay added, seconds. *)
  stood_down : int;  (** Decisions skipped due to an exempt CCA phase. *)
}

val create : ?seed:int -> Policy.t -> t
(** Instantiate the policy's per-flow state.  [seed] fixes the random
    stream used by stochastic rules (default 0). *)

val hooks : t -> Stob_tcp.Hooks.t
(** The hook to install with {!Stob_tcp.Endpoint.set_hooks} (or pass at
    endpoint creation). *)

val stats : t -> stats
val policy : t -> Policy.t

(** {1 Graceful degradation}

    A guarded hook wraps any {!Stob_tcp.Hooks.t} in a fallback ladder:

    {v full policy -> clamp-only -> defense-off passthrough v}

    On the {e full-policy} rung the hook's answer is trusted (modulo the
    safety clamp); on {e clamp-only} its size decisions survive but timing
    proposals are discarded; on {e passthrough} the hook is no longer
    consulted and the stack's own decision ships.  A circuit breaker trips
    to the next rung when [trip_failures] hook failures land within a
    sliding [window] of virtual seconds — each consultation that raises,
    exceeds the [stall_budget], or proposes something the clamp must
    correct counts as one failure, and ships the stack's unmodified
    decision for that segment.  The page load always completes; it merely
    completes less defended, and the {!degradation_report} says exactly how
    much less. *)

(** The ladder, most- to least-defended. *)
type rung = Full_policy | Clamp_only | Passthrough

val rung_name : rung -> string

type breaker = {
  trip_failures : int;  (** Failures within [window] that trip one rung. *)
  window : float;  (** Sliding-window length, virtual seconds. *)
  stall_budget : float;
      (** Max hook compute time per consultation, seconds.  Within budget,
          hook latency is {e added to the departure} (the safe direction);
          beyond it the consultation is killed and counted as a failure. *)
}

val default_breaker : breaker
(** 3 failures within 1 s; 50 ms stall budget. *)

type degradation_report = {
  rung : rung;  (** Final rung when the report was read. *)
  decisions : int;
  full_policy_decisions : int;
  clamp_only_decisions : int;
  passthrough_decisions : int;
  hook_exceptions : int;  (** Hook raised something other than [Fault.Injected]. *)
  injected_faults : int;  (** Hook raised {!Stob_sim.Fault.Injected}. *)
  stalls : int;  (** Consultations killed for exceeding the stall budget. *)
  fallbacks : int;  (** Decisions where the stack's answer shipped because the
                        hook failed (excludes passthrough-rung decisions). *)
  unsafe_proposals : int;  (** Proposals {!Safety.is_safe} rejected. *)
  trips : (float * rung) list;  (** Breaker trips: (virtual time, new rung). *)
}

val guard :
  ?breaker:breaker ->
  ?latency:(now:float -> float) ->
  Stob_tcp.Hooks.t ->
  Stob_tcp.Hooks.t * (unit -> degradation_report)
(** [guard hooks] is the guarded hook plus a report thunk.  [latency] is an
    oracle for the hook's compute time at a given consultation (the chaos
    harness's {!Stob_sim.Fault.Hook_stall} surface); omitted means free.
    Raises [Invalid_argument] on a non-positive [trip_failures] or [window]
    or a negative [stall_budget].  Install the wrapped hook; read the
    report after the run. *)

val pp_degradation_report : Format.formatter -> degradation_report -> unit
