(** Deterministic multicore work pool.

    A pool owns [domains - 1] worker domains (the calling domain is the
    final worker: it participates in every batch, so a pool created with
    [~domains:1] — or on a host where {!Domain.recommended_domain_count}
    is [1] — spawns nothing and runs purely sequentially).

    {b Determinism contract.}  [map pool f input] writes [f input.(i)]
    into slot [i] of the result regardless of which domain computed it or
    in what order, so the result is identical for every domain count —
    {e provided [f] is a pure function of its argument}.  Code with
    randomness must therefore {e pre-split} one [Stob_util.Rng.t] per task
    from the master generator, in task order, before handing the tasks to
    the pool, and each task must draw only from its own generator.  Never
    share a generator across tasks: draw order would then depend on
    scheduling.  Because {!Stob_util.Rng.split} consumes the parent stream
    only, pre-splitting is bit-identical to the old sequential
    split-then-run interleaving — existing seeds keep their exact outputs.

    Exceptions raised by tasks are caught per-task; once the batch has
    drained, the error of the {e lowest-index} failing task is re-raised
    (with its backtrace) in the calling domain — again independent of
    scheduling.  A pool remains usable after a failed batch. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool with the given total concurrency
    (caller included), spawning [domains - 1] worker domains.  [domains]
    defaults to [Domain.recommended_domain_count ()]; an explicit request
    is honored even on single-core hosts (the OS time-slices), which is
    what lets the determinism tests exercise real domains anywhere.
    Raises [Invalid_argument] if [domains < 1]. *)

val sequential : t
(** A shared zero-worker pool: [map sequential] is [Array.map].  Handy as
    the default for [?pool] arguments. *)

val domains : t -> int
(** Total concurrency the pool was created with (>= 1). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Call before program exit for
    every pool you [create]; a shut-down pool degrades to sequential. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val map : ?on_done:(int -> 'b -> unit) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f input] is [Array.map f input], computed by up to
    [domains pool] domains.  Result order, and the choice of which error
    to re-raise, are deterministic (see the contract above).

    [on_done i r] is a completion hook: it fires exactly once per
    successful task, in {e strictly increasing index order}, serialized
    under an internal lock — whatever the domain count, the callback
    sequence is identical to the sequential one.  This is what lets a
    caller journal results durably {e as they complete} while keeping the
    journal bytes jobs-invariant.  The hook may run on any domain; it must
    not call back into the same pool.  If task [i] fails, callbacks stop
    at [i] (indices beyond it are never reported) and the error is
    re-raised after the batch drains, as usual; if the callback itself
    raises, later callbacks are suppressed and its error is re-raised
    after the batch (task errors take precedence). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] for lists. *)

val map_reduce : t -> f:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce pool ~f ~reduce ~init input] maps in parallel, then folds
    [reduce] over the results {e left-to-right in index order} starting
    from [init].  Deterministic for any [reduce], associative or not;
    associativity is only needed if you want the result to also equal a
    differently-bracketed sequential reduction. *)
