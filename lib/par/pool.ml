(* Hand-rolled Domain work pool, dependency-free.

   Batches are index-claimed: each participating domain repeatedly takes
   the next unclaimed input index from an atomic counter and writes the
   result into that slot, so output order never depends on scheduling.
   The calling domain always participates in its own batch, which means a
   nested [map] issued from inside a task still completes even when every
   worker is busy — the inner caller just does the work itself. *)

type t = {
  domains : int;
  queue : (unit -> unit) Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable alive : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.domains

let rec worker_loop pool =
  Mutex.lock pool.mu;
  let rec next () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.alive then begin
      Condition.wait pool.nonempty pool.mu;
      next ()
    end
    else None
  in
  match next () with
  | None -> Mutex.unlock pool.mu
  | Some task ->
      Mutex.unlock pool.mu;
      task ();
      worker_loop pool

let make_pool domains =
  {
    domains;
    queue = Queue.create ();
    mu = Mutex.create ();
    nonempty = Condition.create ();
    alive = true;
    workers = [];
  }

let sequential = { (make_pool 1) with alive = false }

let create ?domains () =
  let domains =
    match domains with
    | Some d -> if d < 1 then invalid_arg "Pool.create: domains must be >= 1" else d
    | None -> Domain.recommended_domain_count ()
  in
  let pool = make_pool domains in
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mu;
  let workers = pool.workers in
  pool.alive <- false;
  pool.workers <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mu;
  List.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?on_done pool f input =
  let n = Array.length input in
  let helpers = match pool.workers with [] -> 0 | ws -> min (List.length ws) (n - 1) in
  if n = 0 then [||]
  else if helpers = 0 then begin
    match on_done with
    | None -> Array.map f input
    | Some cb ->
        (* Explicit loop: Array.init's evaluation order is unspecified, and
           the callback contract is strict index order. *)
        let results = Array.make n None in
        for i = 0 to n - 1 do
          let r = f input.(i) in
          results.(i) <- Some r;
          cb i r
        done;
        Array.map (function Some v -> v | None -> assert false) results
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let pending = Atomic.make n in
    let done_mu = Mutex.create () in
    let done_cond = Condition.create () in
    (* Completion callbacks fire under [cb_mu] in strictly increasing index
       order: whichever domain finishes a task drains the contiguous prefix
       of ready results past [next_cb].  A slot that raised (or a callback
       that raised) permanently blocks later callbacks — deterministic,
       since the flush order itself is index order.  Every finishing task
       locks [cb_mu] after publishing its slot, so the mutex also gives the
       flushing domain visibility of the slots it reads. *)
    let cb_mu = Mutex.create () in
    let next_cb = ref 0 in
    let cb_err = ref None in
    let flush_callbacks cb =
          Mutex.lock cb_mu;
          let continue_ = ref (!cb_err = None) in
          while !continue_ && !next_cb < n do
            match results.(!next_cb) with
            | Some (Ok v) ->
                let i = !next_cb in
                incr next_cb;
                (try cb i v
                 with e ->
                   cb_err := Some (e, Printexc.get_raw_backtrace ());
                   continue_ := false)
            | Some (Error _) | None -> continue_ := false
          done;
          Mutex.unlock cb_mu
    in
    let flush_callbacks () =
      match on_done with None -> () | Some cb -> flush_callbacks cb
    in
    let rec claim () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f input.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        flush_callbacks ();
        (* Last task out signals the (possibly already waiting) caller. *)
        if Atomic.fetch_and_add pending (-1) = 1 then begin
          Mutex.lock done_mu;
          Condition.broadcast done_cond;
          Mutex.unlock done_mu
        end;
        claim ()
      end
    in
    Mutex.lock pool.mu;
    for _ = 1 to helpers do Queue.push claim pool.queue done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mu;
    claim ();
    Mutex.lock done_mu;
    while Atomic.get pending > 0 do
      Condition.wait done_cond done_mu
    done;
    Mutex.unlock done_mu;
    flush_callbacks ();
    (* Scanning in index order makes the re-raised error deterministic; a
       task error outranks a callback error at a higher index. *)
    let out =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | None -> assert false)
        results
    in
    (match !cb_err with Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ());
    out
  end

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

let map_reduce pool ~f ~reduce ~init input = Array.fold_left reduce init (map pool f input)
