(** Experiment E2: reproduce Figure 3 — single-connection throughput under
    packet-size and TSO-size adjustment.

    A bulk transfer runs over a simulated 100 Gb/s link (50 us RTT) with the
    calibrated single-core CPU cost model; Stob's incremental-reduction
    strategy shrinks packet size (by alpha per segment, cycling) and/or TSO
    size (by alpha/4 packets per segment, cycling).  Steady-state goodput is
    measured after a warm-up, for each maximum-reduction degree alpha on
    the horizontal axis. *)

type point = {
  alpha : int;
  baseline_gbps : float;  (** Unmodified stack (alpha-independent control). *)
  packet_gbps : float;  (** Packet-size adjustment only. *)
  tso_gbps : float;  (** TSO-size adjustment only. *)
  combined_gbps : float;  (** Both adjustments. *)
}

type config = {
  alphas : int list;
  link_gbps : float;
  rtt : float;
  warmup : float;
  measure : float;
  cc : Stob_tcp.Cc.factory;
  cc_name : string;
      (** Canonical name of [cc] ({!Stob_tcp.Netem_eval.cc_of_name}); keyed
          into the checkpoint digests, since the factory itself cannot be. *)
}

val default_config : config
(** alphas 0..40 step 4, 100 Gb/s, 50 us RTT, 50 ms warm-up, 150 ms
    measurement, CUBIC. *)

val throughput_with_policy : config:config -> policy:Stob_core.Policy.t -> float
(** Measured steady-state goodput (bits/s) of one bulk transfer under the
    given server-side policy. *)

val run :
  ?config:config ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  unit ->
  point list
(** [?pool] parallelizes the alpha sweep (one supervised cell per distinct
    nonzero alpha, plus one baseline cell); points are identical for any
    domain count.  With a [?store], finished cells are journaled and a rerun
    resumes from the cache; a poisoned cell's series render as [nan]
    (["poisoned"] in {!print}).  See {!Stob_store.Supervisor} for
    [?retries]/[?inject]/[?on_report]. *)

val print : point list -> unit
(** Render the two (plus combined) series as aligned columns — the data
    behind the figure. *)
