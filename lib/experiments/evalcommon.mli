(** Shared evaluation helpers: cross-validated k-FP accuracy, and the
    cell runner the crash-safe sweeps are built on. *)

val run_cells :
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  experiment:string ->
  'a Stob_store.Supervisor.cell list ->
  ('a, string) result list * Stob_store.Supervisor.report
(** Run a sweep's cells through {!Stob_store.Supervisor} with the shared
    Marshal codec (bit-exact round trips, so resume = uninterrupted).
    Results in cell order; [Error] is a poisoned cell's exception text. *)

val dataset_fingerprint : Stob_web.Dataset.t -> string
(** Content hash of a corpus (samples + site names), used as a cell config
    field so cached results can never be replayed against a different
    dataset. *)

val accuracy_cv :
  ?folds:int -> ?trees:int -> ?seed:int -> ?pool:Stob_par.Pool.t -> Stob_web.Dataset.t ->
  float * float
(** Stratified CV accuracy (mean, sample std) of the forest-vote attack on
    full traces.  Defaults: 5 folds, 100 trees, seed 42.  [?pool]
    parallelizes over folds; results are identical for any domain count. *)
