(** Shared evaluation helper: cross-validated k-FP accuracy on a dataset. *)

val accuracy_cv :
  ?folds:int -> ?trees:int -> ?seed:int -> ?pool:Stob_par.Pool.t -> Stob_web.Dataset.t ->
  float * float
(** Stratified CV accuracy (mean, sample std) of the forest-vote attack on
    full traces.  Defaults: 5 folds, 100 trees, seed 42.  [?pool]
    parallelizes over folds; results are identical for any domain count. *)
