(* Population-scale trace factory: zipf site popularity, per-user diurnal
   sessions, packed traces streamed shard-by-shard into journals.

   Layering: [plan_shard] is pure bookkeeping (who visits what, when) so
   the statistical tests can check the population shape without touching a
   packet; [synthesize] turns one visit into a packed trace; [generate]
   shards the plan across the pool and journals each shard's payloads as
   they are produced, keeping only O(shard) resident. *)

module Rng = Stob_util.Rng
module Pool = Stob_par.Pool
module Profile = Stob_web.Profile
module Sites = Stob_web.Sites
module Packed = Stob_net.Packed_trace
module Arena = Stob_net.Arena
module Store = Stob_store.Store
module Journal = Stob_store.Journal
module Cell = Stob_store.Cell
module Crc32 = Stob_store.Crc32

type mode = Synthetic | Browser

type config = {
  users : int;
  shards : int;
  zipf_exponent : float;
  background_sites : int;
  mean_sessions : float;
  mean_session_visits : float;
  mean_dwell : float;
  day_seconds : float;
  diurnal_amplitude : float;
  max_trace_events : int;
  mode : mode;
  seed : int;
}

let default_config =
  {
    users = 200;
    shards = 8;
    zipf_exponent = 1.1;
    background_sites = 41;
    mean_sessions = 2.5;
    mean_session_visits = 4.0;
    mean_dwell = 30.0;
    day_seconds = 86_400.0;
    diurnal_amplitude = 0.8;
    max_trace_events = 4000;
    mode = Synthetic;
    seed = 42;
  }

let validate c =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if c.users < 0 then bad "Population: users %d < 0" c.users;
  if c.shards < 1 then bad "Population: shards %d < 1" c.shards;
  if c.background_sites < 0 then bad "Population: background_sites %d < 0" c.background_sites;
  if c.zipf_exponent < 0.0 then bad "Population: zipf_exponent %g < 0" c.zipf_exponent;
  if c.mean_sessions < 0.0 then bad "Population: mean_sessions %g < 0" c.mean_sessions;
  if c.mean_session_visits < 1.0 then
    bad "Population: mean_session_visits %g < 1" c.mean_session_visits;
  if c.mean_dwell <= 0.0 then bad "Population: mean_dwell %g <= 0" c.mean_dwell;
  if c.day_seconds <= 0.0 then bad "Population: day_seconds %g <= 0" c.day_seconds;
  if c.diurnal_amplitude < 0.0 || c.diurnal_amplitude >= 1.0 then
    bad "Population: diurnal_amplitude %g outside [0, 1)" c.diurnal_amplitude;
  if c.max_trace_events < 8 then bad "Population: max_trace_events %d < 8" c.max_trace_events

let mode_name = function Synthetic -> "synthetic" | Browser -> "browser"

let config_fields c =
  let f = Printf.sprintf "%.17g" in
  [
    ("users", string_of_int c.users);
    ("shards", string_of_int c.shards);
    ("zipf_exponent", f c.zipf_exponent);
    ("background_sites", string_of_int c.background_sites);
    ("mean_sessions", f c.mean_sessions);
    ("mean_session_visits", f c.mean_session_visits);
    ("mean_dwell", f c.mean_dwell);
    ("day_seconds", f c.day_seconds);
    ("diurnal_amplitude", f c.diurnal_amplitude);
    ("max_trace_events", string_of_int c.max_trace_events);
    ("mode", mode_name c.mode);
  ]

let monitored = Array.of_list Sites.all

let universe c =
  Array.append monitored
    (Array.of_list (Sites.synthetic_background ~n:c.background_sites ~seed:c.seed))

let universe_size c = Array.length monitored + c.background_sites

(* --- planning ---------------------------------------------------------- *)

type visit = { user : int; session : int; site : int; start : float; trace_seed : int }

(* Normalized zipf CDF over ranks 1..n: weight(r) = r^-s. *)
let zipf_cdf ~s n =
  let w = Array.init n (fun i -> float_of_int (i + 1) ** -.s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick cdf rng =
  let u = Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* Rejection-sample a start time against the diurnal intensity curve; the
   iteration bound only matters at amplitude ~1 and keeps the draw total. *)
let diurnal_start c rng =
  let a = c.diurnal_amplitude in
  let rec draw n =
    let t = Rng.float rng c.day_seconds in
    let intensity = 1.0 +. (a *. sin (2.0 *. Float.pi *. ((t /. c.day_seconds) -. 0.25))) in
    if n >= 1000 || Rng.bernoulli rng (intensity /. (1.0 +. a)) then t else draw (n + 1)
  in
  draw 0

let plan_shard c ~shard =
  validate c;
  if shard < 0 || shard >= c.shards then
    invalid_arg (Printf.sprintf "Population.plan_shard: shard %d outside [0, %d)" shard c.shards);
  let cdf = zipf_cdf ~s:c.zipf_exponent (universe_size c) in
  let master = Rng.create c.seed in
  let visits = ref [] in
  for user = 0 to c.users - 1 do
    (* Pre-split one generator per user in user order: a user's plan is
       independent of the shard count and of every other user. *)
    let urng = Rng.split master in
    if user mod c.shards = shard then
      let sessions = Rng.poisson urng ~lambda:c.mean_sessions in
      for session = 0 to sessions - 1 do
        let start = diurnal_start c urng in
        let n_visits = 1 + Rng.geometric urng ~p:(1.0 /. c.mean_session_visits) in
        let at = ref start in
        for _ = 1 to n_visits do
          let site = zipf_pick cdf urng in
          let trace_seed = Int64.to_int (Rng.bits64 urng) land max_int in
          visits := { user; session; site; start = !at; trace_seed } :: !visits;
          at := !at +. Rng.exponential urng ~rate:(1.0 /. c.mean_dwell)
        done
      done
  done;
  Array.of_list (List.rev !visits)

(* --- trace synthesis --------------------------------------------------- *)

let outgoing = Stob_net.Packet.Outgoing
let incoming = Stob_net.Packet.Incoming

(* The cheap statistical model: a TCP+TLS handshake, the site's TLS flight,
   then the page's objects as MSS-chunked incoming bursts with delayed-ACK
   outgoing packets, request round-trips at connection-pool boundaries.
   All randomness is drawn per object; the per-packet inner loop is
   draw-free arithmetic, which is what makes population-scale generation
   cheap. *)
let synthesize_statistical c ~profile rng =
  let rate_bps, owd = Profile.sample_network profile rng in
  let rtt = 2.0 *. owd in
  let seg_gap = 1460.0 *. 8.0 /. rate_bps in
  let arena = Arena.create () in
  let n = ref 0 and t = ref 0.0 in
  let push time dir size =
    if !n < c.max_trace_events then begin
      Arena.add arena ~time ~dir ~size;
      incr n
    end
  in
  let deliver bytes =
    let segs = (bytes + 1459) / 1460 in
    let i = ref 0 in
    while !i < segs && !n < c.max_trace_events do
      incr i;
      t := !t +. seg_gap;
      let payload = if !i = segs then bytes - ((segs - 1) * 1460) else 1460 in
      push !t incoming (min 1500 (payload + 40));
      if !i land 1 = 0 || !i = segs then push !t outgoing 52
    done
  in
  push !t outgoing 60;
  t := !t +. rtt;
  push !t incoming 60;
  push !t outgoing 52;
  push !t outgoing (200 + Rng.int rng 400);
  t := !t +. rtt;
  deliver (Profile.sample_size profile.Profile.tls_flight rng);
  push !t outgoing 126;
  let page_objects =
    let class_sizes (cl : Profile.class_spec) =
      List.init (Rng.poisson rng ~lambda:cl.Profile.mean_count) (fun _ ->
          Profile.sample_size cl.Profile.size rng)
    in
    Profile.sample_size profile.Profile.html rng
    :: List.concat_map class_sizes
         [
           profile.Profile.css;
           profile.Profile.js;
           profile.Profile.fonts;
           profile.Profile.images;
           profile.Profile.media;
           profile.Profile.api;
         ]
  in
  let pool_width = max 1 profile.Profile.parallel_connections in
  List.iteri
    (fun j bytes ->
      if !n < c.max_trace_events then begin
        if j mod pool_width = 0 then begin
          let think = profile.Profile.think in
          t := !t +. rtt +. Rng.lognormal rng ~mu:(log think.Profile.median) ~sigma:think.Profile.sigma
        end;
        push !t outgoing (300 + Rng.int rng 300);
        deliver bytes
      end)
    page_objects;
  Packed.of_arena arena

let synthesize c ~universe v =
  let profile = universe.(v.site) in
  let rng = Rng.create v.trace_seed in
  match c.mode with
  | Synthetic -> synthesize_statistical c ~profile rng
  | Browser ->
      let r = Stob_web.Browser.load ~rng profile in
      let pt = Packed.of_trace r.Stob_web.Browser.trace in
      Packed.prefix pt c.max_trace_events

(* --- sharded generation ------------------------------------------------ *)

type shard_stats = {
  shard : int;
  flows : int;
  events : int;
  payload_bytes : int;
  payload_crc : string;
  site_visits : int array;
}

type summary = {
  config : config;
  shard_results : shard_stats array;
  flows : int;
  events : int;
  bytes : int;
  cached_shards : int;
  corpus_digest : string;
}

let shard_label i = Printf.sprintf "shard-%04d" i
let shard_file ~state_dir i = Filename.concat state_dir (shard_label i ^ ".stob")

let shard_key c i =
  Cell.digest ~experiment:"population"
    ~config:(("shard", string_of_int i) :: config_fields c)
    ~seed:c.seed

let crc_hex s = Printf.sprintf "%08lx" (Crc32.string s)

(* Compute one shard from scratch, streaming every trace straight into the
   shard's own journal: after [append] returns, the bytes are out of our
   hands and only counters stay resident. *)
let compute_shard c ~universe ~state_dir i =
  let visits = plan_shard c ~shard:i in
  let file = shard_file ~state_dir i in
  (* A file without a matching stats record is a crashed attempt's leftover;
     recompute the shard whole rather than guessing where it died. *)
  (try Sys.remove file with Sys_error _ -> ());
  let journal, _ = Journal.open_ file in
  Fun.protect ~finally:(fun () -> Journal.close journal) @@ fun () ->
  let site_visits = Array.make (universe_size c) 0 in
  let events = ref 0 and bytes = ref 0 in
  let crcs = Buffer.create (8 * Array.length visits) in
  Array.iter
    (fun v ->
      let pt = synthesize c ~universe v in
      let payload = Packed.to_bytes pt in
      Journal.append journal payload;
      site_visits.(v.site) <- site_visits.(v.site) + 1;
      events := !events + Packed.length pt;
      bytes := !bytes + String.length payload;
      Buffer.add_string crcs (crc_hex payload))
    visits;
  {
    shard = i;
    flows = Array.length visits;
    events = !events;
    payload_bytes = !bytes;
    payload_crc = crc_hex (Buffer.contents crcs);
    site_visits;
  }

let generate ?(pool = Pool.sequential) ?on_shard c ~state_dir =
  validate c;
  let universe = universe c in
  let store = Store.open_ state_dir in
  Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
  Store.set_manifest store ~experiment:"population" ~fields:(config_fields c) ~total:c.shards;
  let cached =
    Array.init c.shards (fun i ->
        match Store.find store (shard_key c i) with
        | Some (Store.Done payload) -> Some (Marshal.from_string payload 0 : shard_stats)
        | Some (Store.Poisoned _) | None -> None)
  in
  let results =
    Pool.map pool
      ~on_done:(fun i (fresh, stats) ->
        (* Index order, under the pool's lock: the run journal's bytes are
           jobs-invariant, and [on_shard] observes a sequential schedule. *)
        if fresh then begin
          Store.record store ~key:(shard_key c i) ~label:(shard_label i)
            (Store.Done (Marshal.to_string stats []));
          (* Shard boundary: size-bounded auto-compaction so the run
             journal stops growing monotonically across huge corpora. *)
          ignore (Store.maybe_checkpoint store)
        end;
        Option.iter (fun f -> f stats) on_shard)
      (fun i ->
        match cached.(i) with
        | Some stats -> (false, stats)
        | None -> (true, compute_shard c ~universe ~state_dir i))
      (Array.init c.shards Fun.id)
  in
  let stats = Array.map snd results in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  {
    config = c;
    shard_results = stats;
    flows = sum (fun s -> s.flows);
    events = sum (fun s -> s.events);
    bytes = sum (fun s -> s.payload_bytes);
    cached_shards = Array.fold_left (fun n (fresh, _) -> if fresh then n else n + 1) 0 results;
    corpus_digest =
      Cell.digest ~experiment:"population-corpus"
        ~config:(Array.to_list (Array.map (fun s -> (shard_label s.shard, s.payload_crc)) stats))
        ~seed:c.seed;
  }

let iter_shard_traces ~state_dir ~shard f =
  List.iter (fun payload -> f (Packed.of_bytes payload)) (Journal.read (shard_file ~state_dir shard))

let site_visit_table summary =
  let names =
    Array.map (fun (p : Profile.t) -> p.Profile.name) (universe summary.config)
  in
  Array.mapi
    (fun rank name ->
      (name, Array.fold_left (fun acc s -> acc + s.site_visits.(rank)) 0 summary.shard_results))
    names

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>population: %d users, %d shards (%d cached), %d flows, %d events, %.1f MiB packed@,\
     corpus digest: %s@,top sites:@]@."
    s.config.users s.config.shards s.cached_shards s.flows s.events
    (float_of_int s.bytes /. 1048576.0)
    s.corpus_digest;
  let table = site_visit_table s in
  let top = Array.copy table in
  Array.sort (fun (_, a) (_, b) -> compare b a) top;
  Array.iteri
    (fun i (name, count) ->
      if i < 10 && count > 0 then Format.fprintf fmt "  %-28s %6d visits@." name count)
    top
