(** Population-scale trace factory.

    Models a whole user population browsing the monitored + background web
    for one simulated day — zipf-distributed site popularity, per-user
    session counts, diurnal load — and turns every visit into a packed
    trace ({!Stob_net.Packed_trace}).  The corpus is generated in a fixed
    number of {e shards} (independent of [--jobs], so the output is
    jobs-invariant by construction), each shard streaming its traces into
    its own {!Stob_store.Journal} file as they are produced: resident
    memory stays O(shard), never O(corpus).

    A run-level {!Stob_store.Store} in the same state directory records
    one small stats record per finished shard, which is what makes a
    killed generation resumable: shards already journaled are skipped, and
    the corpus digest of the merged run is identical to an uninterrupted
    one.

    The planning layer ({!plan_shard}) is pure and exposed separately so
    the statistical tests can check the zipf slope and per-user session
    distribution without synthesizing a single packet. *)

type mode =
  | Synthetic
      (** Draw traces from a cheap per-site statistical model (handshake,
          TLS flight, per-object transfer bursts parameterized by the
          site's {!Stob_web.Profile}).  ~1000x faster than a full stack
          simulation; the population shape, not stack fidelity, is the
          point. *)
  | Browser  (** Full {!Stob_web.Browser.load} page-load simulation. *)

type config = {
  users : int;  (** Population size. *)
  shards : int;  (** Fixed shard count; results never depend on [--jobs]. *)
  zipf_exponent : float;  (** Site-popularity exponent [s] (weights 1/r^s). *)
  background_sites : int;
      (** Synthetic background profiles appended after the nine monitored
          sites; the zipf ranking runs over the combined universe. *)
  mean_sessions : float;  (** Poisson mean sessions per user per day. *)
  mean_session_visits : float;  (** Mean visits per session (>= 1). *)
  mean_dwell : float;  (** Mean seconds between visits within a session. *)
  day_seconds : float;  (** Diurnal period. *)
  diurnal_amplitude : float;
      (** Peak-to-mean load swing in [0, 1): intensity(t) follows
          [1 + a*sin(2*pi*(t/day - 1/4))], peaking mid-day. *)
  max_trace_events : int;  (** Per-trace event cap (capture truncation). *)
  mode : mode;
  seed : int;
}

val default_config : config

val config_fields : config -> (string * string) list
(** Canonical digest fields (everything but the seed, which
    {!Stob_store.Cell.digest} takes separately). *)

val universe : config -> Stob_web.Profile.t array
(** Monitored sites (rank 0..8, the paper's order) followed by
    [background_sites] synthetic profiles.  Deterministic in [seed]. *)

(** {1 Planning (pure)} *)

type visit = {
  user : int;
  session : int;  (** Session index within the user's day. *)
  site : int;  (** Rank into {!universe}. *)
  start : float;  (** Visit start, seconds into the day. *)
  trace_seed : int;  (** Seed for the visit's trace synthesis. *)
}

val plan_shard : config -> shard:int -> visit array
(** All visits of the users assigned to [shard] (user [u] belongs to shard
    [u mod shards]), in (user, session, visit) order.  Deterministic in
    [(config, shard)]; a user's plan does not depend on the shard count —
    each user draws from an own pre-split generator. *)

val synthesize : config -> universe:Stob_web.Profile.t array -> visit -> Stob_net.Packed_trace.t
(** One visit's packed trace, deterministic in the visit's [trace_seed].
    Sorted, time-zeroed, at most [max_trace_events] events. *)

(** {1 Generation} *)

type shard_stats = {
  shard : int;
  flows : int;  (** Traces journaled by this shard. *)
  events : int;
  payload_bytes : int;  (** Packed bytes appended to the shard journal. *)
  payload_crc : string;  (** Hex digest of the shard's payload stream. *)
  site_visits : int array;  (** Visit count per universe rank. *)
}

type summary = {
  config : config;
  shard_results : shard_stats array;
  flows : int;
  events : int;
  bytes : int;
  cached_shards : int;  (** Shards served from a previous run's journal. *)
  corpus_digest : string;
      (** {!Stob_store.Cell.digest} over the per-shard payload digests —
          equal iff every shard's journaled bytes are equal. *)
}

val shard_file : state_dir:string -> int -> string
(** The shard's journal path inside a state directory. *)

val generate :
  ?pool:Stob_par.Pool.t ->
  ?on_shard:(shard_stats -> unit) ->
  config ->
  state_dir:string ->
  summary
(** Generate (or resume) the corpus under [state_dir].  [on_shard] fires
    once per shard in strictly increasing shard order (cached or fresh),
    after the shard's stats are durably recorded.  Raises [Failure] if the
    directory belongs to a different run. *)

val iter_shard_traces : state_dir:string -> shard:int -> (Stob_net.Packed_trace.t -> unit) -> unit
(** Stream one shard's journaled traces, oldest first — O(shard) memory.
    A missing shard file iterates nothing. *)

val site_visit_table : summary -> (string * int) array
(** Aggregate visits per site name, rank order. *)

val pp_summary : Format.formatter -> summary -> unit
