module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack
module Dfnet = Stob_kfp.Dfnet
module Tensor = Stob_nn.Tensor
module Packed_trace = Stob_net.Packed_trace

type row = { attack : string; original : float; defended : float }

(* Everything one corpus contributes to the sweep, computed once up front:
   the 70/30 split, the k-FP feature rows and the DF direction tensor.
   The old harness re-ran Dfnet.encode / Features.extract at every call
   site; cells now share these read-only arrays, so each corpus is encoded
   exactly once however many attacks consume it. *)
type prepared = {
  fingerprint : string;
  train_labels : int array;
  test_labels : int array;
  kfp_train : float array array;
  kfp_test : float array array;
  df_train : Tensor.t;
  df_test : Tensor.t;
}

let prepare ~seed corpus =
  let rng = Rng.create (seed + 11) in
  let train, test = Dataset.split corpus ~rng ~train_fraction:0.7 in
  let labels d = Array.map (fun (s : Dataset.sample) -> s.Dataset.label) d.Dataset.samples in
  let feats d =
    Array.map (fun (s : Dataset.sample) -> Features.extract s.Dataset.trace) d.Dataset.samples
  in
  let enc d =
    Dfnet.encode_batch (Array.map (fun (s : Dataset.sample) -> s.Dataset.trace) d.Dataset.samples)
  in
  {
    fingerprint = Evalcommon.dataset_fingerprint corpus;
    train_labels = labels train;
    test_labels = labels test;
    kfp_train = feats train;
    kfp_test = feats test;
    df_train = enc train;
    df_test = enc test;
  }

(* Cells may run on pool worker domains, so they train sequentially
   (nesting into the same pool is forbidden); parallelism comes from
   running the four cells concurrently. *)
let eval_kfp ~trees ~seed ~n_classes p =
  let attack =
    Attack.train
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ~n_classes ~features:p.kfp_train ~labels:p.train_labels ()
  in
  Attack.evaluate attack ~mode:Attack.Forest_vote ~features:p.kfp_test ~labels:p.test_labels

let eval_df ~epochs ~seed ~quiet ~n_classes p =
  let net =
    Dfnet.train ~epochs ~seed ~n_classes ~xs:p.df_train ~labels:p.train_labels
      ~on_epoch:(fun (pr : Stob_nn.Network.progress) ->
        if (not quiet) && pr.epoch mod 10 = 0 then
          Printf.eprintf "dl:   epoch %d, loss %.3f\n%!" pr.epoch pr.mean_loss)
      ()
  in
  Dfnet.accuracy_m net ~xs:p.df_test ~labels:p.test_labels

(* The sweep decomposes into 4 cells ({k-FP, DF} x {original, defended}),
   each a pure function of (corpus fingerprint, attack params, seed) —
   the same checkpoint/cache/retry unit as the table2/fig3 sweeps. *)
let run ?(samples_per_site = 60) ?(trees = 100) ?(epochs = 30) ?(seed = 42) ?(quiet = false) ?pool
    ?retries ?inject ?store ?on_report () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "dl: generating corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ?pool ()) in
  let drng = Rng.create (seed + 13) in
  let defended =
    Dataset.map_traces base (fun s -> Stob_defense.Emulate.combined ~rng:drng s.Dataset.trace)
  in
  let n_classes = Array.length base.Dataset.site_names in
  say "dl: encoding both corpora (k-FP features + direction tensors)...";
  let p_base = prepare ~seed base in
  let p_def = prepare ~seed defended in
  Option.iter
    (fun s ->
      Stob_store.Store.set_manifest s ~experiment:"dl"
        ~fields:
          [ ("dataset", p_base.fingerprint);
            ("defended", p_def.fingerprint);
            ("samples_per_site", string_of_int samples_per_site);
            ("trees", string_of_int trees);
            ("epochs", string_of_int epochs);
            ("seed", string_of_int seed) ]
        ~total:4)
    store;
  let cell ~attack ~variant ~(p : prepared) ~body =
    {
      Stob_store.Supervisor.label = Printf.sprintf "dl/%s/%s" attack variant;
      config =
        [ ("dataset", p.fingerprint);
          ("attack", attack);
          ("variant", variant);
          ("trees", string_of_int trees);
          ("epochs", string_of_int epochs) ];
      seed;
      run =
        (fun ~attempt:_ ->
          say "dl: %s on the %s corpus..." attack variant;
          body ());
    }
  in
  let cells =
    [
      cell ~attack:"kfp" ~variant:"original" ~p:p_base ~body:(fun () ->
          eval_kfp ~trees ~seed ~n_classes p_base);
      cell ~attack:"kfp" ~variant:"defended" ~p:p_def ~body:(fun () ->
          eval_kfp ~trees ~seed ~n_classes p_def);
      cell ~attack:"dfnet" ~variant:"original" ~p:p_base ~body:(fun () ->
          eval_df ~epochs ~seed ~quiet ~n_classes p_base);
      cell ~attack:"dfnet" ~variant:"defended" ~p:p_def ~body:(fun () ->
          eval_df ~epochs ~seed ~quiet ~n_classes p_def);
    ]
  in
  let results, report = Evalcommon.run_cells ?pool ?retries ?inject ?store ~experiment:"dl" cells in
  Option.iter (fun f -> f report) on_report;
  let acc = function Ok a -> a | Error _ -> Float.nan in
  match List.map acc results with
  | [ kfp_o; kfp_d; df_o; df_d ] ->
      [
        { attack = "k-FP (forest, features)"; original = kfp_o; defended = kfp_d };
        { attack = "DF-lite (CNN, directions)"; original = df_o; defended = df_d };
      ]
  | _ -> assert false

let print rows =
  let pp v = if Float.is_nan v then "poisoned" else Printf.sprintf "%.3f" v in
  Printf.printf "Attack family comparison (closed world, 9 sites)\n";
  Printf.printf "  %-28s %-10s %-18s\n" "attack" "original" "split+delay";
  List.iter
    (fun r -> Printf.printf "  %-28s %-10s %-18s\n" r.attack (pp r.original) (pp r.defended))
    rows

(* ------------------------------------------------------------------ *)
(* Population-scale corpus: both attack families on the packed traces of
   the PR 6 factory, end to end without materializing a Trace.t. *)

type population_result = {
  users : int;
  flows : int;  (** Traces in the whole generated corpus. *)
  monitored_sites : int;
  train_samples : int;
  test_samples : int;
  kfp : float;
  dfnet : float;
}

let monitored_sites = 9

let run_population ?(users = 80) ?(trees = 100) ?(epochs = 15) ?(max_per_site = 60) ?(seed = 42)
    ?(quiet = false) ?pool ~state_dir () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  let config = { Population.default_config with Population.users; seed; shards = 4 } in
  say "dl: generating population corpus (%d users, %d shards)..." users
    config.Population.shards;
  let summary = Population.generate ?pool config ~state_dir in
  (* Site labels are recovered by re-planning: generation journals exactly
     one trace per planned visit, in plan order, so zipping the journal
     against the (pure, deterministic) plan is exact. *)
  let by_class = Array.make monitored_sites [] in
  for shard = 0 to config.Population.shards - 1 do
    let plan = Population.plan_shard config ~shard in
    let i = ref 0 in
    Population.iter_shard_traces ~state_dir ~shard (fun trace ->
        if !i >= Array.length plan then
          failwith "dl: population journal holds more traces than its plan";
        let v = plan.(!i) in
        incr i;
        if v.Population.site < monitored_sites then
          by_class.(v.Population.site) <- trace :: by_class.(v.Population.site))
  done;
  (* Per-class shuffled cap + 70/30 split, one pre-split generator per
     class in rank order. *)
  let master = Rng.create (seed + 11) in
  let class_rngs = Array.init monitored_sites (fun _ -> Rng.split master) in
  let train_traces = ref [] and train_labels = ref [] in
  let test_traces = ref [] and test_labels = ref [] in
  for c = monitored_sites - 1 downto 0 do
    let all = Array.of_list (List.rev by_class.(c)) in
    let idx = Array.init (Array.length all) Fun.id in
    Rng.shuffle class_rngs.(c) idx;
    let take = min max_per_site (Array.length all) in
    if take >= 2 then begin
      let n_train = max 1 (min (take - 1) (int_of_float (0.7 *. float_of_int take))) in
      for j = 0 to take - 1 do
        let tr = all.(idx.(j)) in
        if j < n_train then begin
          train_traces := tr :: !train_traces;
          train_labels := c :: !train_labels
        end
        else begin
          test_traces := tr :: !test_traces;
          test_labels := c :: !test_labels
        end
      done
    end
  done;
  let train_traces = Array.of_list !train_traces and test_traces = Array.of_list !test_traces in
  let train_labels = Array.of_list !train_labels and test_labels = Array.of_list !test_labels in
  if Array.length train_traces = 0 || Array.length test_traces = 0 then
    failwith "dl: population corpus has too few monitored visits; raise --users";
  say "dl: %d monitored visits (%d train / %d test) out of %d flows"
    (Array.length train_traces + Array.length test_traces)
    (Array.length train_traces) (Array.length test_traces) summary.Population.flows;
  say "dl: training k-FP on packed features...";
  let kfp =
    let feats = Array.map Features.extract_packed train_traces in
    Attack.train
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ?pool ~n_classes:monitored_sites ~features:feats ~labels:train_labels ()
  in
  let kfp_acc =
    Attack.evaluate kfp ~mode:Attack.Forest_vote
      ~features:(Array.map Features.extract_packed test_traces)
      ~labels:test_labels
  in
  say "dl: training DF-lite on packed directions (%d epochs)..." epochs;
  let net =
    Dfnet.train ~epochs ~seed ?pool ~n_classes:monitored_sites
      ~xs:(Dfnet.encode_packed train_traces) ~labels:train_labels
      ~on_epoch:(fun (pr : Stob_nn.Network.progress) ->
        if (not quiet) && pr.epoch mod 5 = 0 then
          Printf.eprintf "dl:   epoch %d, loss %.3f\n%!" pr.epoch pr.mean_loss)
      ()
  in
  let df_acc =
    Dfnet.accuracy_m ?pool net ~xs:(Dfnet.encode_packed test_traces) ~labels:test_labels
  in
  {
    users;
    flows = summary.Population.flows;
    monitored_sites;
    train_samples = Array.length train_traces;
    test_samples = Array.length test_traces;
    kfp = kfp_acc;
    dfnet = df_acc;
  }

let print_population r =
  Printf.printf "Attack family comparison (population corpus, %d users, %d flows)\n" r.users
    r.flows;
  Printf.printf "  monitored sites: %d, samples: %d train / %d test\n" r.monitored_sites
    r.train_samples r.test_samples;
  Printf.printf "  %-28s %-10.3f\n" "k-FP (forest, packed feats)" r.kfp;
  Printf.printf "  %-28s %-10.3f\n" "DF-lite (CNN, packed dirs)" r.dfnet
