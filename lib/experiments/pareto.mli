(** Extension experiment: the protection/overhead frontier of Stob policies.

    Section 3 closes with "implementing these and more sophisticated
    countermeasures at the kernel level is likely to enable a broader range
    of tunable parameters and thus a greater effectiveness".  This harness
    makes that range concrete: it sweeps the split threshold and the delay
    range of the combined policy, measures k-FP accuracy (protection) and
    latency/packet overheads (cost) for each point, and reports the Pareto-
    efficient set — the design tool an operator would use to pick a policy. *)

type point = {
  policy : Stob_core.Policy.t;
  accuracy : float;  (** k-FP closed-world accuracy under this policy. *)
  latency_overhead : float;
  packet_overhead : float;
  pareto : bool;  (** No other point is better on both accuracy and cost. *)
}

val run :
  ?samples_per_site:int ->
  ?trees:int ->
  ?folds:int ->
  ?seed:int ->
  ?quiet:bool ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  unit ->
  point list
(** Defaults: 30 visits/site, 100 trees, 3 folds; sweeps thresholds
    {600, 900, 1200} x delay ranges {none, 10-30 %, 30-60 %}.
    Countermeasures are applied trace-level (Section 3 style) so all points
    share one generated corpus.

    Each sweep point is a supervised checkpoint cell ([?pool] runs them
    concurrently, [?store] makes the sweep crash-safe/resumable).  A
    poisoned point carries [nan] measurements and is excluded from the
    Pareto frontier.  See {!Stob_store.Supervisor} for
    [?retries]/[?inject]/[?on_report]. *)

val print : point list -> unit
