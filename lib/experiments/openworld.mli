(** Extension experiment: open-world evaluation.

    The paper's Table 2 uses the closed world ("the most favorable
    conditions for the attacker ... an upper bound on attack success").
    k-FP's native setting is the open world: the censor monitors a handful
    of sites while clients may visit anything.  This harness evaluates that
    setting — the regime an actual censorship deployment faces — against
    procedurally generated background sites the classifier never saw, with
    and without a Stob policy.

    Attack rule (Hayes & Danezis): a visit is attributed to monitored site
    s only when all k nearest leaf-fingerprint neighbours agree on s;
    otherwise it is called unmonitored. *)

type metrics = {
  tpr : float;  (** Monitored visits attributed to their true site. *)
  wrong_site : float;  (** Monitored visits attributed to another monitored site. *)
  fpr : float;  (** Background visits attributed to any monitored site. *)
}

type result = { k : int; undefended : metrics; defended : metrics }

val run :
  ?samples_per_site:int ->
  ?background_train_sites:int ->
  ?background_test_sites:int ->
  ?k:int ->
  ?trees:int ->
  ?seed:int ->
  ?quiet:bool ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  unit ->
  result
(** Defaults: 30 visits per monitored site (70/30 train/test split), 30
    training background sites (2 visits each), 30 {e unseen} test background
    sites (1 visit each), k = 3, 100 trees.  [defended] regenerates both
    corpora with the Stob combined (split+delay) policy in-stack.

    The two arms run as supervised checkpoint cells: [?pool] computes them
    concurrently, [?store] journals each arm for crash-safe resume, and a
    poisoned arm's metrics render as [nan].  See {!Stob_store.Supervisor}
    for [?retries]/[?inject]/[?on_report]. *)

val print : result -> unit
