module Rng = Stob_util.Rng
module Trace = Stob_net.Trace
module Dataset = Stob_web.Dataset
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack
module Emulate = Stob_defense.Emulate

type config = { samples_per_site : int; folds : int; forest_trees : int; seed : int; quiet : bool }

let default_config = { samples_per_site = 100; folds = 5; forest_trees = 100; seed = 42; quiet = false }

type cell = { mean : float; std : float }

type row = { n_label : string; original : cell; split : cell; delayed : cell; combined : cell }

type result = { rows : row list; per_site : (string * int) list }

type variant = Original | Split | Delayed | Combined

let variant_name = function
  | Original -> "Original"
  | Split -> "Split"
  | Delayed -> "Delayed"
  | Combined -> "Combined"

let apply_variant variant ~first_n ~rng trace =
  match variant with
  | Original -> trace
  | Split -> Emulate.split ?first_n trace
  | Delayed -> Emulate.delay ?first_n ~rng trace
  | Combined -> Emulate.combined ?first_n ~rng trace

(* Accuracy (mean, std over folds) of k-FP on [dataset] where both the
   countermeasure and the attacker's view are limited to the first
   [first_n] packets. *)
let evaluate_variant ?(pool = Stob_par.Pool.sequential) ~config ~dataset ~variant ~first_n () =
  let rng = Rng.create (config.seed + 17) in
  let defended =
    Dataset.map_traces dataset (fun s -> apply_variant variant ~first_n ~rng s.Dataset.trace)
  in
  let view (s : Dataset.sample) =
    match first_n with None -> s.Dataset.trace | Some n -> Trace.prefix s.Dataset.trace n
  in
  let feature_cache = Hashtbl.create (Array.length defended.Dataset.samples) in
  Array.iteri
    (fun i s -> Hashtbl.add feature_cache i (Features.extract (view s)))
    defended.Dataset.samples;
  (* Stratified k-fold CV; index samples so the cache survives fold
     reshuffling. *)
  let index = Hashtbl.create (Array.length defended.Dataset.samples) in
  Array.iteri (fun i s -> Hashtbl.replace index s i) defended.Dataset.samples;
  let fold_rng = Rng.create (config.seed + 23) in
  let folds = Dataset.folds defended ~rng:fold_rng ~k:config.folds in
  let n_classes = Array.length defended.Dataset.site_names in
  let forest_params =
    { Stob_ml.Random_forest.default_params with n_trees = config.forest_trees; seed = config.seed }
  in
  (* Per-fold evaluation only reads the shared caches and reseeds its own
     forest, so the parallel map over folds is deterministic. *)
  let accuracies =
    Stob_par.Pool.map_list pool
      (fun (train, test) ->
        (* One column matrix per fold side; all of this fold's trees share
           it read-only instead of re-copying row pointers per tree. *)
        let feats d =
          Stob_ml.Matrix.of_rows
            (Array.map (fun s -> Hashtbl.find feature_cache (Hashtbl.find index s)) d.Dataset.samples)
        in
        let labels d = Array.map (fun s -> s.Dataset.label) d.Dataset.samples in
        let attack =
          Attack.train_m ~forest:forest_params ~n_classes ~matrix:(feats train)
            ~labels:(labels train) ()
        in
        Attack.evaluate_m attack ~mode:Attack.Forest_vote ~matrix:(feats test)
          ~labels:(labels test))
      folds
  in
  let mean, std = Stob_ml.Eval.mean_std accuracies in
  { mean; std }

let prefixes = [ ("15", Some 15); ("30", Some 30); ("45", Some 45); ("All", None) ]
let variants = [ Original; Split; Delayed; Combined ]

(* The sweep decomposes into 16 idempotent cells (prefix x variant), each a
   pure function of (dataset, config, seed) — the unit of checkpointing,
   caching, and retry.  Parallelism moves from folds-within-a-variant to
   whole cells; every fold evaluation is deterministic, so the table is
   bit-identical either way. *)
let run_on ?(config = default_config) ?pool ?retries ?inject ?store ?on_report dataset =
  let clean = Dataset.sanitize dataset in
  let fingerprint = Evalcommon.dataset_fingerprint clean in
  Option.iter
    (fun s ->
      Stob_store.Store.set_manifest s ~experiment:"table2"
        ~fields:
          [ ("dataset", fingerprint);
            ("samples_per_site", string_of_int config.samples_per_site);
            ("folds", string_of_int config.folds);
            ("trees", string_of_int config.forest_trees);
            ("seed", string_of_int config.seed) ]
        ~total:(List.length prefixes * List.length variants))
    store;
  let cell_of (n_label, first_n) variant =
    {
      Stob_store.Supervisor.label =
        Printf.sprintf "table2/N=%s/%s" n_label (variant_name variant);
      config =
        [ ("dataset", fingerprint);
          ("prefix", n_label);
          ("variant", variant_name variant);
          ("folds", string_of_int config.folds);
          ("trees", string_of_int config.forest_trees) ];
      seed = config.seed;
      run =
        (fun ~attempt:_ ->
          if not config.quiet then
            Printf.eprintf "table2: N=%s %s...\n%!" n_label (variant_name variant);
          let c = evaluate_variant ~config ~dataset:clean ~variant ~first_n () in
          (c.mean, c.std));
    }
  in
  let cells = List.concat_map (fun p -> List.map (cell_of p) variants) prefixes in
  let results, report =
    Evalcommon.run_cells ?pool ?retries ?inject ?store ~experiment:"table2" cells
  in
  Option.iter (fun f -> f report) on_report;
  let results = Array.of_list results in
  let cell_at i =
    match results.(i) with
    | Ok (mean, std) -> { mean; std }
    | Error _ -> { mean = Float.nan; std = Float.nan }
  in
  let width = List.length variants in
  let rows =
    List.mapi
      (fun pi (n_label, _) ->
        let base = pi * width in
        {
          n_label;
          original = cell_at base;
          split = cell_at (base + 1);
          delayed = cell_at (base + 2);
          combined = cell_at (base + 3);
        })
      prefixes
  in
  { rows; per_site = Dataset.per_site_counts clean }

let run ?(config = default_config) ?pool ?retries ?inject ?store ?on_report () =
  let progress =
    if config.quiet then None
    else
      Some (fun ~done_ ~total -> if done_ mod 90 = 0 then Printf.eprintf "table2: generated %d/%d visits\n%!" done_ total)
  in
  let dataset =
    Dataset.generate ~samples_per_site:config.samples_per_site ~seed:config.seed ?progress ?pool
      ()
  in
  run_on ~config ?pool ?retries ?inject ?store ?on_report dataset

let print result =
  let pp_cell c =
    if Float.is_nan c.mean then "poisoned" else Printf.sprintf "%.3f +/- %.3f" c.mean c.std
  in
  Printf.printf "Table 2: k-FP Random Forest accuracy rates (closed world, 9 sites)\n";
  Printf.printf "%-5s %-17s %-17s %-17s %-17s\n" "N" "Original" "Split" "Delayed" "Combined";
  List.iter
    (fun r ->
      Printf.printf "%-5s %-17s %-17s %-17s %-17s\n" r.n_label (pp_cell r.original)
        (pp_cell r.split) (pp_cell r.delayed) (pp_cell r.combined))
    result.rows;
  let counts = List.map snd result.per_site in
  Printf.printf "(surviving samples per site after sanitization: %s)\n"
    (String.concat ", " (List.map string_of_int counts))
