module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Sites = Stob_web.Sites
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack

type metrics = { tpr : float; wrong_site : float; fpr : float }

type result = { k : int; undefended : metrics; defended : metrics }

let featurize dataset =
  Array.map (fun (s : Dataset.sample) -> Features.extract s.Dataset.trace) dataset.Dataset.samples

(* One column matrix per corpus: built once, shared by forest training,
   fingerprinting and the batched open-world predictions. *)
let featurize_m dataset = Stob_ml.Matrix.of_rows (featurize dataset)

let evaluate ~samples_per_site ~background_train_sites ~background_test_sites ~k ~trees ~seed
    ~quiet ?policy () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "openworld: generating monitored corpus%s..."
    (match policy with None -> "" | Some _ -> " (defended)");
  let monitored =
    Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ?policy ())
  in
  let n_monitored = Array.length monitored.Dataset.site_names in
  let unmon_label = n_monitored in
  say "openworld: generating background corpora...";
  let background ~sites ~visits ~bg_seed =
    Dataset.generate ~samples_per_site:visits ~seed:bg_seed ?policy ~failure_rate:0.0
      ~profiles:(Sites.synthetic_background ~n:sites ~seed:bg_seed)
      ()
  in
  let bg_train = background ~sites:background_train_sites ~visits:2 ~bg_seed:(seed + 1000) in
  let bg_test = background ~sites:background_test_sites ~visits:1 ~bg_seed:(seed + 2000) in
  (* Split monitored 70/30 per class. *)
  let rng = Rng.create (seed + 7) in
  let mon_train, mon_test = Dataset.split monitored ~rng ~train_fraction:0.7 in
  say "openworld: training (monitored classes + one background class)...";
  let train_matrix =
    Stob_ml.Matrix.of_rows (Array.append (featurize mon_train) (featurize bg_train))
  in
  let train_labels =
    Array.append
      (Array.map (fun (s : Dataset.sample) -> s.Dataset.label) mon_train.Dataset.samples)
      (Array.make (Array.length bg_train.Dataset.samples) unmon_label)
  in
  let attack =
    Attack.train_m
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ~n_classes:(n_monitored + 1) ~matrix:train_matrix ~labels:train_labels ()
  in
  say "openworld: evaluating...";
  let tp = ref 0 and wrong = ref 0 and n_mon = ref 0 in
  Array.iteri
    (fun i prediction ->
      incr n_mon;
      let truth = mon_test.Dataset.samples.(i).Dataset.label in
      match prediction with
      | Some l when l = truth -> incr tp
      | Some l when l <> unmon_label -> incr wrong
      | Some _ | None -> ())
    (Attack.predict_open_world_all attack ~k (featurize_m mon_test));
  let fp = ref 0 and n_bg = ref 0 in
  Array.iter
    (fun prediction ->
      incr n_bg;
      match prediction with
      | Some l when l <> unmon_label -> incr fp
      | Some _ | None -> ())
    (Attack.predict_open_world_all attack ~k (featurize_m bg_test));
  let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  { tpr = frac !tp !n_mon; wrong_site = frac !wrong !n_mon; fpr = frac !fp !n_bg }

(* The two arms (undefended / defended) are this experiment's checkpoint
   cells: each regenerates its corpora and evaluates independently, so a
   killed run resumes with whichever arm already finished served from the
   journal. *)
let run ?(samples_per_site = 30) ?(background_train_sites = 30) ?(background_test_sites = 30)
    ?(k = 3) ?(trees = 100) ?(seed = 42) ?(quiet = false) ?pool ?retries ?inject ?store
    ?on_report () =
  let fields =
    [ ("samples_per_site", string_of_int samples_per_site);
      ("bg_train_sites", string_of_int background_train_sites);
      ("bg_test_sites", string_of_int background_test_sites);
      ("k", string_of_int k);
      ("trees", string_of_int trees) ]
  in
  Option.iter
    (fun s ->
      Stob_store.Store.set_manifest s ~experiment:"openworld"
        ~fields:(("seed", string_of_int seed) :: fields)
        ~total:2)
    store;
  let arm_cell name policy =
    {
      Stob_store.Supervisor.label = "openworld/" ^ name;
      config = ("arm", name) :: fields;
      seed;
      run =
        (fun ~attempt:_ ->
          let m =
            evaluate ~samples_per_site ~background_train_sites ~background_test_sites ~k ~trees
              ~seed ~quiet ?policy ()
          in
          (m.tpr, m.wrong_site, m.fpr));
    }
  in
  let cells =
    [ arm_cell "undefended" None;
      arm_cell "defended" (Some (Stob_core.Strategies.stack_combined ())) ]
  in
  let results, report =
    Evalcommon.run_cells ?pool ?retries ?inject ?store ~experiment:"openworld" cells
  in
  Option.iter (fun f -> f report) on_report;
  let metrics_of = function
    | Ok (tpr, wrong_site, fpr) -> { tpr; wrong_site; fpr }
    | Error _ -> { tpr = Float.nan; wrong_site = Float.nan; fpr = Float.nan }
  in
  match results with
  | [ undefended; defended ] ->
      { k; undefended = metrics_of undefended; defended = metrics_of defended }
  | _ -> assert false

let print r =
  Printf.printf "Open-world evaluation (k = %d, unseen background sites in test)\n" r.k;
  Printf.printf "  %-26s %-8s %-12s %-8s\n" "" "TPR" "wrong-site" "FPR";
  let line name m =
    Printf.printf "  %-26s %-8.3f %-12.3f %-8.3f\n" name m.tpr m.wrong_site m.fpr
  in
  line "undefended" r.undefended;
  line "Stob split+delay" r.defended
