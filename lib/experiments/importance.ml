module Dataset = Stob_web.Dataset
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack

type ranking = (string * float) list

type result = { undefended : ranking; defended : ranking; policy_name : string }

let ranking_of dataset ~trees ~seed =
  (* Column matrix built once, shared read-only by every tree. *)
  let matrix =
    Stob_ml.Matrix.of_rows
      (Array.map
         (fun (s : Dataset.sample) -> Features.extract s.Dataset.trace)
         dataset.Dataset.samples)
  in
  let labels = Array.map (fun (s : Dataset.sample) -> s.Dataset.label) dataset.Dataset.samples in
  let attack =
    Attack.train_m
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ~n_classes:(Array.length dataset.Dataset.site_names)
      ~matrix ~labels ()
  in
  let importance = Stob_ml.Random_forest.feature_importance (Attack.forest attack) in
  Array.to_list (Array.mapi (fun i v -> (Features.names.(i), v)) importance)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let run ?(samples_per_site = 30) ?(trees = 100) ?(seed = 42)
    ?(policy = Stob_core.Strategies.stack_combined ()) ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "importance: generating corpora...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  let defended = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ~policy ()) in
  say "importance: training forests...";
  {
    undefended = ranking_of base ~trees ~seed;
    defended = ranking_of defended ~trees ~seed;
    policy_name = policy.Stob_core.Policy.name;
  }

let print ?(top = 12) r =
  Printf.printf "Feature importance (Gini), top %d — undefended vs %s\n" top r.policy_name;
  Printf.printf "  %-28s %-8s   %-28s %-8s\n" "undefended" "weight" "defended" "weight";
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  List.iter2
    (fun (n1, w1) (n2, w2) -> Printf.printf "  %-28s %-8.4f   %-28s %-8.4f\n" n1 w1 n2 w2)
    (take top r.undefended) (take top r.defended)
