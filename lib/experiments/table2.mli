(** Experiment E1: reproduce Table 2 — k-FP closed-world accuracy under
    emulated kernel countermeasures, as a function of how much of the
    connection the censor observes.

    Pipeline (paper Section 3): generate ~100 visits for each of the nine
    sites, sanitize (errors dropped, IQR outlier filter, classes balanced),
    build 16 dataset variants = {Original, Split, Delayed, Combined} x
    {N = 15, 30, 45, All} where both the countermeasure and the attack are
    restricted to the first N packets, then evaluate k-FP (random-forest
    vote) with stratified cross-validation, reporting mean +/- std. *)

type config = {
  samples_per_site : int;
  folds : int;
  forest_trees : int;
  seed : int;
  quiet : bool;  (** Suppress progress output. *)
}

val default_config : config
(** 100 samples/site, 5 folds, 100 trees, seed 42. *)

type cell = { mean : float; std : float }
(** A poisoned sweep cell (see {!Stob_store.Supervisor}) is reported as
    [nan +/- nan] and rendered as ["poisoned"] by {!print}. *)

type row = { n_label : string; original : cell; split : cell; delayed : cell; combined : cell }

type result = {
  rows : row list;  (** N = 15, 30, 45, All — the paper's four rows. *)
  per_site : (string * int) list;  (** Surviving samples per site. *)
}

val run :
  ?config:config ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  unit ->
  result
(** [?pool] parallelizes dataset generation (per visit) and the sweep (per
    cell); the table is identical for any domain count.  The sweep runs as
    16 supervised cells ({!Stob_store.Supervisor}): with a [?store] each
    finished cell is journaled durably and a rerun resumes from the cache;
    [?retries]/[?inject] control the retry policy and the chaos fault hook;
    [?on_report] receives the supervisor's cached/retried/poisoned tallies. *)

val run_on :
  ?config:config ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  Stob_web.Dataset.t ->
  result
(** Same evaluation on a pre-generated (unsanitized) dataset — lets callers
    reuse one corpus across experiments. *)

val print : result -> unit
(** Render the table in the paper's layout. *)
