(** Extension experiment: deep-learning vs. feature-engineered WF attacks.

    The paper's motivation is that DL attacks (Deep Fingerprinting,
    Var-CNN) made WF practical.  This harness runs both attack families on
    the same corpora: k-FP (random forest over ~165 engineered features)
    and DF-lite (a batched CNN over raw packet directions,
    {!Stob_kfp.Dfnet}), undefended and under the Stob combined
    (split+delay) policy.

    Notably, packet splitting changes the {e direction sequence} that DF
    consumes (more incoming packets) while delaying does not — so the two
    attack families respond differently to the same defense.

    The sweep runs as 4 supervised cells ({k-FP, DF} x {original,
    defended}) through {!Evalcommon.run_cells}, sharing one set of
    per-corpus encodings computed up front — crash-safe journal/resume,
    [stobctl status] visibility and retry/poison semantics like the other
    sweeps.  {!run_population} additionally evaluates both families on the
    packed population-scale corpus of {!Population}, zero-copy from the
    shard journals. *)

type row = { attack : string; original : float; defended : float }

val run :
  ?samples_per_site:int ->
  ?trees:int ->
  ?epochs:int ->
  ?seed:int ->
  ?quiet:bool ->
  ?pool:Stob_par.Pool.t ->
  ?retries:int ->
  ?inject:(label:string -> attempt:int -> unit) ->
  ?store:Stob_store.Store.t ->
  ?on_report:(Stob_store.Supervisor.report -> unit) ->
  unit ->
  row list
(** Defaults: 60 visits/site (70/30 split), 100 trees, 30 epochs.
    [?pool] parallelizes dataset generation and the four cells (each cell
    trains sequentially — cells must not nest into the sweep's pool); with
    a [?store] finished cells are journaled and a rerun resumes from the
    cache.  A poisoned cell's accuracy is reported as [nan] and printed as
    ["poisoned"]. *)

val print : row list -> unit

(** {1 Population-scale corpus} *)

type population_result = {
  users : int;
  flows : int;  (** Traces in the whole generated corpus. *)
  monitored_sites : int;
  train_samples : int;
  test_samples : int;
  kfp : float;
  dfnet : float;
}

val run_population :
  ?users:int ->
  ?trees:int ->
  ?epochs:int ->
  ?max_per_site:int ->
  ?seed:int ->
  ?quiet:bool ->
  ?pool:Stob_par.Pool.t ->
  state_dir:string ->
  unit ->
  population_result
(** Generate (or resume — {!Population.generate} is crash-safe) a
    population corpus under [state_dir], recover site labels by re-running
    the pure visit planner against the shard journals, and evaluate k-FP
    (zero-copy packed featurization) vs DF-lite (zero-copy
    {!Stob_kfp.Dfnet.encode_packed}) on the monitored-site visits, capped
    at [max_per_site] samples per site (70/30 split).  Defaults: 80 users,
    100 trees, 15 epochs, 60 samples/site cap.  [?pool] parallelizes
    generation, forest training and the DF minibatch shards; results are
    identical at any domain count. *)

val print_population : population_result -> unit
