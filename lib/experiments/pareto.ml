module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Emulate = Stob_defense.Emulate
module Overhead = Stob_defense.Overhead

type point = {
  policy : Stob_core.Policy.t;
  accuracy : float;
  latency_overhead : float;
  packet_overhead : float;
  pareto : bool;
}

let sweep =
  let thresholds = [ 600; 900; 1200 ] in
  let delays = [ None; Some (0.1, 0.3); Some (0.3, 0.6) ] in
  List.concat_map
    (fun threshold -> List.map (fun delay -> (Some threshold, delay)) delays)
    thresholds
  @ List.map (fun delay -> (None, delay)) [ Some (0.1, 0.3); Some (0.3, 0.6) ]

let policy_of (threshold, delay) =
  match (threshold, delay) with
  | Some th, None -> Stob_core.Strategies.stack_split ~threshold:th ()
  | Some th, Some (lo, hi) -> Stob_core.Strategies.stack_combined ~threshold:th ~lo ~hi ()
  | None, Some (lo, hi) -> Stob_core.Strategies.stack_delay ~lo ~hi ()
  | None, None -> Stob_core.Policy.unmodified

let apply (threshold, delay) ~rng trace =
  let split = match threshold with Some th -> Emulate.split ~threshold:th trace | None -> trace in
  match delay with Some (lo, hi) -> Emulate.delay ~lo ~hi ~rng split | None -> split

let run ?(samples_per_site = 30) ?(trees = 100) ?(folds = 3) ?(seed = 42) ?(quiet = false) ?pool
    ?retries ?inject ?store ?on_report () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "pareto: generating corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  let fingerprint = Evalcommon.dataset_fingerprint base in
  let shared_fields =
    [ ("dataset", fingerprint); ("trees", string_of_int trees); ("folds", string_of_int folds) ]
  in
  Option.iter
    (fun s ->
      Stob_store.Store.set_manifest s ~experiment:"pareto"
        ~fields:
          (("seed", string_of_int seed)
          :: ("samples_per_site", string_of_int samples_per_site)
          :: shared_fields)
        ~total:(List.length sweep))
    store;
  (* One checkpoint cell per sweep point: defend the shared corpus, run the
     attack, summarize the overheads.  The frontier is recomputed from the
     cell results, so it is resume-invariant too. *)
  let cell_of params =
    let policy = policy_of params in
    let threshold_field = match fst params with Some th -> string_of_int th | None -> "none" in
    let delay_field =
      match snd params with
      | Some (lo, hi) -> Printf.sprintf "%.17g-%.17g" lo hi
      | None -> "none"
    in
    {
      Stob_store.Supervisor.label = "pareto/" ^ policy.Stob_core.Policy.name;
      config = ("threshold", threshold_field) :: ("delay", delay_field) :: shared_fields;
      seed;
      run =
        (fun ~attempt:_ ->
          say "pareto: evaluating %s..." policy.Stob_core.Policy.name;
          let rng = Rng.create (seed + 3) in
          let defended = Dataset.map_traces base (fun s -> apply params ~rng s.Dataset.trace) in
          let accuracy = fst (Evalcommon.accuracy_cv ~folds ~trees ~seed defended) in
          let overheads =
            Array.to_list
              (Array.map2
                 (fun (b : Dataset.sample) (d : Dataset.sample) ->
                   Overhead.summarize ~original:b.Dataset.trace ~defended:d.Dataset.trace)
                 base.Dataset.samples defended.Dataset.samples)
          in
          let m = Overhead.mean_summary overheads in
          (accuracy, m.Overhead.latency, m.Overhead.packets));
    }
  in
  let results, report =
    Evalcommon.run_cells ?pool ?retries ?inject ?store ~experiment:"pareto"
      (List.map cell_of sweep)
  in
  Option.iter (fun f -> f report) on_report;
  let measured =
    List.map2
      (fun params result ->
        match result with
        | Ok (accuracy, latency, packets) -> (policy_of params, Some (accuracy, latency, packets))
        | Error _ -> (policy_of params, None))
      sweep results
  in
  (* Pareto efficiency: lower accuracy is better protection; lower cost
     (latency + packet overhead) is cheaper.  Poisoned points carry no
     measurements: they render as [nan], never enter the frontier, and
     cannot dominate anything. *)
  let cost (_, lat, pkt) = lat +. pkt in
  let dominated p q =
    let (acc_p, _, _) = p and (acc_q, _, _) = q in
    acc_q <= acc_p && cost q <= cost p && (acc_q < acc_p || cost q < cost p)
  in
  List.map
    (fun (policy, m) ->
      match m with
      | Some ((accuracy, latency_overhead, packet_overhead) as p) ->
          {
            policy;
            accuracy;
            latency_overhead;
            packet_overhead;
            pareto =
              not
                (List.exists
                   (fun (_, q) -> match q with Some q -> dominated p q | None -> false)
                   measured);
          }
      | None ->
          {
            policy;
            accuracy = Float.nan;
            latency_overhead = Float.nan;
            packet_overhead = Float.nan;
            pareto = false;
          })
    measured

let print points =
  Printf.printf "Stob policy sweep: protection vs. overhead (* = Pareto-efficient)\n";
  Printf.printf "  %-32s %-10s %-10s %-10s\n" "policy" "accuracy" "lat-ovhd" "pkt-ovhd";
  List.iter
    (fun p ->
      if Float.is_nan p.accuracy then
        Printf.printf "  %-32s poisoned\n" p.policy.Stob_core.Policy.name
      else
        Printf.printf "  %-32s %-10.3f %+-10.1f%% %+-9.1f%% %s\n"
          p.policy.Stob_core.Policy.name p.accuracy
          (p.latency_overhead *. 100.0)
          (p.packet_overhead *. 100.0)
          (if p.pareto then "*" else ""))
    points
