module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Units = Stob_util.Units
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path

type point = {
  alpha : int;
  baseline_gbps : float;
  packet_gbps : float;
  tso_gbps : float;
  combined_gbps : float;
}

type config = {
  alphas : int list;
  link_gbps : float;
  rtt : float;
  warmup : float;
  measure : float;
  cc : Stob_tcp.Cc.factory;
}

let default_config =
  {
    alphas = [ 0; 4; 8; 12; 16; 20; 24; 28; 32; 36; 40 ];
    link_gbps = 100.0;
    rtt = 50e-6;
    warmup = 0.05;
    measure = 0.15;
    cc = Stob_tcp.Cubic.make;
  }

let throughput_with_policy ~config ~policy =
  let engine = Engine.create () in
  let path =
    Path.create ~engine ~rate_bps:(Units.gbps config.link_gbps) ~delay:(config.rtt /. 2.0) ()
  in
  let cpu = Cpu.create engine in
  let hooks = Stob_core.Controller.hooks (Stob_core.Controller.create policy) in
  let conn =
    Connection.create ~engine ~path ~flow:1 ~cc:config.cc
      ~server_cpu:(cpu, Stob_tcp.Cpu_costs.default_server) ~server_hooks:hooks ()
  in
  let server = Connection.server conn in
  (* iperf3-style bulk source: keep the send queue topped up for the whole
     run via a periodic refill. *)
  let rec refill () =
    if Endpoint.established server && Endpoint.unsent server < 16_000_000 then
      Endpoint.write server 64_000_000;
    ignore (Engine.schedule engine ~delay:0.002 refill)
  in
  ignore (Engine.schedule engine ~delay:0.0 refill);
  Connection.on_established conn (fun () -> Endpoint.write (Connection.client conn) 64);
  Connection.open_ conn;
  let mark = ref 0 in
  ignore (Engine.schedule engine ~delay:config.warmup (fun () -> mark := Path.server_link_bytes path));
  Engine.run ~until:(config.warmup +. config.measure) engine;
  let bytes = Path.server_link_bytes path - !mark in
  Units.throughput_bps ~bytes ~seconds:config.measure

let run ?(config = default_config) ?(pool = Stob_par.Pool.sequential) () =
  let baseline = throughput_with_policy ~config ~policy:Stob_core.Policy.unmodified in
  (* Each point simulates on its own engine and draws no randomness, so the
     alpha sweep is embarrassingly parallel and trivially deterministic. *)
  Stob_par.Pool.map_list pool
    (fun alpha ->
      let measure policy = Units.to_gbps ~bits_per_sec:(throughput_with_policy ~config ~policy) in
      {
        alpha;
        baseline_gbps = Units.to_gbps ~bits_per_sec:baseline;
        packet_gbps =
          (if alpha = 0 then Units.to_gbps ~bits_per_sec:baseline
           else measure (Stob_core.Strategies.incremental_packet_reduction ~alpha));
        tso_gbps =
          (if alpha = 0 then Units.to_gbps ~bits_per_sec:baseline
           else measure (Stob_core.Strategies.incremental_tso_reduction ~alpha));
        combined_gbps =
          (if alpha = 0 then Units.to_gbps ~bits_per_sec:baseline
           else measure (Stob_core.Strategies.incremental_combined ~alpha));
      })
    config.alphas

let print points =
  Printf.printf
    "Figure 3: throughput vs. maximum reduction degree (100 Gb/s link, one core)\n";
  Printf.printf "%-7s %-14s %-14s %-14s %-14s\n" "alpha" "baseline" "packet-size" "tso-size"
    "combined";
  List.iter
    (fun p ->
      Printf.printf "%-7d %-14s %-14s %-14s %-14s\n" p.alpha
        (Printf.sprintf "%.1f Gb/s" p.baseline_gbps)
        (Printf.sprintf "%.1f Gb/s" p.packet_gbps)
        (Printf.sprintf "%.1f Gb/s" p.tso_gbps)
        (Printf.sprintf "%.1f Gb/s" p.combined_gbps))
    points
