module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Units = Stob_util.Units
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path

type point = {
  alpha : int;
  baseline_gbps : float;
  packet_gbps : float;
  tso_gbps : float;
  combined_gbps : float;
}

type config = {
  alphas : int list;
  link_gbps : float;
  rtt : float;
  warmup : float;
  measure : float;
  cc : Stob_tcp.Cc.factory;
  cc_name : string;
}

let default_config =
  {
    alphas = [ 0; 4; 8; 12; 16; 20; 24; 28; 32; 36; 40 ];
    link_gbps = 100.0;
    rtt = 50e-6;
    warmup = 0.05;
    measure = 0.15;
    cc = Stob_tcp.Cubic.make;
    cc_name = "cubic";
  }

let throughput_with_policy ~config ~policy =
  let engine = Engine.create () in
  let path =
    Path.create ~engine ~rate_bps:(Units.gbps config.link_gbps) ~delay:(config.rtt /. 2.0) ()
  in
  let cpu = Cpu.create engine in
  let hooks = Stob_core.Controller.hooks (Stob_core.Controller.create policy) in
  let conn =
    Connection.create ~engine ~path ~flow:1 ~cc:config.cc
      ~server_cpu:(cpu, Stob_tcp.Cpu_costs.default_server) ~server_hooks:hooks ()
  in
  let server = Connection.server conn in
  (* iperf3-style bulk source: keep the send queue topped up for the whole
     run via a periodic refill. *)
  let rec refill () =
    if Endpoint.established server && Endpoint.unsent server < 16_000_000 then
      Endpoint.write server 64_000_000;
    ignore (Engine.schedule engine ~delay:0.002 refill)
  in
  ignore (Engine.schedule engine ~delay:0.0 refill);
  Connection.on_established conn (fun () -> Endpoint.write (Connection.client conn) 64);
  Connection.open_ conn;
  let mark = ref 0 in
  ignore (Engine.schedule engine ~delay:config.warmup (fun () -> mark := Path.server_link_bytes path));
  Engine.run ~until:(config.warmup +. config.measure) engine;
  let bytes = Path.server_link_bytes path - !mark in
  Units.throughput_bps ~bytes ~seconds:config.measure

(* A cell result: either the alpha-independent baseline control or one
   alpha's three series.  Keeping them in one sweep lets the baseline be
   checkpointed, retried, and resumed like every other cell. *)
type measurement =
  | Baseline of float  (** bits/s, unmodified stack *)
  | Point of { packet : float; tso : float; combined : float }  (** Gb/s *)

let run ?(config = default_config) ?pool ?retries ?inject ?store ?on_report () =
  (* Each cell simulates on its own engine and draws no randomness, so the
     alpha sweep is embarrassingly parallel and trivially deterministic. *)
  let shared_fields =
    [ ("link_gbps", Printf.sprintf "%.17g" config.link_gbps);
      ("rtt", Printf.sprintf "%.17g" config.rtt);
      ("warmup", Printf.sprintf "%.17g" config.warmup);
      ("measure", Printf.sprintf "%.17g" config.measure);
      ("cc", config.cc_name) ]
  in
  let sweep_alphas = List.sort_uniq compare (List.filter (fun a -> a <> 0) config.alphas) in
  Option.iter
    (fun s ->
      Stob_store.Store.set_manifest s ~experiment:"fig3"
        ~fields:
          (("alphas", String.concat "," (List.map string_of_int config.alphas)) :: shared_fields)
        ~total:(1 + List.length sweep_alphas))
    store;
  let baseline_cell =
    {
      Stob_store.Supervisor.label = "fig3/baseline";
      config = ("point", "baseline") :: shared_fields;
      seed = 0;
      run =
        (fun ~attempt:_ ->
          Baseline (throughput_with_policy ~config ~policy:Stob_core.Policy.unmodified));
    }
  in
  let alpha_cell alpha =
    {
      Stob_store.Supervisor.label = Printf.sprintf "fig3/alpha=%d" alpha;
      config = ("point", string_of_int alpha) :: shared_fields;
      seed = 0;
      run =
        (fun ~attempt:_ ->
          let measure policy =
            Units.to_gbps ~bits_per_sec:(throughput_with_policy ~config ~policy)
          in
          Point
            {
              packet = measure (Stob_core.Strategies.incremental_packet_reduction ~alpha);
              tso = measure (Stob_core.Strategies.incremental_tso_reduction ~alpha);
              combined = measure (Stob_core.Strategies.incremental_combined ~alpha);
            });
    }
  in
  let cells = baseline_cell :: List.map alpha_cell sweep_alphas in
  let results, report =
    Evalcommon.run_cells ?pool ?retries ?inject ?store ~experiment:"fig3" cells
  in
  Option.iter (fun f -> f report) on_report;
  let baseline_gbps =
    match List.hd results with
    | Ok (Baseline bps) -> Units.to_gbps ~bits_per_sec:bps
    | Ok (Point _) -> assert false
    | Error _ -> Float.nan
  in
  let by_alpha = Hashtbl.create 16 in
  List.iter2
    (fun alpha r -> Hashtbl.replace by_alpha alpha r)
    sweep_alphas (List.tl results);
  List.map
    (fun alpha ->
      if alpha = 0 then
        {
          alpha;
          baseline_gbps;
          packet_gbps = baseline_gbps;
          tso_gbps = baseline_gbps;
          combined_gbps = baseline_gbps;
        }
      else
        match Hashtbl.find by_alpha alpha with
        | Ok (Point { packet; tso; combined }) ->
            { alpha; baseline_gbps; packet_gbps = packet; tso_gbps = tso; combined_gbps = combined }
        | Ok (Baseline _) -> assert false
        | Error _ ->
            {
              alpha;
              baseline_gbps;
              packet_gbps = Float.nan;
              tso_gbps = Float.nan;
              combined_gbps = Float.nan;
            })
    config.alphas

let print points =
  Printf.printf
    "Figure 3: throughput vs. maximum reduction degree (100 Gb/s link, one core)\n";
  Printf.printf "%-7s %-14s %-14s %-14s %-14s\n" "alpha" "baseline" "packet-size" "tso-size"
    "combined";
  let gbps v = if Float.is_nan v then "poisoned" else Printf.sprintf "%.1f Gb/s" v in
  List.iter
    (fun p ->
      Printf.printf "%-7d %-14s %-14s %-14s %-14s\n" p.alpha (gbps p.baseline_gbps)
        (gbps p.packet_gbps) (gbps p.tso_gbps) (gbps p.combined_gbps))
    points
