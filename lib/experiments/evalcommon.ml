module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack
module Matrix = Stob_ml.Matrix
module Supervisor = Stob_store.Supervisor

(* The shared cell runner every sweep goes through: supervised execution
   (retries, poisoning, per-cell Livelock budget surfacing as a poisoned
   cell) with Marshal as the result codec — Marshal round-trips floats
   bit-exactly, which is what makes a resumed sweep's output identical to
   an uninterrupted run's. *)
let run_cells ?pool ?retries ?inject ?store ~experiment cells =
  let outcomes =
    Supervisor.run ?pool ?retries ?inject ?store ~experiment
      ~encode:(fun v -> Marshal.to_string v [])
      ~decode:(fun s -> Marshal.from_string s 0)
      cells
  in
  (List.map (fun (o : _ Supervisor.outcome) -> o.Supervisor.result) outcomes,
   Supervisor.report outcomes)

(* Identifies the corpus a cell was evaluated on, so a cache entry from a
   different dataset (other sites, other generator) can never be replayed
   into this sweep.  Hashes the full samples + site names, not just the
   generation parameters — [run_on]-style entry points accept arbitrary
   pre-generated corpora. *)
let dataset_fingerprint (d : Dataset.t) =
  Digest.to_hex (Digest.string (Marshal.to_string (d.Dataset.samples, d.Dataset.site_names) []))

let accuracy_cv ?(folds = 5) ?(trees = 100) ?(seed = 42) ?(pool = Stob_par.Pool.sequential)
    dataset =
  let cache = Hashtbl.create (Array.length dataset.Dataset.samples) in
  Array.iter
    (fun s -> Hashtbl.replace cache s (Features.extract s.Dataset.trace))
    dataset.Dataset.samples;
  let n_classes = Array.length dataset.Dataset.site_names in
  let forest = { Stob_ml.Random_forest.default_params with n_trees = trees; seed } in
  (* Folds are drawn up front from their own seed, and each fold's forest
     reseeds from [forest.seed], so the per-fold tasks are independent and
     the parallel map is deterministic (the shared feature cache is only
     read). *)
  let eval_fold (train, test) =
    (* Tiny corpora can leave a fold with no test (or train) samples;
       skip those folds rather than failing. *)
    if Array.length test.Dataset.samples = 0 || Array.length train.Dataset.samples = 0 then
      None
    else begin
      (* One column matrix per fold side, shared read-only by every tree
         (and domain) the fold trains. *)
      let feats d = Matrix.of_rows (Array.map (fun s -> Hashtbl.find cache s) d.Dataset.samples) in
      let labels d =
        Array.map (fun (s : Dataset.sample) -> s.Dataset.label) d.Dataset.samples
      in
      let attack =
        Attack.train_m ~forest ~n_classes ~matrix:(feats train) ~labels:(labels train) ()
      in
      Some
        (Attack.evaluate_m attack ~mode:Attack.Forest_vote ~matrix:(feats test)
           ~labels:(labels test))
    end
  in
  let accuracies =
    List.filter_map Fun.id
      (Stob_par.Pool.map_list pool eval_fold
         (Dataset.folds dataset ~rng:(Rng.create (seed + 5)) ~k:folds))
  in
  if accuracies = [] then invalid_arg "Evalcommon.accuracy_cv: empty dataset";
  Stob_ml.Eval.mean_std accuracies
