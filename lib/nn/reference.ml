(* The pre-batching per-sample engine, kept verbatim as the differential
   oracle for the float32 Tensor engine (see reference.mli).  Do not
   optimize this file: its value is that it stays the simple, obviously
   correct float64 implementation. *)

module Rng = Stob_util.Rng

module Layer = struct
  type t = {
    forward : float array -> float array;
    backward : float array -> float array;
    update : lr:float -> unit;
  }

  let momentum = 0.9

  (* Parameter block with gradient accumulation and momentum. *)
  type param = { value : float array; grad : float array; vel : float array }

  let make_param values =
    let n = Array.length values in
    { value = values; grad = Array.make n 0.0; vel = Array.make n 0.0 }

  let sgd_step p ~lr =
    for i = 0 to Array.length p.value - 1 do
      p.vel.(i) <- (momentum *. p.vel.(i)) -. (lr *. p.grad.(i));
      p.value.(i) <- p.value.(i) +. p.vel.(i);
      p.grad.(i) <- 0.0
    done

  let he_init rng n fan_in =
    let scale = sqrt (2.0 /. float_of_int (max 1 fan_in)) in
    Array.init n (fun _ -> Rng.normal rng ~mu:0.0 ~sigma:scale)

  let dense ~rng ~inputs ~outputs =
    let w = make_param (he_init rng (inputs * outputs) inputs) in
    let b = make_param (Array.make outputs 0.0) in
    let cached_input = ref [||] in
    let forward x =
      cached_input := x;
      Array.init outputs (fun o ->
          let acc = ref b.value.(o) in
          let row = o * inputs in
          for i = 0 to inputs - 1 do
            acc := !acc +. (w.value.(row + i) *. x.(i))
          done;
          !acc)
    in
    let backward dout =
      let x = !cached_input in
      let din = Array.make inputs 0.0 in
      for o = 0 to outputs - 1 do
        let g = dout.(o) in
        b.grad.(o) <- b.grad.(o) +. g;
        let row = o * inputs in
        for i = 0 to inputs - 1 do
          w.grad.(row + i) <- w.grad.(row + i) +. (g *. x.(i));
          din.(i) <- din.(i) +. (g *. w.value.(row + i))
        done
      done;
      din
    in
    let update ~lr =
      sgd_step w ~lr;
      sgd_step b ~lr
    in
    { forward; backward; update }

  let relu () =
    let cached = ref [||] in
    let forward x =
      cached := x;
      Array.map (fun v -> if v > 0.0 then v else 0.0) x
    in
    let backward dout =
      Array.mapi (fun i g -> if !cached.(i) > 0.0 then g else 0.0) dout
    in
    { forward; backward; update = (fun ~lr:_ -> ()) }

  let conv_output_length ~length ~kernel = length - kernel + 1
  let pool_output_length ~length ~factor = length / factor

  let conv1d ~rng ~in_channels ~out_channels ~kernel ~length =
    let out_len = conv_output_length ~length ~kernel in
    if out_len <= 0 then invalid_arg "Layer.conv1d: kernel larger than input";
    let w = make_param (he_init rng (out_channels * in_channels * kernel) (in_channels * kernel)) in
    let b = make_param (Array.make out_channels 0.0) in
    let cached_input = ref [||] in
    let widx oc ic k = (((oc * in_channels) + ic) * kernel) + k in
    let forward x =
      cached_input := x;
      let out = Array.make (out_channels * out_len) 0.0 in
      for oc = 0 to out_channels - 1 do
        let obase = oc * out_len in
        for p = 0 to out_len - 1 do
          let acc = ref b.value.(oc) in
          for ic = 0 to in_channels - 1 do
            let ibase = ic * length in
            for k = 0 to kernel - 1 do
              acc := !acc +. (w.value.(widx oc ic k) *. x.(ibase + p + k))
            done
          done;
          out.(obase + p) <- !acc
        done
      done;
      out
    in
    let backward dout =
      let x = !cached_input in
      let din = Array.make (in_channels * length) 0.0 in
      for oc = 0 to out_channels - 1 do
        let obase = oc * out_len in
        for p = 0 to out_len - 1 do
          let g = dout.(obase + p) in
          if g <> 0.0 then begin
            b.grad.(oc) <- b.grad.(oc) +. g;
            for ic = 0 to in_channels - 1 do
              let ibase = ic * length in
              for k = 0 to kernel - 1 do
                w.grad.(widx oc ic k) <- w.grad.(widx oc ic k) +. (g *. x.(ibase + p + k));
                din.(ibase + p + k) <- din.(ibase + p + k) +. (g *. w.value.(widx oc ic k))
              done
            done
          end
        done
      done;
      din
    in
    let update ~lr =
      sgd_step w ~lr;
      sgd_step b ~lr
    in
    { forward; backward; update }

  let maxpool1d ~channels ~length ~factor =
    if factor <= 0 then invalid_arg "Layer.maxpool1d: factor must be positive";
    let out_len = pool_output_length ~length ~factor in
    if out_len = 0 then invalid_arg "Layer.maxpool1d: input shorter than factor";
    (* A fresh argmax buffer per forward: the original allocated one buffer
       per layer instance, so interleaved forwards (reuse, concurrency)
       silently cross-wired gradients, and backward-before-forward silently
       routed every gradient to index 0.  Now each backward reads exactly
       its own forward's indices, and a premature backward raises. *)
    let argmax = ref [||] in
    let forward x =
      let am = Array.make (channels * out_len) 0 in
      argmax := am;
      let out = Array.make (channels * out_len) 0.0 in
      for c = 0 to channels - 1 do
        let ibase = c * length and obase = c * out_len in
        for p = 0 to out_len - 1 do
          let start = ibase + (p * factor) in
          let best = ref start in
          for k = 1 to factor - 1 do
            if x.(start + k) > x.(!best) then best := start + k
          done;
          am.(obase + p) <- !best;
          out.(obase + p) <- x.(!best)
        done
      done;
      out
    in
    let backward dout =
      let am = !argmax in
      let din = Array.make (channels * length) 0.0 in
      Array.iteri (fun i g -> din.(am.(i)) <- din.(am.(i)) +. g) dout;
      din
    in
    { forward; backward; update = (fun ~lr:_ -> ()) }
end

module Network = struct
  type t = { layers : Layer.t list }

  let create layers = { layers }

  let logits t x = List.fold_left (fun acc layer -> layer.Layer.forward acc) x t.layers

  let predict t x =
    let out = logits t x in
    let best = ref 0 in
    Array.iteri (fun i v -> if v > out.(!best) then best := i) out;
    !best

  let softmax z =
    let m = Array.fold_left Float.max neg_infinity z in
    let exps = Array.map (fun v -> exp (v -. m)) z in
    let sum = Array.fold_left ( +. ) 0.0 exps in
    Array.map (fun v -> v /. sum) exps

  let train_sample t ~x ~label =
    let out = logits t x in
    let probs = softmax out in
    let loss = -.log (Float.max 1e-12 probs.(label)) in
    (* dLoss/dlogits of softmax cross-entropy: p - onehot. *)
    let dout = Array.mapi (fun i p -> if i = label then p -. 1.0 else p) probs in
    ignore (List.fold_left (fun acc layer -> layer.Layer.backward acc) dout (List.rev t.layers));
    loss

  let apply_update t ~lr = List.iter (fun layer -> layer.Layer.update ~lr) t.layers

  type progress = { epoch : int; mean_loss : float }

  let fit t ~rng ~xs ~labels ?(epochs = 30) ?(batch = 16) ?(lr = 0.01) ?on_epoch () =
    let n = Array.length xs in
    if n = 0 || n <> Array.length labels then invalid_arg "Network.fit: bad inputs";
    let order = Array.init n (fun i -> i) in
    for epoch = 1 to epochs do
      Rng.shuffle rng order;
      let total_loss = ref 0.0 in
      let in_batch = ref 0 in
      Array.iter
        (fun i ->
          total_loss := !total_loss +. train_sample t ~x:xs.(i) ~label:labels.(i);
          incr in_batch;
          if !in_batch >= batch then begin
            apply_update t ~lr:(lr /. float_of_int !in_batch);
            in_batch := 0
          end)
        order;
      if !in_batch > 0 then apply_update t ~lr:(lr /. float_of_int !in_batch);
      match on_epoch with
      | Some f -> f { epoch; mean_loss = !total_loss /. float_of_int n }
      | None -> ()
    done

  let accuracy t ~xs ~labels =
    let hits = ref 0 in
    Array.iteri (fun i x -> if predict t x = labels.(i) then incr hits) xs;
    float_of_int !hits /. float_of_int (max 1 (Array.length xs))
end
