module Rng = Stob_util.Rng
module A1 = Bigarray.Array1

let momentum = 0.9

(* Shared, mutated only by apply_update on the calling domain.  Values are
   float32 (the storage the kernels read); velocity stays float64 so the
   momentum recurrence matches the Reference oracle's arithmetic. *)
type param = { value : Tensor.t; vel : float array }

let make_param value = { value; vel = Array.make (Tensor.rows value * Tensor.cols value) 0.0 }

(* Identical draw sequence to Reference.Layer.he_init: n samples in
   row-major order, so a batched net built from the same seed holds the
   float32 rounding of the oracle's exact weights. *)
let he_tensor rng ~rows ~cols ~fan_in =
  let scale = sqrt (2.0 /. float_of_int (max 1 fan_in)) in
  let t = Tensor.create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Tensor.set t i j (Rng.normal rng ~mu:0.0 ~sigma:scale)
    done
  done;
  t

type t =
  | Dense of { inputs : int; outputs : int; w : param; b : param }
  | Relu of { size : int }
  | Conv1d of {
      in_channels : int;
      out_channels : int;
      kernel : int;
      length : int;
      out_len : int;
      w : param;  (** [out_channels x (in_channels * kernel)] *)
      b : param;
    }
  | Maxpool1d of { channels : int; length : int; factor : int; out_len : int }

let conv_output_length ~length ~kernel = length - kernel + 1
let pool_output_length ~length ~factor = length / factor

let dense ~rng ~inputs ~outputs =
  let w = make_param (he_tensor rng ~rows:outputs ~cols:inputs ~fan_in:inputs) in
  let b = make_param (Tensor.create 1 outputs) in
  Dense { inputs; outputs; w; b }

let relu ~size = Relu { size }

let conv1d ~rng ~in_channels ~out_channels ~kernel ~length =
  let out_len = conv_output_length ~length ~kernel in
  if out_len <= 0 then invalid_arg "Layer.conv1d: kernel larger than input";
  let w =
    make_param
      (he_tensor rng ~rows:out_channels ~cols:(in_channels * kernel)
         ~fan_in:(in_channels * kernel))
  in
  let b = make_param (Tensor.create 1 out_channels) in
  Conv1d { in_channels; out_channels; kernel; length; out_len; w; b }

let maxpool1d ~channels ~length ~factor =
  if factor <= 0 then invalid_arg "Layer.maxpool1d: factor must be positive";
  let out_len = pool_output_length ~length ~factor in
  if out_len = 0 then invalid_arg "Layer.maxpool1d: input shorter than factor";
  Maxpool1d { channels; length; factor; out_len }

let input_size = function
  | Dense d -> d.inputs
  | Relu r -> r.size
  | Conv1d c -> c.in_channels * c.length
  | Maxpool1d p -> p.channels * p.length

let output_size = function
  | Dense d -> d.outputs
  | Relu r -> r.size
  | Conv1d c -> c.out_channels * c.out_len
  | Maxpool1d p -> p.channels * p.out_len

let params = function
  | Dense { w; b; _ } | Conv1d { w; b; _ } -> [ w.value; b.value ]
  | Relu _ | Maxpool1d _ -> []

let velocities = function
  | Dense { w; b; _ } | Conv1d { w; b; _ } -> [ w.vel; b.vel ]
  | Relu _ | Maxpool1d _ -> []

(* ------------------------------------------------------------------ *)
(* Per-shard state.  A ctx owns every buffer forward/backward touch
   besides the shared read-only params, so shards run on separate
   domains without sharing a mutable word — which is also what fixes
   the reference engine's shared-argmax pitfall structurally: the
   argmax scratch lives in the ctx, one per shard. *)

type ctx = {
  out : Tensor.t;  (** [max_rows x output_size] *)
  din : Tensor.t;  (** [max_rows x input_size] *)
  argmax : int array;  (** maxpool only: per-row input index of each max *)
  col : Tensor.t;  (** conv only: im2col scratch, [(ic * k) x out_len] *)
  dcol : Tensor.t;  (** conv only: dLoss/dcol scratch *)
}

let make_ctx spec ~rows =
  let out = Tensor.create rows (output_size spec) in
  let din = Tensor.create rows (input_size spec) in
  match spec with
  | Maxpool1d p ->
      {
        out;
        din;
        argmax = Array.make (rows * p.channels * p.out_len) 0;
        col = Tensor.create 0 0;
        dcol = Tensor.create 0 0;
      }
  | Conv1d c ->
      let ick = c.in_channels * c.kernel in
      { out; din; argmax = [||]; col = Tensor.create ick c.out_len; dcol = Tensor.create ick c.out_len }
  | Dense _ | Relu _ ->
      { out; din; argmax = [||]; col = Tensor.create 0 0; dcol = Tensor.create 0 0 }

(* Per-shard gradient accumulators, float64: each shard sums its own rows'
   gradients here; the trainer then folds shards in fixed index order. *)
type grads = { gw : float array; gb : float array }

let make_grads = function
  | Dense d -> { gw = Array.make (d.outputs * d.inputs) 0.0; gb = Array.make d.outputs 0.0 }
  | Conv1d c ->
      {
        gw = Array.make (c.out_channels * c.in_channels * c.kernel) 0.0;
        gb = Array.make c.out_channels 0.0;
      }
  | Relu _ | Maxpool1d _ -> { gw = [||]; gb = [||] }

let zero_grads g =
  Array.fill g.gw 0 (Array.length g.gw) 0.0;
  Array.fill g.gb 0 (Array.length g.gb) 0.0

let add_grads ~src ~dst =
  for i = 0 to Array.length src.gw - 1 do
    dst.gw.(i) <- dst.gw.(i) +. src.gw.(i)
  done;
  for i = 0 to Array.length src.gb - 1 do
    dst.gb.(i) <- dst.gb.(i) +. src.gb.(i)
  done

let forward spec ctx ~rows x =
  let out = Tensor.sub_rows ctx.out ~off:0 ~len:rows in
  (match spec with
  | Dense d ->
      (* out = x * w^T + b: seed each row with the bias, then beta=1 adds
         the float64 dot product on top — one rounding, like the oracle's
         acc-starts-at-b loop. *)
      Tensor.broadcast_row ~dst:out ~src:d.b.value ~rows;
      Tensor.gemm ~tb:true ~beta:1.0 ~a:x ~b:d.w.value out
  | Relu _ -> Tensor.relu_fwd ~x ~out ~rows
  | Conv1d c ->
      for i = 0 to rows - 1 do
        Tensor.im2col ~x ~row:i ~col:ctx.col ~in_channels:c.in_channels ~kernel:c.kernel
          ~length:c.length ~out_len:c.out_len;
        Tensor.fill_channels ~dst:out ~row:i ~bias:c.b.value ~channels:c.out_channels
          ~len:c.out_len;
        let oi =
          Tensor.reshape (Tensor.sub_rows out ~off:i ~len:1) ~rows:c.out_channels ~cols:c.out_len
        in
        (* [oc x out_len] = w [oc x ick] * col [ick x out_len] *)
        Tensor.gemm ~beta:1.0 ~a:c.w.value ~b:ctx.col oi
      done
  | Maxpool1d p ->
      Tensor.maxpool_fwd ~x ~out ~argmax:ctx.argmax ~rows ~channels:p.channels ~length:p.length
        ~factor:p.factor);
  out

let backward spec ctx g ~rows ~input ~dout =
  let din = Tensor.sub_rows ctx.din ~off:0 ~len:rows in
  (match spec with
  | Dense d ->
      (* din = dout * w *)
      Tensor.gemm ~a:dout ~b:d.w.value din;
      (* gw += dout^T * x, gb += column sums of dout — float64
         accumulation in the shard's own arrays. *)
      Tensor.dense_grad ~dout ~x:input ~gw:g.gw ~gb:g.gb ~rows
  | Relu _ -> Tensor.relu_bwd ~x:input ~dout ~din ~rows
  | Conv1d c ->
      for i = 0 to rows - 1 do
        (* Rebuild the sample's col matrix (cheaper than caching one per
           row) and fold its products with this sample's output gradient
           into the shard's float64 accumulators. *)
        Tensor.im2col ~x:input ~row:i ~col:ctx.col ~in_channels:c.in_channels ~kernel:c.kernel
          ~length:c.length ~out_len:c.out_len;
        let gi =
          Tensor.reshape (Tensor.sub_rows dout ~off:i ~len:1) ~rows:c.out_channels ~cols:c.out_len
        in
        Tensor.conv_grad ~gi ~col:ctx.col ~gw:g.gw ~gb:g.gb;
        (* dcol = w^T * g, then col2im scatters the contiguous dcol rows
           back onto the (overlapping) input positions. *)
        Tensor.gemm ~ta:true ~a:c.w.value ~b:gi ctx.dcol;
        Tensor.col2im ~dcol:ctx.dcol ~din ~row:i ~in_channels:c.in_channels ~kernel:c.kernel
          ~length:c.length ~out_len:c.out_len
      done
  | Maxpool1d p ->
      Tensor.maxpool_bwd ~dout ~din ~argmax:ctx.argmax ~rows ~channels:p.channels
        ~length:p.length ~factor:p.factor);
  din

(* The Reference sgd_step recurrence, velocity in float64, value rounded
   to float32 on store. *)
let step p (g : float array) ~lr =
  let vd = Tensor.data p.value in
  for i = 0 to Array.length g - 1 do
    p.vel.(i) <- (momentum *. p.vel.(i)) -. (lr *. g.(i));
    A1.unsafe_set vd i (A1.unsafe_get vd i +. p.vel.(i))
  done

let apply_update spec g ~lr =
  match spec with
  | Dense { w; b; _ } ->
      step w g.gw ~lr;
      step b g.gb ~lr
  | Conv1d { w; b; _ } ->
      step w g.gw ~lr;
      step b g.gb ~lr
  | Relu _ | Maxpool1d _ -> ()
