(** Float32 tensors for the batched DF-net engine.

    A tensor is a dense row-major [rows x cols] matrix over a float32
    bigarray — 4 bytes per element, unboxed, shareable across domains
    (values are only written by the domain that owns the enclosing
    buffer).  Storage is float32 but every kernel {e accumulates in
    float64} (OCaml's native [float]) and rounds once on store, which is
    what keeps the batched engine within a tight tolerance of the
    float64 {!Reference} oracle.

    {!sub_rows} and {!reshape} are zero-copy views: they alias the
    parent's storage, which is how minibatch shards and per-sample
    channel-major feature maps are carved out of one buffer without
    copying. *)

type ba = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { data : ba; rows : int; cols : int }

val create : int -> int -> t
(** [create rows cols]: zero-filled. *)

val rows : t -> int
val cols : t -> int

val data : t -> ba
(** The raw storage (row-major, [rows * cols] elements).  Exposed for the
    layer kernels; use {!get}/{!set} elsewhere. *)

val get : t -> int -> int -> float
(** Bounds-checked element read ([i], [j]).  The returned [float] is the
    exact float32 value widened to float64. *)

val set : t -> int -> int -> float -> unit
(** Bounds-checked element write; the value is rounded to float32. *)

val fill : t -> float -> unit

val of_rows : float array array -> t
(** Pack row vectors (all the same length) into a fresh tensor, rounding
    to float32.  An empty array yields a [0 x 0] tensor. *)

val to_rows : t -> float array array

val row : t -> int -> float array
(** Copy of row [i]. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; dimensions must match exactly. *)

val sub_rows : t -> off:int -> len:int -> t
(** Zero-copy view of rows [off .. off+len-1]. *)

val reshape : t -> rows:int -> cols:int -> t
(** Zero-copy view with a different shape; the element count must be
    unchanged.  Combined with {!sub_rows} this turns one batch row into a
    channel-major [channels x length] feature map. *)

val gemm : ?ta:bool -> ?tb:bool -> ?alpha:float -> ?beta:float -> a:t -> b:t -> t -> unit
(** [gemm ~ta ~tb ~alpha ~beta ~a ~b c]:
    [c <- alpha * op(a) * op(b) + beta * c] where [op] transposes when the
    corresponding flag is set (both defaults [false]; [ta && tb] is not
    implemented).  [alpha] defaults to [1.0], [beta] to [0.0] (with
    [beta = 0.0] the old contents of [c] are ignored, not read).

    The three transpose variants dispatch to vectorized C kernels
    (tensor_stubs.c, built -O3 -march=native): unit-stride saxpy/dot
    loops over the float32 storage with float64 row accumulators, rounded
    exactly once when stored into [c].  The kernels are branch-free with
    respect to the domain count, which is what makes training
    [--jobs]-invariant.  Raises [Invalid_argument] on dimension
    mismatch. *)

(** {1 Engine-internal layer kernels}

    Thin wrappers over the C stubs used by {!Layer}'s forward/backward;
    shapes are trusted (the layer ctx plumbing sizes every buffer), so
    unlike {!gemm} they do not re-validate. *)

val dense_grad : dout:t -> x:t -> gw:float array -> gb:float array -> rows:int -> unit
(** [gw(out,in) += dout(rows,out)^T * x(rows,in)] and [gb(out) += column
    sums of dout], accumulated in float64. *)

val conv_grad : gi:t -> col:t -> gw:float array -> gb:float array -> unit
(** Per-sample conv parameter gradients, float64 accumulation:
    [gw(oc,ick) += gi(oc,len) * col(ick,len)^T], [gb(oc) += row sums]. *)

val im2col : x:t -> row:int -> col:t -> in_channels:int -> kernel:int -> length:int -> out_len:int -> unit
(** Lower row [row] of [x] (channel-major [in_channels * length]) into the
    [(in_channels * kernel) x out_len] col matrix — pure memcpy per
    receptive-field row. *)

val col2im : dcol:t -> din:t -> row:int -> in_channels:int -> kernel:int -> length:int -> out_len:int -> unit
(** Zero row [row] of [din], then scatter-add [dcol] back onto the
    overlapping input positions (the transpose of {!im2col}). *)

val relu_fwd : x:t -> out:t -> rows:int -> unit
val relu_bwd : x:t -> dout:t -> din:t -> rows:int -> unit

val broadcast_row : dst:t -> src:t -> rows:int -> unit
(** Every row of [dst] becomes a copy of [src] (a [1 x cols] bias). *)

val fill_channels : dst:t -> row:int -> bias:t -> channels:int -> len:int -> unit
(** Channel-major bias broadcast into row [row] of [dst]: channel [c]'s
    [len] positions are set to [bias[c]]. *)

val maxpool_fwd :
  x:t -> out:t -> argmax:int array -> rows:int -> channels:int -> length:int -> factor:int -> unit
(** Non-overlapping max pool; [argmax] receives, per output, the input
    index of the max {e within its row} (what the backward scatter
    needs). *)

val maxpool_bwd :
  dout:t -> din:t -> argmax:int array -> rows:int -> channels:int -> length:int -> factor:int -> unit
