(** The per-sample float64 network engine, kept as the differential oracle.

    This is the original [Stob_nn.Layer]/[Stob_nn.Network] pair, verbatim
    (same closures, same draw order, same update schedule), preserved when
    the batched float32 engine ({!Tensor}, the new {!Layer}/{!Network})
    replaced it on the hot path — the same pattern as
    [Stob_ml.Reference] for the forest trainer.  The [nn.parity] battery
    and [bench/main.exe dfnet] check the batched engine against it; it is
    also the baseline the BENCH_dfnet speedup gate is measured against.

    One deliberate divergence: [Layer.maxpool1d] here allocates its argmax
    buffer {e per forward call}.  The original shared one mutable buffer
    across all forwards of the layer instance, which silently cross-wired
    gradients whenever a layer was reused or run concurrently; calling
    [backward] before any [forward] now raises instead of silently routing
    every gradient to index 0 (pinned by a regression test). *)

module Layer : sig
  type t = {
    forward : float array -> float array;
    backward : float array -> float array;
        (** Maps dLoss/dOutput to dLoss/dInput, accumulating parameter
            gradients. Must follow the corresponding [forward]. *)
    update : lr:float -> unit;
        (** SGD-with-momentum step over accumulated gradients; clears them. *)
  }

  val dense : rng:Stob_util.Rng.t -> inputs:int -> outputs:int -> t
  (** Fully connected layer, He-initialized. *)

  val relu : unit -> t

  val conv1d :
    rng:Stob_util.Rng.t -> in_channels:int -> out_channels:int -> kernel:int -> length:int -> t
  (** Valid (no padding) 1-D convolution over channel-major input of
      [in_channels * length]; output is
      [out_channels * (length - kernel + 1)]. *)

  val maxpool1d : channels:int -> length:int -> factor:int -> t
  (** Non-overlapping max pooling per channel; trailing remainder dropped. *)

  val conv_output_length : length:int -> kernel:int -> int
  val pool_output_length : length:int -> factor:int -> int
end

module Network : sig
  type t

  val create : Layer.t list -> t

  val logits : t -> float array -> float array
  (** Forward pass. *)

  val predict : t -> float array -> int
  (** Argmax class. *)

  val softmax : float array -> float array
  (** Numerically stable softmax (exposed for tests). *)

  val train_sample : t -> x:float array -> label:int -> float
  (** Forward + backward for one sample; returns its cross-entropy loss.
      Gradients accumulate until {!apply_update}. *)

  val apply_update : t -> lr:float -> unit

  type progress = { epoch : int; mean_loss : float }

  val fit :
    t ->
    rng:Stob_util.Rng.t ->
    xs:float array array ->
    labels:int array ->
    ?epochs:int ->
    ?batch:int ->
    ?lr:float ->
    ?on_epoch:(progress -> unit) ->
    unit ->
    unit
  (** Shuffled minibatch SGD.  Defaults: 30 epochs, batch 16, lr 0.01 (the
      learning rate is divided by the batch size internally so loss
      gradients average rather than sum). *)

  val accuracy : t -> xs:float array array -> labels:int array -> float
end
