module Rng = Stob_util.Rng
module Pool = Stob_par.Pool
module A1 = Bigarray.Array1

type t = { layers : Layer.t array }

let create layers =
  if layers = [] then invalid_arg "Network.create: empty network";
  { layers = Array.of_list layers }

let n_classes t = Layer.output_size t.layers.(Array.length t.layers - 1)

(* One shard's complete working set: per-layer ctxs, per-layer gradient
   accumulators, the input view recorded per layer during the forward
   pass (backward replays them), and the dLoss/dlogits buffer. *)
type shard_state = {
  ctxs : Layer.ctx array;
  grads : Layer.grads array;
  inputs : Tensor.t array;
  dlogits : Tensor.t;
}

let make_shard_state t ~rows =
  {
    ctxs = Array.map (fun l -> Layer.make_ctx l ~rows) t.layers;
    grads = Array.map Layer.make_grads t.layers;
    inputs = Array.make (Array.length t.layers) (Tensor.create 0 0);
    dlogits = Tensor.create rows (n_classes t);
  }

let forward_shard t st ~rows x =
  let cur = ref x in
  Array.iteri
    (fun j layer ->
      st.inputs.(j) <- !cur;
      cur := Layer.forward layer st.ctxs.(j) ~rows !cur)
    t.layers;
  !cur

(* Softmax cross-entropy over the shard's logits: returns the summed loss
   and fills st.dlogits with p - onehot (the same expressions, per row, as
   Reference.Network.train_sample). *)
let loss_and_dlogits st ~rows ~logits ~labels ~label_off =
  let k = Tensor.cols logits in
  let ld = Tensor.data logits and dd = Tensor.data st.dlogits in
  let total = ref 0.0 in
  for i = 0 to rows - 1 do
    let base = i * k in
    let label = labels.(label_off + i) in
    let m = ref neg_infinity in
    for c = 0 to k - 1 do
      let v = A1.unsafe_get ld (base + c) in
      if v > !m then m := v
    done;
    let sum = ref 0.0 in
    for c = 0 to k - 1 do
      sum := !sum +. exp (A1.unsafe_get ld (base + c) -. !m)
    done;
    for c = 0 to k - 1 do
      let p = exp (A1.unsafe_get ld (base + c) -. !m) /. !sum in
      A1.unsafe_set dd (base + c) (if c = label then p -. 1.0 else p);
      if c = label then total := !total -. log (Float.max 1e-12 p)
    done
  done;
  !total

let backward_shard t st ~rows =
  let cur = ref (Tensor.sub_rows st.dlogits ~off:0 ~len:rows) in
  for j = Array.length t.layers - 1 downto 0 do
    cur := Layer.backward t.layers.(j) st.ctxs.(j) st.grads.(j) ~rows ~input:st.inputs.(j) ~dout:!cur
  done

(* One shard's full training pass: zero its accumulators, forward,
   loss, backward.  Pure in (shared weights, its rows) — which is the
   pool determinism contract. *)
let run_shard t st ~rows ~x ~labels ~label_off =
  Array.iter Layer.zero_grads st.grads;
  let logits = forward_shard t st ~rows x in
  let loss = loss_and_dlogits st ~rows ~logits ~labels ~label_off in
  backward_shard t st ~rows;
  loss

type progress = { epoch : int; mean_loss : float }

(* Fixed shard width: a minibatch always splits into ceil(batch/4) shards
   of up to 4 rows, whatever the pool size, so the shard boundaries (and
   with the fixed-order reduction below, every float64 sum) are identical
   at any --jobs.  The rng is drawn only on the calling domain (epoch
   shuffles), never inside shard tasks. *)
let shard_rows = 4

let fit t ~rng ~xs ~labels ?(epochs = 30) ?(batch = 16) ?(lr = 0.01) ?(pool = Pool.sequential)
    ?on_epoch () =
  let n = Tensor.rows xs in
  if n = 0 || n <> Array.length labels then invalid_arg "Network.fit: bad inputs";
  if batch <= 0 then invalid_arg "Network.fit: batch must be positive";
  let features = Tensor.cols xs in
  if features <> Layer.input_size t.layers.(0) then
    invalid_arg "Network.fit: feature width does not match the first layer";
  let max_shards = (batch + shard_rows - 1) / shard_rows in
  let states = Array.init max_shards (fun _ -> make_shard_state t ~rows:(min shard_rows batch)) in
  let totals = Array.map Layer.make_grads t.layers in
  let bx = Tensor.create batch features in
  let blabels = Array.make batch 0 in
  let order = Array.init n (fun i -> i) in
  let xd = Tensor.data xs and bd = Tensor.data bx in
  for epoch = 1 to epochs do
    Rng.shuffle rng order;
    let total_loss = ref 0.0 in
    let pos = ref 0 in
    while !pos < n do
      let bn = min batch (n - !pos) in
      for r = 0 to bn - 1 do
        A1.blit
          (A1.sub xd (order.(!pos + r) * features) features)
          (A1.sub bd (r * features) features);
        blabels.(r) <- labels.(order.(!pos + r))
      done;
      let n_sh = (bn + shard_rows - 1) / shard_rows in
      let losses =
        Pool.map pool
          (fun s ->
            let off = s * shard_rows in
            let rows = min shard_rows (bn - off) in
            run_shard t states.(s) ~rows
              ~x:(Tensor.sub_rows bx ~off ~len:rows)
              ~labels:blabels ~label_off:off)
          (Array.init n_sh Fun.id)
      in
      Array.iter (fun l -> total_loss := !total_loss +. l) losses;
      Array.iter Layer.zero_grads totals;
      for s = 0 to n_sh - 1 do
        Array.iteri (fun li total -> Layer.add_grads ~src:states.(s).grads.(li) ~dst:total) totals
      done;
      let eff = lr /. float_of_int bn in
      Array.iteri (fun li layer -> Layer.apply_update layer totals.(li) ~lr:eff) t.layers;
      pos := !pos + bn
    done;
    match on_epoch with
    | Some f -> f { epoch; mean_loss = !total_loss /. float_of_int n }
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Inference. *)

let inference_chunk = 64

let logits_m ?(pool = Pool.sequential) t xs =
  let n = Tensor.rows xs in
  let k = n_classes t in
  let out = Tensor.create n k in
  if n > 0 then begin
    let n_ch = (n + inference_chunk - 1) / inference_chunk in
    ignore
      (Pool.map pool
         (fun c ->
           let off = c * inference_chunk in
           let rows = min inference_chunk (n - off) in
           (* Each chunk task allocates its own ctxs and writes a disjoint
              row range of [out]. *)
           let ctxs = Array.map (fun l -> Layer.make_ctx l ~rows) t.layers in
           let cur = ref (Tensor.sub_rows xs ~off ~len:rows) in
           Array.iteri (fun j l -> cur := Layer.forward l ctxs.(j) ~rows !cur) t.layers;
           Tensor.blit ~src:!cur ~dst:(Tensor.sub_rows out ~off ~len:rows))
         (Array.init n_ch Fun.id))
  end;
  out

let argmax_rows logits =
  let k = Tensor.cols logits in
  Array.init (Tensor.rows logits) (fun i ->
      let best = ref 0 in
      for c = 1 to k - 1 do
        if Tensor.get logits i c > Tensor.get logits i !best then best := c
      done;
      !best)

let predict_m ?pool t xs = argmax_rows (logits_m ?pool t xs)

let accuracy_m ?pool t ~xs ~labels =
  let preds = predict_m ?pool t xs in
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr hits) preds;
  float_of_int !hits /. float_of_int (max 1 (Array.length preds))

(* ------------------------------------------------------------------ *)
(* Test hooks: sequential whole-batch loss/gradients for the
   finite-difference checks, and a bit-exact state digest for the
   --jobs-invariance gates. *)

let loss t ~xs ~labels =
  let rows = Tensor.rows xs in
  let st = make_shard_state t ~rows in
  let logits = forward_shard t st ~rows xs in
  loss_and_dlogits st ~rows ~logits ~labels ~label_off:0

let gradients t ~xs ~labels =
  let rows = Tensor.rows xs in
  let st = make_shard_state t ~rows in
  let l = run_shard t st ~rows ~x:xs ~labels ~label_off:0 in
  let gs =
    Array.to_list st.grads
    |> List.concat_map (fun (g : Layer.grads) ->
           if Array.length g.gw = 0 then [] else [ Array.copy g.gw; Array.copy g.gb ])
  in
  (l, gs)

let weights_digest t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun layer ->
      List.iter
        (fun p ->
          let d = Tensor.data p in
          for i = 0 to A1.dim d - 1 do
            Buffer.add_int32_le buf (Int32.bits_of_float (A1.unsafe_get d i))
          done)
        (Layer.params layer);
      List.iter
        (fun v -> Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) v)
        (Layer.velocities layer))
    t.layers;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let layers t = Array.to_list t.layers
