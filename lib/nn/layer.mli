(** Batched neural-network layers over float32 {!Tensor}s.

    The minibatch rebuild of the per-sample {!Reference.Layer}: each layer
    is a value describing shared parameters (float32 weights, float64
    momentum), and all mutable working state lives in an explicit per-shard
    {!ctx}/{!grads} pair, so {!Network.fit} can run minibatch shards on
    separate domains without sharing a mutable word.  Dense layers and the
    im2col-lowered 1-D convolution run on {!Tensor.gemm}; every kernel
    accumulates in float64 and rounds to float32 once on store.

    Shapes and semantics mirror the reference exactly: batches are
    [rows x features] tensors whose rows are the channel-major per-sample
    vectors the reference consumes, constructors draw from the RNG in the
    reference's order (a net built from the same seed carries the float32
    rounding of the oracle's weights), and updates follow the same
    SGD-with-momentum recurrence.

    [ctx]/[grads]/[forward]/[backward] are the engine-internal contract
    between this module and {!Network}; they are exposed for it and for
    the gradient-check tests. *)

type t

val dense : rng:Stob_util.Rng.t -> inputs:int -> outputs:int -> t
(** Fully connected layer, He-initialized (reference draw order). *)

val relu : size:int -> t
(** Elementwise ReLU over vectors of [size] features (the size is needed
    to pre-allocate per-shard buffers; the reference closure grew them per
    call). *)

val conv1d :
  rng:Stob_util.Rng.t -> in_channels:int -> out_channels:int -> kernel:int -> length:int -> t
(** Valid (no padding) 1-D convolution over channel-major rows of
    [in_channels * length]; output rows are
    [out_channels * (length - kernel + 1)].  Lowered to GEMM via im2col. *)

val maxpool1d : channels:int -> length:int -> factor:int -> t
(** Non-overlapping max pooling per channel; trailing remainder dropped.
    The argmax scratch lives in the per-shard {!ctx} — the shared-buffer
    reentrancy bug of the original per-sample layer cannot recur here. *)

val conv_output_length : length:int -> kernel:int -> int
val pool_output_length : length:int -> factor:int -> int

val input_size : t -> int
val output_size : t -> int

val params : t -> Tensor.t list
(** The layer's float32 parameter tensors ([weights; bias] or []), shared
    mutable state — written only by {!apply_update}.  Exposed for the
    finite-difference tests and the weight digest. *)

val velocities : t -> float array list
(** The float64 momentum buffers matching {!params}. *)

(** {1 Per-shard execution state} *)

type ctx
(** All buffers one shard's forward/backward traffic touches (activations,
    input gradients, argmax and im2col scratch).  One ctx per concurrent
    shard; never share across domains. *)

val make_ctx : t -> rows:int -> ctx
(** Buffers sized for up to [rows] samples. *)

type grads = { gw : float array; gb : float array }
(** Float64 parameter-gradient accumulators ([[||]] for layers without
    parameters). *)

val make_grads : t -> grads
val zero_grads : grads -> unit

val add_grads : src:grads -> dst:grads -> unit
(** [dst += src], elementwise in float64.  {!Network.fit} folds shard
    gradients with this in fixed shard order. *)

val forward : t -> ctx -> rows:int -> Tensor.t -> Tensor.t
(** [forward spec ctx ~rows x]: run the leading [rows] rows of [x]
    ([rows x input_size]) through the layer; returns a [rows x output_size]
    view into [ctx]'s output buffer (valid until the ctx's next forward). *)

val backward : t -> ctx -> grads -> rows:int -> input:Tensor.t -> dout:Tensor.t -> Tensor.t
(** [backward spec ctx g ~rows ~input ~dout]: map dLoss/dOutput to
    dLoss/dInput for the rows last seen by [forward] (pass the same
    [input]), accumulating parameter gradients into [g] in float64.
    Returns a view into [ctx]'s input-gradient buffer. *)

val apply_update : t -> grads -> lr:float -> unit
(** One SGD-with-momentum step from the (already reduced) gradients.  Does
    {e not} clear [g] — the trainer re-zeroes shard accumulators at the
    start of each shard pass. *)
