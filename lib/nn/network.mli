(** Batched sequential networks with softmax cross-entropy training.

    The minibatch rebuild of {!Reference.Network} on float32 {!Tensor}
    batches: one forward/backward pass per minibatch {e shard} instead of
    per sample, with the shards of a batch run in parallel on a
    {!Stob_par.Pool}.

    {b Determinism contract.}  Training is bit-identical at any [--jobs]:
    a minibatch always splits into fixed-width shards (4 rows) regardless
    of the pool size; each shard owns all of its mutable state and is a
    pure function of (weights, its rows); shard gradients are reduced in
    shard-index order in float64; and the RNG is drawn only on the calling
    domain (the epoch shuffle) — the pre-split-RNG rule with zero splits.

    Arithmetic matches the reference up to float32 rounding: parameters
    are stored float32, but every kernel accumulates in float64 (gradient
    reduction and the momentum recurrence run entirely in float64), so a
    net built from the same seed tracks the float64 oracle within the
    tolerance gated by [bench/main.exe dfnet]. *)

type t

val create : Layer.t list -> t
(** Raises [Invalid_argument] on an empty layer list. *)

val n_classes : t -> int
(** Output width of the last layer. *)

val layers : t -> Layer.t list

type progress = { epoch : int; mean_loss : float }

val fit :
  t ->
  rng:Stob_util.Rng.t ->
  xs:Tensor.t ->
  labels:int array ->
  ?epochs:int ->
  ?batch:int ->
  ?lr:float ->
  ?pool:Stob_par.Pool.t ->
  ?on_epoch:(progress -> unit) ->
  unit ->
  unit
(** Shuffled minibatch SGD over the rows of [xs].  Defaults: 30 epochs,
    batch 16, lr 0.01 (divided by the batch size internally so gradients
    average), sequential pool.  Shuffle order, update schedule and loss
    semantics mirror {!Reference.Network.fit} draw-for-draw. *)

val logits_m : ?pool:Stob_par.Pool.t -> t -> Tensor.t -> Tensor.t
(** Batched forward pass; row [i] of the result is sample [i]'s logits.
    [?pool] fans row chunks out across domains (each chunk writes a
    disjoint row range — results are pool-invariant). *)

val predict_m : ?pool:Stob_par.Pool.t -> t -> Tensor.t -> int array
(** Argmax class per row (first index on ties, like the reference). *)

val accuracy_m : ?pool:Stob_par.Pool.t -> t -> xs:Tensor.t -> labels:int array -> float

(** {1 Test hooks} *)

val loss : t -> xs:Tensor.t -> labels:int array -> float
(** Summed softmax cross-entropy over all rows (sequential).  Exposed for
    the finite-difference tests. *)

val gradients : t -> xs:Tensor.t -> labels:int array -> float * float array list
(** One sequential forward/backward over all rows as a single shard:
    the summed loss and, for each parameterized layer in order, its
    float64 [weights] then [bias] gradient sums.  Exposed for the
    finite-difference tests. *)

val weights_digest : t -> string
(** Hex digest of every parameter's float32 bits and every momentum
    buffer's float64 bits — bit-exact state identity, used by the
    [--jobs]-invariance gates. *)
