module A1 = Bigarray.Array1

type ba = (float, Bigarray.float32_elt, Bigarray.c_layout) A1.t

type t = { data : ba; rows : int; cols : int }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Tensor.create: negative dimension";
  let data = A1.create Bigarray.float32 Bigarray.c_layout (rows * cols) in
  A1.fill data 0.0;
  { data; rows; cols }

let rows t = t.rows
let cols t = t.cols
let data t = t.data

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Tensor.get: out of bounds";
  A1.unsafe_get t.data ((i * t.cols) + j)

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Tensor.set: out of bounds";
  A1.unsafe_set t.data ((i * t.cols) + j) v

let fill t v = A1.fill t.data v

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then create 0 0
  else begin
    let cols = Array.length rows.(0) in
    let t = create n cols in
    Array.iteri
      (fun i r ->
        if Array.length r <> cols then invalid_arg "Tensor.of_rows: ragged rows";
        let base = i * cols in
        for j = 0 to cols - 1 do
          A1.unsafe_set t.data (base + j) (Array.unsafe_get r j)
        done)
      rows;
    t
  end

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Tensor.row: out of bounds";
  let base = i * t.cols in
  Array.init t.cols (fun j -> A1.unsafe_get t.data (base + j))

let to_rows t = Array.init t.rows (row t)

let blit ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then invalid_arg "Tensor.blit: shape mismatch";
  A1.blit src.data dst.data

let copy t =
  let c = create t.rows t.cols in
  A1.blit t.data c.data;
  c

let sub_rows t ~off ~len =
  if off < 0 || len < 0 || off + len > t.rows then invalid_arg "Tensor.sub_rows: out of bounds";
  { data = A1.sub t.data (off * t.cols) (len * t.cols); rows = len; cols = t.cols }

let reshape t ~rows ~cols =
  if rows < 0 || cols < 0 || rows * cols <> t.rows * t.cols then
    invalid_arg "Tensor.reshape: element count must be preserved";
  { data = t.data; rows; cols }

(* ------------------------------------------------------------------ *)
(* Kernels.  The hot loops live in tensor_stubs.c: float32 loads with
   float64 accumulators, compiled -O3 -march=native so gcc vectorizes
   them (this container is single-core, so the BENCH_dfnet speedup has
   to come from the kernels, not from domains).  Each external is
   [@@noalloc] and never calls back into the runtime. *)

external gemm_stub :
  ba -> ba -> ba -> int -> int -> int -> int -> float -> float -> unit
  = "stob_nn_gemm_byte" "stob_nn_gemm"
[@@noalloc]

external dense_grad_stub : ba -> ba -> float array -> float array -> int -> int -> int -> unit
  = "stob_nn_dense_grad_byte" "stob_nn_dense_grad"
[@@noalloc]

external conv_grad_stub : ba -> ba -> float array -> float array -> int -> int -> int -> unit
  = "stob_nn_conv_grad_byte" "stob_nn_conv_grad"
[@@noalloc]

external im2col_stub : ba -> int -> ba -> int -> int -> int -> int -> unit
  = "stob_nn_im2col_byte" "stob_nn_im2col"
[@@noalloc]

external col2im_stub : ba -> ba -> int -> int -> int -> int -> int -> unit
  = "stob_nn_col2im_byte" "stob_nn_col2im"
[@@noalloc]

external relu_fwd_stub : ba -> ba -> int -> unit = "stob_nn_relu_fwd" [@@noalloc]
external relu_bwd_stub : ba -> ba -> ba -> int -> unit = "stob_nn_relu_bwd" [@@noalloc]
external broadcast_row_stub : ba -> ba -> int -> int -> unit = "stob_nn_broadcast_row" [@@noalloc]

external fill_channels_stub : ba -> int -> ba -> int -> int -> unit = "stob_nn_fill_channels"
[@@noalloc]

external maxpool_fwd_stub : ba -> ba -> int array -> int * int * int * int -> unit
  = "stob_nn_maxpool_fwd"
[@@noalloc]

external maxpool_bwd_stub : ba -> ba -> int array -> int * int * int * int -> unit
  = "stob_nn_maxpool_bwd"
[@@noalloc]

let gemm ?(ta = false) ?(tb = false) ?(alpha = 1.0) ?(beta = 0.0) ~a ~b c =
  let m = if ta then a.cols else a.rows in
  let ka = if ta then a.rows else a.cols in
  let kb = if tb then b.cols else b.rows in
  let n = if tb then b.rows else b.cols in
  if ka <> kb || c.rows <> m || c.cols <> n then
    invalid_arg
      (Printf.sprintf "Tensor.gemm: shape mismatch (op(a)=%dx%d op(b)=%dx%d c=%dx%d)" m ka kb n
         c.rows c.cols);
  let variant =
    match (ta, tb) with
    | false, false -> 0
    | false, true -> 1
    | true, false -> 2
    | true, true -> invalid_arg "Tensor.gemm: ta && tb is not implemented"
  in
  gemm_stub a.data b.data c.data m ka n variant alpha beta

(* Engine-internal layer kernels (see layer.ml for the calling
   conventions); shapes are validated by the layer ctx plumbing, so these
   wrappers only forward to the stubs. *)

let dense_grad ~dout ~x ~gw ~gb ~rows =
  dense_grad_stub dout.data x.data gw gb rows dout.cols x.cols

let conv_grad ~gi ~col ~gw ~gb = conv_grad_stub gi.data col.data gw gb gi.rows col.rows gi.cols

let im2col ~x ~row ~col ~in_channels ~kernel ~length ~out_len =
  im2col_stub x.data (row * x.cols) col.data in_channels kernel length out_len

let col2im ~dcol ~din ~row ~in_channels ~kernel ~length ~out_len =
  col2im_stub dcol.data din.data (row * din.cols) in_channels kernel length out_len

let relu_fwd ~x ~out ~rows = relu_fwd_stub x.data out.data (rows * out.cols)
let relu_bwd ~x ~dout ~din ~rows = relu_bwd_stub x.data dout.data din.data (rows * din.cols)
let broadcast_row ~dst ~src ~rows = broadcast_row_stub dst.data src.data rows dst.cols

let fill_channels ~dst ~row ~bias ~channels ~len =
  fill_channels_stub dst.data (row * dst.cols) bias.data channels len

let maxpool_fwd ~x ~out ~argmax ~rows ~channels ~length ~factor =
  maxpool_fwd_stub x.data out.data argmax (rows, channels, length, factor)

let maxpool_bwd ~dout ~din ~argmax ~rows ~channels ~length ~factor =
  maxpool_bwd_stub dout.data din.data argmax (rows, channels, length, factor)
