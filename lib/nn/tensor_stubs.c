/* Vectorized kernels for the batched float32 tensor engine.
 *
 * Storage is float32 (the Tensor bigarrays); every kernel accumulates in
 * float64 and rounds once on store, matching the OCaml engine's contract
 * with the float64 Reference oracle.  Compiled with -O3 -march=native
 * (plus -fassociative-math for the dot-product reductions), so gcc
 * vectorizes the inner loops; the instruction sequence is fixed per
 * binary, which is what the determinism / --jobs-invariance contract
 * needs — kernels never depend on the domain count.
 *
 * No kernel allocates on the OCaml heap or calls back into the runtime,
 * so the externals are [@@noalloc] and naked float-array pointers stay
 * valid for the duration of each call.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <stdlib.h>
#include <string.h>

/* An OCaml float array is a flat array of doubles. */
#define Double_array_ptr(v) ((double *)(v))

/* ------------------------------------------------------------------ */
/* GEMM: C(m,n) = alpha * op(A)op(B) + beta * C.
 * variant 0 (nn): A(m,k)   B(k,n) — saxpy over B rows, unit stride.
 * variant 1 (nt): A(m,k)   B(n,k)^T — dot products, unit stride in k.
 * variant 2 (tn): A(k,m)^T B(k,n) — saxpy over B rows.
 */

static void gemm_nn_tn(const float *a, const float *b, float *c, long m, long k, long n,
                       int trans_a, double alpha, double beta, double *acc)
{
  for (long i = 0; i < m; i++) {
    memset(acc, 0, (size_t)n * sizeof(double));
    for (long l = 0; l < k; l++) {
      double av = trans_a ? (double)a[l * m + i] : (double)a[i * k + l];
      if (av != 0.0) {
        const float *br = b + l * n;
        for (long j = 0; j < n; j++)
          acc[j] += av * (double)br[j];
      }
    }
    float *cr = c + i * n;
    if (beta == 0.0)
      for (long j = 0; j < n; j++)
        cr[j] = (float)(alpha * acc[j]);
    else
      for (long j = 0; j < n; j++)
        cr[j] = (float)(alpha * acc[j] + beta * (double)cr[j]);
  }
}

static void gemm_nt(const float *a, const float *b, float *c, long m, long k, long n,
                    double alpha, double beta)
{
  for (long i = 0; i < m; i++) {
    const float *ar = a + i * k;
    float *cr = c + i * n;
    for (long j = 0; j < n; j++) {
      const float *br = b + j * k;
      double s = 0.0;
      for (long l = 0; l < k; l++)
        s += (double)ar[l] * (double)br[l];
      cr[j] = (float)(beta == 0.0 ? alpha * s : alpha * s + beta * (double)cr[j]);
    }
  }
}

CAMLprim value stob_nn_gemm(value va, value vb, value vc, value vm, value vk, value vn,
                            value vvariant, value valpha, value vbeta)
{
  const float *a = Caml_ba_data_val(va);
  const float *b = Caml_ba_data_val(vb);
  float *c = Caml_ba_data_val(vc);
  long m = Long_val(vm), k = Long_val(vk), n = Long_val(vn);
  int variant = Int_val(vvariant);
  double alpha = Double_val(valpha), beta = Double_val(vbeta);
  if (m == 0 || n == 0) return Val_unit;
  if (variant == 1)
    gemm_nt(a, b, c, m, k, n, alpha, beta);
  else {
    double *acc = malloc((size_t)n * sizeof(double));
    gemm_nn_tn(a, b, c, m, k, n, variant == 2, alpha, beta, acc);
    free(acc);
  }
  return Val_unit;
}

CAMLprim value stob_nn_gemm_byte(value *argv, int argn)
{
  (void)argn;
  return stob_nn_gemm(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6], argv[7],
                      argv[8]);
}

/* ------------------------------------------------------------------ */
/* Dense backward parameter gradients, accumulated into the shard's
 * float64 arrays: gw(out,in) += dout(rows,out)^T · x(rows,in),
 * gb(out) += column sums of dout.  The gv == 0 skip exploits the
 * sparsity a preceding ReLU's backward leaves in dout. */

CAMLprim value stob_nn_dense_grad(value vdout, value vx, value vgw, value vgb, value vrows,
                                  value vout, value vin)
{
  const float *dout = Caml_ba_data_val(vdout);
  const float *x = Caml_ba_data_val(vx);
  double *gw = Double_array_ptr(vgw);
  double *gb = Double_array_ptr(vgb);
  long rows = Long_val(vrows), out = Long_val(vout), in = Long_val(vin);
  for (long r = 0; r < rows; r++) {
    const float *dr = dout + r * out;
    const float *xr = x + r * in;
    for (long o = 0; o < out; o++) {
      double gv = (double)dr[o];
      if (gv != 0.0) {
        gb[o] += gv;
        double *gwr = gw + o * in;
        for (long j = 0; j < in; j++)
          gwr[j] += gv * (double)xr[j];
      }
    }
  }
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* Conv backward parameter gradients for one sample:
 * gw(oc,ick) += gi(oc,len) · col(ick,len)^T, gb(oc) += row sums of gi. */

CAMLprim value stob_nn_conv_grad(value vgi, value vcol, value vgw, value vgb, value voc,
                                 value vick, value vlen)
{
  const float *gi = Caml_ba_data_val(vgi);
  const float *col = Caml_ba_data_val(vcol);
  double *gw = Double_array_ptr(vgw);
  double *gb = Double_array_ptr(vgb);
  long oc = Long_val(voc), ick = Long_val(vick), len = Long_val(vlen);
  for (long o = 0; o < oc; o++) {
    const float *gr = gi + o * len;
    double bs = 0.0;
    for (long p = 0; p < len; p++)
      bs += (double)gr[p];
    gb[o] += bs;
    double *gwr = gw + o * ick;
    for (long j = 0; j < ick; j++) {
      const float *cr = col + j * len;
      double s = 0.0;
      for (long p = 0; p < len; p++)
        s += (double)gr[p] * (double)cr[p];
      gwr[j] += s;
    }
  }
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* im2col for one sample: receptive-field row (ic, k) of col is the
 * contiguous slice x[xoff + ic*length + k ..], so lowering is memcpy. */

CAMLprim value stob_nn_im2col(value vx, value vxoff, value vcol, value vic, value vkernel,
                              value vlength, value vlen)
{
  const float *x = (const float *)Caml_ba_data_val(vx) + Long_val(vxoff);
  float *col = Caml_ba_data_val(vcol);
  long ic = Long_val(vic), kernel = Long_val(vkernel), length = Long_val(vlength),
       len = Long_val(vlen);
  for (long c = 0; c < ic; c++)
    for (long k = 0; k < kernel; k++)
      memcpy(col + (c * kernel + k) * len, x + c * length + k, (size_t)len * sizeof(float));
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* Elementwise / broadcast helpers: these loops are trivially
 * vectorizable but dominate the OCaml engine's residual time once the
 * GEMMs are fast (a scalar bigarray access costs ~2ns from OCaml). */

CAMLprim value stob_nn_relu_fwd(value vx, value vout, value vn)
{
  const float *x = Caml_ba_data_val(vx);
  float *out = Caml_ba_data_val(vout);
  long n = Long_val(vn);
  for (long i = 0; i < n; i++)
    out[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return Val_unit;
}

CAMLprim value stob_nn_relu_bwd(value vx, value vdout, value vdin, value vn)
{
  const float *x = Caml_ba_data_val(vx);
  const float *dout = Caml_ba_data_val(vdout);
  float *din = Caml_ba_data_val(vdin);
  long n = Long_val(vn);
  for (long i = 0; i < n; i++)
    din[i] = x[i] > 0.0f ? dout[i] : 0.0f;
  return Val_unit;
}

/* dst row i <- src (dense bias broadcast). */
CAMLprim value stob_nn_broadcast_row(value vdst, value vsrc, value vrows, value vcols)
{
  float *dst = Caml_ba_data_val(vdst);
  const float *src = Caml_ba_data_val(vsrc);
  long rows = Long_val(vrows), cols = Long_val(vcols);
  for (long i = 0; i < rows; i++)
    memcpy(dst + i * cols, src, (size_t)cols * sizeof(float));
  return Val_unit;
}

/* dst channel row c <- bias[c] (conv bias broadcast, one sample). */
CAMLprim value stob_nn_fill_channels(value vdst, value vdoff, value vbias, value vch, value vlen)
{
  float *dst = (float *)Caml_ba_data_val(vdst) + Long_val(vdoff);
  const float *bias = Caml_ba_data_val(vbias);
  long ch = Long_val(vch), len = Long_val(vlen);
  for (long c = 0; c < ch; c++) {
    float bv = bias[c];
    float *row = dst + c * len;
    for (long p = 0; p < len; p++)
      row[p] = bv;
  }
  return Val_unit;
}

/* Non-overlapping max pool over channel-major rows; argmax (input index
 * within the row, for the backward scatter) lands in an OCaml int array
 * as tagged immediates. */
CAMLprim value stob_nn_maxpool_fwd(value vx, value vout, value vargmax, value vdims)
{
  const float *x = Caml_ba_data_val(vx);
  float *out = Caml_ba_data_val(vout);
  value *argmax = (value *)vargmax;
  long rows = Long_val(Field(vdims, 0));
  long channels = Long_val(Field(vdims, 1));
  long length = Long_val(Field(vdims, 2));
  long factor = Long_val(Field(vdims, 3));
  long out_len = length / factor;
  long isz = channels * length, osz = channels * out_len;
  for (long i = 0; i < rows; i++) {
    const float *xr = x + i * isz;
    float *orow = out + i * osz;
    value *ar = argmax + i * osz;
    for (long c = 0; c < channels; c++) {
      long ibase = c * length, obase = c * out_len;
      for (long p = 0; p < out_len; p++) {
        long best = ibase + p * factor;
        for (long k = 1; k < factor; k++)
          if (xr[ibase + p * factor + k] > xr[best])
            best = ibase + p * factor + k;
        ar[obase + p] = Val_long(best);
        orow[obase + p] = xr[best];
      }
    }
  }
  return Val_unit;
}

CAMLprim value stob_nn_maxpool_bwd(value vdout, value vdin, value vargmax, value vdims)
{
  const float *dout = Caml_ba_data_val(vdout);
  float *din = Caml_ba_data_val(vdin);
  const value *argmax = (const value *)vargmax;
  long rows = Long_val(Field(vdims, 0));
  long channels = Long_val(Field(vdims, 1));
  long length = Long_val(Field(vdims, 2));
  long factor = Long_val(Field(vdims, 3));
  long out_len = length / factor;
  long isz = channels * length, osz = channels * out_len;
  for (long i = 0; i < rows; i++) {
    float *dr = din + i * isz;
    const float *gr = dout + i * osz;
    const value *ar = argmax + i * osz;
    memset(dr, 0, (size_t)isz * sizeof(float));
    for (long j = 0; j < osz; j++)
      dr[Long_val(ar[j])] += gr[j];
  }
  return Val_unit;
}

/* Bytecode wrappers (externals with more than 5 arguments). */

CAMLprim value stob_nn_dense_grad_byte(value *argv, int argn)
{
  (void)argn;
  return stob_nn_dense_grad(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}

CAMLprim value stob_nn_conv_grad_byte(value *argv, int argn)
{
  (void)argn;
  return stob_nn_conv_grad(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}

CAMLprim value stob_nn_im2col_byte(value *argv, int argn)
{
  (void)argn;
  return stob_nn_im2col(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}

/* col2im for one sample: zero the input-gradient row, then scatter-add
 * the contiguous dcol rows back onto the (overlapping) input positions. */

CAMLprim value stob_nn_col2im(value vdcol, value vdin, value vdoff, value vic, value vkernel,
                              value vlength, value vlen)
{
  const float *dcol = Caml_ba_data_val(vdcol);
  float *din = (float *)Caml_ba_data_val(vdin) + Long_val(vdoff);
  long ic = Long_val(vic), kernel = Long_val(vkernel), length = Long_val(vlength),
       len = Long_val(vlen);
  memset(din, 0, (size_t)(ic * length) * sizeof(float));
  for (long c = 0; c < ic; c++)
    for (long k = 0; k < kernel; k++) {
      const float *dr = dcol + (c * kernel + k) * len;
      float *dd = din + c * length + k;
      for (long p = 0; p < len; p++)
        dd[p] += dr[p];
    }
  return Val_unit;
}

CAMLprim value stob_nn_col2im_byte(value *argv, int argn)
{
  (void)argn;
  return stob_nn_col2im(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5], argv[6]);
}
