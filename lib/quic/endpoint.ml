module Packet = Stob_net.Packet
module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Config = Stob_tcp.Config
module Cc = Stob_tcp.Cc
module Rtt = Stob_tcp.Rtt
module Pacer = Stob_tcp.Pacer
module Hooks = Stob_tcp.Hooks
module Cpu_costs = Stob_tcp.Cpu_costs

let default_config =
  {
    Config.default with
    Config.mss = 1350;  (* datagram payload budget *)
    header_bytes = 43;  (* IP + UDP + QUIC short header *)
    tso_max_bytes = 65535;  (* UDP GSO burst *)
    tso_min_bytes = 2 * 1350;
  }

let crypto_stream = 0
let finished_stream = 2
let loss_threshold = 3
let max_ack_delay = 0.025
let initial_min_payload = 1200

type role = Client | Server

type sent_packet = {
  pn : int;
  payload : int;
  frames : Frame.t list;
  sent_at : float;
  ack_eliciting : bool;
  mutable acked : bool;
  mutable lost : bool;
}

type stream_out = {
  id : int;
  mutable next_offset : int;
  mutable queued : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable rtx : Frame.stream_chunk list;
}

type stream_in = {
  mutable intervals : (int * int) list;  (* sorted disjoint [lo, hi) *)
  mutable delivered : int;
  mutable fin_offset : int option;
  mutable fin_delivered : bool;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  cc : Cc.t;
  rtt : Rtt.t;
  pacer : Pacer.t;
  flow : int;
  dir : Packet.direction;
  wire : (Packet.direction * int, Frame.t list) Hashtbl.t;
  cpu : (Cpu.t * Cpu_costs.t) option;
  mutable hooks : Hooks.t;
  tx : Packet.t array -> unit;
  mutable role : role;
  mutable established : bool;
  mutable flight_bytes : int;  (* server: size of its handshake flight *)
  mutable flight_sent : bool;
  (* --- sender --- *)
  mutable pn_next : int;
  sent : (int, sent_packet) Hashtbl.t;
  mutable largest_acked : int;
  mutable inflight : int;
  streams_out : (int, stream_out) Hashtbl.t;
  mutable send_timer : Engine.event_id option;
  mutable pto_timer : Engine.event_id option;
  (* --- receiver --- *)
  streams_in : (int, stream_in) Hashtbl.t;
  mutable received : (int * int) list;  (* pn ranges [lo, hi] inclusive *)
  mutable ack_pending : bool;
  mutable pkts_since_ack : int;
  mutable ack_timer : Engine.event_id option;
  (* --- callbacks --- *)
  mutable on_established : unit -> unit;
  mutable on_stream : stream:int -> int -> unit;
  mutable on_stream_fin : stream:int -> unit;
  (* --- stats --- *)
  mutable packets_sent : int;
  mutable datagrams_sent : int;
  mutable rtx_chunks : int;
}

let create ~engine ~config ~cc ~flow ~dir ~wire ?cpu ?(hooks = Hooks.default) ~tx () =
  {
    engine;
    config;
    cc;
    rtt = Rtt.create config;
    pacer = Pacer.create ();
    flow;
    dir;
    wire;
    cpu;
    hooks;
    tx;
    role = Server;
    established = false;
    flight_bytes = 0;
    flight_sent = false;
    pn_next = 0;
    sent = Hashtbl.create 256;
    largest_acked = -1;
    inflight = 0;
    streams_out = Hashtbl.create 16;
    send_timer = None;
    pto_timer = None;
    streams_in = Hashtbl.create 16;
    received = [];
    ack_pending = false;
    pkts_since_ack = 0;
    ack_timer = None;
    on_established = (fun () -> ());
    on_stream = (fun ~stream:_ _ -> ());
    on_stream_fin = (fun ~stream:_ -> ());
    packets_sent = 0;
    datagrams_sent = 0;
    rtx_chunks = 0;
  }

let established t = t.established
let set_on_established t f = t.on_established <- f
let set_on_stream t f = t.on_stream <- f
let set_on_stream_fin t f = t.on_stream_fin <- f
let set_hooks t h = t.hooks <- h
let cc t = t.cc
let inflight t = t.inflight
let packets_sent t = t.packets_sent
let datagrams_sent t = t.datagrams_sent
let retransmitted_chunks t = t.rtx_chunks
let srtt t = Rtt.srtt t.rtt
let now t = Engine.now t.engine

let stream_out t id =
  match Hashtbl.find_opt t.streams_out id with
  | Some s -> s
  | None ->
      let s = { id; next_offset = 0; queued = 0; fin_pending = false; fin_sent = false; rtx = [] } in
      Hashtbl.add t.streams_out id s;
      s

let stream_in t id =
  match Hashtbl.find_opt t.streams_in id with
  | Some s -> s
  | None ->
      let s = { intervals = []; delivered = 0; fin_offset = None; fin_delivered = false } in
      Hashtbl.add t.streams_in id s;
      s

(* ------------------------------------------------------------------ *)
(* Transmission                                                         *)

let frames_payload frames = List.fold_left (fun acc f -> acc + Frame.wire_bytes f) 0 frames

(* Record one datagram and build its wire packet. *)
let make_datagram t frames =
  let pn = t.pn_next in
  t.pn_next <- pn + 1;
  let payload = frames_payload frames in
  let ack_eliciting = List.exists Frame.is_ack_eliciting frames in
  Hashtbl.replace t.wire (t.dir, pn) frames;
  if ack_eliciting then begin
    Hashtbl.replace t.sent
      pn
      { pn; payload; frames; sent_at = now t; ack_eliciting; acked = false; lost = false };
    t.inflight <- t.inflight + payload
  end;
  t.datagrams_sent <- t.datagrams_sent + 1;
  t.packets_sent <- t.packets_sent + 1;
  Packet.data ~flow:t.flow ~dir:t.dir ~seq:pn ~ack:0 ~payload ~header:t.config.Config.header_bytes
    ~rwnd:t.config.Config.rcv_wnd ()

let transmit_burst t ~release packets =
  if Array.length packets > 0 then begin
    let send () =
      match t.cpu with
      | None -> t.tx packets
      | Some (cpu, costs) ->
          let bytes = Array.fold_left (fun acc p -> acc + Packet.wire_size p) 0 packets in
          let cost = Cpu_costs.segment_cost costs ~packets:(Array.length packets) ~bytes in
          Cpu.submit cpu ~cost (fun () -> t.tx packets)
    in
    if release <= now t then send ()
    else ignore (Engine.schedule_at t.engine ~time:release send)
  end

let ack_frame t =
  (* Up to 8 most recent ranges, highest first. *)
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  Frame.Ack { ranges = take 8 t.received }

let cancel_timer t field =
  match field with
  | Some ev ->
      Engine.cancel t.engine ev;
      None
  | None -> None

let send_ack_now t =
  if t.received <> [] then begin
    t.ack_pending <- false;
    t.pkts_since_ack <- 0;
    t.ack_timer <- cancel_timer t t.ack_timer;
    let pkt = make_datagram t [ ack_frame t ] in
    transmit_burst t ~release:(now t) [| pkt |]
  end

(* Pull the next stream chunk that fits in [space] payload bytes; rtx
   chunks first, then new data, streams in id order. *)
let next_chunk t ~space =
  if space <= 8 then None
  else begin
    let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.streams_out []) in
    let rec try_streams = function
      | [] -> None
      | id :: rest -> (
          let s = Hashtbl.find t.streams_out id in
          match s.rtx with
          | chunk :: more ->
              t.rtx_chunks <- t.rtx_chunks + 1;
              if chunk.Frame.length + 8 <= space then begin
                s.rtx <- more;
                Some chunk
              end
              else begin
                (* Split the retransmission to fit the datagram. *)
                let take = space - 8 in
                let head = { chunk with Frame.length = take; fin = false } in
                let tail =
                  {
                    chunk with
                    Frame.offset = chunk.Frame.offset + take;
                    length = chunk.Frame.length - take;
                  }
                in
                s.rtx <- tail :: more;
                Some head
              end
          | [] ->
              if s.queued > 0 then begin
                let take = min s.queued (space - 8) in
                let fin = s.fin_pending && take = s.queued in
                let chunk =
                  { Frame.stream = id; offset = s.next_offset; length = take; fin }
                in
                s.next_offset <- s.next_offset + take;
                s.queued <- s.queued - take;
                if fin then begin
                  s.fin_sent <- true;
                  s.fin_pending <- false
                end;
                Some chunk
              end
              else if s.fin_pending && not s.fin_sent then begin
                (* Bare FIN. *)
                s.fin_sent <- true;
                s.fin_pending <- false;
                Some { Frame.stream = id; offset = s.next_offset; length = 0; fin = true }
              end
              else try_streams rest)
    in
    try_streams ids
  end

let has_data t =
  Hashtbl.fold
    (fun _ s acc -> acc || s.queued > 0 || s.rtx <> [] || (s.fin_pending && not s.fin_sent))
    t.streams_out false

let rec arm_pto t =
  t.pto_timer <- cancel_timer t t.pto_timer;
  t.pto_timer <- Some (Engine.schedule t.engine ~delay:(Rtt.rto t.rtt) (fun () -> handle_pto t))

and handle_pto t =
  t.pto_timer <- None;
  (* Probe timeout: declare the oldest unacked datagram lost and resend its
     stream data. *)
  let oldest =
    Hashtbl.fold
      (fun _ p acc ->
        if p.acked || p.lost then acc
        else match acc with None -> Some p | Some q -> if p.pn < q.pn then Some p else acc)
      t.sent None
  in
  match oldest with
  | None -> ()
  | Some p ->
      mark_lost t p;
      Rtt.backoff t.rtt;
      t.cc.Cc.on_loss ~now:(now t);
      arm_pto t;
      try_send t

and mark_lost t p =
  if not (p.lost || p.acked) then begin
    p.lost <- true;
    t.inflight <- max 0 (t.inflight - p.payload);
    List.iter
      (fun frame ->
        match frame with
        | Frame.Stream chunk when chunk.Frame.length > 0 || chunk.Frame.fin ->
            let s = stream_out t chunk.Frame.stream in
            s.rtx <- chunk :: s.rtx
        | Frame.Stream _ | Frame.Ack _ | Frame.Padding _ | Frame.Ping -> ())
      p.frames;
    Hashtbl.remove t.sent p.pn
  end

(* The QUIC transmit loop: GSO-burst construction with the Stob hook at the
   same decision point as TCP's segment commit. *)
and try_send t =
  let window = t.cc.Cc.cwnd () - t.inflight in
  if has_data t && window > 0 then begin
    let departure = Pacer.next_departure t.pacer ~now:(now t) in
    if departure > now t then begin
      if t.send_timer = None then
        t.send_timer <-
          Some
            (Engine.schedule_at t.engine ~time:departure (fun () ->
                 t.send_timer <- None;
                 try_send t))
    end
    else begin
      let pacing_rate = t.cc.Cc.pacing_rate () in
      let stack_gso = Config.tso_autosize t.config ~pacing_rate_bps:pacing_rate in
      let budget = min stack_gso window in
      let stack_decision =
        {
          Hooks.tso_bytes = max 1 budget;
          packet_payload = t.config.Config.mss;
          earliest_departure = departure;
        }
      in
      let proposed =
        t.hooks.Hooks.on_segment ~now:(now t) ~flow:t.flow ~phase:(t.cc.Cc.phase ())
          stack_decision
      in
      let decision = Hooks.clamp ~stack:stack_decision proposed in
      (* Build the burst. *)
      let packets = ref [] in
      let burst_payload = ref 0 in
      let continue = ref true in
      while !continue do
        let space = min decision.Hooks.packet_payload (decision.Hooks.tso_bytes - !burst_payload) in
        if space <= 8 then continue := false
        else begin
          let frames = ref [] in
          if t.ack_pending && !packets = [] then begin
            frames := [ ack_frame t ];
            t.ack_pending <- false;
            t.pkts_since_ack <- 0;
            t.ack_timer <- cancel_timer t t.ack_timer
          end;
          let space_left () = space - frames_payload !frames in
          let rec fill () =
            match next_chunk t ~space:(space_left ()) with
            | Some chunk ->
                frames := Frame.Stream chunk :: !frames;
                if space_left () > 8 then fill ()
            | None -> ()
          in
          fill ();
          let has_stream = List.exists (function Frame.Stream _ -> true | _ -> false) !frames in
          if not has_stream then continue := false
          else begin
            (* The client's first flight is padded to 1200 B (Initial
               anti-amplification). *)
            let frames =
              if t.role = Client && t.pn_next = 0 && frames_payload !frames < initial_min_payload
              then Frame.Padding (initial_min_payload - frames_payload !frames) :: !frames
              else !frames
            in
            let pkt = make_datagram t (List.rev frames) in
            burst_payload := !burst_payload + pkt.Packet.payload;
            packets := pkt :: !packets
          end
        end
      done;
      let packets = Array.of_list (List.rev !packets) in
      if Array.length packets > 0 then begin
        let release = decision.Hooks.earliest_departure in
        Pacer.commit t.pacer ~departure:release ~rate_bps:pacing_rate ~bytes:!burst_payload;
        transmit_burst t ~release packets;
        if t.pto_timer = None then arm_pto t;
        try_send t
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Application interface                                                *)

let send_stream t ~stream ?(fin = false) n =
  if n < 0 then invalid_arg "Quic.Endpoint.send_stream: negative byte count";
  let s = stream_out t stream in
  if s.fin_sent || s.fin_pending then invalid_arg "Quic.Endpoint.send_stream: stream closed";
  s.queued <- s.queued + n;
  if fin then s.fin_pending <- true;
  try_send t

let send_padding_datagram t n =
  if n <= 0 then invalid_arg "Quic.Endpoint.send_padding_datagram: byte count must be positive";
  let pkt = make_datagram t [ Frame.Padding (min n t.config.Config.mss) ] in
  transmit_burst t ~release:(now t) [| pkt |]

let connect t ?(crypto_bytes = 350) ~flight_bytes:_ () =
  t.role <- Client;
  send_stream t ~stream:crypto_stream ~fin:true crypto_bytes

let listen t ~flight_bytes =
  t.role <- Server;
  t.flight_bytes <- flight_bytes

(* ------------------------------------------------------------------ *)
(* Receive path                                                         *)

let insert_range ranges pn =
  (* Inclusive [lo, hi] ranges, kept sorted descending by lo. *)
  let rec go acc = function
    | [] -> List.rev ((pn, pn) :: acc)
    | (lo, hi) :: rest ->
        if pn >= lo - 1 && pn <= hi + 1 then List.rev_append acc ((min lo pn, max hi pn) :: rest)
        else if pn > hi then List.rev_append acc ((pn, pn) :: (lo, hi) :: rest)
        else go ((lo, hi) :: acc) rest
  in
  go [] ranges

let insert_interval intervals lo hi =
  let rec go acc lo hi = function
    | [] -> List.rev ((lo, hi) :: acc)
    | (l, h) :: rest when h < lo -> go ((l, h) :: acc) lo hi rest
    | (l, h) :: rest when l > hi -> List.rev_append acc ((lo, hi) :: (l, h) :: rest)
    | (l, h) :: rest -> go acc (min l lo) (max h hi) rest
  in
  go [] lo hi intervals

let handshake_progress t ~stream =
  match (t.role, stream) with
  | Server, s when s = crypto_stream ->
      (* Client Initial complete: answer with our flight. *)
      if not t.flight_sent then begin
        t.flight_sent <- true;
        send_stream t ~stream:crypto_stream ~fin:true (max 1 t.flight_bytes)
      end
  | Client, s when s = crypto_stream ->
      (* Server flight complete: handshake confirmed; send finished. *)
      if not t.established then begin
        t.established <- true;
        send_stream t ~stream:finished_stream ~fin:true 64;
        t.on_established ()
      end
  | Server, s when s = finished_stream ->
      if not t.established then begin
        t.established <- true;
        t.on_established ()
      end
  | _ -> ()

let deliver_stream t id =
  let s = stream_in t id in
  let rec drain () =
    match s.intervals with
    | (lo, hi) :: rest when lo <= s.delivered ->
        let fresh = max 0 (hi - s.delivered) in
        s.intervals <- rest;
        s.delivered <- max s.delivered hi;
        if fresh > 0 && id > finished_stream then t.on_stream ~stream:id fresh;
        drain ()
    | _ -> ()
  in
  drain ();
  match s.fin_offset with
  | Some fin_at when s.delivered >= fin_at && not s.fin_delivered ->
      s.fin_delivered <- true;
      if id > finished_stream then t.on_stream_fin ~stream:id;
      handshake_progress t ~stream:id
  | _ -> ()

let process_stream_chunk t (chunk : Frame.stream_chunk) =
  let s = stream_in t chunk.Frame.stream in
  if chunk.Frame.length > 0 then
    s.intervals <-
      insert_interval s.intervals chunk.Frame.offset (chunk.Frame.offset + chunk.Frame.length);
  if chunk.Frame.fin then s.fin_offset <- Some (chunk.Frame.offset + chunk.Frame.length);
  deliver_stream t chunk.Frame.stream

let process_ack t ranges =
  let in_ranges pn = List.exists (fun (lo, hi) -> pn >= lo && pn <= hi) ranges in
  let newly =
    Hashtbl.fold
      (fun _ p acc -> if (not p.acked) && in_ranges p.pn then p :: acc else acc)
      t.sent []
  in
  if newly <> [] then begin
    let largest = List.fold_left (fun acc p -> max acc p.pn) (-1) newly in
    let total = List.fold_left (fun acc p -> acc + p.payload) 0 newly in
    List.iter
      (fun p ->
        p.acked <- true;
        t.inflight <- max 0 (t.inflight - p.payload);
        Hashtbl.remove t.sent p.pn;
        Hashtbl.remove t.wire (t.dir, p.pn))
      newly;
    t.largest_acked <- max t.largest_acked largest;
    Rtt.reset_backoff t.rtt;
    (* RTT sample from the largest newly-acked packet. *)
    let sample =
      List.fold_left
        (fun acc p -> if p.pn = largest then Some (now t -. p.sent_at) else acc)
        None newly
    in
    (match sample with Some s -> Rtt.observe t.rtt s | None -> ());
    let rtt_for_cc =
      match sample with Some s -> s | None -> Option.value ~default:0.1 (Rtt.srtt t.rtt)
    in
    t.cc.Cc.on_ack ~now:(now t) ~acked:total ~rtt:rtt_for_cc ~inflight:t.inflight ~limited:false;
    (* Packet-number threshold loss detection. *)
    let threshold = t.largest_acked - loss_threshold in
    let lost =
      Hashtbl.fold
        (fun _ p acc -> if (not p.acked) && p.pn <= threshold then p :: acc else acc)
        t.sent []
    in
    if lost <> [] then begin
      List.iter (mark_lost t) lost;
      t.cc.Cc.on_loss ~now:(now t)
    end;
    if t.inflight > 0 then arm_pto t
    else t.pto_timer <- cancel_timer t t.pto_timer;
    try_send t
  end

let receive t (p : Packet.t) =
  match Hashtbl.find_opt t.wire (p.Packet.dir, p.Packet.seq) with
  | None -> ()  (* metadata already collected (duplicate) or padding-only cleanup *)
  | Some frames ->
      t.received <- insert_range t.received p.Packet.seq;
      let ack_eliciting = List.exists Frame.is_ack_eliciting frames in
      List.iter
        (fun frame ->
          match frame with
          | Frame.Stream chunk -> process_stream_chunk t chunk
          | Frame.Ack { ranges } -> process_ack t ranges
          | Frame.Padding _ | Frame.Ping -> ())
        frames;
      if ack_eliciting then begin
        t.pkts_since_ack <- t.pkts_since_ack + 1;
        if t.pkts_since_ack >= t.config.Config.ack_every then
          if has_data t then begin
            (* Piggyback the ACK on outgoing data. *)
            t.ack_pending <- true;
            try_send t;
            if t.ack_pending then send_ack_now t
          end
          else send_ack_now t
        else begin
          t.ack_pending <- true;
          if t.ack_timer = None then
            t.ack_timer <-
              Some
                (Engine.schedule t.engine ~delay:max_ack_delay (fun () ->
                     t.ack_timer <- None;
                     if t.ack_pending then send_ack_now t))
        end
      end
