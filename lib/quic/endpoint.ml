module Packet = Stob_net.Packet
module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Config = Stob_tcp.Config
module Cc = Stob_tcp.Cc
module Rtt = Stob_tcp.Rtt
module Pacer = Stob_tcp.Pacer
module Hooks = Stob_tcp.Hooks
module Cpu_costs = Stob_tcp.Cpu_costs

let default_config =
  {
    Config.default with
    Config.mss = 1350;  (* datagram payload budget *)
    header_bytes = 43;  (* IP + UDP + QUIC short header *)
    tso_max_bytes = 65535;  (* UDP GSO burst *)
    tso_min_bytes = 2 * 1350;
  }

let crypto_stream = 0
let finished_stream = 2
let loss_threshold = 3
let max_ack_delay = 0.025
let initial_min_payload = 1200

(* RFC 9002 §6.1.2: time-threshold factor 9/8 and 1 ms timer granularity. *)
let time_threshold_num = 9.0
let time_threshold_den = 8.0
let granularity = 0.001

(* RFC 9002 §7.6.1: kPersistentCongestionThreshold. *)
let persistent_congestion_threshold = 3.0

type role = Client | Server

type sent_packet = {
  pn : int;
  payload : int;
  frames : Frame.t list;
  sent_at : float;
  ack_eliciting : bool;
  mutable acked : bool;
  mutable lost : bool;
}

type stream_out = {
  id : int;
  mutable next_offset : int;
  mutable queued : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable rtx : Frame.stream_chunk list;
}

type stream_in = {
  mutable intervals : (int * int) list;  (* sorted disjoint [lo, hi) *)
  mutable delivered : int;
  mutable fin_offset : int option;
  mutable fin_delivered : bool;
}

type t = {
  engine : Engine.t;
  config : Config.t;
  cc : Cc.t;
  rtt : Rtt.t;
  pacer : Pacer.t;
  flow : int;
  dir : Packet.direction;
  wire : (Packet.direction * int, Frame.t list) Hashtbl.t;
  cpu : (Cpu.t * Cpu_costs.t) option;
  mutable hooks : Hooks.t;
  tx : Packet.t array -> unit;
  mutable role : role;
  mutable established : bool;
  mutable closed : bool;
  mutable close_reason : string option;
  mutable flight_bytes : int;  (* server: size of its handshake flight *)
  mutable flight_sent : bool;
  (* --- sender --- *)
  mutable pn_next : int;
  sent : (int, sent_packet) Hashtbl.t;
  mutable largest_acked : int;
  mutable inflight : int;
  streams_out : (int, stream_out) Hashtbl.t;
  mutable send_timer : Engine.event_id option;
  mutable pto_timer : Engine.event_id option;
  mutable loss_timer : Engine.event_id option;  (* time-threshold reordering timer *)
  mutable pto_backoff : float;  (* doubles per PTO, resets on forward progress *)
  mutable latest_rtt : float;
  mutable rate_limited_mark : int;
      (* Highest packet number sent under starvation — amplification-blocked,
         app-limited, or a forced PTO probe.  Its ack must reach the CCA
         flagged [limited] (the QUIC analog of TCP's
         tcp_rate_check_app_limited rule + persist-probe taint): a delivery
         sample measured across a credit- or window-starved stall reads as a
         few bits per second, and admitting it collapses BBR's pacing rate —
         the handshake flight then paces out slower than the idle timeout. *)
  (* Persistent-congestion span: sent times of ack-eliciting packets
     declared lost since the last forward progress (RFC 9002 §7.6). *)
  mutable pc_oldest : float;
  mutable pc_newest : float;
  (* --- lifecycle --- *)
  mutable last_activity : float;
  mutable ae_sent_since_rx : bool;
      (* An ack-eliciting packet went out since the last receive: further
         sends (PTO probes included) must NOT refresh the idle clock, or a
         dead peer keeps the connection alive forever (RFC 9000 §10.1). *)
  mutable idle_timer : Engine.event_id option;
  (* --- anti-amplification (server, before handshake confirmation) --- *)
  mutable bytes_received : int;  (* wire bytes from the peer *)
  mutable bytes_sent : int;  (* wire bytes sent *)
  mutable amp_blocked : bool;  (* sending stalled on amplification credit *)
  (* --- receiver --- *)
  streams_in : (int, stream_in) Hashtbl.t;
  mutable received : (int * int) list;  (* pn ranges [lo, hi] inclusive *)
  mutable ack_pending : bool;
  mutable pkts_since_ack : int;
  mutable ack_timer : Engine.event_id option;
  (* --- callbacks --- *)
  mutable on_established : unit -> unit;
  mutable on_stream : stream:int -> int -> unit;
  mutable on_stream_fin : stream:int -> unit;
  (* --- stats --- *)
  mutable packets_sent : int;
  mutable datagrams_sent : int;
  mutable rtx_chunks : int;
  mutable rtx_datagrams : int;
  mutable pto_count : int;
  mutable time_loss_detections : int;
  mutable persistent_congestions : int;
}

let create ~engine ~config ~cc ~flow ~dir ~wire ?cpu ?(hooks = Hooks.default) ~tx () =
  {
    engine;
    config;
    cc;
    rtt = Rtt.create config;
    pacer = Pacer.create ();
    flow;
    dir;
    wire;
    cpu;
    hooks;
    tx;
    role = Server;
    established = false;
    closed = false;
    close_reason = None;
    flight_bytes = 0;
    flight_sent = false;
    pn_next = 0;
    sent = Hashtbl.create 256;
    largest_acked = -1;
    inflight = 0;
    streams_out = Hashtbl.create 16;
    send_timer = None;
    pto_timer = None;
    loss_timer = None;
    pto_backoff = 1.0;
    latest_rtt = 0.0;
    rate_limited_mark = -1;
    pc_oldest = infinity;
    pc_newest = neg_infinity;
    last_activity = Engine.now engine;
    ae_sent_since_rx = false;
    idle_timer = None;
    bytes_received = 0;
    bytes_sent = 0;
    amp_blocked = false;
    streams_in = Hashtbl.create 16;
    received = [];
    ack_pending = false;
    pkts_since_ack = 0;
    ack_timer = None;
    on_established = (fun () -> ());
    on_stream = (fun ~stream:_ _ -> ());
    on_stream_fin = (fun ~stream:_ -> ());
    packets_sent = 0;
    datagrams_sent = 0;
    rtx_chunks = 0;
    rtx_datagrams = 0;
    pto_count = 0;
    time_loss_detections = 0;
    persistent_congestions = 0;
  }

let established t = t.established
let closed t = t.closed
let close_reason t = t.close_reason
let set_on_established t f = t.on_established <- f
let set_on_stream t f = t.on_stream <- f
let set_on_stream_fin t f = t.on_stream_fin <- f
let set_hooks t h = t.hooks <- h
let hooks t = t.hooks
let cc t = t.cc
let config t = t.config
let inflight t = t.inflight
let packets_sent t = t.packets_sent
let datagrams_sent t = t.datagrams_sent
let retransmitted_chunks t = t.rtx_chunks
let rtx_datagrams t = t.rtx_datagrams
let pto_events t = t.pto_count
let time_loss_detections t = t.time_loss_detections
let persistent_congestions t = t.persistent_congestions
let srtt t = Rtt.srtt t.rtt
let now t = Engine.now t.engine

(* Anti-amplification credit: until the handshake is confirmed, a server
   may send at most [amp_factor] times what it has received from the
   (unvalidated) client address.  [max_int] once the limit no longer
   applies. *)
let amp_credit t =
  if t.role = Server && (not t.established) && t.config.Config.amp_factor > 0 then
    (t.config.Config.amp_factor * t.bytes_received) - t.bytes_sent
  else max_int

let stream_out t id =
  match Hashtbl.find_opt t.streams_out id with
  | Some s -> s
  | None ->
      let s = { id; next_offset = 0; queued = 0; fin_pending = false; fin_sent = false; rtx = [] } in
      Hashtbl.add t.streams_out id s;
      s

let stream_in t id =
  match Hashtbl.find_opt t.streams_in id with
  | Some s -> s
  | None ->
      let s = { intervals = []; delivered = 0; fin_offset = None; fin_delivered = false } in
      Hashtbl.add t.streams_in id s;
      s

(* ------------------------------------------------------------------ *)
(* Timers and lifecycle                                                 *)

let cancel_timer t field =
  match field with
  | Some ev ->
      Engine.cancel t.engine ev;
      None
  | None -> None

(* Cancel every pending timer.  Mirrors the TCP close-time quiesce fix: a
   PTO, delayed-ACK, loss-detection, pacer or idle timer left armed on a
   closed connection fires into dead state and keeps the engine
   artificially busy — at soak scale, forever. *)
let quiesce t =
  t.send_timer <- cancel_timer t t.send_timer;
  t.pto_timer <- cancel_timer t t.pto_timer;
  t.loss_timer <- cancel_timer t t.loss_timer;
  t.ack_timer <- cancel_timer t t.ack_timer;
  t.idle_timer <- cancel_timer t t.idle_timer

let close_internal t ~reason =
  if not t.closed then begin
    t.closed <- true;
    t.close_reason <- Some reason;
    quiesce t
  end

let close t = close_internal t ~reason:"application"

(* Idle timeout (RFC 9000 §10.1).  One timer armed at
   [last_activity + idle_timeout]; activity between firings just moves the
   deadline, so the timer re-arms instead of being cancelled per packet. *)
let rec arm_idle t =
  if t.config.Config.idle_timeout > 0.0 && not t.closed then begin
    t.idle_timer <- cancel_timer t t.idle_timer;
    let deadline = t.last_activity +. t.config.Config.idle_timeout in
    t.idle_timer <-
      Some
        (Engine.schedule_at t.engine ~time:deadline (fun () ->
             t.idle_timer <- None;
             if now t -. t.last_activity >= t.config.Config.idle_timeout -. 1e-9 then
               close_internal t ~reason:"idle-timeout"
             else arm_idle t))
  end

(* ------------------------------------------------------------------ *)
(* Transmission                                                         *)

let frames_payload frames = List.fold_left (fun acc f -> acc + Frame.wire_bytes f) 0 frames

(* Record one datagram and build its wire packet.  [rtx] marks datagrams
   carrying at least one retransmitted stream chunk so the capture's
   retransmission count and the endpoint's agree (the TCP rtx oracle). *)
let make_datagram t ?(rtx = false) frames =
  let pn = t.pn_next in
  t.pn_next <- pn + 1;
  let payload = frames_payload frames in
  let ack_eliciting = List.exists Frame.is_ack_eliciting frames in
  Hashtbl.replace t.wire (t.dir, pn) frames;
  if ack_eliciting then begin
    Hashtbl.replace t.sent
      pn
      { pn; payload; frames; sent_at = now t; ack_eliciting; acked = false; lost = false };
    t.inflight <- t.inflight + payload;
    if not t.ae_sent_since_rx then begin
      t.ae_sent_since_rx <- true;
      t.last_activity <- now t
    end
  end;
  t.bytes_sent <- t.bytes_sent + payload + t.config.Config.header_bytes;
  t.datagrams_sent <- t.datagrams_sent + 1;
  t.packets_sent <- t.packets_sent + 1;
  if rtx then t.rtx_datagrams <- t.rtx_datagrams + 1;
  Packet.data ~flow:t.flow ~dir:t.dir ~seq:pn ~ack:0 ~payload ~header:t.config.Config.header_bytes
    ~rtx ~rwnd:t.config.Config.rcv_wnd ()

let transmit_burst t ~release packets =
  if Array.length packets > 0 then begin
    let send () =
      match t.cpu with
      | None -> t.tx packets
      | Some (cpu, costs) ->
          let bytes = Array.fold_left (fun acc p -> acc + Packet.wire_size p) 0 packets in
          let cost = Cpu_costs.segment_cost costs ~packets:(Array.length packets) ~bytes in
          Cpu.submit cpu ~cost (fun () -> t.tx packets)
    in
    if release <= now t then send ()
    else ignore (Engine.schedule_at t.engine ~time:release send)
  end

let ack_frame t =
  (* Up to 8 most recent ranges, highest first. *)
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  Frame.Ack { ranges = take 8 t.received }

let send_ack_now t =
  if t.received <> [] && not t.closed then begin
    let wire = Frame.wire_bytes (ack_frame t) + t.config.Config.header_bytes in
    if amp_credit t < wire then
      (* Not even an ACK fits under the amplification limit: leave the ACK
         pending; the unblock-on-receive path flushes it. *)
      t.amp_blocked <- true
    else begin
      t.ack_pending <- false;
      t.pkts_since_ack <- 0;
      t.ack_timer <- cancel_timer t t.ack_timer;
      let pkt = make_datagram t [ ack_frame t ] in
      transmit_burst t ~release:(now t) [| pkt |]
    end
  end

(* Pull the next stream chunk that fits in [space] payload bytes; rtx
   chunks first, then new data, streams in id order.  Returns the chunk
   and whether it is a retransmission. *)
let next_chunk t ~space =
  if space <= 8 then None
  else begin
    let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.streams_out []) in
    let rec try_streams = function
      | [] -> None
      | id :: rest -> (
          let s = Hashtbl.find t.streams_out id in
          match s.rtx with
          | chunk :: more ->
              t.rtx_chunks <- t.rtx_chunks + 1;
              if chunk.Frame.length + 8 <= space then begin
                s.rtx <- more;
                Some (chunk, true)
              end
              else begin
                (* Split the retransmission to fit the datagram. *)
                let take = space - 8 in
                let head = { chunk with Frame.length = take; fin = false } in
                let tail =
                  {
                    chunk with
                    Frame.offset = chunk.Frame.offset + take;
                    length = chunk.Frame.length - take;
                  }
                in
                s.rtx <- tail :: more;
                Some (head, true)
              end
          | [] ->
              if s.queued > 0 then begin
                let take = min s.queued (space - 8) in
                let fin = s.fin_pending && take = s.queued in
                let chunk =
                  { Frame.stream = id; offset = s.next_offset; length = take; fin }
                in
                s.next_offset <- s.next_offset + take;
                s.queued <- s.queued - take;
                if fin then begin
                  s.fin_sent <- true;
                  s.fin_pending <- false
                end;
                Some (chunk, false)
              end
              else if s.fin_pending && not s.fin_sent then begin
                (* Bare FIN. *)
                s.fin_sent <- true;
                s.fin_pending <- false;
                Some ({ Frame.stream = id; offset = s.next_offset; length = 0; fin = true }, false)
              end
              else try_streams rest)
    in
    try_streams ids
  end

let has_data t =
  Hashtbl.fold
    (fun _ s acc -> acc || s.queued > 0 || s.rtx <> [] || (s.fin_pending && not s.fin_sent))
    t.streams_out false

(* RFC 9002 §6.2: PTO = srtt + max(4*rttvar, granularity) + max_ack_delay,
   scaled by the backoff multiplier and capped by [Config.pto_max]. *)
let pto_interval t =
  let base =
    match Rtt.srtt t.rtt with
    | None -> t.config.Config.rto_init
    | Some srtt ->
        let rttvar = Option.value ~default:(srtt /. 2.0) (Rtt.rttvar t.rtt) in
        srtt +. Float.max (4.0 *. rttvar) granularity +. max_ack_delay
  in
  Float.min t.config.Config.pto_max (base *. t.pto_backoff)

(* Persistent congestion (RFC 9002 §7.6): when the sent times of
   ack-eliciting packets declared lost since the last forward progress
   span more than kPersistentCongestionThreshold PTOs, the path was dead
   for that long — collapse the congestion window to its minimum, exactly
   as an RTO does, instead of limping on a stale window. *)
let check_persistent_congestion t =
  match Rtt.srtt t.rtt with
  | None -> ()
  | Some srtt ->
      let rttvar = Option.value ~default:(srtt /. 2.0) (Rtt.rttvar t.rtt) in
      let duration =
        persistent_congestion_threshold
        *. (srtt +. Float.max (4.0 *. rttvar) granularity +. max_ack_delay)
      in
      if t.pc_newest -. t.pc_oldest >= duration then begin
        t.persistent_congestions <- t.persistent_congestions + 1;
        t.pc_oldest <- infinity;
        t.pc_newest <- neg_infinity;
        t.cc.Cc.on_rto ~now:(now t)
      end

(* RFC 9002 §7.5: probe packets are exempt from the congestion window.  A
   long outage leaves inflight far above a collapsed cwnd, so the regular
   [try_send] (window-gated) transmits nothing; if the PTO could not force
   a datagram out anyway, recovery would have to wait for cwnd to drain
   one marked-lost packet per doubled backoff — a race the 30 s idle
   timeout wins, wedging the connection.  One MSS of retransmission data
   (or a bare PING) per PTO, still amplification-gated. *)
let send_probe t =
  if (not t.closed) && amp_credit t > t.config.Config.header_bytes + 9 then begin
    let space = t.config.Config.mss in
    let frames = ref [] in
    let any_rtx = ref false in
    let space_left () = space - frames_payload !frames in
    let rec fill () =
      match next_chunk t ~space:(space_left ()) with
      | Some (chunk, rtx) ->
          frames := Frame.Stream chunk :: !frames;
          if rtx then any_rtx := true;
          if space_left () > 8 then fill ()
      | None -> ()
    in
    fill ();
    if !frames = [] then frames := [ Frame.Ping ];
    let pkt = make_datagram t ~rtx:!any_rtx (List.rev !frames) in
    transmit_burst t ~release:(now t) [| pkt |];
    (* Sent past a starved window: taint through the probe. *)
    t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1)
  end

let rec arm_pto t =
  if not t.closed then begin
    t.pto_timer <- cancel_timer t t.pto_timer;
    t.pto_timer <- Some (Engine.schedule t.engine ~delay:(pto_interval t) (fun () -> handle_pto t))
  end

and handle_pto t =
  t.pto_timer <- None;
  if not t.closed then begin
    t.pto_count <- t.pto_count + 1;
    t.pto_backoff <- t.pto_backoff *. 2.0;
    (* Probe timeout: declare the oldest unacked datagram lost and resend
       its stream data. *)
    let oldest =
      Hashtbl.fold
        (fun _ p acc ->
          if p.acked || p.lost then acc
          else match acc with None -> Some p | Some q -> if p.pn < q.pn then Some p else acc)
        t.sent None
    in
    match oldest with
    | None ->
        (* RFC 9002 §6.2.2.1 anti-deadlock probe: until the handshake is
           confirmed a client keeps probing even with nothing ack-eliciting
           in flight.  Otherwise a single lost (non-ack-eliciting) ACK
           leaves an amplification-blocked server unreachable forever: the
           server cannot spend credit it does not have, and the client has
           no timer left to give it any.  The probe is a padded PING, so it
           also re-credits the server by a full Initial's worth. *)
        if t.role = Client && not t.established then begin
          let probe =
            [ Frame.Ping; Frame.Padding (initial_min_payload - Frame.wire_bytes Frame.Ping) ]
          in
          let pkt = make_datagram t probe in
          transmit_burst t ~release:(now t) [| pkt |];
          t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1);
          arm_pto t
        end
    | Some p ->
        mark_lost t p;
        check_persistent_congestion t;
        t.cc.Cc.on_loss ~now:(now t);
        arm_pto t;
        let before = t.datagrams_sent in
        try_send t;
        (* Window-blocked (inflight above the collapsed cwnd): force the
           probe out anyway — see [send_probe]. *)
        if t.datagrams_sent = before then send_probe t;
        (* A probe timeout means delivery stalled: whatever just went out —
           a forced probe, or a sliver [try_send] squeezed through the
           window the loss declaration reopened — will be acked across the
           stall, and its delivery-rate sample measures the outage, not the
           path.  A 13-byte PTO retransmission acked a quarter-second later
           reads as a few hundred bits per second; admitted, it collapses
           BBR's pacing rate and the recovery burst is committed with more
           pacing debt than the idle timeout allows. *)
        t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1)
  end

and mark_lost t p =
  if not (p.lost || p.acked) then begin
    p.lost <- true;
    t.inflight <- max 0 (t.inflight - p.payload);
    if p.ack_eliciting then begin
      t.pc_oldest <- Float.min t.pc_oldest p.sent_at;
      t.pc_newest <- Float.max t.pc_newest p.sent_at
    end;
    List.iter
      (fun frame ->
        match frame with
        | Frame.Stream chunk when chunk.Frame.length > 0 || chunk.Frame.fin ->
            let s = stream_out t chunk.Frame.stream in
            s.rtx <- chunk :: s.rtx
        | Frame.Stream _ | Frame.Ack _ | Frame.Padding _ | Frame.Ping -> ())
      p.frames;
    Hashtbl.remove t.sent p.pn
  end

(* RFC 9002 §6.1: declare losses by packet threshold (3 newer packets
   acknowledged) or time threshold (sent at least 9/8 RTT before the
   newest acknowledgement arrived).  Packets past the packet threshold are
   lost immediately; younger unacked packets below [largest_acked] arm the
   loss timer for the moment their time threshold expires, so a hole that
   only one or two later packets cover (where the packet threshold never
   fires) is still repaired in about an RTT instead of a full PTO. *)
and detect_losses t =
  t.loss_timer <- cancel_timer t t.loss_timer;
  if t.largest_acked >= 0 && not t.closed then begin
    let threshold =
      match Rtt.srtt t.rtt with
      | None -> None
      | Some srtt ->
          Some
            (Float.max (time_threshold_num /. time_threshold_den *. Float.max srtt t.latest_rtt)
               granularity)
    in
    let now_ = now t in
    let lost = ref [] and next_fire = ref infinity in
    Hashtbl.iter
      (fun _ p ->
        if (not p.acked) && (not p.lost) && p.pn < t.largest_acked then
          if p.pn <= t.largest_acked - loss_threshold then lost := p :: !lost
          else
            match threshold with
            | Some th ->
                (* One consistent deadline expression for both the test and
                   the timer, or float rounding lets the timer fire at an
                   instant where the packet is still "not yet lost" and
                   re-arm at the same instant forever. *)
                let deadline = p.sent_at +. th in
                if deadline <= now_ then begin
                  t.time_loss_detections <- t.time_loss_detections + 1;
                  lost := p :: !lost
                end
                else next_fire := Float.min !next_fire deadline
            | None -> ())
      t.sent;
    if !lost <> [] then begin
      List.iter (mark_lost t) !lost;
      check_persistent_congestion t;
      t.cc.Cc.on_loss ~now:now_
    end;
    if !next_fire < infinity then
      t.loss_timer <-
        Some
          (Engine.schedule_at t.engine ~time:!next_fire (fun () ->
               t.loss_timer <- None;
               detect_losses t;
               try_send t))
  end

(* The QUIC transmit loop: GSO-burst construction with the Stob hook at the
   same decision point as TCP's segment commit.  The burst is additionally
   bounded by the anti-amplification credit; running out of credit parks
   the sender ([amp_blocked]) until the next receive. *)
and try_send t =
  let window = t.cc.Cc.cwnd () - t.inflight in
  (* The congestion window has room but the application is starving the
     sender: everything outstanding will be acked under starvation and must
     not be read as a path-bandwidth measurement. *)
  if (not t.closed) && window > 0 && not (has_data t) then
    t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1);
  if (not t.closed) && has_data t && window > 0 then begin
    let credit = amp_credit t in
    if credit <= t.config.Config.header_bytes + 9 then begin
      t.amp_blocked <- true;
      (* Credit-starved: acks arriving across the stall are not a rate. *)
      t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1)
    end
    else begin
      let departure = Pacer.next_departure t.pacer ~now:(now t) in
      if departure > now t then begin
        if t.send_timer = None then
          t.send_timer <-
            Some
              (Engine.schedule_at t.engine ~time:departure (fun () ->
                   t.send_timer <- None;
                   try_send t))
      end
      else begin
        let pacing_rate = t.cc.Cc.pacing_rate () in
        let stack_gso = Config.tso_autosize t.config ~pacing_rate_bps:pacing_rate in
        let budget = min stack_gso window in
        let stack_decision =
          {
            Hooks.tso_bytes = max 1 budget;
            packet_payload = t.config.Config.mss;
            earliest_departure = departure;
          }
        in
        let proposed =
          t.hooks.Hooks.on_segment ~now:(now t) ~flow:t.flow ~phase:(t.cc.Cc.phase ())
            stack_decision
        in
        let decision = Hooks.clamp ~stack:stack_decision proposed in
        (* Build the burst. *)
        let packets = ref [] in
        let burst_payload = ref 0 in
        let burst_wire = ref 0 in
        let continue = ref true in
        while !continue do
          let space =
            min decision.Hooks.packet_payload (decision.Hooks.tso_bytes - !burst_payload)
          in
          (* Amplification credit counts wire bytes, headers included. *)
          let space = min space (credit - !burst_wire - t.config.Config.header_bytes) in
          if space <= 8 then begin
            if !packets = [] && credit - !burst_wire <= t.config.Config.header_bytes + 9 then begin
              t.amp_blocked <- true;
              t.rate_limited_mark <- max t.rate_limited_mark (t.pn_next - 1)
            end;
            continue := false
          end
          else begin
            let frames = ref [] in
            let any_rtx = ref false in
            if t.ack_pending && !packets = [] then begin
              frames := [ ack_frame t ];
              t.ack_pending <- false;
              t.pkts_since_ack <- 0;
              t.ack_timer <- cancel_timer t t.ack_timer
            end;
            let space_left () = space - frames_payload !frames in
            let rec fill () =
              match next_chunk t ~space:(space_left ()) with
              | Some (chunk, rtx) ->
                  frames := Frame.Stream chunk :: !frames;
                  if rtx then any_rtx := true;
                  if space_left () > 8 then fill ()
              | None -> ()
            in
            fill ();
            let has_stream = List.exists (function Frame.Stream _ -> true | _ -> false) !frames in
            if not has_stream then begin
              (* No stream data fit.  If an ACK was folded in above, emit it
                 alone rather than silently dropping acknowledgement state. *)
              if !frames <> [] then begin
                let pkt = make_datagram t (List.rev !frames) in
                burst_payload := !burst_payload + pkt.Packet.payload;
                burst_wire := !burst_wire + Packet.wire_size pkt;
                packets := pkt :: !packets
              end;
              continue := false
            end
            else begin
              (* Client flights before the handshake confirms are padded to
                 1200 B: the Initial (and any retransmission of it) must
                 seed the server's anti-amplification credit. *)
              let frames =
                if
                  t.role = Client && (not t.established)
                  && frames_payload !frames < initial_min_payload
                then Frame.Padding (initial_min_payload - frames_payload !frames) :: !frames
                else !frames
              in
              let pkt = make_datagram t ~rtx:!any_rtx (List.rev frames) in
              burst_payload := !burst_payload + pkt.Packet.payload;
              burst_wire := !burst_wire + Packet.wire_size pkt;
              packets := pkt :: !packets
            end
          end
        done;
        let packets = Array.of_list (List.rev !packets) in
        if Array.length packets > 0 then begin
          let release = decision.Hooks.earliest_departure in
          Pacer.commit t.pacer ~departure:release ~rate_bps:pacing_rate ~bytes:!burst_payload;
          transmit_burst t ~release packets;
          if t.pto_timer = None then arm_pto t;
          try_send t
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Application interface                                                *)

let send_stream t ~stream ?(fin = false) n =
  if n < 0 then invalid_arg "Quic.Endpoint.send_stream: negative byte count";
  if not t.closed then begin
    let s = stream_out t stream in
    if s.fin_sent || s.fin_pending then invalid_arg "Quic.Endpoint.send_stream: stream closed";
    s.queued <- s.queued + n;
    if fin then s.fin_pending <- true;
    try_send t
  end

let send_padding_datagram t n =
  if n <= 0 then invalid_arg "Quic.Endpoint.send_padding_datagram: byte count must be positive";
  if not t.closed then begin
    let pkt = make_datagram t [ Frame.Padding (min n t.config.Config.mss) ] in
    transmit_burst t ~release:(now t) [| pkt |]
  end

let connect t ?(crypto_bytes = 350) ~flight_bytes:_ () =
  t.role <- Client;
  t.last_activity <- now t;
  arm_idle t;
  send_stream t ~stream:crypto_stream ~fin:true crypto_bytes

let listen t ~flight_bytes =
  t.role <- Server;
  t.flight_bytes <- flight_bytes;
  t.last_activity <- now t;
  arm_idle t

(* ------------------------------------------------------------------ *)
(* Receive path                                                         *)

let insert_range ranges pn =
  (* Inclusive [lo, hi] ranges, kept sorted descending by lo. *)
  let rec go acc = function
    | [] -> List.rev ((pn, pn) :: acc)
    | (lo, hi) :: rest ->
        if pn >= lo - 1 && pn <= hi + 1 then List.rev_append acc ((min lo pn, max hi pn) :: rest)
        else if pn > hi then List.rev_append acc ((pn, pn) :: (lo, hi) :: rest)
        else go ((lo, hi) :: acc) rest
  in
  go [] ranges

let insert_interval intervals lo hi =
  let rec go acc lo hi = function
    | [] -> List.rev ((lo, hi) :: acc)
    | (l, h) :: rest when h < lo -> go ((l, h) :: acc) lo hi rest
    | (l, h) :: rest when l > hi -> List.rev_append acc ((lo, hi) :: (l, h) :: rest)
    | (l, h) :: rest -> go acc (min l lo) (max h hi) rest
  in
  go [] lo hi intervals

let handshake_progress t ~stream =
  match (t.role, stream) with
  | Server, s when s = crypto_stream ->
      (* Client Initial complete: answer with our flight. *)
      if not t.flight_sent then begin
        t.flight_sent <- true;
        send_stream t ~stream:crypto_stream ~fin:true (max 1 t.flight_bytes)
      end
  | Client, s when s = crypto_stream ->
      (* Server flight complete: handshake confirmed; send finished. *)
      if not t.established then begin
        t.established <- true;
        send_stream t ~stream:finished_stream ~fin:true 64;
        t.on_established ()
      end
  | Server, s when s = finished_stream ->
      if not t.established then begin
        t.established <- true;
        t.on_established ();
        (* Handshake confirmed: the amplification limit no longer applies —
           flush anything it was holding back. *)
        if t.amp_blocked then begin
          t.amp_blocked <- false;
          try_send t
        end
      end
  | _ -> ()

let deliver_stream t id =
  let s = stream_in t id in
  let rec drain () =
    match s.intervals with
    | (lo, hi) :: rest when lo <= s.delivered ->
        let fresh = max 0 (hi - s.delivered) in
        s.intervals <- rest;
        s.delivered <- max s.delivered hi;
        if fresh > 0 && id > finished_stream then t.on_stream ~stream:id fresh;
        drain ()
    | _ -> ()
  in
  drain ();
  match s.fin_offset with
  | Some fin_at when s.delivered >= fin_at && not s.fin_delivered ->
      s.fin_delivered <- true;
      if id > finished_stream then t.on_stream_fin ~stream:id;
      handshake_progress t ~stream:id
  | _ -> ()

let process_stream_chunk t (chunk : Frame.stream_chunk) =
  let s = stream_in t chunk.Frame.stream in
  if chunk.Frame.length > 0 then
    s.intervals <-
      insert_interval s.intervals chunk.Frame.offset (chunk.Frame.offset + chunk.Frame.length);
  if chunk.Frame.fin then s.fin_offset <- Some (chunk.Frame.offset + chunk.Frame.length);
  deliver_stream t chunk.Frame.stream

let process_ack t ranges =
  let in_ranges pn = List.exists (fun (lo, hi) -> pn >= lo && pn <= hi) ranges in
  let newly =
    Hashtbl.fold
      (fun _ p acc -> if (not p.acked) && in_ranges p.pn then p :: acc else acc)
      t.sent []
  in
  if newly <> [] then begin
    let largest = List.fold_left (fun acc p -> max acc p.pn) (-1) newly in
    let total = List.fold_left (fun acc p -> acc + p.payload) 0 newly in
    List.iter
      (fun p ->
        p.acked <- true;
        t.inflight <- max 0 (t.inflight - p.payload);
        Hashtbl.remove t.sent p.pn;
        Hashtbl.remove t.wire (t.dir, p.pn))
      newly;
    t.largest_acked <- max t.largest_acked largest;
    (* Forward progress: reset the PTO backoff and the persistent-congestion
       span (RFC 9002 §6.2.1, §7.6.2). *)
    t.pto_backoff <- 1.0;
    t.pc_oldest <- infinity;
    t.pc_newest <- neg_infinity;
    (* RTT sample from the largest newly-acked packet. *)
    let sample =
      List.fold_left
        (fun acc p -> if p.pn = largest then Some (now t -. p.sent_at) else acc)
        None newly
    in
    (match sample with
    | Some s ->
        t.latest_rtt <- s;
        Rtt.observe t.rtt s
    | None -> ());
    let rtt_for_cc =
      match sample with Some s -> s | None -> Option.value ~default:0.1 (Rtt.srtt t.rtt)
    in
    t.cc.Cc.on_ack ~now:(now t) ~acked:total ~rtt:rtt_for_cc ~inflight:t.inflight
      ~limited:(largest <= t.rate_limited_mark);
    detect_losses t;
    (* Keep the PTO armed on a pre-confirmation client even with nothing in
       flight (the §6.2.2.1 anti-deadlock probe above needs a timer). *)
    if t.inflight > 0 || (t.role = Client && not t.established) then arm_pto t
    else t.pto_timer <- cancel_timer t t.pto_timer;
    try_send t
  end

let receive t (p : Packet.t) =
  if not t.closed then begin
    (* Idle clock and amplification credit count every datagram that
       reaches us — duplicates included — and must be credited before frame
       processing, or the unblock path below never sees new budget. *)
    t.last_activity <- now t;
    t.ae_sent_since_rx <- false;
    t.bytes_received <- t.bytes_received + Packet.wire_size p;
    let was_blocked = t.amp_blocked in
    if was_blocked then t.amp_blocked <- false;
    (match Hashtbl.find_opt t.wire (p.Packet.dir, p.Packet.seq) with
    | None -> ()  (* metadata already collected (duplicate) or padding-only cleanup *)
    | Some frames ->
        t.received <- insert_range t.received p.Packet.seq;
        let ack_eliciting = List.exists Frame.is_ack_eliciting frames in
        List.iter
          (fun frame ->
            match frame with
            | Frame.Stream chunk -> process_stream_chunk t chunk
            | Frame.Ack { ranges } -> process_ack t ranges
            | Frame.Padding _ | Frame.Ping -> ())
          frames;
        if ack_eliciting && not t.closed then begin
          t.pkts_since_ack <- t.pkts_since_ack + 1;
          if t.pkts_since_ack >= t.config.Config.ack_every then
            if has_data t then begin
              (* Piggyback the ACK on outgoing data. *)
              t.ack_pending <- true;
              try_send t;
              if t.ack_pending then send_ack_now t
            end
            else send_ack_now t
          else begin
            t.ack_pending <- true;
            if t.ack_timer = None then
              t.ack_timer <-
                Some
                  (Engine.schedule t.engine ~delay:max_ack_delay (fun () ->
                       t.ack_timer <- None;
                       if t.ack_pending && not t.closed then send_ack_now t))
          end
        end);
    (* Unblock-on-receive: fresh amplification credit may release parked
       data or a deferred ACK, and the PTO must be re-armed or a server
       whose whole flight was dropped while it was credit-starved would
       deadlock (nothing in flight it believes in, no timer, no sends). *)
    if was_blocked && not t.closed then begin
      try_send t;
      if t.ack_pending then send_ack_now t;
      if (t.inflight > 0 || has_data t) && t.pto_timer = None then arm_pto t
    end
  end

(* ------------------------------------------------------------------ *)
(* Invariant-monitor surface.  Defined last: the [inspection] field names
   deliberately mirror the internal state and would otherwise shadow the
   mutable fields of [t] for the code above. *)

type inspection = {
  pn_next : int;
  largest_acked : int;
  inflight : int;
  unacked_bytes : int;  (* recomputed from the sent table, for cross-checks *)
  unacked_packets : int;
  cwnd : int;
  pto_count : int;
  pto_backoff : float;
  amp_credit : int;  (* [max_int] when the limit does not apply *)
  bytes_received : int;
  bytes_sent : int;
  established : bool;
  closed : bool;
  close_reason : string option;
  idle_armed : bool;
  rtx_datagrams : int;
  rtx_chunks : int;
  time_loss_detections : int;
  persistent_congestions : int;
}

let inspect (t : t) : inspection =
  let unacked_bytes, unacked_packets =
    Hashtbl.fold
      (fun _ p (b, n) -> if p.acked || p.lost then (b, n) else (b + p.payload, n + 1))
      t.sent (0, 0)
  in
  {
    pn_next = t.pn_next;
    largest_acked = t.largest_acked;
    inflight = t.inflight;
    unacked_bytes;
    unacked_packets;
    cwnd = t.cc.Cc.cwnd ();
    pto_count = t.pto_count;
    pto_backoff = t.pto_backoff;
    amp_credit = amp_credit t;
    bytes_received = t.bytes_received;
    bytes_sent = t.bytes_sent;
    established = t.established;
    closed = t.closed;
    close_reason = t.close_reason;
    idle_armed = t.idle_timer <> None;
    rtx_datagrams = t.rtx_datagrams;
    rtx_chunks = t.rtx_chunks;
    time_loss_detections = t.time_loss_detections;
    persistent_congestions = t.persistent_congestions;
  }
