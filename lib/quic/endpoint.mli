(** One side of a QUIC connection.

    Figure 1's third stack organization: QUIC provides the stream
    abstraction and makes the datagram-sizing, pacing and scheduling
    decisions itself (in the library), handing UDP datagrams to the kernel.
    Section 2.3 argues the application therefore has no more control over
    the final packet sequence than with TCP — and with UDP GSO/USO offload
    the segmentation behaviour converges on TLS/TCP's.  This endpoint
    reproduces those decision points and exposes the same Stob hook
    ({!Stob_tcp.Hooks.t}): the decision triple is (GSO burst bytes,
    datagram payload size, earliest departure).

    Model notes: packet-number loss detection with ACK ranges and a
    threshold of 3, a PTO probe timer, reassembling streams, and the same
    congestion-controller interface as TCP (Reno/CUBIC/BBR all plug in).
    Flow-control credit is modelled as unbounded (the experiments never
    exercise backpressure); handshake flights travel as CRYPTO-like data on
    reserved streams 0 (each side's flight) and 2 (client finished). *)

type t

val default_config : Stob_tcp.Config.t
(** TCP's config record reused with QUIC framing: 1350-byte datagram
    payloads, 43 bytes of IP+UDP+QUIC header, 64 KiB GSO bursts. *)

val create :
  engine:Stob_sim.Engine.t ->
  config:Stob_tcp.Config.t ->
  cc:Stob_tcp.Cc.t ->
  flow:int ->
  dir:Stob_net.Packet.direction ->
  wire:(Stob_net.Packet.direction * int, Frame.t list) Hashtbl.t ->
  ?cpu:Stob_sim.Cpu.t * Stob_tcp.Cpu_costs.t ->
  ?hooks:Stob_tcp.Hooks.t ->
  tx:(Stob_net.Packet.t array -> unit) ->
  unit ->
  t
(** [wire] is the shared frame table both endpoints use to attach frame
    metadata to packet numbers on the wire (the simulator's stand-in for
    packet contents — see Connection). *)

(** {1 Lifecycle} *)

val connect : t -> ?crypto_bytes:int -> flight_bytes:int -> unit -> unit
(** Client active open: sends its Initial flight (padded to 1200 B) and
    expects a [flight_bytes] handshake flight back. *)

val listen : t -> flight_bytes:int -> unit
(** Server passive open with the size of its handshake flight (certificate
    chain — the site-characteristic bytes). *)

val established : t -> bool
val set_on_established : t -> (unit -> unit) -> unit

val close : t -> unit
(** Application close: marks the connection closed and quiesces every
    pending timer (send, PTO, loss-detection, delayed-ACK, idle) so a
    closed endpoint never keeps the engine busy.  Subsequent sends and
    receives are no-ops. *)

val closed : t -> bool

val close_reason : t -> string option
(** ["application"], ["idle-timeout"], or [None] while open.  The idle
    timeout ({!Stob_tcp.Config.t}[.idle_timeout], RFC 9000 §10.1) closes
    the connection after that many seconds without receiving a packet or
    sending a first ack-eliciting packet since the last receive. *)

(** {1 Streams} *)

val send_stream : t -> stream:int -> ?fin:bool -> int -> unit
(** Queue bytes on a stream (ids >= 4 for application data). *)

val set_on_stream : t -> (stream:int -> int -> unit) -> unit
(** In-order delivery callback: [stream, bytes]. *)

val set_on_stream_fin : t -> (stream:int -> unit) -> unit

val send_padding_datagram : t -> int -> unit
(** Emit a PADDING-only datagram (defense dummy traffic); not
    acknowledged. *)

(** {1 Stob / path interface} *)

val set_hooks : t -> Stob_tcp.Hooks.t -> unit
val hooks : t -> Stob_tcp.Hooks.t
val cc : t -> Stob_tcp.Cc.t
val config : t -> Stob_tcp.Config.t
val receive : t -> Stob_net.Packet.t -> unit

(** {1 Introspection} *)

val inflight : t -> int
val packets_sent : t -> int
val datagrams_sent : t -> int

val retransmitted_chunks : t -> int
(** Stream chunks pulled from a retransmission queue (a resent chunk split
    across two datagrams counts twice — it is a chunk count, not a
    datagram count). *)

val rtx_datagrams : t -> int
(** Datagrams that carried at least one retransmitted stream chunk.  This
    is the count {!Stob_net.Capture.rtx_count} sees for this endpoint's
    direction, so capture and endpoint can be cross-checked (the QUIC rtx
    oracle). *)

val pto_events : t -> int
(** Probe-timeout firings (RFC 9002 §6.2). *)

val time_loss_detections : t -> int
(** Packets declared lost by the 9/8·RTT time threshold (RFC 9002 §6.1.2)
    rather than the packet threshold. *)

val persistent_congestions : t -> int
(** Persistent-congestion declarations (RFC 9002 §7.6): lost-packet span
    exceeded 3 PTOs with no forward progress, collapsing the congestion
    window. *)

val srtt : t -> float option

(** {1 Invariant-monitor surface} *)

type inspection = {
  pn_next : int;  (** Next packet number; strictly monotone. *)
  largest_acked : int;  (** Largest packet number acked by the peer; -1 initially. *)
  inflight : int;  (** Ack-eliciting payload bytes in flight (sender's ledger). *)
  unacked_bytes : int;
      (** Recomputed sum over the sent-packet table; must equal [inflight]
          (the quic-inflight-accounting invariant). *)
  unacked_packets : int;
  cwnd : int;
  pto_count : int;
  pto_backoff : float;
  amp_credit : int;
      (** Remaining anti-amplification budget in wire bytes; [max_int] when
          the limit does not apply (client, or handshake confirmed).  Never
          negative (the quic-amplification invariant). *)
  bytes_received : int;
  bytes_sent : int;
  established : bool;
  closed : bool;
  close_reason : string option;
  idle_armed : bool;
  rtx_datagrams : int;
  rtx_chunks : int;
  time_loss_detections : int;
  persistent_congestions : int;
}

val inspect : t -> inspection
(** Observe-only snapshot; never mutates the endpoint. *)
