module Rng = Stob_util.Rng

type loss_model =
  | No_loss
  | Iid of float
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

type config = {
  loss : loss_model;
  reorder_prob : float;
  reorder_depth : int;
  reorder_hold : float;
  duplicate_prob : float;
  jitter : float;
  drop_list : int list;
  seed : int;
}

let default =
  {
    loss = No_loss;
    reorder_prob = 0.0;
    reorder_depth = 0;
    reorder_hold = 0.05;
    duplicate_prob = 0.0;
    jitter = 0.0;
    drop_list = [];
    seed = 0;
  }

let validate cfg =
  let prob what p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Netem: %s probability %g outside [0, 1]" what p)
  in
  (match cfg.loss with
  | No_loss -> ()
  | Iid p -> prob "loss" p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      prob "p_gb" p_gb;
      prob "p_bg" p_bg;
      prob "loss_good" loss_good;
      prob "loss_bad" loss_bad);
  prob "reorder" cfg.reorder_prob;
  prob "duplicate" cfg.duplicate_prob;
  if cfg.reorder_depth < 0 then invalid_arg "Netem: negative reorder_depth";
  if cfg.reorder_prob > 0.0 && cfg.reorder_depth = 0 then
    invalid_arg "Netem: reorder_prob > 0 requires reorder_depth >= 1";
  if cfg.reorder_hold <= 0.0 && cfg.reorder_prob > 0.0 then
    invalid_arg "Netem: reorder_hold must be positive when reordering";
  if cfg.jitter < 0.0 then invalid_arg "Netem: negative jitter";
  if List.exists (fun n -> n <= 0) cfg.drop_list then
    invalid_arg "Netem: drop_list ordinals are 1-based positives"

type stats = {
  offered : int;
  lost : int;
  duplicated : int;
  reordered : int;
  delivered : int;
}

let zero_stats = { offered = 0; lost = 0; duplicated = 0; reordered = 0; delivered = 0 }

let add_stats a b =
  {
    offered = a.offered + b.offered;
    lost = a.lost + b.lost;
    duplicated = a.duplicated + b.duplicated;
    reordered = a.reordered + b.reordered;
    delivered = a.delivered + b.delivered;
  }

let pp_stats fmt s =
  Format.fprintf fmt "offered=%d lost=%d dup=%d reordered=%d delivered=%d" s.offered s.lost
    s.duplicated s.reordered s.delivered

type 'a held_frame = {
  frame : 'a;
  mutable remaining : int;
  mutable released : bool;
  mutable flush_ev : Engine.event_id option;
}

type 'a t = {
  engine : Engine.t;
  cfg : config;
  rng : Rng.t;
  drop_filter : 'a -> bool;
  deliver : 'a -> unit;
  mutable ge_bad : bool;
  mutable held_frames : 'a held_frame list;  (* oldest first *)
  mutable matched : int;  (* frames seen by the drop-list filter *)
  mutable offered : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delivered : int;
}

type 'a spec = { s_cfg : config; s_drop_filter : 'a -> bool }

let spec ?(drop_filter = fun _ -> true) cfg =
  validate cfg;
  { s_cfg = cfg; s_drop_filter = drop_filter }

let create ~engine ?(drop_filter = fun _ -> true) ~deliver cfg =
  validate cfg;
  {
    engine;
    cfg;
    rng = Rng.create cfg.seed;
    drop_filter;
    deliver;
    ge_bad = false;
    held_frames = [];
    matched = 0;
    offered = 0;
    lost = 0;
    duplicated = 0;
    reordered = 0;
    delivered = 0;
  }

let of_spec ~engine ~deliver spec = create ~engine ~drop_filter:spec.s_drop_filter ~deliver spec.s_cfg

let stats t =
  {
    offered = t.offered;
    lost = t.lost;
    duplicated = t.duplicated;
    reordered = t.reordered;
    delivered = t.delivered;
  }

let held t = List.length t.held_frames

(* Hand a frame to the receiver, after the jitter delay if any. *)
let dispatch t frame =
  t.delivered <- t.delivered + 1;
  if t.cfg.jitter > 0.0 then
    ignore (Engine.schedule t.engine ~delay:(Rng.float t.rng t.cfg.jitter) (fun () -> t.deliver frame))
  else t.deliver frame

let release t h =
  if not h.released then begin
    h.released <- true;
    (match h.flush_ev with
    | Some ev ->
        Engine.cancel t.engine ev;
        h.flush_ev <- None
    | None -> ());
    t.held_frames <- List.filter (fun x -> x != h) t.held_frames;
    t.reordered <- t.reordered + 1;
    dispatch t h.frame
  end

let hold t frame =
  let h = { frame; remaining = max 1 t.cfg.reorder_depth; released = false; flush_ev = None } in
  t.held_frames <- t.held_frames @ [ h ];
  h.flush_ev <-
    Some
      (Engine.schedule t.engine ~delay:t.cfg.reorder_hold (fun () ->
           h.flush_ev <- None;
           release t h))

(* Deliver a passing frame, then age the reorder buffer: held frames ripe
   after this passage are released behind it. *)
let pass t frame =
  dispatch t frame;
  let ripe =
    List.filter
      (fun h ->
        h.remaining <- h.remaining - 1;
        h.remaining <= 0)
      t.held_frames
  in
  List.iter (release t) ripe

let loss_draw t =
  match t.cfg.loss with
  | No_loss -> false
  | Iid p -> p > 0.0 && Rng.bernoulli t.rng p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      (if t.ge_bad then begin
         if Rng.bernoulli t.rng p_bg then t.ge_bad <- false
       end
       else if Rng.bernoulli t.rng p_gb then t.ge_bad <- true);
      let p = if t.ge_bad then loss_bad else loss_good in
      p > 0.0 && Rng.bernoulli t.rng p

let feed t frame =
  t.offered <- t.offered + 1;
  let listed =
    t.drop_filter frame
    && begin
         t.matched <- t.matched + 1;
         List.mem t.matched t.cfg.drop_list
       end
  in
  if listed || loss_draw t then t.lost <- t.lost + 1
  else begin
    if t.cfg.duplicate_prob > 0.0 && Rng.bernoulli t.rng t.cfg.duplicate_prob then begin
      t.duplicated <- t.duplicated + 1;
      dispatch t frame
    end;
    if t.cfg.reorder_prob > 0.0 && Rng.bernoulli t.rng t.cfg.reorder_prob then hold t frame
    else pass t frame
  end
