type t = {
  engine : Engine.t;
  mutable busy_until : float;
  mutable busy_time : float;
  mutable depth : int;
  mutable overload : float;  (* cost multiplier; 1.0 = nominal *)
}

let create engine = { engine; busy_until = 0.0; busy_time = 0.0; depth = 0; overload = 1.0 }

let set_overload t factor =
  if not (factor > 0.0) then invalid_arg "Cpu.set_overload: factor must be positive";
  t.overload <- factor

let overload t = t.overload

let submit t ~cost f =
  let cost = if cost < 0.0 then 0.0 else cost *. t.overload in
  let now = Engine.now t.engine in
  let start = if t.busy_until > now then t.busy_until else now in
  let finish = start +. cost in
  t.busy_until <- finish;
  t.busy_time <- t.busy_time +. cost;
  t.depth <- t.depth + 1;
  ignore
    (Engine.schedule_at t.engine ~time:finish (fun () ->
         t.depth <- t.depth - 1;
         f ()))

let busy_until t = t.busy_until
let busy_time t = t.busy_time

let utilization t =
  let now = Engine.now t.engine in
  if now <= 0.0 then 0.0 else t.busy_time /. now

let queue_depth t = t.depth
