(** The discrete-event simulation engine.

    A simulation is a set of callbacks scheduled on a virtual clock.  The
    engine pops the earliest event, advances the clock to its timestamp and
    runs its callback, which may schedule further events.  All simulated
    subsystems (links, TCP timers, the CPU model, page-load drivers) share
    one engine, so cross-subsystem causality is exact. *)

type t

type event_id
(** Handle for cancellation (e.g., a retransmission timer that an ACK
    disarms). *)

exception Livelock of { time : float; events : int }
(** Raised by {!step}/{!run} when more than the same-instant budget of
    consecutive events execute without the clock advancing — the signature
    of a callback rescheduling itself with zero delay.  Without the budget
    such a bug hangs the process; with it, the hang becomes a structured,
    catchable failure (the chaos monitor reports it as a violation). *)

val create : ?queue:Event_queue.impl -> unit -> t
(** [queue] pins the event-queue implementation (the differential tests
    run identical scenarios on both); defaults to
    {!Event_queue.default_impl} — the timing wheel, unless the
    [STOB_EVENT_QUEUE] environment variable says otherwise. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay].  A negative delay is
    clamped to zero (fires "immediately", after already-queued events for the
    current instant). *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant.  Times before [now] are clamped to [now]. *)

val cancel : t -> event_id -> unit
(** Disarm an event; cancelling an already-fired or cancelled event is a
    no-op. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stops once the next event lies
    strictly beyond [until] and sets the clock to [until]. *)

val step : t -> bool
(** Run exactly one event; [false] when the queue was empty. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events. *)

val events_processed : t -> int
(** Total callbacks executed so far (for engine-level sanity checks). *)

(** {1 Robustness instrumentation} *)

val set_same_instant_budget : t -> int -> unit
(** Maximum number of {e consecutive} events the engine will execute at one
    virtual instant before raising {!Livelock}.  The default
    ({!default_same_instant_budget}) is far above anything a legitimate
    workload produces; tests lower it to catch zero-delay self-rescheduling
    quickly.  Raises [Invalid_argument] on a non-positive budget. *)

val same_instant_budget : t -> int

val default_same_instant_budget : int
(** 1_000_000. *)

val set_probe : t -> (now:float -> unit) -> unit
(** [set_probe t f] installs an observe-only probe called after every
    executed event with the event's timestamp.  One probe at a time; the
    invariant monitor ({!Stob_check}) chains its checks through this.  The
    probe must not schedule or cancel events. *)

val clear_probe : t -> unit
