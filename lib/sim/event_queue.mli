(** The engine's event queue, keyed by [(time, sequence)].

    Events scheduled for the same instant fire in insertion order — a
    property the TCP model relies on (e.g., an ACK processed before the
    timer armed after it).

    Two implementations sit behind this interface: the production
    hierarchical {!Timing_wheel} (O(1) amortized, the default) and the
    seed's binary heap kept verbatim as the differential oracle
    ({!Heap_queue}).  They produce identical pop sequences on every
    schedule — the [sim.wheel] battery is the proof — so selection is a
    performance knob, not a semantic one: set the [STOB_EVENT_QUEUE]
    environment variable to [heap] (or [wheel]) to pin a run to one
    implementation. *)

type 'a t

type impl = Heap | Wheel

val default_impl : unit -> impl
(** [Wheel], unless [STOB_EVENT_QUEUE=heap].  Raises [Invalid_argument] on
    an unrecognized value of the variable. *)

val create : unit -> 'a t
(** A queue of the {!default_impl}. *)

val create_impl : impl -> 'a t
(** Explicit implementation choice (the differential tests drive both). *)

val create_wheel : ?granularity:float -> unit -> 'a t
(** A wheel with a specific tick granularity (see {!Timing_wheel.create}). *)

val impl : 'a t -> impl

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with priority [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
