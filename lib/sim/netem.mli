(** Netem-style network impairment: deterministic adverse-path emulation.

    A netem sits in front of a receiver callback (typically a {!Link}'s
    [deliver]) and subjects every frame to a seeded impairment pipeline —
    loss (i.i.d. or Gilbert–Elliott bursts), duplication, reordering
    (hold a frame until [reorder_depth] later frames have passed) and
    jitter — the same knobs as Linux [tc netem], minus rate shaping
    (the link already models that).

    {b Determinism.}  All randomness comes from one {!Stob_util.Rng}
    seeded by [config.seed]; a simulation built from equal seeds replays
    identically, wherever its events interleave with other subsystems on
    the shared engine.  Independent directions (or paths) must use
    distinct seeds or their draw streams alias.

    {b Drop lists.}  For regression tests that need "lose exactly the nth
    data packet", [drop_list] names 1-based ordinals among the frames
    matching [drop_filter] (default: every frame); those frames are
    dropped deterministically, before any random impairment draws. *)

type loss_model =
  | No_loss
  | Iid of float  (** Independent per-frame loss probability. *)
  | Gilbert_elliott of {
      p_gb : float;  (** P(good -> bad) per frame. *)
      p_bg : float;  (** P(bad -> good) per frame. *)
      loss_good : float;  (** Loss probability in the good state. *)
      loss_bad : float;  (** Loss probability in the bad state. *)
    }  (** Two-state Markov burst-loss channel (starts in the good state). *)

type config = {
  loss : loss_model;
  reorder_prob : float;  (** Probability a frame is held back. *)
  reorder_depth : int;  (** Frames that must pass before a held frame is released. *)
  reorder_hold : float;
      (** Max seconds a held frame waits; a flush timer releases it even if
          traffic stops (so a held FIN cannot deadlock a connection). *)
  duplicate_prob : float;  (** Probability a frame is delivered twice. *)
  jitter : float;
      (** Extra uniform delay in [\[0, jitter\]] seconds per delivery.  Jitter
          larger than the inter-frame gap reorders on its own. *)
  drop_list : int list;  (** 1-based ordinals of filtered frames to drop. *)
  seed : int;
}

val default : config
(** Everything off: no loss, no reorder, no duplication, no jitter, empty
    drop list, seed 0.  Feeding through [default] is the identity (modulo
    the counters). *)

val validate : config -> unit
(** Raises [Invalid_argument] on out-of-range probabilities, negative
    depth/hold/jitter, or non-positive drop-list ordinals. *)

type stats = {
  offered : int;  (** Frames fed in. *)
  lost : int;  (** Frames dropped (random loss + drop list). *)
  duplicated : int;  (** Extra copies delivered. *)
  reordered : int;  (** Held frames delivered behind later arrivals. *)
  delivered : int;  (** Deliveries dispatched (includes duplicates). *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit

type 'a t

type 'a spec
(** A config bundled with its frame-level drop filter — what callers that
    build the netem themselves (e.g. a path constructor) accept. *)

val spec : ?drop_filter:('a -> bool) -> config -> 'a spec
(** [drop_filter] selects which frames count toward [drop_list] ordinals;
    default accepts every frame.  Validates the config. *)

val create :
  engine:Engine.t -> ?drop_filter:('a -> bool) -> deliver:('a -> unit) -> config -> 'a t
(** Build an impairment stage feeding [deliver].  Validates the config. *)

val of_spec : engine:Engine.t -> deliver:('a -> unit) -> 'a spec -> 'a t

val feed : 'a t -> 'a -> unit
(** Push one frame through the pipeline.  Order of operations: drop list,
    loss draw, duplication draw, reorder draw; surviving frames are
    dispatched after the jitter delay.  A frame that passes (is neither
    dropped nor held) ages every held frame by one and releases the ripe
    ones {e after} itself — that is the reordering. *)

val stats : 'a t -> stats

val held : 'a t -> int
(** Frames currently parked in the reorder buffer. *)
