(* Facade over the two event-queue implementations.

   The timing wheel (timing_wheel.ml) is the production queue; the seed's
   binary heap (heap_queue.ml) is kept verbatim as the differential oracle
   and stays selectable — set STOB_EVENT_QUEUE=heap to run any experiment
   on the original implementation (the sim.wheel battery proves the two
   pop identically, so results cannot differ; the knob exists to let a
   suspicious user check exactly that on their own workload). *)

type impl = Heap | Wheel

type 'a t = H of 'a Heap_queue.t | W of 'a Timing_wheel.t

let env_impl =
  lazy
    (match Sys.getenv_opt "STOB_EVENT_QUEUE" with
    | None | Some "" | Some "wheel" -> Wheel
    | Some "heap" -> Heap
    | Some other ->
        invalid_arg
          (Printf.sprintf "STOB_EVENT_QUEUE=%S: expected \"wheel\" or \"heap\"" other))

let default_impl () = Lazy.force env_impl

let create_impl = function Heap -> H (Heap_queue.create ()) | Wheel -> W (Timing_wheel.create ())
let create () = create_impl (default_impl ())
let create_wheel ?granularity () = W (Timing_wheel.create ?granularity ())

let impl = function H _ -> Heap | W _ -> Wheel

let push t ~time value =
  match t with H q -> Heap_queue.push q ~time value | W q -> Timing_wheel.push q ~time value

let pop = function H q -> Heap_queue.pop q | W q -> Timing_wheel.pop q
let peek = function H q -> Heap_queue.peek q | W q -> Timing_wheel.peek q
let size = function H q -> Heap_queue.size q | W q -> Timing_wheel.size q
let is_empty = function H q -> Heap_queue.is_empty q | W q -> Timing_wheel.is_empty q
