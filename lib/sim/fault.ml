module Rng = Stob_util.Rng

type kind =
  | Hook_exception
  | Hook_stall
  | Policy_failure
  | Cpu_overload
  | Pacer_jump
  | Qdisc_collapse
  | Datagram_blackhole
  | Ack_delay_inflation
  | Handshake_stall

(* New kinds append at the END: the per-class RNG pre-split follows this
   order, so appending preserves every existing class's draw stream. *)
let all_kinds =
  [
    Hook_exception;
    Hook_stall;
    Policy_failure;
    Cpu_overload;
    Pacer_jump;
    Qdisc_collapse;
    Datagram_blackhole;
    Ack_delay_inflation;
    Handshake_stall;
  ]

let kind_name = function
  | Hook_exception -> "hook-exception"
  | Hook_stall -> "hook-stall"
  | Policy_failure -> "policy-failure"
  | Cpu_overload -> "cpu-overload"
  | Pacer_jump -> "pacer-jump"
  | Qdisc_collapse -> "qdisc-collapse"
  | Datagram_blackhole -> "datagram-blackhole"
  | Ack_delay_inflation -> "ack-delay-inflation"
  | Handshake_stall -> "handshake-stall"

let kind_of_name name =
  match List.find_opt (fun k -> kind_name k = name) all_kinds with
  | Some k -> k
  | None -> invalid_arg ("Fault.kind_of_name: unknown fault kind " ^ name)

exception Injected of { kind : kind; at : float }

let () =
  Printexc.register_printer (function
    | Injected { kind; at } ->
        Some (Printf.sprintf "Stob_sim.Fault.Injected { kind = %s; at = %g }" (kind_name kind) at)
    | _ -> None)

type event = { kind : kind; at : float; duration : float; magnitude : float }

type config = { kinds : kind list; events_per_kind : int; horizon : float; seed : int }

let default_config = { kinds = []; events_per_kind = 2; horizon = 10.0; seed = 0 }

let validate cfg =
  if cfg.events_per_kind < 0 then invalid_arg "Fault: events_per_kind must be non-negative";
  if cfg.horizon <= 0.0 then invalid_arg "Fault: horizon must be positive"

(* Per-kind window/magnitude shapes.  Durations are fractions of the
   horizon so smoke-sized and full-sized scenarios stress comparably;
   magnitudes are chosen so a fault is {e loud} — it must reliably trip its
   invariant or breaker rung in the regression battery, not tickle it. *)
let draw_event rng ~kind ~horizon =
  (* Leave room at the end of the horizon for the fault to bite and the
     workload to recover. *)
  let at = Rng.uniform rng 0.005 (0.6 *. horizon) in
  let window lo hi = Rng.uniform rng (lo *. horizon) (hi *. horizon) in
  match kind with
  | Hook_exception -> { kind; at; duration = window 0.05 0.2; magnitude = 1.0 }
  | Hook_stall ->
      (* Magnitude: simulated hook compute latency, seconds. *)
      { kind; at; duration = window 0.05 0.2; magnitude = Rng.uniform rng 0.02 0.2 }
  | Policy_failure -> { kind; at; duration = window 0.2 0.5; magnitude = 1.0 }
  | Cpu_overload ->
      (* Magnitude: cost multiplier. *)
      { kind; at; duration = window 0.1 0.3; magnitude = Rng.uniform rng 2e3 2e4 }
  | Pacer_jump ->
      (* Point event; magnitude: forward jump of the pacing clock, seconds.
         Absolute, not horizon-scaled: it must dominate the monitor's
         progress-stall bound (0.5 s default) at any scenario size. *)
      { kind; at; duration = 0.0; magnitude = Rng.uniform rng 0.75 2.5 }
  | Qdisc_collapse ->
      (* Magnitude: collapsed capacity in bytes. *)
      { kind; at; duration = window 0.1 0.4; magnitude = float_of_int (Rng.int_in rng 1514 4542) }
  | Datagram_blackhole ->
      (* Every datagram in the window vanishes, both directions.  The
         window is bounded well below QUIC's 30 s idle timeout so a flow
         that survives the blackhole can still finish inside its horizon;
         recovery must come from PTO probes, not from the idle close. *)
      { kind; at; duration = window 0.02 0.12; magnitude = 1.0 }
  | Ack_delay_inflation ->
      (* Magnitude: extra one-way delay applied to ACK-carrying datagrams,
         seconds.  Inflates RTT samples and stresses the 9/8 time
         threshold's reordering tolerance. *)
      { kind; at; duration = window 0.1 0.3; magnitude = Rng.uniform rng 0.05 0.3 }
  | Handshake_stall ->
      (* Server handshake flight suppressed inside the window: the client
         sits in its Initial, probing.  Duration bounded so the handshake
         can still complete before the idle timeout. *)
      { kind; at; duration = window 0.05 0.25; magnitude = 1.0 }

let plan cfg =
  validate cfg;
  (* Pre-split-RNG rule: one generator per fault class, split from the
     master in the fixed [all_kinds] order, so enabling or re-ordering
     classes never perturbs another class's draws. *)
  let master = Rng.create cfg.seed in
  let events =
    List.concat_map
      (fun kind ->
        let rng = Rng.split master in
        if List.mem kind cfg.kinds then
          List.init cfg.events_per_kind (fun _ -> draw_event rng ~kind ~horizon:cfg.horizon)
        else [])
      all_kinds
  in
  (* Stable sort keeps the all_kinds order for simultaneous events. *)
  List.stable_sort (fun a b -> compare a.at b.at) events

let arm ~engine ~apply ~revert events =
  List.iter
    (fun ev ->
      ignore
        (Engine.schedule_at engine ~time:ev.at (fun () ->
             apply ev;
             if ev.duration > 0.0 then
               ignore (Engine.schedule engine ~delay:ev.duration (fun () -> revert ev)))))
    events

let pp_event fmt ev =
  Format.fprintf fmt "%s@%.3fs" (kind_name ev.kind) ev.at;
  if ev.duration > 0.0 then Format.fprintf fmt "+%.3fs" ev.duration;
  Format.fprintf fmt " x%g" ev.magnitude
