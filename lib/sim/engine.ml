type event = { callback : unit -> unit; mutable cancelled : bool }

type event_id = event

exception Livelock of { time : float; events : int }

let () =
  Printexc.register_printer (function
    | Livelock { time; events } ->
        Some
          (Printf.sprintf
             "Stob_sim.Engine.Livelock { time = %g; events = %d } (same-instant event budget \
              exceeded: a callback chain keeps rescheduling at the current instant)"
             time events)
    | _ -> None)

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable live : int;
  mutable processed : int;
  mutable same_instant : int;  (* consecutive events executed at [clock] *)
  mutable same_instant_budget : int;
  mutable probe : (now:float -> unit) option;
}

let default_same_instant_budget = 1_000_000

let create ?queue () =
  {
    queue =
      (match queue with None -> Event_queue.create () | Some impl -> Event_queue.create_impl impl);
    clock = 0.0;
    live = 0;
    processed = 0;
    same_instant = 0;
    same_instant_budget = default_same_instant_budget;
    probe = None;
  }

let now t = t.clock

let set_same_instant_budget t budget =
  if budget < 1 then invalid_arg "Engine.set_same_instant_budget: budget must be positive";
  t.same_instant_budget <- budget

let same_instant_budget t = t.same_instant_budget

let set_probe t f = t.probe <- Some f
let clear_probe t = t.probe <- None

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let ev = { callback = f; cancelled = false } in
  Event_queue.push t.queue ~time ev;
  t.live <- t.live + 1;
  ev

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let rec step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      (* Cancelled events stay in the heap until popped; skip through them so
         that [step] reports whether real work happened. *)
      if ev.cancelled then step t
      else begin
        (* Same-instant budget: a callback that keeps rescheduling itself
           with zero delay would otherwise spin the engine forever without
           ever advancing the clock. *)
        if t.processed > 0 && time <= t.clock then begin
          t.same_instant <- t.same_instant + 1;
          if t.same_instant > t.same_instant_budget then
            raise (Livelock { time; events = t.same_instant })
        end
        else t.same_instant <- 0;
        t.clock <- time;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        ev.callback ();
        (match t.probe with None -> () | Some f -> f ~now:time);
        true
      end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Event_queue.peek t.queue with
        | None -> continue := false
        | Some (time, ev) ->
            if ev.cancelled then ignore (Event_queue.pop t.queue)
            else if time > limit then continue := false
            else ignore (step t)
      done;
      if t.clock < limit then t.clock <- limit

let pending t = t.live
let events_processed t = t.processed
