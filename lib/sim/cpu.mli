(** Single-core CPU cost model for the sending host.

    Figure 3 of the paper measures a CPU-bound effect: shrinking packet and
    TSO sizes multiplies per-packet and per-segment work on one core, which
    caps single-connection throughput well below the 100 Gb/s link rate.
    This model captures that mechanism: work items queue on a core and run
    serially, each occupying the core for its cost.

    Costs are supplied by the stack when it pushes segments (see
    {!Stob_tcp.Connection}); typical decomposition is a fixed per-segment
    cost plus per-packet and per-byte terms. *)

type t

val create : Engine.t -> t
(** A core bound to the engine's clock, idle at time 0. *)

val submit : t -> cost:float -> (unit -> unit) -> unit
(** [submit t ~cost f] enqueues a work item that occupies the core for
    [cost] seconds and then runs [f].  Items execute in submission order.
    A non-positive cost still preserves ordering (runs as soon as the core
    is free). *)

val busy_until : t -> float
(** Absolute time at which the core next becomes idle. *)

val busy_time : t -> float
(** Cumulative seconds of work executed (for utilization reporting). *)

val utilization : t -> float
(** [busy_time /. now]; [0.] at time zero. *)

val queue_depth : t -> int
(** Work items submitted but not yet completed. *)

val set_overload : t -> float -> unit
(** Multiply the cost of subsequently submitted work by [factor] (an
    overload burst: interrupts, co-tenant contention).  [1.0] restores
    nominal costs; already-queued work is unaffected.  Raises
    [Invalid_argument] on a non-positive factor.  Used by the fault
    injector ({!Fault}). *)

val overload : t -> float
(** Current cost multiplier (1.0 when nominal). *)
