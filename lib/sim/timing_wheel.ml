(* Hierarchical timing wheel with an exact-order ready heap.

   The kernel-style wheel buys O(1) amortized scheduling, but a naive wheel
   orders events only up to tick granularity — and the engine's contract is
   exact (time, sequence) order, bit-identical to the heap oracle.  The
   design that preserves both:

   - An event's [tick] is [trunc (time / granularity)].  Truncation (not
     floor) is fine: it is monotone in [time], which is all the ordering
     argument needs.
   - Events with [tick <= cursor] live in a small binary heap (the "ready
     heap") ordered by exact (time, seq).  Everything the caller can pop
     next is in there, so pops are exact even when many distinct times
     collapse into one tick, when a callback pushes at or before the
     current instant, or when raw pushes go backwards in time.
   - Events with [tick > cursor] whose tick fits in the wheel's
     [levels * bits]-bit horizon above the cursor hang off the slot of
     their highest block that differs from the cursor's.  Per-level
     occupancy bitmaps make "next occupied slot" a couple of word scans.
   - Events beyond the horizon wait in an [overflow] list; when the wheel
     drains, the cursor is rebased onto the earliest overflow tick and the
     list is re-placed (rare by construction: the horizon is 2^32 ticks —
     over twelve simulated days at the default 256 µs granularity).

   Invariant (the reason slot scans never wrap): every wheel entry at level
   [k] has blocks above [k] equal to the cursor's, and its block [k]
   strictly greater than the cursor's.  Advancing the cursor cascades the
   drained slot's entries to lower levels (or to the ready heap), restoring
   the invariant. *)

(* [tick] is cached at push time: an entry is re-placed once per level it
   cascades through, and the float multiply + truncation is the expensive
   part of placement. *)
type 'a entry = { time : float; seq : int; tick : int; value : 'a }

let bits = 8
let wheel_slots = 1 lsl bits (* 256 *)
let slot_mask = wheel_slots - 1
let levels = 4
let horizon_bits = levels * bits
let words_per_level = wheel_slots / 64

type 'a t = {
  granularity : float;
  inv_granularity : float;
  mutable next_seq : int;
  mutable len : int;
  (* Ready heap: all entries with tick <= cursor, exact (time, seq) order.
     Keys live in parallel unboxed arrays — on this compiler a float field
     of a mixed record is a pointer to a boxed double, so keeping the sift
     keys in a flat [float array] spares every comparison a dereference. *)
  mutable ready_times : float array;
  mutable ready_seqs : int array;
  mutable ready_entries : 'a entry array;
  mutable ready_len : int;
  slots : 'a entry list array array; (* slots.(level).(slot) *)
  bitmaps : int64 array array; (* bitmaps.(level).(slot / 64) *)
  counts : int array; (* live wheel entries per level *)
  mutable overflow : 'a entry list;
  mutable overflow_count : int;
  mutable cursor : int;
}

let default_granularity = 256e-6

let create ?(granularity = default_granularity) () =
  if not (granularity > 0.0) then
    invalid_arg "Timing_wheel.create: granularity must be positive";
  {
    granularity;
    inv_granularity = 1.0 /. granularity;
    next_seq = 0;
    len = 0;
    ready_times = [||];
    ready_seqs = [||];
    ready_entries = [||];
    ready_len = 0;
    slots = Array.init levels (fun _ -> Array.make wheel_slots []);
    bitmaps = Array.init levels (fun _ -> Array.make words_per_level 0L);
    counts = Array.make levels 0;
    overflow = [];
    overflow_count = 0;
    cursor = 0;
  }

let granularity t = t.granularity
let size t = t.len
let is_empty t = t.len = 0

(* Ticks clamp before [int_of_float] leaves defined territory; clamped
   events simply ride the overflow path. *)
let max_tick_float = 4.0e18

let tick t time =
  let x = time *. t.inv_granularity in
  if x >= max_tick_float then max_int
  else if x <= -.max_tick_float then min_int
  else int_of_float x

let ready_grow t entry =
  let cap = Array.length t.ready_entries in
  let cap' = if cap = 0 then 64 else cap * 2 in
  let times = Array.make cap' 0.0 in
  let seqs = Array.make cap' 0 in
  let entries = Array.make cap' entry in
  Array.blit t.ready_times 0 times 0 t.ready_len;
  Array.blit t.ready_seqs 0 seqs 0 t.ready_len;
  Array.blit t.ready_entries 0 entries 0 t.ready_len;
  t.ready_times <- times;
  t.ready_seqs <- seqs;
  t.ready_entries <- entries

(* Both sift loops bubble a hole instead of swapping, with the moving
   element's key held in registers: one store per level plus the final
   placement. *)
let ready_push t entry =
  if t.ready_len = Array.length t.ready_entries then ready_grow t entry;
  let times = t.ready_times and seqs = t.ready_seqs and entries = t.ready_entries in
  let time = entry.time and seq = entry.seq in
  let i = ref t.ready_len in
  t.ready_len <- !i + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = times.(parent) in
    if time < pt || (time = pt && seq < seqs.(parent)) then begin
      times.(!i) <- pt;
      seqs.(!i) <- seqs.(parent);
      entries.(!i) <- entries.(parent);
      i := parent
    end
    else continue := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  entries.(!i) <- entry

let ready_pop t =
  let times = t.ready_times and seqs = t.ready_seqs and entries = t.ready_entries in
  let top = entries.(0) in
  let n = t.ready_len - 1 in
  t.ready_len <- n;
  if n > 0 then begin
    let time = times.(n) and seq = seqs.(n) and last = entries.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let left = (2 * !i) + 1 in
      if left >= n then continue := false
      else begin
        let right = left + 1 in
        let child =
          if
            right < n
            && (times.(right) < times.(left)
               || (times.(right) = times.(left) && seqs.(right) < seqs.(left)))
          then right
          else left
        in
        let ct = times.(child) in
        if ct < time || (ct = time && seqs.(child) < seq) then begin
          times.(!i) <- ct;
          seqs.(!i) <- seqs.(child);
          entries.(!i) <- entries.(child);
          i := child
        end
        else continue := false
      end
    done;
    times.(!i) <- time;
    seqs.(!i) <- seq;
    entries.(!i) <- last
  end;
  top

let block tk level = (tk asr (level * bits)) land slot_mask

let place t entry =
  let tk = entry.tick in
  if tk <= t.cursor then ready_push t entry
  else begin
    let diff = tk lxor t.cursor in
    if diff asr horizon_bits <> 0 then begin
      t.overflow <- entry :: t.overflow;
      t.overflow_count <- t.overflow_count + 1
    end
    else begin
      (* Highest block where tick and cursor differ; the compare chain
         hardcodes bits = 8, levels = 4 (one compare for the common
         near-future case instead of a top-down loop). *)
      let k = if diff <= 0xFF then 0 else if diff <= 0xFFFF then 1 else if diff <= 0xFF_FFFF then 2 else 3 in
      let s = block tk k in
      t.slots.(k).(s) <- entry :: t.slots.(k).(s);
      t.bitmaps.(k).(s lsr 6) <-
        Int64.logor t.bitmaps.(k).(s lsr 6) (Int64.shift_left 1L (s land 63));
      t.counts.(k) <- t.counts.(k) + 1
    end
  end

let push t ~time value =
  let entry = { time; seq = t.next_seq; tick = tick t time; value } in
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  place t entry

let ctz64 x =
  let n = ref 0 and x = ref x in
  if Int64.logand !x 0xFFFFFFFFL = 0L then begin
    n := !n + 32;
    x := Int64.shift_right_logical !x 32
  end;
  if Int64.logand !x 0xFFFFL = 0L then begin
    n := !n + 16;
    x := Int64.shift_right_logical !x 16
  end;
  if Int64.logand !x 0xFFL = 0L then begin
    n := !n + 8;
    x := Int64.shift_right_logical !x 8
  end;
  if Int64.logand !x 0xFL = 0L then begin
    n := !n + 4;
    x := Int64.shift_right_logical !x 4
  end;
  if Int64.logand !x 0x3L = 0L then begin
    n := !n + 2;
    x := Int64.shift_right_logical !x 2
  end;
  if Int64.logand !x 0x1L = 0L then incr n;
  !n

(* Smallest occupied slot index >= [from], or -1. *)
let find_slot bitmap ~from =
  let rec go w =
    if w >= words_per_level then -1
    else
      let word = bitmap.(w) in
      let word =
        if w = from lsr 6 then Int64.logand word (Int64.shift_left Int64.minus_one (from land 63))
        else word
      in
      if word = 0L then go (w + 1) else (w lsl 6) + ctz64 word
  in
  go (from lsr 6)

(* Pull the next batch of due entries into the ready heap.  No-op unless
   the ready heap is empty while wheel/overflow entries remain. *)
let rec refill t =
  if t.ready_len = 0 && t.len > 0 then begin
    let k = ref 0 in
    while !k < levels && t.counts.(!k) = 0 do
      incr k
    done;
    if !k < levels then begin
      let k = !k in
      (* The placement invariant puts every occupied slot of the lowest
         non-empty level strictly beyond the cursor's block, so the scan
         never wraps and never misses. *)
      let s = find_slot t.bitmaps.(k) ~from:(block t.cursor k + 1) in
      assert (s >= 0);
      t.cursor <- t.cursor land (-1 lsl ((k + 1) * bits)) lor (s lsl (k * bits));
      let entries = t.slots.(k).(s) in
      t.slots.(k).(s) <- [];
      t.bitmaps.(k).(s lsr 6) <-
        Int64.logand t.bitmaps.(k).(s lsr 6)
          (Int64.lognot (Int64.shift_left 1L (s land 63)));
      (* Level 0: every entry has tick = cursor and lands in ready.  Higher
         levels: entries cascade to lower levels (or ready) and we loop. *)
      let rec drain n = function
        | [] -> n
        | e :: rest ->
            place t e;
            drain (n + 1) rest
      in
      t.counts.(k) <- t.counts.(k) - drain 0 entries;
      refill t
    end
    else begin
      (* Wheel empty: rebase the cursor onto the earliest overflow tick and
         re-place the whole list (entries still beyond the new horizon go
         straight back to overflow). *)
      match t.overflow with
      | [] -> () (* unreachable: len counts ready + wheel + overflow *)
      | es ->
          t.overflow <- [];
          t.overflow_count <- 0;
          t.cursor <- List.fold_left (fun acc e -> min acc e.tick) max_int es;
          List.iter (fun e -> place t e) es;
          refill t
    end
  end

let peek t =
  refill t;
  if t.ready_len = 0 then None
  else Some (t.ready_times.(0), t.ready_entries.(0).value)

let pop t =
  refill t;
  if t.ready_len = 0 then None
  else begin
    let top = ready_pop t in
    t.len <- t.len - 1;
    Some (top.time, top.value)
  end
