(* The seed's binary-heap event queue, kept verbatim as the differential
   oracle for the timing wheel (see timing_wheel.ml and the sim.wheel test
   battery).  Do not "improve" this module: its value is that it is the
   exact implementation the engine shipped with. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable len : int; mutable next_seq : int }

let create () = { heap = [||]; len = 0; next_seq = 0 }

let size t = t.len
let is_empty t = t.len = 0

(* [a] is earlier than [b] when its time is smaller, with insertion order as
   the tiebreaker. *)
let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let dummy = t.heap.(0) in
  let heap = Array.make new_cap dummy in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 64 entry
  else if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    earlier t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let peek t = if t.len = 0 then None else Some (t.heap.(0).time, t.heap.(0).value)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < t.len && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
        if right < t.len && earlier t.heap.(right) t.heap.(!smallest) then smallest := right;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.value)
  end
