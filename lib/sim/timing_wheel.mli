(** Hierarchical timing-wheel event queue with exact [(time, sequence)]
    ordering.

    Drop-in replacement for the heap oracle ({!Heap_queue}): same API, same
    pop sequence on every schedule — including same-instant bursts,
    pushes at or before the current instant, and far-future timers — but
    O(1) amortized per operation instead of O(log n), which is what makes
    population-scale simulation affordable.  The [sim.wheel] differential
    battery and the [simperf] bench gate both properties.

    Structure: {!levels} levels of 2^{!bits} slots each bucket events by
    tick ([trunc (time / granularity)]); events whose tick is at or before
    the cursor sit in a small exact-order binary heap, so tick
    quantization never leaks into pop order.  Events beyond the
    [2^(levels*bits)]-tick horizon (over an hour of simulated time at the
    default granularity) wait in an overflow list and are re-placed when
    the wheel drains past them. *)

type 'a t

val create : ?granularity:float -> unit -> 'a t
(** [granularity] is the tick width in seconds, {!default_granularity}
    unless given.  Ordering is exact for {e any} positive granularity;
    granularity only tunes bucketing efficiency.  Raises
    [Invalid_argument] on a non-positive granularity. *)

val default_granularity : float
(** 1e-6 s: fine enough that the TCP model's microsecond-scale timers
    spread across slots, coarse enough that an hour of simulated time fits
    inside the wheel horizon. *)

val granularity : 'a t -> float

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with priority [time].  Same-instant inserts pop in
    insertion order, exactly like the heap oracle. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val bits : int
val levels : int
(** Wheel geometry: [levels] levels of [2^bits] slots (documented for the
    HACKING.md hot-path notes; not tunable at runtime). *)
