(** Seeded component-fault injector.

    Where {!Netem} perturbs the {e wire}, this module perturbs the
    {e components} of the stack itself: the defense hook misbehaves, the
    policy table stops answering, the CPU model is suddenly slow, the
    pacing clock jumps, the qdisc loses its capacity.  A fault {e plan} is
    a deterministic function of a single seed (pre-split RNG per fault
    class, in {!all_kinds} order, per the [lib/par] rule), so a failing
    chaos run replays exactly.

    The module is deliberately mechanism-only: it knows {e when} faults
    happen and {e how hard} they hit, but not what they hit — the chaos
    harness ({!Stob_check.Chaos}) wires each {!kind} to the concrete
    component via {!arm}'s [apply]/[revert] callbacks. *)

type kind =
  | Hook_exception  (** Defense hook raises on every consultation in the window. *)
  | Hook_stall  (** Hook consumes [magnitude] seconds of compute per call. *)
  | Policy_failure  (** Policy-table lookups fail inside the window. *)
  | Cpu_overload  (** CPU-model costs multiplied by [magnitude]. *)
  | Pacer_jump
      (** Pacing clock jumps forward by [magnitude] seconds (point event;
          drawn from an absolute 0.75-2.5 s range so it dominates stall
          bounds at any horizon). *)
  | Qdisc_collapse  (** Qdisc capacity collapses to [magnitude] bytes. *)
  | Datagram_blackhole
      (** Every datagram in the window vanishes, both directions.  Windows
          are short (2-12 % of the horizon) so recovery is exercised via
          PTO probes rather than the idle timeout. *)
  | Ack_delay_inflation
      (** ACK-carrying datagrams gain [magnitude] seconds of extra one-way
          delay inside the window (stresses RTT estimation and the 9/8
          time-threshold loss detector). *)
  | Handshake_stall
      (** The server's handshake flight is suppressed inside the window;
          the client must keep probing its Initial. *)

val all_kinds : kind list
(** Fixed order; the per-kind RNG pre-split follows it.  New kinds append
    at the end so existing classes' draw streams are stable across
    versions. *)

val kind_name : kind -> string
val kind_of_name : string -> kind
(** Raises [Invalid_argument] on an unknown name. *)

exception Injected of { kind : kind; at : float }
(** The exception injected faults raise.  Distinct from [Invalid_argument]
    on purpose: API-precondition violations (e.g. [Endpoint.write] with a
    non-positive count) are genuine bugs and must never be mistaken for an
    injected fault — the degradation report counts the two separately. *)

type event = { kind : kind; at : float; duration : float; magnitude : float }
(** One fault: active on [[at, at +. duration)] ([duration = 0] is a point
    event).  [magnitude]'s unit depends on the kind (see {!kind}). *)

type config = { kinds : kind list; events_per_kind : int; horizon : float; seed : int }

val default_config : config
(** No kinds enabled, 2 events per kind, 10 s horizon, seed 0. *)

val plan : config -> event list
(** Deterministic plan, sorted by activation time.  Equal seeds give equal
    plans; a kind's draws do not depend on which other kinds are enabled.
    Raises [Invalid_argument] on a negative event count or non-positive
    horizon. *)

val arm :
  engine:Engine.t -> apply:(event -> unit) -> revert:(event -> unit) -> event list -> unit
(** Schedule the plan: [apply ev] runs at [ev.at]; for windowed events
    [revert ev] runs at [ev.at +. ev.duration]. *)

val pp_event : Format.formatter -> event -> unit
