(** Min-heap priority queue keyed by [(time, sequence)] — the seed
    implementation, kept verbatim as the {e differential oracle} for
    {!Timing_wheel}.

    The sequence number breaks ties so that events scheduled for the same
    instant fire in insertion order — a property the TCP model relies on
    (e.g., an ACK processed before the timer armed after it).  Production
    code goes through {!Event_queue}, which selects the timing wheel by
    default; this module exists so the [sim.wheel] battery can compare the
    wheel's pop sequence against the original heap's on randomized
    schedules. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with priority [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
