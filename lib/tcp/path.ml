module Packet = Stob_net.Packet
module Capture = Stob_net.Capture
module Link = Stob_sim.Link
module Netem = Stob_sim.Netem

type t = {
  to_server : Packet.t Link.t;  (* carries Outgoing packets *)
  to_client : Packet.t Link.t;  (* carries Incoming packets *)
  capture : Capture.t;
  rx : (int * Packet.direction, Packet.t -> unit) Hashtbl.t;
  serialized : (int * Packet.direction, Packet.t -> unit) Hashtbl.t;
  server_qdisc : Packet.t array Qdisc.t option;
  client_netem : Packet.t Netem.t option;  (* impairs deliveries to the client *)
  server_netem : Packet.t Netem.t option;  (* impairs deliveries to the server *)
}

let burst_wire_bytes packets = Array.fold_left (fun acc p -> acc + Packet.wire_size p) 0 packets

let create ~engine ~rate_bps ~delay ?queue_capacity ?(server_fq = false) ?client_netem
    ?server_netem () =
  let rx = Hashtbl.create 16 in
  let serialized = Hashtbl.create 16 in
  let deliver dir p =
    match Hashtbl.find_opt rx (p.Packet.flow, dir) with
    | Some f -> f p
    | None -> ()  (* unregistered flow: packet silently sinks *)
  in
  (* The impairment stage sits between a link's receive end and the
     endpoint demux: packets experience serialization and propagation
     first, then loss/reordering/duplication/jitter. *)
  let impaired spec dir =
    match spec with
    | None -> (deliver dir, None)
    | Some spec ->
        let n = Netem.of_spec ~engine ~deliver:(deliver dir) spec in
        (Netem.feed n, Some n)
  in
  let deliver_to_server, server_netem = impaired server_netem Packet.Outgoing in
  let deliver_to_client, client_netem = impaired client_netem Packet.Incoming in
  let to_server =
    Link.create engine ~rate_bps ~delay ?queue_capacity ~size:Packet.wire_size
      ~deliver:deliver_to_server ()
  in
  let to_client =
    Link.create engine ~rate_bps ~delay ?queue_capacity ~size:Packet.wire_size
      ~deliver:deliver_to_client ()
  in
  let capture = Capture.create () in
  let tap link =
    Link.set_tap link (fun ~time p ->
        Capture.record capture ~time p;
        match Hashtbl.find_opt serialized (p.Packet.flow, p.Packet.dir) with
        | Some f -> f p
        | None -> ())
  in
  tap to_server;
  tap to_client;
  let server_qdisc =
    if server_fq then
      Some (Qdisc.fq ~limit_bytes:(64 * 1024 * 1024) ~size:burst_wire_bytes ())
    else None
  in
  let t =
    { to_server; to_client; capture; rx; serialized; server_qdisc; client_netem; server_netem }
  in
  (match server_qdisc with
  | None -> ()
  | Some q ->
      (* Feed the server->client link from the qdisc whenever it idles. *)
      Link.set_on_idle to_client (fun () ->
          match Qdisc.dequeue q with
          | None -> ()
          | Some (_, burst) -> Array.iter (fun p -> ignore (Link.send to_client p)) burst));
  t

let register t ~flow ~client ~server =
  Hashtbl.replace t.rx (flow, Packet.Incoming) client;
  Hashtbl.replace t.rx (flow, Packet.Outgoing) server

let set_serialized_callback t ~flow ~dir f = Hashtbl.replace t.serialized (flow, dir) f

let send t packets =
  if Array.length packets > 0 then begin
    let dir = packets.(0).Packet.dir in
    match (dir, t.server_qdisc) with
    | Packet.Incoming, Some q ->
        if Link.busy t.to_client || Qdisc.backlog_bytes q > 0 then begin
          let flow = packets.(0).Packet.flow in
          ignore (Qdisc.enqueue q ~flow packets)
        end
        else Array.iter (fun p -> ignore (Link.send t.to_client p)) packets
    | Packet.Incoming, None -> Array.iter (fun p -> ignore (Link.send t.to_client p)) packets
    | Packet.Outgoing, _ -> Array.iter (fun p -> ignore (Link.send t.to_server p)) packets
  end

let capture t = t.capture
let server_qdisc t = t.server_qdisc
let server_link_bytes t = Link.bytes_sent t.to_client
let client_link_bytes t = Link.bytes_sent t.to_server
let drops t =
  Link.drops t.to_client + Link.drops t.to_server
  + match t.server_qdisc with None -> 0 | Some q -> Qdisc.drops q

let netem_stats_of = function None -> Netem.zero_stats | Some n -> Netem.stats n
let client_netem_stats t = Option.map Netem.stats t.client_netem
let server_netem_stats t = Option.map Netem.stats t.server_netem

let netem_stats t =
  Netem.add_stats (netem_stats_of t.client_netem) (netem_stats_of t.server_netem)

let netem_lost t = (netem_stats t).Netem.lost
