(** Queueing disciplines between the transport layer and the NIC.

    This is the second asynchronous stage Figure 1 highlights: a segment
    pushed by TCP may sit in the qdisc and be dequeued later — by fair
    queueing, after other flows' segments — so the application cannot know
    when it reaches the wire.  Two disciplines are provided: plain FIFO and
    byte-quantum deficit-round-robin fair queueing (the behaviour of fq).

    Items are whole TSO segments; fairness is in bytes via each item's
    size. *)

type 'a t

val fifo : limit_bytes:int -> size:('a -> int) -> 'a t
(** Single drop-tail queue of at most [limit_bytes]. *)

val fq : ?quantum:int -> limit_bytes:int -> size:('a -> int) -> unit -> 'a t
(** Deficit-round-robin across flows; [quantum] (default 2 * 1514) bytes of
    service per flow per round; [limit_bytes] bounds the total backlog. *)

val enqueue : 'a t -> flow:int -> 'a -> bool
(** [false] when the item was dropped for lack of space. *)

val dequeue : 'a t -> (int * 'a) option
(** Next scheduled [(flow, item)], or [None] when idle. *)

val backlog_bytes : 'a t -> int
(** Total queued bytes. *)

val limit_bytes : 'a t -> int
(** Current admission limit. *)

val set_limit_bytes : 'a t -> int -> unit
(** Change the admission limit at runtime (like [tc change]).  Queued items
    are kept — only new admissions are gated — so the invariant monitor can
    observe a backlog stranded above a collapsed limit.  Raises
    [Invalid_argument] on a negative limit. *)

val flow_backlog : 'a t -> flow:int -> int
(** Queued bytes belonging to [flow] (the TCP-small-queues accounting). *)

val drops : 'a t -> int
