type t = {
  mss : int;
  header_bytes : int;
  initial_cwnd_pkts : int;
  initial_ssthresh : int;
  rto_min : float;
  rto_init : float;
  ack_every : int;
  delayed_ack : float;
  rcv_wnd : int;
  snd_buf : int;
  tso_max_bytes : int;
  tso_min_bytes : int;
  pacing : bool;
  pacing_segment_interval : float;
  tsq_limit_bytes : int;
  sack : bool;
  wscale : bool;
  persist_max : float;
  pto_max : float;
  idle_timeout : float;
  amp_factor : int;
}

let default =
  {
    mss = 1448;
    header_bytes = Stob_net.Packet.default_header_bytes;
    initial_cwnd_pkts = 10;
    initial_ssthresh = max_int;
    rto_min = 0.2;
    rto_init = 1.0;
    ack_every = 2;
    delayed_ack = 0.0;
    rcv_wnd = 16 * 1024 * 1024;
    snd_buf = 16 * 1024 * 1024;
    tso_max_bytes = 65535;
    tso_min_bytes = 2 * 1448;
    pacing = true;
    pacing_segment_interval = 1e-3;
    tsq_limit_bytes = 256 * 1024;
    sack = true;
    wscale = true;
    persist_max = 60.0;
    pto_max = 10.0;
    idle_timeout = 30.0;
    amp_factor = 3;
  }

(* Smallest shift count that makes [rcv_wnd] representable in the 16-bit
   window field, clamped to the RFC 7323 maximum of 14. *)
let wscale_shift t =
  let rec go s = if s >= 14 || t.rcv_wnd lsr s <= 0xFFFF then s else go (s + 1) in
  go 0

let packet_overhead t = t.header_bytes

let tso_autosize t ~pacing_rate_bps =
  let target_bytes =
    if pacing_rate_bps = infinity || pacing_rate_bps <= 0.0 then t.tso_max_bytes
    else int_of_float (pacing_rate_bps *. t.pacing_segment_interval /. 8.0)
  in
  let clamped = max t.tso_min_bytes (min t.tso_max_bytes target_bytes) in
  let segments = max 1 (clamped / t.mss) in
  segments * t.mss
