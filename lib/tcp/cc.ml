type phase = Slow_start | Congestion_avoidance | Recovery | Startup | Drain | Probe_bw

let phase_name = function
  | Slow_start -> "slow-start"
  | Congestion_avoidance -> "congestion-avoidance"
  | Recovery -> "recovery"
  | Startup -> "startup"
  | Drain -> "drain"
  | Probe_bw -> "probe-bw"

type t = {
  name : string;
  on_ack : now:float -> acked:int -> rtt:float -> inflight:int -> limited:bool -> unit;
  on_loss : now:float -> unit;
  on_rto : now:float -> unit;
  cwnd : unit -> int;
  pacing_rate : unit -> float;
  phase : unit -> phase;
}

type factory = Config.t -> t

let generic_pacing_rate ~config ~cwnd ~srtt ~phase =
  ignore config;
  match srtt with
  | None -> infinity
  | Some srtt when srtt > 0.0 ->
      let factor = match phase with Slow_start | Startup -> 2.0 | _ -> 1.2 in
      factor *. float_of_int (cwnd * 8) /. srtt
  | Some _ -> infinity
