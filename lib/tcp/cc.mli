(** Congestion-controller interface.

    A congestion controller owns two decisions the paper cares about: the
    congestion window (how much may be in flight) and the pacing rate (how
    transmissions are spread over time).  Stob perturbs packet sequences
    {e downstream} of these decisions and must never exceed them (Section 4.2),
    so the interface exposes both, plus the controller's phase so policies can
    stand down during phases where pacing is load-bearing (Section 5.1
    suggests, e.g., BBR's startup). *)

type phase =
  | Slow_start
  | Congestion_avoidance
  | Recovery  (** Loss recovery (after fast retransmit or RTO). *)
  | Startup  (** BBR: exponential bandwidth probing. *)
  | Drain  (** BBR: draining the startup queue. *)
  | Probe_bw  (** BBR: steady-state gain cycling. *)

val phase_name : phase -> string

type t = {
  name : string;
  on_ack : now:float -> acked:int -> rtt:float -> inflight:int -> limited:bool -> unit;
      (** New data acknowledged: [acked] bytes, with an [rtt] sample and the
          bytes still in flight after the ACK.  [limited] marks an ACK whose
          data was sent while the flow was starved by the peer window or by
          lack of application data (the tcp_rate_check_app_limited rule):
          such ACKs measure the starvation, not the path, and rate-based
          controllers must not let them collapse their bandwidth estimate. *)
  on_loss : now:float -> unit;  (** Fast-retransmit-detected loss. *)
  on_rto : now:float -> unit;  (** Retransmission timeout. *)
  cwnd : unit -> int;  (** Congestion window, bytes. *)
  pacing_rate : unit -> float;
      (** Pacing rate in bits/s; [infinity] means "do not pace". *)
  phase : unit -> phase;
}

type factory = Config.t -> t
(** Controllers are created per-connection from the shared config. *)

val generic_pacing_rate : config:Config.t -> cwnd:int -> srtt:float option -> phase:phase -> float
(** The Linux rule for loss-based CCAs under fq: rate = factor * cwnd/srtt,
    factor 2 in slow start and 1.2 afterwards; [infinity] before the first
    RTT sample. *)
