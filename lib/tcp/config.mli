(** TCP endpoint configuration.

    Defaults mirror a contemporary Linux sender: MSS 1448 (1500 MTU minus
    headers and timestamps), initial window 10 segments, 64 KB maximum TSO
    size, fq pacing targeting roughly one segment per millisecond, and a TCP
    small queues limit bounding in-stack buffering. *)

type t = {
  mss : int;  (** Maximum payload per packet, bytes. *)
  header_bytes : int;  (** IP + TCP header bytes per packet. *)
  initial_cwnd_pkts : int;  (** Initial congestion window in segments. *)
  initial_ssthresh : int;  (** Initial slow-start threshold, bytes. *)
  rto_min : float;  (** Lower bound on the retransmission timeout, seconds. *)
  rto_init : float;  (** RTO before the first RTT sample, seconds. *)
  ack_every : int;  (** Send an ACK for every n-th data packet. *)
  delayed_ack : float;  (** Delayed-ACK timer, seconds; [0.] disables it. *)
  rcv_wnd : int;  (** Advertised receive window, bytes. *)
  snd_buf : int;  (** Socket send buffer, bytes. *)
  tso_max_bytes : int;  (** Largest transport segment handed to the NIC. *)
  tso_min_bytes : int;  (** Smallest TSO segment the autosizer will pick. *)
  pacing : bool;  (** Enable fq-style pacing of segment departures. *)
  pacing_segment_interval : float;
      (** TSO autosizing target: pick segment sizes so one segment departs
          roughly every this many seconds at the current pacing rate (the
          Linux behaviour that shrinks TSO on long-RTT paths). *)
  tsq_limit_bytes : int;  (** TCP small queues: max unsent bytes in stack. *)
  sack : bool;  (** Offer SACK-permitted on SYN; use SACK when both sides do. *)
  wscale : bool;  (** Offer window scaling on SYN (RFC 7323). *)
  persist_max : float;
      (** Upper bound on the zero-window persist-probe backoff, seconds. *)
  pto_max : float;
      (** QUIC: upper bound on the backed-off probe timeout, seconds.  The
          backoff multiplier doubles per PTO and resets on forward progress
          (RFC 9002 §6.2); this caps the resulting interval. *)
  idle_timeout : float;
      (** QUIC: close the connection after this many seconds with no
          activity (RFC 9000 §10.1), quiescing every timer; [0.] disables
          the timeout. *)
  amp_factor : int;
      (** QUIC: pre-handshake-confirmation anti-amplification limit — a
          server may send at most [amp_factor] times the bytes it has
          received from the unvalidated client address (RFC 9000 §8.1). *)
}

val default : t

val packet_overhead : t -> int
(** Alias for [header_bytes]. *)

val wscale_shift : t -> int
(** Smallest shift count that makes [rcv_wnd] fit the 16-bit window field,
    clamped to 14 (RFC 7323). *)

val tso_autosize : t -> pacing_rate_bps:float -> int
(** The stack's TSO sizing decision: segment bytes such that segments depart
    every [pacing_segment_interval] at [pacing_rate_bps], clamped to
    [\[tso_min_bytes, tso_max_bytes\]] and rounded down to a whole number of
    MSS-sized packets (at least one). *)
