type 'a flow_state = { queue : 'a Queue.t; mutable deficit : int; mutable backlog : int }

type 'a scheme =
  | Fifo of (int * 'a) Queue.t
  | Fq of { flows : (int, 'a flow_state) Hashtbl.t; active : int Queue.t; quantum : int }

type 'a t = {
  scheme : 'a scheme;
  mutable limit_bytes : int;
  size : 'a -> int;
  mutable total_backlog : int;
  mutable drops : int;
  per_flow : (int, int) Hashtbl.t;  (* flow -> queued bytes, for TSQ accounting *)
}

let fifo ~limit_bytes ~size =
  { scheme = Fifo (Queue.create ()); limit_bytes; size; total_backlog = 0; drops = 0; per_flow = Hashtbl.create 16 }

let fq ?(quantum = 2 * 1514) ~limit_bytes ~size () =
  (* A zero quantum would starve the round-robin loop. *)
  let quantum = max 1 quantum in
  {
    scheme = Fq { flows = Hashtbl.create 16; active = Queue.create (); quantum };
    limit_bytes;
    size;
    total_backlog = 0;
    drops = 0;
    per_flow = Hashtbl.create 16;
  }

let add_flow_bytes t flow bytes =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.per_flow flow) in
  Hashtbl.replace t.per_flow flow (current + bytes)

let enqueue t ~flow item =
  let bytes = t.size item in
  if t.total_backlog + bytes > t.limit_bytes then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    t.total_backlog <- t.total_backlog + bytes;
    add_flow_bytes t flow bytes;
    (match t.scheme with
    | Fifo q -> Queue.add (flow, item) q
    | Fq { flows; active; quantum = _ } ->
        let state =
          match Hashtbl.find_opt flows flow with
          | Some s -> s
          | None ->
              let s = { queue = Queue.create (); deficit = 0; backlog = 0 } in
              Hashtbl.add flows flow s;
              s
        in
        if Queue.is_empty state.queue then begin
          (* Flow becomes active: join the round-robin ring. *)
          state.deficit <- 0;
          Queue.add flow active
        end;
        Queue.add item state.queue;
        state.backlog <- state.backlog + bytes);
    true
  end

let rec fq_dequeue t flows active quantum =
  match Queue.take_opt active with
  | None -> None
  | Some flow -> (
      let state = Hashtbl.find flows flow in
      match Queue.peek_opt state.queue with
      | None -> fq_dequeue t flows active quantum
      | Some item ->
          let bytes = t.size item in
          if state.deficit >= bytes then begin
            ignore (Queue.take state.queue);
            state.deficit <- state.deficit - bytes;
            state.backlog <- state.backlog - bytes;
            if not (Queue.is_empty state.queue) then
              (* Still backlogged: return to the ring with remaining deficit. *)
              Queue.add flow active
            else state.deficit <- 0;
            Some (flow, item)
          end
          else begin
            (* Grant a quantum and move to the back of the ring. *)
            state.deficit <- state.deficit + quantum;
            Queue.add flow active;
            fq_dequeue t flows active quantum
          end)

let dequeue t =
  let result =
    match t.scheme with
    | Fifo q -> Queue.take_opt q
    | Fq { flows; active; quantum } -> fq_dequeue t flows active quantum
  in
  (match result with
  | None -> ()
  | Some (flow, item) ->
      let bytes = t.size item in
      t.total_backlog <- t.total_backlog - bytes;
      add_flow_bytes t flow (-bytes));
  result

let backlog_bytes t = t.total_backlog

let limit_bytes t = t.limit_bytes

let set_limit_bytes t limit =
  if limit < 0 then invalid_arg "Qdisc.set_limit_bytes: negative limit";
  (* Already-queued items are not dropped: like a runtime `tc change`, the
     new limit gates admissions only. *)
  t.limit_bytes <- limit
let flow_backlog t ~flow = Option.value ~default:0 (Hashtbl.find_opt t.per_flow flow)
let drops t = t.drops
