module Packet = Stob_net.Packet
module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu

type conn_state = Closed | Syn_sent | Syn_rcvd | Established_s

(* Sent-segment log entries used for RTT sampling (Karn's rule applied via
   [karn_floor]). *)
type sent_record = { end_seq : int; sent_at : float }

type t = {
  engine : Engine.t;
  config : Config.t;
  cc : Cc.t;
  flow : int;
  dir : Packet.direction;
  cpu : (Cpu.t * Cpu_costs.t) option;
  mutable hooks : Hooks.t;
  mutable tx : Packet.t array -> unit;
  (* --- connection state --- *)
  mutable state : conn_state;
  mutable fin_rcvd : bool;
  mutable fin_acked : bool;
  (* --- negotiated options (fixed after the handshake) --- *)
  mutable snd_mss : int;  (* min of our MSS and the peer's MSS option *)
  mutable sack_ok : bool;  (* both sides sent SACK-permitted *)
  mutable wscale_on : bool;  (* both SYNs carried the wscale option *)
  mutable snd_wscale : int;  (* shift for windows the peer advertises *)
  mutable rcv_wscale : int;  (* shift for windows we advertise *)
  (* --- sender --- *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable app_queue : int;
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  mutable peer_rwnd : int;
  mutable dupacks : int;
  mutable karn_floor : int;
  mutable sacked : (int * int) list;  (* peer-reported [lo, hi) SACK ranges *)
  mutable in_recovery : bool;
  mutable rto_recovery : bool;  (* current episode was opened by a timeout *)
  mutable recover_point : int;  (* snd_nxt when recovery began *)
  mutable rtx_next : int;  (* next hole position to retransmit *)
  mutable sent_log : sent_record list;  (* newest first *)
  mutable rto_timer : Engine.event_id option;
  mutable send_timer : Engine.event_id option;
  mutable persist_timer : Engine.event_id option;
  mutable persist_backoff : float;  (* current persist-probe delay *)
  mutable rate_limited_mark : int;
      (* Sequence point up to which delivery-rate samples are tainted: set
         to [snd_una + inflight] whenever sending is starved by the peer
         window or by lack of application data, so ACKs at or below it are
         flagged app/rwnd-limited to the CCA (tcp_rate_check_app_limited). *)
  mutable in_stack : int;
  pacer : Pacer.t;
  rtt : Rtt.t;
  (* --- receiver --- *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list;  (* disjoint sorted [lo, hi) intervals *)
  mutable fin_seq : int option;  (* sequence number the peer's FIN occupies *)
  mutable unacked_pkts : int;
  mutable delack_timer : Engine.event_id option;
  mutable auto_read : bool;  (* application consumes delivery immediately *)
  mutable rcv_buffered : int;  (* delivered but unread bytes ([auto_read] off) *)
  mutable rcv_adv_edge : int;  (* highest rcv_nxt + window ever advertised *)
  (* --- callbacks --- *)
  mutable on_established : unit -> unit;
  mutable on_receive : int -> unit;
  mutable on_fin : unit -> unit;
  (* --- stats --- *)
  mutable retransmissions : int;
  mutable fast_recoveries : int;
  mutable rto_events : int;
  mutable segments_sent : int;
  mutable packets_sent : int;
  mutable persist_probes : int;
  mutable zero_windows : int;
  mutable dummies_suppressed : int;
}

let create ~engine ~config ~cc ~flow ~dir ?cpu ?(hooks = Hooks.default) ~tx () =
  {
    engine;
    config;
    cc;
    flow;
    dir;
    cpu;
    hooks;
    tx;
    state = Closed;
    fin_rcvd = false;
    fin_acked = false;
    snd_mss = config.Config.mss;
    sack_ok = false;
    wscale_on = false;
    snd_wscale = 0;
    rcv_wscale = 0;
    snd_una = 0;
    snd_nxt = 0;
    app_queue = 0;
    fin_pending = false;
    fin_sent = false;
    (* Nothing is known about the peer's window until its SYN arrives. *)
    peer_rwnd = 0;
    dupacks = 0;
    karn_floor = 0;
    sacked = [];
    in_recovery = false;
    rto_recovery = false;
    recover_point = 0;
    rtx_next = 0;
    sent_log = [];
    rto_timer = None;
    send_timer = None;
    persist_timer = None;
    persist_backoff = config.Config.rto_init;
    rate_limited_mark = 0;
    in_stack = 0;
    pacer = Pacer.create ();
    rtt = Rtt.create config;
    rcv_nxt = 0;
    ooo = [];
    fin_seq = None;
    unacked_pkts = 0;
    delack_timer = None;
    auto_read = true;
    rcv_buffered = 0;
    rcv_adv_edge = 0;
    on_established = (fun () -> ());
    on_receive = (fun _ -> ());
    on_fin = (fun () -> ());
    retransmissions = 0;
    fast_recoveries = 0;
    rto_events = 0;
    segments_sent = 0;
    packets_sent = 0;
    persist_probes = 0;
    zero_windows = 0;
    dummies_suppressed = 0;
  }

let established t = t.state = Established_s
let closed t = t.fin_acked && t.fin_rcvd
let inflight t = t.snd_nxt - t.snd_una
let in_stack t = t.in_stack
let unsent t = t.app_queue
let bytes_acked t = t.snd_una
let retransmissions t = t.retransmissions
let fast_recoveries t = t.fast_recoveries
let rto_events t = t.rto_events
let segments_sent t = t.segments_sent
let packets_sent t = t.packets_sent
let persist_probes t = t.persist_probes
let zero_windows t = t.zero_windows
let dummies_suppressed t = t.dummies_suppressed
let srtt t = Rtt.srtt t.rtt
let set_on_established t f = t.on_established <- f
let set_on_receive t f = t.on_receive <- f
let set_on_fin t f = t.on_fin <- f
let set_hooks t h = t.hooks <- h
let hooks t = t.hooks
let cc t = t.cc
let config t = t.config

let now t = Engine.now t.engine

(* ------------------------------------------------------------------ *)
(* Receive window                                                       *)

let ooo_bytes t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t.ooo

(* Free receive-buffer space beyond rcv_nxt: capacity minus what is sitting
   in the reassembly queue and what was delivered in order but not yet read
   by the application. *)
let rcv_window t = max 0 (t.config.Config.rcv_wnd - t.rcv_buffered - ooo_bytes t)

(* Encode the window for the wire (RFC 7323: right-shifted by our shift
   count, saturating the 16-bit field) and remember the right edge the peer
   will compute, so the receive path never drops data it was granted.

   RFC 793/1122: never retract an advertised right edge.  Free space
   transiently dips below the granted edge while out-of-order data occupies
   the reassembly buffer; advertising the dip would both "shrink the
   window" (forbidden) and make consecutive duplicate ACKs carry different
   windows, which disqualifies them as duplicates (RFC 5681) and silently
   kills fast retransmit. *)
let advertise_window t =
  let w = max (rcv_window t) (t.rcv_adv_edge - t.rcv_nxt) in
  let enc = min 0xFFFF (w lsr t.rcv_wscale) in
  t.rcv_adv_edge <- max t.rcv_adv_edge (t.rcv_nxt + (enc lsl t.rcv_wscale));
  enc

(* The window field of a SYN or SYN|ACK is never scaled. *)
let syn_window t =
  let w = min 0xFFFF (rcv_window t) in
  t.rcv_adv_edge <- max t.rcv_adv_edge (t.rcv_nxt + w);
  w

let advertised_window t = max 0 (t.rcv_adv_edge - t.rcv_nxt)
let rcv_buffered t = t.rcv_buffered
let set_auto_read t b = t.auto_read <- b

(* ------------------------------------------------------------------ *)
(* Transmission helpers                                                 *)

let transmit_burst t packets =
  t.packets_sent <- t.packets_sent + Array.length packets;
  t.tx packets

(* Data segments pass through the CPU model; control packets (SYN, pure
   ACKs) are treated as free — they are not the bottleneck Figure 3 is
   about.  The caller has already charged the TSQ budget. *)
let transmit_segment t packets =
  t.segments_sent <- t.segments_sent + 1;
  match t.cpu with
  | None -> transmit_burst t packets
  | Some (cpu, costs) ->
      let wire = Array.fold_left (fun acc p -> acc + Packet.wire_size p) 0 packets in
      let cost = Cpu_costs.segment_cost costs ~packets:(Array.length packets) ~bytes:wire in
      Cpu.submit cpu ~cost (fun () -> transmit_burst t packets)

(* Commit a built segment: charge the TSQ budget and either hand it to the
   CPU/NIC now or park it until its fq departure timestamp.  Like a real fq
   qdisc, the segment is already immutable — delaying it does not re-open
   the sizing decision. *)
let commit_segment t ~departure packets =
  let wire = Array.fold_left (fun acc p -> acc + Packet.wire_size p) 0 packets in
  t.in_stack <- t.in_stack + wire;
  if departure <= now t then transmit_segment t packets
  else ignore (Engine.schedule_at t.engine ~time:departure (fun () -> transmit_segment t packets))

let send_control t packet = transmit_burst t [| packet |]

let cancel_delack t =
  match t.delack_timer with
  | Some ev ->
      Engine.cancel t.engine ev;
      t.delack_timer <- None
  | None -> ()

let send_pure_ack t =
  cancel_delack t;
  t.unacked_pkts <- 0;
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  let sack = if t.sack_ok then take 3 t.ooo else [] in
  send_control t
    (Packet.pure_ack ~flow:t.flow ~dir:t.dir ~seq:t.snd_nxt ~ack:t.rcv_nxt ~sack
       ~rwnd:(advertise_window t) ())

(* Insert [lo, hi) into a sorted disjoint interval list, coalescing
   overlapping and adjacent intervals. *)
let insert_interval intervals lo hi =
  let rec go acc lo hi = function
    | [] -> List.rev ((lo, hi) :: acc)
    | (l, h) :: rest when h < lo -> go ((l, h) :: acc) lo hi rest
    | (l, h) :: rest when l > hi -> List.rev_append acc ((lo, hi) :: (l, h) :: rest)
    | (l, h) :: rest -> go acc (min l lo) (max h hi) rest
  in
  go [] lo hi intervals

(* ------------------------------------------------------------------ *)
(* SACK scoreboard and hole retransmission                              *)

let merge_sack t blocks =
  if t.sack_ok then
    List.iter (fun (lo, hi) -> if hi > lo then t.sacked <- insert_interval t.sacked lo hi) blocks;
  (* Drop ranges cumulative ACKs have overtaken. *)
  t.sacked <-
    List.filter_map
      (fun (lo, hi) -> if hi <= t.snd_una then None else Some (max lo t.snd_una, hi))
      t.sacked

let sacked_bytes t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t.sacked

(* RFC 6675-style pipe budget: how many MSS-sized retransmissions fit under
   the congestion window.  Bytes below the highest SACKed sequence that are
   not SACKed are treated as lost (they have left the pipe); what remains in
   flight is essentially everything above the highest SACK block. *)
let rtx_budget t =
  let top = List.fold_left (fun acc (_, hi) -> max acc hi) t.snd_una t.sacked in
  let pipe = max 0 (t.snd_nxt - top) in
  let budget = (t.cc.Cc.cwnd () - pipe) / max 1 t.snd_mss in
  min 45 (max 1 budget)

(* Retransmit up to [limit] MSS-sized chunks of un-SACKed holes, resuming
   where the previous call stopped.

   Which holes are presumed lost depends on how recovery began.  In
   dupack-triggered recovery only sequence space {e below the highest
   SACKed byte} may be retransmitted (RFC 6675 IsLost): un-SACKed ranges
   above it are simply still in flight, and resending them both wastes the
   pipe and — because the copies arrive as pure duplicates and draw
   duplicate ACKs — can fake the sender into a second recovery episode.
   After a timeout ([presume_lost]) the whole outstanding window up to the
   recovery point is fair game, go-back-N style.

   The FIN occupies the last sequence number once sent but is NOT a
   payload byte: a rebuilt segment must stop its payload short of the FIN
   slot and carry the flag instead, or the receiver is handed a phantom
   byte and the FIN itself is lost for good. *)
let retransmit_holes ?(presume_lost = false) t ~limit =
  let scan_end =
    if presume_lost then t.recover_point
    else
      let top_sack = List.fold_left (fun acc (_, hi) -> max acc hi) t.snd_una t.sacked in
      if top_sack > t.snd_una then min t.recover_point top_sack
      else
        (* No SACK information — a non-SACK peer, or pure duplicate ACKs
           without blocks.  RFC 6675 degenerates to nothing here; fall back
           to NewReno and presume exactly the head segment lost, or fast
           retransmit would send nothing at all. *)
        min t.recover_point (t.snd_una + t.snd_mss)
  in
  let fin_slot = if t.fin_sent then t.snd_nxt - 1 else max_int in
  let rec go pos sacked remaining =
    if remaining > 0 && pos < scan_end then
      match sacked with
      | (lo, hi) :: rest when pos >= lo -> go (max pos hi) rest remaining
      | _ ->
          let cap = match sacked with (lo, _) :: _ -> min lo scan_end | [] -> scan_end in
          if cap > pos then begin
            let payload = min t.snd_mss (max 0 (min cap fin_slot - pos)) in
            let fin_here = t.fin_sent && pos + payload = fin_slot && cap > fin_slot in
            t.retransmissions <- t.retransmissions + 1;
            t.karn_floor <- t.snd_nxt;
            let pkt =
              Packet.data ~flow:t.flow ~dir:t.dir ~seq:pos ~ack:t.rcv_nxt ~payload ~fin:fin_here
                ~rtx:true ~rwnd:(advertise_window t) ()
            in
            transmit_segment t [| pkt |];
            let advance = max 1 (payload + if fin_here then 1 else 0) in
            t.rtx_next <- pos + advance;
            go (pos + advance) sacked (remaining - 1)
          end
  in
  go (max t.rtx_next t.snd_una) t.sacked limit

(* ------------------------------------------------------------------ *)
(* RTO timer                                                            *)

let cancel_rto t =
  match t.rto_timer with
  | Some ev ->
      Engine.cancel t.engine ev;
      t.rto_timer <- None
  | None -> ()

let cancel_persist t =
  match t.persist_timer with
  | Some ev ->
      Engine.cancel t.engine ev;
      t.persist_timer <- None
  | None -> ()

(* The SYN carries our options offer; the SYN|ACK echoes only what was
   mutually agreed, so a retransmitted copy must repeat the same offer. *)
let send_syn t ~rtx =
  send_control t
    (Packet.syn ~flow:t.flow ~dir:t.dir ~seq:0 ~rtx ~mss:t.config.Config.mss
       ?wscale:(if t.config.Config.wscale then Some (Config.wscale_shift t.config) else None)
       ~sack_permitted:t.config.Config.sack ~rwnd:(syn_window t) ())

let send_synack t ~rtx =
  send_control t
    (Packet.syn ~flow:t.flow ~dir:t.dir ~seq:0 ~ack:(Some t.rcv_nxt) ~rtx ~mss:t.config.Config.mss
       ?wscale:(if t.wscale_on then Some (Config.wscale_shift t.config) else None)
       ~sack_permitted:t.sack_ok ~rwnd:(syn_window t) ())

let rec arm_rto t =
  cancel_rto t;
  let delay = Rtt.rto t.rtt in
  t.rto_timer <- Some (Engine.schedule t.engine ~delay (fun () -> handle_rto t))

and handle_rto t =
  t.rto_timer <- None;
  if inflight t > 0 || (t.state = Syn_sent || t.state = Syn_rcvd) then begin
    t.rto_events <- t.rto_events + 1;
    Rtt.backoff t.rtt;
    t.cc.Cc.on_rto ~now:(now t);
    (match t.state with
    | Syn_sent | Syn_rcvd -> retransmit_head t
    | Established_s | Closed ->
        (* Re-enter recovery over the whole outstanding window: subsequent
           ACKs clock out hole retransmissions at slow-start pace instead
           of one segment per timeout. *)
        t.in_recovery <- true;
        t.rto_recovery <- true;
        t.recover_point <- t.snd_nxt;
        t.rtx_next <- t.snd_una;
        retransmit_holes ~presume_lost:true t ~limit:1);
    arm_rto t
  end

(* Go-back-N style recovery: resend one MSS (or the SYN) from snd_una.
   Karn's rule: the retransmitted sequence space is ambiguous for RTT
   sampling.  During the handshake snd_nxt is still 0 while the SYN
   occupies sequence number 0 (end_seq 1), so the floor must be raised to
   at least 1 or a retransmitted SYN/SYN|ACK would still seed Rtt with an
   inflated sample. *)
and retransmit_head t =
  t.retransmissions <- t.retransmissions + 1;
  t.karn_floor <- max 1 t.snd_nxt;
  match t.state with
  | Syn_sent -> send_syn t ~rtx:true
  | Syn_rcvd -> send_synack t ~rtx:true
  | Established_s | Closed ->
      let outstanding = t.snd_nxt - t.snd_una in
      if outstanding > 0 then begin
        (* The FIN occupies the last sequence number once sent, but it is
           not a payload byte: stop the rebuilt payload short of its slot
           and carry the flag when the segment reaches it. *)
        let fin_slot = if t.fin_sent then t.snd_nxt - 1 else max_int in
        let payload = min t.snd_mss (min outstanding (max 0 (fin_slot - t.snd_una))) in
        let fin_here = t.fin_sent && t.snd_una + payload = fin_slot in
        let pkt =
          Packet.data ~flow:t.flow ~dir:t.dir ~seq:t.snd_una ~ack:t.rcv_nxt ~payload
            ~fin:fin_here ~rtx:true ~rwnd:(advertise_window t) ()
        in
        transmit_segment t [| pkt |]
      end

(* ------------------------------------------------------------------ *)
(* Zero-window persist timer                                            *)

(* When the peer closes its window with nothing left in flight, nothing
   would ever clock another transmission: probe the closed window with one
   byte past its edge (or the bare FIN), backing off exponentially up to
   [persist_max].  Probes are stack-internal recovery traffic like
   retransmissions — they bypass the Stob hooks — but still pass through
   the TSQ/CPU path so their cost is accounted. *)
let rec arm_persist t =
  if t.persist_timer = None then
    t.persist_timer <-
      Some
        (Engine.schedule t.engine
           ~delay:(Float.min t.config.Config.persist_max t.persist_backoff)
           (fun () ->
             t.persist_timer <- None;
             persist_fire t))

and persist_fire t =
  let want_fin = t.fin_pending && not t.fin_sent in
  if
    t.state = Established_s && t.peer_rwnd = 0 && (not t.fin_acked)
    && (t.app_queue > 0 || want_fin || inflight t > 0)
  then begin
    t.persist_probes <- t.persist_probes + 1;
    t.persist_backoff <- Float.min t.config.Config.persist_max (t.persist_backoff *. 2.0);
    (* The probe itself is sent under starvation: its eventual ack must be
       flagged rwnd-limited, so taint everything up to and including it. *)
    t.rate_limited_mark <- max t.rate_limited_mark (t.snd_nxt + 1);
    if inflight t > 0 then
      (* An earlier probe (or the FIN) is still unacknowledged: probe by
         resending the byte below the window, BSD-style. *)
      retransmit_head t
    else if t.app_queue > 0 then begin
      let pkt =
        Packet.data ~flow:t.flow ~dir:t.dir ~seq:t.snd_nxt ~ack:t.rcv_nxt ~payload:1
          ~rwnd:(advertise_window t) ()
      in
      t.app_queue <- t.app_queue - 1;
      t.snd_nxt <- t.snd_nxt + 1;
      (* The probe byte is ambiguous for RTT sampling once retransmitted. *)
      t.karn_floor <- t.snd_nxt;
      commit_segment t ~departure:(now t) [| pkt |]
    end
    else begin
      (* Only the FIN remains: the FIN consumes no buffer, but probing with
         it keeps the close from deadlocking behind the closed window. *)
      let seq = t.snd_nxt in
      t.snd_nxt <- t.snd_nxt + 1;
      t.fin_sent <- true;
      t.karn_floor <- t.snd_nxt;
      let pkt =
        Packet.data ~flow:t.flow ~dir:t.dir ~seq ~ack:t.rcv_nxt ~payload:0 ~fin:true
          ~rwnd:(advertise_window t) ()
      in
      commit_segment t ~departure:(now t) [| pkt |]
    end;
    arm_persist t
  end

(* ------------------------------------------------------------------ *)
(* Sender                                                               *)

(* Build the packets of one TSO segment.  [payload] > 0, or a bare FIN. *)
let build_segment t ~payload ~packet_payload ~fin =
  let rec chunks acc seq remaining =
    if remaining <= 0 then List.rev acc
    else
      let take = min packet_payload remaining in
      let last = remaining - take <= 0 in
      let pkt =
        Packet.data ~flow:t.flow ~dir:t.dir ~seq ~ack:t.rcv_nxt ~payload:take
          ~fin:(fin && last) ~rwnd:(advertise_window t) ()
      in
      chunks (pkt :: acc) (seq + take) (remaining - take)
  in
  if payload = 0 && fin then
    [|
      Packet.data ~flow:t.flow ~dir:t.dir ~seq:t.snd_nxt ~ack:t.rcv_nxt ~payload:0 ~fin:true
        ~rwnd:(advertise_window t) ();
    |]
  else Array.of_list (chunks [] t.snd_nxt payload)

let rec try_send t =
  if t.state = Established_s then begin
    let window = min (t.cc.Cc.cwnd ()) t.peer_rwnd in
    let inflight_now = inflight t in
    let available_window = window - inflight_now in
    let want_fin = t.fin_pending && not t.fin_sent in
    (* tcp_rate_check_app_limited: the congestion window has room but the
       peer window (or the application) is starving the sender — everything
       sent so far, probes included, will be acked under starvation and must
       not be read as a path-bandwidth measurement. *)
    if
      ((t.app_queue > 0 || want_fin) && t.peer_rwnd = 0)
      || (t.app_queue = 0 && (not want_fin) && available_window > 0)
    then t.rate_limited_mark <- max t.rate_limited_mark t.snd_nxt;
    if (t.app_queue > 0 || want_fin) && t.peer_rwnd = 0 && inflight_now = 0 then begin
      (* Zero window and nothing in flight: no ACK will ever clock another
         send.  Start persist probing from the current RTO estimate. *)
      if t.persist_timer = None then begin
        t.persist_backoff <- Rtt.rto t.rtt;
        arm_persist t
      end
    end
    else if
      (t.app_queue > 0 || want_fin)
      && available_window > 0
      && t.in_stack < t.config.Config.tsq_limit_bytes
    then begin
      let pacing_rate = t.cc.Cc.pacing_rate () in
      let stack_tso = Config.tso_autosize t.config ~pacing_rate_bps:pacing_rate in
      let payload_budget = min stack_tso (min available_window t.app_queue) in
      (* Sender-side silly-window avoidance: with data outstanding, wait for
         ACKs rather than dribbling sub-MSS segments. *)
      let sws_blocked =
        payload_budget < t.snd_mss && inflight_now > 0 && t.app_queue > payload_budget
      in
      if not sws_blocked then begin
        let fin_now = want_fin && t.app_queue <= payload_budget in
        if payload_budget > 0 || fin_now then begin
          let departure = Pacer.next_departure t.pacer ~now:(now t) in
          if departure > now t then begin
            (* The stack's own pacing says wait: wake up at the fq departure
               time and decide then.  The hook is only consulted for
               decisions the stack is about to commit. *)
            if t.send_timer = None then
              t.send_timer <-
                Some
                  (Engine.schedule_at t.engine ~time:departure (fun () ->
                       t.send_timer <- None;
                       try_send t))
          end
          else begin
            let stack_decision =
              {
                Hooks.tso_bytes = max 1 payload_budget;
                packet_payload = t.snd_mss;
                earliest_departure = departure;
              }
            in
            let proposed =
              t.hooks.Hooks.on_segment ~now:(now t) ~flow:t.flow ~phase:(t.cc.Cc.phase ())
                stack_decision
            in
            let decision = Hooks.clamp ~stack:stack_decision proposed in
            let payload = min decision.Hooks.tso_bytes payload_budget in
            let fin_here = fin_now && payload = t.app_queue in
            let packets =
              build_segment t ~payload ~packet_payload:decision.Hooks.packet_payload ~fin:fin_here
            in
            let release = decision.Hooks.earliest_departure in
            t.app_queue <- t.app_queue - payload;
            t.snd_nxt <- t.snd_nxt + payload + (if fin_here then 1 else 0);
            if fin_here then t.fin_sent <- true;
            Pacer.commit t.pacer ~departure:release ~rate_bps:pacing_rate ~bytes:payload;
            t.sent_log <- { end_seq = t.snd_nxt; sent_at = release } :: t.sent_log;
            if t.rto_timer = None then arm_rto t;
            commit_segment t ~departure:release packets;
            try_send t
          end
        end
      end
    end
  end

let write t n =
  if n <= 0 then invalid_arg "Endpoint.write: byte count must be positive";
  if t.fin_pending then invalid_arg "Endpoint.write: connection is closing";
  t.app_queue <- t.app_queue + n;
  try_send t

let close t =
  if not t.fin_pending then begin
    t.fin_pending <- true;
    try_send t
  end

let send_dummy t n =
  if n <= 0 then invalid_arg "Endpoint.send_dummy: byte count must be positive";
  if t.fin_pending then invalid_arg "Endpoint.send_dummy: connection is closing";
  if t.state = Established_s && t.peer_rwnd = 0 then
    (* A closed peer window means the receiver has no buffer for anything —
       padding may not bypass flow control any more than data may. *)
    t.dummies_suppressed <- t.dummies_suppressed + 1
  else begin
    let pkt =
      Packet.data ~flow:t.flow ~dir:t.dir ~seq:t.snd_nxt ~ack:t.rcv_nxt
        ~payload:(min n t.snd_mss) ~dummy:true ~rwnd:(advertise_window t) ()
    in
    (* Dummies respect pacing budget so padding cannot out-run the CCA. *)
    let rate = t.cc.Cc.pacing_rate () in
    let departure = Pacer.next_departure t.pacer ~now:(now t) in
    commit_segment t ~departure [| pkt |];
    Pacer.commit t.pacer ~departure ~rate_bps:rate ~bytes:pkt.Packet.payload
  end

let connect t =
  if t.state <> Closed then invalid_arg "Endpoint.connect: not closed";
  t.state <- Syn_sent;
  t.sent_log <- [ { end_seq = 1; sent_at = now t } ];
  send_syn t ~rtx:false;
  arm_rto t

(* Only packets that passed through [transmit_segment] (data, FIN, dummies)
   were charged to the TSQ budget; pure ACKs and SYNs were not. *)
let notify_serialized t (p : Packet.t) =
  if (p.Packet.payload > 0 || p.Packet.fin || p.Packet.dummy) && t.in_stack > 0 then begin
    t.in_stack <- max 0 (t.in_stack - Packet.wire_size p);
    try_send t
  end

(* ------------------------------------------------------------------ *)
(* Receiver                                                             *)

let schedule_ack t =
  t.unacked_pkts <- t.unacked_pkts + 1;
  if t.unacked_pkts >= t.config.Config.ack_every then send_pure_ack t
  else if t.delack_timer = None then
    t.delack_timer <-
      Some
        (Engine.schedule t.engine ~delay:(Float.max t.config.Config.delayed_ack 1e-4) (fun () ->
             t.delack_timer <- None;
             if t.unacked_pkts > 0 then send_pure_ack t))

(* Advance rcv_nxt to [seq_end], deliver [payload_delivered] real payload
   bytes, then pull now-contiguous out-of-order data.  The peer's FIN
   occupies one sequence number ([t.fin_seq]) that is NOT payload: byte
   accounting must stop short of it, and crossing it — whether in this
   segment, in drained out-of-order data, or in a retransmission overlap —
   is what makes the FIN "received".  Returns [true] when the FIN was
   newly delivered by this call (the caller owes the peer an immediate
   ACK). *)
let deliver_payload t n =
  if n > 0 then begin
    if not t.auto_read then t.rcv_buffered <- t.rcv_buffered + n;
    t.on_receive n
  end

let deliver_in_order t seq_end payload_delivered =
  t.rcv_nxt <- seq_end;
  deliver_payload t payload_delivered;
  let rec drain () =
    match t.ooo with
    | (lo, hi) :: rest when lo <= t.rcv_nxt ->
        let data_hi = match t.fin_seq with Some s -> min hi s | None -> hi in
        let new_bytes = max 0 (data_hi - t.rcv_nxt) in
        t.ooo <- rest;
        t.rcv_nxt <- max t.rcv_nxt hi;
        deliver_payload t new_bytes;
        drain ()
    | _ -> ()
  in
  drain ();
  match t.fin_seq with
  | Some s when t.rcv_nxt > s && not t.fin_rcvd ->
      t.fin_rcvd <- true;
      t.on_fin ();
      true
  | _ -> false

(* Consume up to [n] delivered-but-unread bytes from the receive buffer
   (meaningful with [auto_read] off).  Re-opening buffer space re-opens the
   advertised window; per RFC 1122 receiver-side SWS avoidance the bigger
   window is only announced once it has grown by at least one MSS (or half
   the buffer) over what the peer last saw, via an immediate window-update
   ACK. *)
let read t n =
  if n < 0 then invalid_arg "Endpoint.read: negative byte count";
  let consumed = min n t.rcv_buffered in
  t.rcv_buffered <- t.rcv_buffered - consumed;
  if consumed > 0 && t.state = Established_s && not t.fin_rcvd then begin
    let announced = max 0 (t.rcv_adv_edge - t.rcv_nxt) in
    let grown = rcv_window t - announced in
    if grown >= min t.config.Config.mss (t.config.Config.rcv_wnd / 2) then send_pure_ack t
  end;
  consumed

let process_ack t (p : Packet.t) =
  if p.Packet.is_ack && t.state = Established_s then begin
    let old_rwnd = t.peer_rwnd in
    (* Post-handshake windows arrive scaled by the peer's negotiated shift;
       SYN windows are always raw (RFC 7323). *)
    let rwnd = if p.Packet.syn then p.Packet.rwnd else p.Packet.rwnd lsl t.snd_wscale in
    t.peer_rwnd <- rwnd;
    if rwnd = 0 && old_rwnd > 0 then t.zero_windows <- t.zero_windows + 1;
    if rwnd > 0 && t.persist_timer <> None then begin
      (* The window re-opened: stop probing and restart the backoff. *)
      cancel_persist t;
      t.persist_backoff <- Rtt.rto t.rtt
    end;
    if p.Packet.ack > t.snd_una then begin
      let acked = p.Packet.ack - t.snd_una in
      t.snd_una <- p.Packet.ack;
      if t.rtx_next < t.snd_una then t.rtx_next <- t.snd_una;
      merge_sack t p.Packet.sack;
      t.dupacks <- 0;
      (* Recovery bookkeeping: a partial ACK (below the recovery point)
         means the next hole was lost too — retransmit it now (NewReno /
         RFC 6675 behaviour) instead of waiting for an RTO. *)
      if t.in_recovery then begin
        if t.snd_una >= t.recover_point then begin
          t.in_recovery <- false;
          t.rto_recovery <- false
        end
        else retransmit_holes ~presume_lost:t.rto_recovery t ~limit:(rtx_budget t)
      end;
      Rtt.reset_backoff t.rtt;
      if t.fin_sent && t.snd_una >= t.snd_nxt then t.fin_acked <- true;
      (* RTT sample from the newest fully-acked, never-retransmitted
         segment. *)
      let sample = ref None in
      t.sent_log <-
        List.filter
          (fun r ->
            if r.end_seq <= t.snd_una then begin
              if r.end_seq > t.karn_floor && !sample = None then
                sample := Some (now t -. r.sent_at);
              false
            end
            else true)
          t.sent_log;
      (match !sample with Some s -> Rtt.observe t.rtt s | None -> ());
      let rtt_for_cc =
        match !sample with
        | Some s -> s
        | None -> Option.value ~default:0.1 (Rtt.srtt t.rtt)
      in
      t.cc.Cc.on_ack ~now:(now t) ~acked ~rtt:rtt_for_cc ~inflight:(inflight t)
        ~limited:(t.snd_una <= t.rate_limited_mark);
      if inflight t > 0 then arm_rto t else cancel_rto t;
      try_send t
    end
    else if
      p.Packet.ack = t.snd_una && inflight t > 0 && p.Packet.payload = 0 && (not p.Packet.syn)
      && rwnd = old_rwnd && rwnd > 0
      (* RFC 5681: an ACK that changes the advertised window is a window
         update, not a duplicate — counting it toward the dupack threshold
         fakes the sender into spurious fast retransmits.  During a zero
         window the "duplicates" are just probe rejections. *)
    then begin
      t.dupacks <- t.dupacks + 1;
      merge_sack t p.Packet.sack;
      if
        (not t.in_recovery)
        && (t.dupacks >= 3 || sacked_bytes t >= 3 * t.config.Config.mss)
      then begin
        (* Enter loss recovery with the SACK scoreboard. *)
        t.in_recovery <- true;
        t.rto_recovery <- false;
        t.fast_recoveries <- t.fast_recoveries + 1;
        t.recover_point <- t.snd_nxt;
        t.rtx_next <- t.snd_una;
        t.cc.Cc.on_loss ~now:(now t);
        retransmit_holes t ~limit:(rtx_budget t);
        arm_rto t;
        try_send t
      end
      else if t.in_recovery then
        (* Each further dupack clocks out more hole retransmissions, up to
           the pipe budget. *)
        retransmit_holes t ~limit:(rtx_budget t)
    end
    else if p.Packet.ack = t.snd_una && rwnd <> old_rwnd then begin
      (* Pure window update (same cumulative ACK, different window). *)
      if rwnd > 0 && old_rwnd = 0 && inflight t > 0 then begin
        (* The zero-window probe sits unacknowledged below the re-opened
           window: plug the hole now instead of waiting out a timeout. *)
        retransmit_head t;
        arm_rto t
      end;
      try_send t
    end
  end

(* SYN-time options negotiation (both the passive side reading the SYN and
   the active side reading the SYN|ACK).  MSS: effective send MSS is the
   minimum of ours and the peer's offer.  SACK and window scaling are in
   effect only when both sides offered them; an incoming shift count above
   14 is used as 14 (RFC 7323 clamp).  A SYN with no options is a peer that
   negotiates nothing — SACK off, windows unscaled. *)
let apply_syn_options t (p : Packet.t) =
  (match p.Packet.mss_opt with
  | Some m -> t.snd_mss <- max 1 (min t.config.Config.mss m)
  | None -> ());
  t.sack_ok <- t.config.Config.sack && p.Packet.sack_permitted;
  match p.Packet.wscale_opt with
  | Some s when t.config.Config.wscale ->
      t.wscale_on <- true;
      t.snd_wscale <- min 14 (max 0 s);
      t.rcv_wscale <- Config.wscale_shift t.config
  | _ ->
      t.wscale_on <- false;
      t.snd_wscale <- 0;
      t.rcv_wscale <- 0

(* Once both directions are done ([closed]) no timer has work left; a
   pending delayed-ACK, persist probe, or parked pacer wakeup would fire
   into a dead connection and keep the engine artificially busy. *)
let quiesce t =
  cancel_rto t;
  cancel_persist t;
  cancel_delack t;
  match t.send_timer with
  | Some ev ->
      Engine.cancel t.engine ev;
      t.send_timer <- None
  | None -> ()

let rec receive t (p : Packet.t) =
  if p.Packet.dummy then ( (* padding: observe and discard; never acknowledged *) )
  else begin
    (match (t.state, p.Packet.syn, p.Packet.is_ack) with
    | Closed, true, false ->
        (* Passive open: answer SYN with SYN|ACK echoing the agreed options. *)
        t.state <- Syn_rcvd;
        t.rcv_nxt <- 1;
        apply_syn_options t p;
        t.peer_rwnd <- p.Packet.rwnd;
        t.sent_log <- [ { end_seq = 1; sent_at = now t } ];
        send_synack t ~rtx:false;
        arm_rto t
    | Syn_sent, true, true ->
        (* SYN|ACK: complete the three-way handshake.  Karn's rule: if our
           SYN was retransmitted ([karn_floor] >= its end_seq of 1), this
           SYN|ACK may answer either copy — no RTT sample. *)
        t.rcv_nxt <- 1;
        t.snd_una <- 1;
        t.snd_nxt <- max t.snd_nxt 1;
        (match t.sent_log with
        | { end_seq = 1; sent_at } :: _ when t.karn_floor < 1 ->
            Rtt.observe t.rtt (now t -. sent_at)
        | _ -> ());
        t.sent_log <- [];
        apply_syn_options t p;
        t.peer_rwnd <- p.Packet.rwnd;
        cancel_rto t;
        t.state <- Established_s;
        send_pure_ack t;
        t.on_established ();
        try_send t
    | Syn_rcvd, false, true when p.Packet.ack >= 1 ->
        (* Final handshake ACK.  Same Karn guard: a retransmitted SYN|ACK
           makes this sample ambiguous. *)
        t.snd_una <- max t.snd_una 1;
        t.snd_nxt <- max t.snd_nxt 1;
        (match t.sent_log with
        | { end_seq = 1; sent_at } :: _ when t.karn_floor < 1 ->
            Rtt.observe t.rtt (now t -. sent_at)
        | _ -> ());
        t.sent_log <- [];
        t.peer_rwnd <- p.Packet.rwnd lsl t.snd_wscale;
        cancel_rto t;
        t.state <- Established_s;
        t.on_established ();
        process_data t p;
        try_send t
    | Syn_rcvd, true, false ->
        (* Duplicate SYN: retransmit the SYN|ACK.  The SYN|ACK has now been
           sent twice, so the eventual handshake ACK is ambiguous for RTT
           sampling (Karn). *)
        t.retransmissions <- t.retransmissions + 1;
        t.karn_floor <- max 1 t.karn_floor;
        send_synack t ~rtx:true
    | _ ->
        process_ack t p;
        process_data t p);
    if closed t then quiesce t
  end

and process_data t (p : Packet.t) =
  if (p.Packet.payload > 0 || p.Packet.fin) && t.state = Established_s then begin
    let seq_end = Packet.seq_end p in
    let data_end = seq_end - if p.Packet.fin then 1 else 0 in
    if p.Packet.payload > 0 && data_end > t.rcv_adv_edge then
      (* Payload beyond the advertised right edge — a zero-window probe, or
         data sent against a stale window.  Drop the whole segment and
         re-ACK so the sender sees the current window.  (A bare FIN is
         never rejected: it consumes no buffer.) *)
      send_pure_ack t
    else begin
    (* Remember where the peer's FIN sits in sequence space, wherever the
       carrying segment lands (in order, buffered out of order, or inside a
       retransmission overlap): delivery past it is what closes the
       receive side. *)
    if p.Packet.fin then t.fin_seq <- Some (seq_end - 1);
    if p.Packet.seq = t.rcv_nxt then begin
      let fin_now = deliver_in_order t seq_end p.Packet.payload in
      if fin_now then send_pure_ack t else schedule_ack t
    end
    else if p.Packet.seq > t.rcv_nxt then begin
      (* Out of order: buffer and emit an immediate duplicate ACK. *)
      t.ooo <- insert_interval t.ooo p.Packet.seq seq_end;
      send_pure_ack t
    end
    else if seq_end > t.rcv_nxt then begin
      (* Partial overlap with delivered data (retransmission overshoot).
         Only the sequence range beyond rcv_nxt is new, and the FIN's
         sequence-space slot is not a payload byte. *)
      let data_end = seq_end - if p.Packet.fin then 1 else 0 in
      let fin_now = deliver_in_order t seq_end (max 0 (data_end - t.rcv_nxt)) in
      if fin_now then send_pure_ack t else schedule_ack t
    end
    else
      (* Pure duplicate: re-ACK so the sender makes progress. *)
      send_pure_ack t
    end
  end

(* ------------------------------------------------------------------ *)
(* Invariant-monitor surface.  Defined last: the [inspection] field names
   deliberately mirror the internal state and would otherwise shadow the
   mutable fields of [t] for the code above. *)

type inspection = {
  snd_una : int;
  snd_nxt : int;
  rcv_nxt : int;
  cwnd : int;
  inflight : int;
  in_stack : int;
  app_queue : int;
  sacked : (int * int) list;
  in_recovery : bool;
  recover_point : int;
  rtx_next : int;
  fin_sent : bool;
  fin_acked : bool;
  retransmissions : int;
  pacer_next_free : float;
  peer_rwnd : int;
  adv_wnd : int;
  rcv_buffered : int;
  rcv_capacity : int;
  snd_mss : int;
  sack_ok : bool;
  snd_wscale : int;
  rcv_wscale : int;
  persist_armed : bool;
  delack_armed : bool;
  persist_probes : int;
  zero_windows : int;
}

let inspect (t : t) : inspection =
  {
    snd_una = t.snd_una;
    snd_nxt = t.snd_nxt;
    rcv_nxt = t.rcv_nxt;
    cwnd = t.cc.Cc.cwnd ();
    inflight = t.snd_nxt - t.snd_una;
    in_stack = t.in_stack;
    app_queue = t.app_queue;
    sacked = t.sacked;
    in_recovery = t.in_recovery;
    recover_point = t.recover_point;
    rtx_next = t.rtx_next;
    fin_sent = t.fin_sent;
    fin_acked = t.fin_acked;
    retransmissions = t.retransmissions;
    pacer_next_free = Pacer.next_free t.pacer;
    peer_rwnd = t.peer_rwnd;
    adv_wnd = max 0 (t.rcv_adv_edge - t.rcv_nxt);
    rcv_buffered = t.rcv_buffered;
    rcv_capacity = t.config.Config.rcv_wnd;
    snd_mss = t.snd_mss;
    sack_ok = t.sack_ok;
    snd_wscale = t.snd_wscale;
    rcv_wscale = t.rcv_wscale;
    persist_armed = t.persist_timer <> None;
    delack_armed = t.delack_timer <> None;
    persist_probes = t.persist_probes;
    zero_windows = t.zero_windows;
  }

let inject_pacer_jump (t : t) delta = Pacer.jump t.pacer delta
