(** Impairment stress harness: one full request/response/close connection
    per cell of a loss x reorder x CCA matrix.

    Shared by the test battery ([test/test_tcp.ml]), the CI smoke
    ([bench/main.exe smoke]), the [bench/main.exe netem] artifact and
    [stobctl netem], so all of them agree on what a "cell" runs and what
    convergence means.

    Determinism: a cell is a pure function of its parameters and [seed].
    {!run_matrix} pre-splits one seed per cell from the master seed in
    cell order (the pre-split-RNG rule), so results are identical for any
    [?pool] — [--jobs 1] and [--jobs N] must agree bit for bit. *)

type cell = { cca : string; loss : float; reorder : bool }
(** [cca] is ["reno"], ["cubic"] or ["bbr"]; [loss] an i.i.d. per-packet
    loss probability applied independently in both directions. *)

type result = {
  cell : cell;
  client_received : int;  (** Response payload bytes the client app saw. *)
  server_received : int;  (** Request payload bytes the server app saw. *)
  client_closed : bool;
  server_closed : bool;
  server_rtx : int;  (** Retransmissions by the response sender. *)
  client_rtx : int;
  fast_recoveries : int;  (** Server-side fast-retransmit episodes. *)
  rto_events : int;  (** Server-side RTO firings. *)
  netem_lost : int;  (** Packets killed by the impairment stages. *)
  netem_reordered : int;
  netem_duplicated : int;
  queue_drops : int;  (** Congestive queue-overflow drops. *)
  captured_rtx : int;  (** Retransmitted packets visible in the capture. *)
  finish_time : float;
      (** Virtual time of the last application-visible event (payload
          delivery or FIN). *)
  pending_events : int;  (** Engine events left at the horizon; 0 = drained. *)
}

val cc_of_name : string -> Cc.factory
(** Raises [Invalid_argument] on unknown names. *)

val default_cells : unit -> cell list
(** The acceptance matrix: \{reno, cubic, bbr\} x loss \{0, 0.5%, 2%\} x
    reorder \{off, on\}. *)

val run_cell :
  ?rate_bps:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?request:int ->
  ?response:int ->
  ?duplicate:float ->
  ?jitter:float ->
  ?reorder_prob:float ->
  ?reorder_depth:int ->
  ?horizon:float ->
  ?client_config:Config.t ->
  ?server_config:Config.t ->
  seed:int ->
  cell ->
  result
(** One cell: client requests [request] bytes, the server answers with
    [response] bytes and closes; the client closes on the server's FIN.
    Both directions run an impairment stage seeded (distinctly) from
    [seed].  Defaults: 20 Mb/s, 15 ms one-way delay, 256 KiB queues,
    2 KB request, 150 KB response, reordering holds 5% of packets for 3
    later packets when [cell.reorder], 120 s horizon.
    [client_config]/[server_config] override the endpoint configurations —
    the hook for asymmetric-negotiation cells (peer refuses SACK or
    wscale, mismatched MSS, tiny receive buffers). *)

val run_matrix :
  ?pool:Stob_par.Pool.t ->
  ?rate_bps:float ->
  ?delay:float ->
  ?request:int ->
  ?response:int ->
  ?client_config:Config.t ->
  ?server_config:Config.t ->
  seed:int ->
  cell list ->
  result list
(** Run every cell (in parallel over [pool] when given) with per-cell
    seeds pre-split from [seed].  Result order follows the input order
    and is independent of the pool. *)

val converged : ?max_rtx:int -> result -> bool
(** All bytes delivered exactly once in both directions, both endpoints
    closed, the event queue drained, and retransmissions within
    [max_rtx] (default: a generous bound scaled by the impairment loss
    count — a spurious-retransmission storm fails it). *)

val pp_result : Format.formatter -> result -> unit
val print_matrix : result list -> unit
