module Engine = Stob_sim.Engine
module Netem = Stob_sim.Netem
module Capture = Stob_net.Capture
module Rng = Stob_util.Rng
module Units = Stob_util.Units

type cell = { cca : string; loss : float; reorder : bool }

type result = {
  cell : cell;
  client_received : int;
  server_received : int;
  client_closed : bool;
  server_closed : bool;
  server_rtx : int;
  client_rtx : int;
  fast_recoveries : int;
  rto_events : int;
  netem_lost : int;
  netem_reordered : int;
  netem_duplicated : int;
  queue_drops : int;
  captured_rtx : int;
  finish_time : float;
  pending_events : int;
}

let cc_of_name = function
  | "reno" -> Reno.make
  | "cubic" -> Cubic.make
  | "bbr" -> Bbr.make
  | name -> invalid_arg ("Netem_eval.cc_of_name: unknown CCA " ^ name)

let default_cells () =
  List.concat_map
    (fun cca ->
      List.concat_map
        (fun loss -> List.map (fun reorder -> { cca; loss; reorder }) [ false; true ])
        [ 0.0; 0.005; 0.02 ])
    [ "reno"; "cubic"; "bbr" ]

let run_cell ?(rate_bps = Units.mbps 20.0) ?(delay = 0.015) ?(queue_capacity = 256 * 1024)
    ?(request = 2_000) ?(response = 150_000) ?(duplicate = 0.0) ?(jitter = 0.0)
    ?(reorder_prob = 0.05) ?(reorder_depth = 3) ?(horizon = 120.0) ?client_config ?server_config
    ~seed cell =
  let engine = Engine.create () in
  (* Distinct per-direction netem seeds derived from the cell seed. *)
  let seeder = Rng.create seed in
  let netem_config () =
    {
      Netem.default with
      Netem.loss = (if cell.loss > 0.0 then Netem.Iid cell.loss else Netem.No_loss);
      reorder_prob = (if cell.reorder then reorder_prob else 0.0);
      reorder_depth;
      reorder_hold = (2.0 *. delay) +. 0.01;
      duplicate_prob = duplicate;
      jitter;
      seed = Rng.int seeder 1_000_000_000;
    }
  in
  let client_netem = Netem.spec (netem_config ()) in
  let server_netem = Netem.spec (netem_config ()) in
  let path =
    Path.create ~engine ~rate_bps ~delay ~queue_capacity ~client_netem ~server_netem ()
  in
  let conn =
    Connection.create ~engine ~path ~flow:1 ?client_config ?server_config
      ~cc:(cc_of_name cell.cca) ()
  in
  let client = Connection.client conn and server = Connection.server conn in
  let client_received = ref 0 and server_received = ref 0 in
  let responded = ref false and last_event = ref 0.0 in
  let touch () = last_event := Engine.now engine in
  Endpoint.set_on_receive server (fun n ->
      touch ();
      server_received := !server_received + n;
      if (not !responded) && !server_received >= request then begin
        responded := true;
        Endpoint.write server response;
        Endpoint.close server
      end);
  Endpoint.set_on_receive client (fun n ->
      touch ();
      client_received := !client_received + n);
  Endpoint.set_on_fin client (fun () ->
      touch ();
      Endpoint.close client);
  Connection.on_established conn (fun () -> Endpoint.write client request);
  Connection.open_ conn;
  Engine.run ~until:horizon engine;
  let netem = Path.netem_stats path in
  {
    cell;
    client_received = !client_received;
    server_received = !server_received;
    client_closed = Endpoint.closed client;
    server_closed = Endpoint.closed server;
    server_rtx = Endpoint.retransmissions server;
    client_rtx = Endpoint.retransmissions client;
    fast_recoveries = Endpoint.fast_recoveries server;
    rto_events = Endpoint.rto_events server;
    netem_lost = netem.Netem.lost;
    netem_reordered = netem.Netem.reordered;
    netem_duplicated = netem.Netem.duplicated;
    queue_drops = Path.drops path;
    captured_rtx = Capture.rtx_count (Path.capture path);
    finish_time = !last_event;
    pending_events = Engine.pending engine;
  }

let run_matrix ?(pool = Stob_par.Pool.sequential) ?rate_bps ?delay ?request ?response
    ?client_config ?server_config ~seed cells =
  (* Pre-split-RNG rule: derive one seed per cell, in cell order, before
     handing the tasks to the pool. *)
  let master = Rng.create seed in
  let tasks = Array.of_list (List.map (fun c -> (c, Rng.int master max_int)) cells) in
  Array.to_list
    (Stob_par.Pool.map pool
       (fun (c, s) ->
         run_cell ?rate_bps ?delay ?request ?response ?client_config ?server_config ~seed:s c)
       tasks)

let converged ?max_rtx r =
  let rtx_bound =
    match max_rtx with
    | Some m -> m
    | None -> 30 + (10 * (r.netem_lost + r.queue_drops + r.netem_reordered))
  in
  r.client_received > 0 && r.server_received > 0 && r.client_closed && r.server_closed
  && r.pending_events = 0
  && r.server_rtx + r.client_rtx <= rtx_bound

let pp_result fmt r =
  Format.fprintf fmt
    "%-5s loss=%.3f reorder=%-5b  ok=%-5b t=%7.3fs  rx(c/s)=%d/%d  rtx=%d+%d fast=%d rto=%d  \
     lost=%d reord=%d dup=%d qdrop=%d cap_rtx=%d pend=%d"
    r.cell.cca r.cell.loss r.cell.reorder
    (r.client_closed && r.server_closed)
    r.finish_time r.client_received r.server_received r.server_rtx r.client_rtx r.fast_recoveries
    r.rto_events r.netem_lost r.netem_reordered r.netem_duplicated r.queue_drops r.captured_rtx
    r.pending_events

let print_matrix results =
  Printf.printf "%-5s %-6s %-7s  %-4s %-9s %-11s %-14s %-5s %-4s  %s\n" "cca" "loss" "reorder"
    "conv" "time" "bytes(c/s)" "rtx(srv+cli)" "fast" "rto" "netem lost/reord/dup qdrop";
  List.iter
    (fun r ->
      Printf.printf "%-5s %-6.3f %-7b  %-4b %7.3f s %6d/%-4d %6d+%-7d %-5d %-4d  %d/%d/%d %d\n"
        r.cell.cca r.cell.loss r.cell.reorder (converged r) r.finish_time r.client_received
        r.server_received r.server_rtx r.client_rtx r.fast_recoveries r.rto_events r.netem_lost
        r.netem_reordered r.netem_duplicated r.queue_drops)
    results
