(** Per-connection pacing clock (the fq qdisc's virtual departure time).

    Tracks when the next segment may enter the wire so that, at pacing rate
    [r], a segment of [b] bytes reserves [8b/r] seconds of departure budget.
    The decision (query) and the commitment (reservation) are separate so
    that the Stob hook can observe — and delay — the departure before it is
    booked. *)

type t

val create : unit -> t

val next_departure : t -> now:float -> float
(** Earliest permissible departure time for the next segment (>= [now]). *)

val commit : t -> departure:float -> rate_bps:float -> bytes:int -> unit
(** Book a segment: the following segment may not depart before
    [departure + 8*bytes/rate].  An [infinity] rate books no spacing. *)

val reset : t -> unit
(** Forget accumulated budget (used after idle periods so a burst does not
    get an artificial head start, mirroring fq's behaviour). *)

val next_free : t -> float
(** The booked departure horizon itself (introspection: the invariant
    monitor asserts it never moves backwards on the happy path). *)

val jump : t -> float -> unit
(** [jump t delta] shifts the pacing clock by [delta] seconds (clamped at
    zero).  A forward jump parks the flow until the horizon passes — the
    {!Stob_sim.Fault.Pacer_jump} fault; the happy path never calls this. *)
