type t = { mutable next_free : float }

let create () = { next_free = 0.0 }

let next_departure t ~now = Float.max now t.next_free

let commit t ~departure ~rate_bps ~bytes =
  if rate_bps = infinity || rate_bps <= 0.0 then t.next_free <- departure
  else t.next_free <- departure +. (float_of_int (bytes * 8) /. rate_bps)

let reset t = t.next_free <- 0.0

let next_free t = t.next_free

let jump t delta = t.next_free <- Float.max 0.0 (t.next_free +. delta)
