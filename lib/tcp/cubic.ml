let beta = 0.7
let c = 0.4

type state = {
  config : Config.t;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable phase : Cc.phase;
  mutable srtt : float option;
  mutable w_max : float;  (* window (segments) before the last reduction *)
  mutable epoch_start : float option;  (* start of the current growth epoch *)
  mutable k : float;  (* time to regain w_max *)
  mutable tcp_cwnd : float;  (* Reno-equivalent window for the friendly region *)
  mutable recovery_acks : int;
}

let make (config : Config.t) : Cc.t =
  let s =
    {
      config;
      cwnd = config.initial_cwnd_pkts * config.mss;
      ssthresh = config.initial_ssthresh;
      phase = Cc.Slow_start;
      srtt = None;
      w_max = 0.0;
      epoch_start = None;
      k = 0.0;
      tcp_cwnd = 0.0;
      recovery_acks = 0;
    }
  in
  let segs bytes = float_of_int bytes /. float_of_int config.mss in
  let bytes segments = int_of_float (segments *. float_of_int config.mss) in
  let update_srtt rtt =
    s.srtt <- Some (match s.srtt with None -> rtt | Some v -> (0.875 *. v) +. (0.125 *. rtt))
  in
  let cubic_update ~now ~rtt ~acked =
    (match s.epoch_start with
    | Some _ -> ()
    | None ->
        s.epoch_start <- Some now;
        let cwnd_segs = segs s.cwnd in
        if cwnd_segs < s.w_max then s.k <- Float.cbrt ((s.w_max -. cwnd_segs) /. c)
        else s.k <- 0.0;
        s.tcp_cwnd <- cwnd_segs);
    let t = now -. Option.get s.epoch_start +. rtt in
    let target = (c *. ((t -. s.k) ** 3.0)) +. s.w_max in
    (* TCP-friendly region: grow at least as fast as Reno would. *)
    s.tcp_cwnd <- s.tcp_cwnd +. (3.0 *. (1.0 -. beta) /. (1.0 +. beta) *. segs acked /. segs s.cwnd);
    let target = Float.max target s.tcp_cwnd in
    let cwnd_segs = segs s.cwnd in
    if target > cwnd_segs then begin
      (* Approach the target over one RTT's worth of ACKs. *)
      let incr = (target -. cwnd_segs) /. cwnd_segs *. segs acked in
      s.cwnd <- min s.config.snd_buf (s.cwnd + bytes incr)
    end
  in
  let on_ack ~now ~acked ~rtt ~inflight:_ ~limited:_ =
    update_srtt rtt;
    (match s.phase with
    | Cc.Recovery ->
        s.recovery_acks <- s.recovery_acks + acked;
        if s.recovery_acks >= s.ssthresh then
          s.phase <- (if s.cwnd < s.ssthresh then Cc.Slow_start else Cc.Congestion_avoidance)
    | _ -> ());
    match s.phase with
    | Cc.Slow_start ->
        s.cwnd <- min s.config.snd_buf (s.cwnd + acked);
        if s.cwnd >= s.ssthresh then begin
          s.cwnd <- s.ssthresh;
          s.phase <- Cc.Congestion_avoidance
        end
    | Cc.Congestion_avoidance -> cubic_update ~now ~rtt ~acked
    | Cc.Recovery | Cc.Startup | Cc.Drain | Cc.Probe_bw -> ()
  in
  let reduce () =
    s.w_max <- segs s.cwnd;
    s.epoch_start <- None;
    s.ssthresh <- max (2 * config.mss) (int_of_float (beta *. float_of_int s.cwnd));
    s.cwnd <- s.ssthresh
  in
  let on_loss ~now:_ =
    if s.phase <> Cc.Recovery then begin
      reduce ();
      s.recovery_acks <- 0;
      s.phase <- Cc.Recovery
    end
  in
  let on_rto ~now:_ =
    reduce ();
    s.cwnd <- config.mss;
    s.phase <- Cc.Slow_start
  in
  {
    Cc.name = "cubic";
    on_ack;
    on_loss;
    on_rto;
    cwnd = (fun () -> s.cwnd);
    pacing_rate =
      (fun () ->
        if not config.pacing then infinity
        else Cc.generic_pacing_rate ~config ~cwnd:s.cwnd ~srtt:s.srtt ~phase:s.phase);
    phase = (fun () -> s.phase);
  }
