(** One side of a TCP connection: sender and receiver machinery.

    The endpoint implements the data-transmission process Figure 1 shades:
    the send() path (socket buffer, window checks), the transport decisions
    (segmentation into TSO segments, packetization at MSS, pacing release
    times from the CCA), loss recovery (RTO and three-dupack fast
    retransmit), and the receive path (cumulative ACKs with out-of-order
    reassembly and delayed ACKs).

    Packet transmission is asynchronous, exactly as Section 2.3 describes:
    data written by the application may be deferred by window or pacing, and
    segments may be further delayed by the CPU model.  The Stob hook (see
    {!Hooks}) intercepts the per-segment decision; the endpoint clamps the
    hook's answer so it can never exceed the stack's own decision. *)

type t

val create :
  engine:Stob_sim.Engine.t ->
  config:Config.t ->
  cc:Cc.t ->
  flow:int ->
  dir:Stob_net.Packet.direction ->
  ?cpu:Stob_sim.Cpu.t * Cpu_costs.t ->
  ?hooks:Hooks.t ->
  tx:(Stob_net.Packet.t array -> unit) ->
  unit ->
  t
(** [dir] is the direction of packets this endpoint {e sends}.  [tx] hands a
    burst (one TSO segment's packets, or a lone control packet) to the path.
    With [cpu], data segments consume core time before reaching [tx]. *)

(** {1 Connection lifecycle} *)

val connect : t -> unit
(** Actively open: send SYN.  The peer endpoint answers from its [receive]. *)

val established : t -> bool

val close : t -> unit
(** Send FIN once queued data drains. *)

val closed : t -> bool
(** Both FIN sent+acked and peer FIN received. *)

(** {1 Application interface} *)

val write : t -> int -> unit
(** Queue [n] bytes for transmission (the send() syscall).  Raises if the
    byte count is not positive or the connection is closing. *)

val send_dummy : t -> int -> unit
(** Transmit a padding packet of [n] payload bytes.  Dummies consume pacing
    budget and CPU but no sequence space and are not acknowledged; the
    receiver discards them.  Used by padding-style defenses.  Raises (like
    {!write}) once the connection is closing; while the peer advertises a
    zero window the dummy is suppressed and counted
    ({!dummies_suppressed}) — padding may not bypass flow control. *)

val read : t -> int -> int
(** Consume up to [n] delivered-but-unread bytes from the receive buffer,
    returning the count consumed.  Only meaningful with {!set_auto_read}
    off; re-opening enough buffer space triggers a window-update ACK
    (receiver-side silly-window avoidance). *)

val set_auto_read : t -> bool -> unit
(** With auto-read (the default) the application consumes payload the
    instant it is delivered and the advertised window tracks the reassembly
    queue only.  With auto-read off, delivered bytes accumulate in the
    receive buffer until {!read}, shrinking the advertised window — the
    slow-reader model that drives the window to zero. *)

val rcv_buffered : t -> int
(** Delivered-but-unread bytes held in the receive buffer. *)

val advertised_window : t -> int
(** Receive window the peer currently holds: the advertised right edge
    minus [rcv_nxt], after window-scale decoding. *)

val set_on_established : t -> (unit -> unit) -> unit
val set_on_receive : t -> (int -> unit) -> unit
(** Called with byte counts as in-order real payload is delivered. *)

val set_on_fin : t -> (unit -> unit) -> unit

(** {1 Stob interface} *)

val set_hooks : t -> Hooks.t -> unit
val hooks : t -> Hooks.t
val cc : t -> Cc.t

(** {1 Path interface} *)

val receive : t -> Stob_net.Packet.t -> unit
(** Deliver an incoming packet (called by the path demux). *)

val notify_serialized : t -> Stob_net.Packet.t -> unit
(** A packet this endpoint sent started serialization; data-bearing packets
    release TCP-small-queues budget. *)

(** {1 Introspection (tests, experiments)} *)

val inflight : t -> int
(** Unacknowledged bytes in the network. *)

val in_stack : t -> int
(** Bytes submitted to CPU/NIC but not yet serialized (TSQ accounting). *)

val unsent : t -> int
(** Application bytes still queued in the socket buffer. *)

val bytes_acked : t -> int
val retransmissions : t -> int

val fast_recoveries : t -> int
(** Dupack/SACK-triggered loss-recovery episodes entered (fast retransmit,
    not timeouts). *)

val rto_events : t -> int
(** Retransmission timeouts that actually fired recovery. *)

val segments_sent : t -> int
val packets_sent : t -> int

val persist_probes : t -> int
(** Zero-window persist probes sent (exponentially backed off, capped at
    {!Config.t.persist_max}). *)

val zero_windows : t -> int
(** Times the peer's advertised window transitioned to zero. *)

val dummies_suppressed : t -> int
(** Padding packets dropped because the peer's window was closed. *)

val srtt : t -> float option

val config : t -> Config.t
(** The configuration the endpoint was created with. *)

(** Consistent snapshot of the sender/receiver state machine, taken for the
    runtime invariant monitor ({!Stob_check.Monitor}).  Field meanings match
    the internal state: [sacked] are the peer-reported [[lo, hi)] ranges,
    [recover_point]/[rtx_next] are only meaningful while [in_recovery], and
    [pacer_next_free] is the booked fq departure horizon. *)
type inspection = {
  snd_una : int;
  snd_nxt : int;
  rcv_nxt : int;
  cwnd : int;
  inflight : int;
  in_stack : int;
  app_queue : int;
  sacked : (int * int) list;
  in_recovery : bool;
  recover_point : int;
  rtx_next : int;
  fin_sent : bool;
  fin_acked : bool;
  retransmissions : int;
  pacer_next_free : float;
  peer_rwnd : int;  (** Peer's advertised window after wscale decoding. *)
  adv_wnd : int;  (** Window we have granted the peer beyond [rcv_nxt]. *)
  rcv_buffered : int;  (** Delivered-but-unread bytes in the receive buffer. *)
  rcv_capacity : int;  (** Configured receive-buffer size. *)
  snd_mss : int;  (** Negotiated effective send MSS. *)
  sack_ok : bool;  (** SACK negotiated by both sides. *)
  snd_wscale : int;  (** Shift applied to windows the peer advertises. *)
  rcv_wscale : int;  (** Shift applied to windows we advertise. *)
  persist_armed : bool;
  delack_armed : bool;
  persist_probes : int;
  zero_windows : int;
}

val inspect : t -> inspection

val inject_pacer_jump : t -> float -> unit
(** Shift this endpoint's pacing clock ({!Pacer.jump}) — the
    {!Stob_sim.Fault.Pacer_jump} surface.  Never called on the happy path. *)
