(** A client-server network path shared by many connections.

    Two unidirectional links (client->server and server->client) with a
    passive capture on each — the eavesdropper's vantage point.  Multiple
    connections are multiplexed by flow id, like tcpdump seeing all traffic
    between a browser and a site.

    The server egress (the direction a server-side defense controls) can
    optionally run a fair-queueing qdisc and a CPU model shared by all
    flows, matching the paper's server-side deployment scenario.

    Each direction can additionally run a netem-style impairment stage
    (seeded loss, reordering, duplication, jitter — {!Stob_sim.Netem})
    between the link's receive end and the endpoint demux, so recovery
    machinery is exercised under adverse-network conditions that queue
    overflow alone cannot produce. *)

type t

val create :
  engine:Stob_sim.Engine.t ->
  rate_bps:float ->
  delay:float ->
  ?queue_capacity:int ->
  ?server_fq:bool ->
  ?client_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  ?server_netem:Stob_net.Packet.t Stob_sim.Netem.spec ->
  unit ->
  t
(** [delay] is one-way propagation (RTT is twice that plus serialization).
    [queue_capacity] bounds each link's bottleneck queue in bytes.
    [server_fq] interposes a DRR fair-queueing qdisc on the server->client
    direction.  [client_netem] impairs packets the {e client receives}
    (the download direction); [server_netem] impairs packets the server
    receives.  Give the two specs distinct seeds. *)

val register :
  t ->
  flow:int ->
  client:(Stob_net.Packet.t -> unit) ->
  server:(Stob_net.Packet.t -> unit) ->
  unit
(** Bind receive callbacks for a flow.  [client] receives Incoming packets;
    [server] receives Outgoing ones. *)

val set_serialized_callback :
  t -> flow:int -> dir:Stob_net.Packet.direction -> (Stob_net.Packet.t -> unit) -> unit
(** Notify the sending endpoint of [flow] when one of its packets starts
    serialization in direction [dir] (TSQ accounting). *)

val send : t -> Stob_net.Packet.t array -> unit
(** Inject a burst; each packet is routed by its direction field. *)

val capture : t -> Stob_net.Capture.t
(** The combined two-direction capture. *)

val server_qdisc : t -> Stob_net.Packet.t array Qdisc.t option
(** The server-egress fair-queueing qdisc, when [server_fq] was requested.
    Exposed for the invariant monitor (backlog-vs-limit watch) and the
    chaos harness ({!Stob_sim.Fault.Qdisc_collapse} applies
    {!Qdisc.set_limit_bytes} here). *)

val server_link_bytes : t -> int
(** Bytes serialized so far on the server->client link (throughput probes). *)

val client_link_bytes : t -> int
val drops : t -> int
(** Total packets dropped at either bottleneck queue. *)

val netem_stats : t -> Stob_sim.Netem.stats
(** Combined impairment counters over both directions (all zero when no
    netem is configured). *)

val client_netem_stats : t -> Stob_sim.Netem.stats option
(** Counters of the client-side (download) impairment stage, if any. *)

val server_netem_stats : t -> Stob_sim.Netem.stats option
(** Counters of the server-side (upload) impairment stage, if any. *)

val netem_lost : t -> int
(** Packets deliberately lost by the impairment stages — next to {!drops},
    which counts congestive queue-overflow losses. *)
