type state = {
  config : Config.t;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable phase : Cc.phase;
  mutable srtt : float option;
  mutable recovery_acks : int;  (* bytes acked since entering recovery *)
}

let make (config : Config.t) : Cc.t =
  let s =
    {
      config;
      cwnd = config.initial_cwnd_pkts * config.mss;
      ssthresh = config.initial_ssthresh;
      phase = Cc.Slow_start;
      srtt = None;
      recovery_acks = 0;
    }
  in
  let update_srtt rtt =
    s.srtt <- Some (match s.srtt with None -> rtt | Some v -> (0.875 *. v) +. (0.125 *. rtt))
  in
  let on_ack ~now:_ ~acked ~rtt ~inflight:_ ~limited:_ =
    update_srtt rtt;
    (match s.phase with
    | Cc.Recovery ->
        (* Leave recovery once a full window has been acknowledged. *)
        s.recovery_acks <- s.recovery_acks + acked;
        if s.recovery_acks >= s.ssthresh then
          s.phase <- (if s.cwnd < s.ssthresh then Cc.Slow_start else Cc.Congestion_avoidance)
    | _ -> ());
    (match s.phase with
    | Cc.Slow_start ->
        s.cwnd <- s.cwnd + acked;
        if s.cwnd >= s.ssthresh then begin
          s.cwnd <- s.ssthresh;
          s.phase <- Cc.Congestion_avoidance
        end
    | Cc.Congestion_avoidance ->
        (* cwnd += mss * (acked bytes / cwnd): one MSS per window per RTT. *)
        let incr = s.config.mss * acked / max 1 s.cwnd in
        s.cwnd <- s.cwnd + max 0 incr
    | Cc.Recovery | Cc.Startup | Cc.Drain | Cc.Probe_bw -> ());
    s.cwnd <- min s.cwnd s.config.snd_buf
  in
  let on_loss ~now:_ =
    if s.phase <> Cc.Recovery then begin
      s.ssthresh <- max (2 * s.config.mss) (s.cwnd / 2);
      s.cwnd <- s.ssthresh;
      s.recovery_acks <- 0;
      s.phase <- Cc.Recovery
    end
  in
  let on_rto ~now:_ =
    s.ssthresh <- max (2 * s.config.mss) (s.cwnd / 2);
    s.cwnd <- s.config.mss;
    s.phase <- Cc.Slow_start
  in
  {
    Cc.name = "reno";
    on_ack;
    on_loss;
    on_rto;
    cwnd = (fun () -> s.cwnd);
    pacing_rate =
      (fun () ->
        if not config.pacing then infinity
        else Cc.generic_pacing_rate ~config ~cwnd:s.cwnd ~srtt:s.srtt ~phase:s.phase);
    phase = (fun () -> s.phase);
  }
