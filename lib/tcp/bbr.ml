let startup_gain = 2.885
let drain_gain = 1.0 /. 2.885
let probe_gains = [| 1.25; 0.75; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let bw_window_rounds = 10

type state = {
  config : Config.t;
  mutable phase : Cc.phase;
  mutable min_rtt : float;
  mutable bw_samples : (int * float) list;  (* (round, bits/s), newest first *)
  mutable round : int;
  mutable delivered : int;  (* cumulative bytes delivered *)
  mutable next_round_delivered : int;
  mutable full_bw : float;
  mutable full_bw_rounds : int;
  mutable cycle_index : int;
  mutable cycle_start : float;
  mutable cwnd : int;
  mutable rate_epoch_time : float;  (* start of the current delivery-rate sample *)
  mutable rate_epoch_delivered : int;
}

let make (config : Config.t) : Cc.t =
  let s =
    {
      config;
      phase = Cc.Startup;
      min_rtt = infinity;
      bw_samples = [];
      round = 0;
      delivered = 0;
      next_round_delivered = 0;
      full_bw = 0.0;
      full_bw_rounds = 0;
      cycle_index = 0;
      cycle_start = 0.0;
      cwnd = config.initial_cwnd_pkts * config.mss;
      rate_epoch_time = -1.0;
      rate_epoch_delivered = 0;
    }
  in
  let btl_bw () = List.fold_left (fun acc (_, bw) -> Float.max acc bw) 0.0 s.bw_samples in
  let bdp_bytes () =
    if s.min_rtt = infinity then s.config.initial_cwnd_pkts * s.config.mss
    else int_of_float (btl_bw () *. s.min_rtt /. 8.0)
  in
  let pacing_gain () =
    match s.phase with
    | Cc.Startup -> startup_gain
    | Cc.Drain -> drain_gain
    | Cc.Probe_bw -> probe_gains.(s.cycle_index)
    | _ -> 1.0
  in
  let on_ack ~now ~acked ~rtt ~inflight ~limited =
    if rtt < s.min_rtt then s.min_rtt <- rtt;
    s.delivered <- s.delivered + acked;
    (* A "round" is one window's worth of delivery. *)
    let new_round = s.delivered >= s.next_round_delivered in
    if new_round then begin
      s.round <- s.round + 1;
      s.next_round_delivered <- s.delivered + inflight
    end;
    (* Delivery-rate sample: bytes delivered over elapsed wall time since
       the sample epoch (the ACK-clock rate), not acked/rtt — several ACKs
       arrive per RTT, so the latter underestimates grossly.  The windowed
       max filters out ACK compression. *)
    (if s.rate_epoch_time < 0.0 || limited then begin
       (* App/rwnd-limited delivery measures the starvation, not the path:
          a persist-probe byte acked across a zero-window stall reads as a
          few bits per second, and because probe acks advance the round
          counter, inserting it would flush every healthy sample from the
          windowed max — collapsing the pacing rate and wedging the flow
          (nothing is ever delivered again to re-measure).  Restart the
          sample epoch and admit nothing. *)
       s.rate_epoch_time <- now;
       s.rate_epoch_delivered <- s.delivered
     end
     else
       let min_interval =
         if s.min_rtt = infinity then 1e-5 else Float.max 1e-6 (s.min_rtt /. 4.0)
       in
       if now -. s.rate_epoch_time >= min_interval then begin
         let sample =
           float_of_int ((s.delivered - s.rate_epoch_delivered) * 8)
           /. (now -. s.rate_epoch_time)
         in
         s.rate_epoch_time <- now;
         s.rate_epoch_delivered <- s.delivered;
         s.bw_samples <-
           (s.round, sample)
           :: List.filter (fun (r, _) -> r > s.round - bw_window_rounds) s.bw_samples
       end);
    let bw = btl_bw () in
    (match s.phase with
    | Cc.Startup ->
        (* Exit when bandwidth stopped growing >= 25% for three consecutive
           rounds (evaluated once per round, as in BBR v1). *)
        if new_round then begin
          if bw > s.full_bw *. 1.25 then begin
            s.full_bw <- bw;
            s.full_bw_rounds <- 0
          end
          else begin
            s.full_bw_rounds <- s.full_bw_rounds + 1;
            if s.full_bw_rounds >= 3 then s.phase <- Cc.Drain
          end
        end
    | Cc.Drain ->
        if inflight <= bdp_bytes () then begin
          s.phase <- Cc.Probe_bw;
          s.cycle_index <- 0;
          s.cycle_start <- now
        end
    | Cc.Probe_bw ->
        let cycle_len = if s.min_rtt = infinity then 0.01 else Float.max s.min_rtt 1e-4 in
        if now -. s.cycle_start >= cycle_len then begin
          s.cycle_start <- now;
          s.cycle_index <- (s.cycle_index + 1) mod Array.length probe_gains
        end
    | _ -> ());
    let gain = match s.phase with Cc.Startup -> startup_gain | _ -> 2.0 in
    s.cwnd <- max (4 * s.config.mss) (min s.config.snd_buf (int_of_float (gain *. float_of_int (bdp_bytes ()))))
  in
  let on_loss ~now:_ = () in
  let on_rto ~now:_ = s.cwnd <- s.config.mss in
  {
    Cc.name = "bbr";
    on_ack;
    on_loss;
    on_rto;
    cwnd = (fun () -> s.cwnd);
    pacing_rate =
      (fun () ->
        let bw = btl_bw () in
        if bw <= 0.0 then infinity else pacing_gain () *. bw);
    phase = (fun () -> s.phase);
  }
