(** A client-server network path shared by many connections.

    Two unidirectional links (client->server and server->client) with a
    passive capture on each — the eavesdropper's vantage point.  Multiple
    connections are multiplexed by flow id, like tcpdump seeing all traffic
    between a browser and a site.

    The server egress (the direction a server-side defense controls) can
    optionally run a fair-queueing qdisc and a CPU model shared by all
    flows, matching the paper's server-side deployment scenario. *)

type t

val create :
  engine:Stob_sim.Engine.t ->
  rate_bps:float ->
  delay:float ->
  ?queue_capacity:int ->
  ?server_fq:bool ->
  unit ->
  t
(** [delay] is one-way propagation (RTT is twice that plus serialization).
    [queue_capacity] bounds each link's bottleneck queue in bytes.
    [server_fq] interposes a DRR fair-queueing qdisc on the server->client
    direction. *)

val register :
  t ->
  flow:int ->
  client:(Stob_net.Packet.t -> unit) ->
  server:(Stob_net.Packet.t -> unit) ->
  unit
(** Bind receive callbacks for a flow.  [client] receives Incoming packets;
    [server] receives Outgoing ones. *)

val set_serialized_callback :
  t -> flow:int -> dir:Stob_net.Packet.direction -> (Stob_net.Packet.t -> unit) -> unit
(** Notify the sending endpoint of [flow] when one of its packets starts
    serialization in direction [dir] (TSQ accounting). *)

val send : t -> Stob_net.Packet.t array -> unit
(** Inject a burst; each packet is routed by its direction field. *)

val capture : t -> Stob_net.Capture.t
(** The combined two-direction capture. *)

val server_link_bytes : t -> int
(** Bytes serialized so far on the server->client link (throughput probes). *)

val client_link_bytes : t -> int
val drops : t -> int
(** Total packets dropped at either bottleneck queue. *)
