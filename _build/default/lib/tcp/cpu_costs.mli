(** CPU cost decomposition for the transmit path.

    One TSO segment costs a fixed amount (syscall/stack traversal, qdisc,
    DMA mapping), plus a per-packet amount (NIC descriptor work that TSO
    would otherwise amortize), plus a per-byte amount (copy/checksum).
    Shrinking TSO multiplies the fixed term; shrinking packets multiplies
    the per-packet term — exactly the two axes Figure 3 sweeps. *)

type t = { per_segment : float; per_packet : float; per_byte : float }

val none : t
(** Free CPU (all-zero costs): the stack is never CPU-bound. *)

val default_server : t
(** Calibrated so a stock sender (MSS 1448, TSO 44 packets) sustains roughly
    40-50 Gb/s on one core, in line with single-connection iperf3 on the
    paper's 100 Gb/s testbed, and so the most aggressive Figure 3 reduction
    stays above ~20 Gb/s. *)

val segment_cost : t -> packets:int -> bytes:int -> float
(** Seconds of core time to push one segment of [packets] packets totalling
    [bytes] payload+header bytes. *)
