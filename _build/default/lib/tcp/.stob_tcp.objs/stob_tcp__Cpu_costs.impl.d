lib/tcp/cpu_costs.ml:
