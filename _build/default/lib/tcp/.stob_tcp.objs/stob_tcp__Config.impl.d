lib/tcp/config.ml: Stob_net
