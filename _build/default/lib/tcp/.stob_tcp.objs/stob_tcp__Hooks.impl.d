lib/tcp/hooks.ml: Cc Float
