lib/tcp/connection.mli: Cc Config Cpu_costs Endpoint Hooks Path Stob_sim
