lib/tcp/cpu_costs.mli:
