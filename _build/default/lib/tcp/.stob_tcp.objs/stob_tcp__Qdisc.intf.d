lib/tcp/qdisc.mli:
