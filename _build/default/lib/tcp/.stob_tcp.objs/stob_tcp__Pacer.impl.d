lib/tcp/pacer.ml: Float
