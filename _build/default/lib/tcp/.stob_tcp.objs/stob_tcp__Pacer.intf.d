lib/tcp/pacer.mli:
