lib/tcp/bbr.mli: Cc
