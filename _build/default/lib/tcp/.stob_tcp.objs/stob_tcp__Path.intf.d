lib/tcp/path.mli: Stob_net Stob_sim
