lib/tcp/cubic.ml: Cc Config Float Option
