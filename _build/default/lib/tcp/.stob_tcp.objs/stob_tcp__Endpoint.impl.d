lib/tcp/endpoint.ml: Array Cc Config Cpu_costs Float Hooks List Option Pacer Rtt Stob_net Stob_sim
