lib/tcp/cc.mli: Config
