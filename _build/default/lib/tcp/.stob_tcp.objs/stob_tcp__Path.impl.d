lib/tcp/path.ml: Array Hashtbl Qdisc Stob_net Stob_sim
