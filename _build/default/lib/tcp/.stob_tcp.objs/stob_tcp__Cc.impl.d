lib/tcp/cc.ml: Config
