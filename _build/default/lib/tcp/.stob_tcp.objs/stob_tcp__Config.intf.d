lib/tcp/config.mli:
