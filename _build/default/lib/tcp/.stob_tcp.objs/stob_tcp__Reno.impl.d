lib/tcp/reno.ml: Cc Config
