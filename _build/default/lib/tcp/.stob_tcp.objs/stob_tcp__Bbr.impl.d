lib/tcp/bbr.ml: Array Cc Config Float List
