lib/tcp/rtt.mli: Config
