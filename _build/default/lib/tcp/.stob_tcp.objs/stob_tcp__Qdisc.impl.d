lib/tcp/qdisc.ml: Hashtbl Option Queue
