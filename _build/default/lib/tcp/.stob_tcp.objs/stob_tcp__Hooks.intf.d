lib/tcp/hooks.mli: Cc
