lib/tcp/rtt.ml: Config Float Option
