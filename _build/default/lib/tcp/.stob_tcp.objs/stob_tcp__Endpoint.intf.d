lib/tcp/endpoint.mli: Cc Config Cpu_costs Hooks Stob_net Stob_sim
