lib/tcp/connection.ml: Config Cubic Endpoint Path Stob_net
