(** RTT estimation and retransmission timeout (RFC 6298).

    Maintains the smoothed RTT and RTT variance, yielding the RTO used to
    arm retransmission timers.  Karn's rule (no samples from retransmitted
    data) is the caller's responsibility. *)

type t

val create : Config.t -> t

val observe : t -> float -> unit
(** Feed one RTT sample (seconds). *)

val srtt : t -> float option
(** Smoothed RTT; [None] before the first sample. *)

val rttvar : t -> float option
val rto : t -> float
(** Current retransmission timeout, never below [rto_min]. *)

val backoff : t -> unit
(** Exponential backoff after a timeout (doubles RTO, capped at 60 s). *)

val reset_backoff : t -> unit
(** Clear the backoff multiplier after a successful transmission. *)

val min_rtt : t -> float option
(** Smallest sample seen (the propagation-delay estimate BBR needs). *)
