type t = {
  config : Config.t;
  mutable srtt : float option;
  mutable rttvar : float option;
  mutable backoff : float;
  mutable min_rtt : float option;
}

let create config = { config; srtt = None; rttvar = None; backoff = 1.0; min_rtt = None }

let observe t sample =
  if sample < 0.0 then invalid_arg "Rtt.observe: negative sample";
  (match t.min_rtt with
  | None -> t.min_rtt <- Some sample
  | Some m -> if sample < m then t.min_rtt <- Some sample);
  match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- Some (sample /. 2.0)
  | Some srtt ->
      let rttvar = Option.get t.rttvar in
      let rttvar = (0.75 *. rttvar) +. (0.25 *. Float.abs (srtt -. sample)) in
      let srtt = (0.875 *. srtt) +. (0.125 *. sample) in
      t.srtt <- Some srtt;
      t.rttvar <- Some rttvar

let srtt t = t.srtt
let rttvar t = t.rttvar

let rto t =
  let base =
    match (t.srtt, t.rttvar) with
    | Some srtt, Some rttvar -> srtt +. (4.0 *. rttvar)
    | _ -> t.config.Config.rto_init
  in
  let rto = Float.max t.config.Config.rto_min base *. t.backoff in
  Float.min rto 60.0

let backoff t = t.backoff <- Float.min (t.backoff *. 2.0) 64.0
let reset_backoff t = t.backoff <- 1.0
let min_rtt t = t.min_rtt
