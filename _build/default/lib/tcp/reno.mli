(** NewReno-style loss-based congestion control.

    Slow start doubles the window per RTT; congestion avoidance adds one MSS
    per RTT; a fast-retransmit loss halves the window; an RTO collapses it to
    one MSS.  Pacing follows the generic Linux rule (see
    {!Cc.generic_pacing_rate}). *)

val make : Cc.factory
