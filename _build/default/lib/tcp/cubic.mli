(** CUBIC congestion control (RFC 9438, simplified).

    Window growth follows the cubic function W(t) = C*(t - K)^3 + W_max
    anchored at the window size before the last loss, with the TCP-friendly
    (Reno-tracking) lower bound.  Slow start and loss/RTO reactions follow
    the standard scheme (beta = 0.7). *)

val make : Cc.factory
