type t = { per_segment : float; per_packet : float; per_byte : float }

let none = { per_segment = 0.0; per_packet = 0.0; per_byte = 0.0 }

let default_server = { per_segment = 4.0e-6; per_packet = 80.0e-9; per_byte = 0.08e-9 }

let segment_cost t ~packets ~bytes =
  t.per_segment +. (float_of_int packets *. t.per_packet) +. (float_of_int bytes *. t.per_byte)
