(** The Stob interception point in the stack's transmit path.

    Just before the stack hands a TSO segment to packetization, it has made
    three decisions: the segment size, the per-packet payload (MSS/PMTU
    derived), and the earliest departure time (pacing).  The hook receives
    that decision triple and may return a different one.  The endpoint then
    {e clamps} the returned decision so it can never be more aggressive than
    the stack's own (Section 4.2's safety requirement): no larger segment, no
    larger packet, no earlier departure.

    [stob_core] implements policies against this interface; the default hook
    is the identity, i.e., an unmodified stack. *)

type decision = {
  tso_bytes : int;  (** Transport segment bytes handed to the NIC. *)
  packet_payload : int;  (** Payload bytes per packet after NIC split. *)
  earliest_departure : float;  (** Absolute time the segment may depart. *)
}

type t = {
  on_segment : now:float -> flow:int -> phase:Cc.phase -> decision -> decision;
      (** Observe/modify a segment decision.  Called exactly once per
          committed segment; the returned (clamped) decision is binding — in
          particular a later [earliest_departure] parks the already-built
          segment in the qdisc until that timestamp, like an fq departure
          time.  [phase] is the congestion controller's current phase, so
          policies can stand down when pacing is load-bearing
          (Section 5.1). *)
}

val default : t
(** Identity hook: the stack behaves as stock Linux. *)

val clamp : stack:decision -> decision -> decision
(** [clamp ~stack proposed] enforces the safety invariant: result sizes are
    in [\[1, stack's\]] and the departure is never earlier than the stack's. *)
