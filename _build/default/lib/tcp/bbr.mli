(** BBR congestion control (v1, simplified).

    Model-based control: estimates the bottleneck bandwidth (windowed max of
    per-ACK delivery-rate samples) and the path's minimum RTT, then paces at
    [gain * btl_bw] with a window of [2 * BDP].  Phases: STARTUP (gain 2.885
    until bandwidth stops growing), DRAIN (inverse gain until in-flight fits
    the BDP), then PROBE_BW's eight-step gain cycle.  PROBE_RTT is omitted —
    our experiments are far shorter than its 10 s trigger; the omission is
    noted in DESIGN.md.

    BBR matters to this reproduction because it is the paper's canonical
    example (Sections 4.2 and 5.1) of a CCA whose pacing is load-bearing and
    with which Stob policies can conflict. *)

val make : Cc.factory
