(** A full client-server TCP connection wired over a {!Path}.

    Convenience assembly: creates both endpoints with their congestion
    controllers, registers them on the path's demux and TSQ notifications,
    and runs the three-way handshake.  The web workload and the experiment
    harnesses build on this. *)

type t

val create :
  engine:Stob_sim.Engine.t ->
  path:Path.t ->
  flow:int ->
  ?client_config:Config.t ->
  ?server_config:Config.t ->
  ?cc:Cc.factory ->
  ?server_cpu:Stob_sim.Cpu.t * Cpu_costs.t ->
  ?server_hooks:Hooks.t ->
  unit ->
  t
(** Both endpoints default to {!Config.default} and CUBIC.  [server_cpu]
    and [server_hooks] apply to the server endpoint — the sender a
    server-side Stob deployment controls. *)

val client : t -> Endpoint.t
val server : t -> Endpoint.t
val flow : t -> int

val open_ : t -> unit
(** Start the client's active open (SYN). *)

val on_established : t -> (unit -> unit) -> unit
(** Fires when the client side completes the handshake. *)
