module Packet = Stob_net.Packet

type t = { client : Endpoint.t; server : Endpoint.t; flow : int }

let create ~engine ~path ~flow ?(client_config = Config.default) ?(server_config = Config.default)
    ?(cc = Cubic.make) ?server_cpu ?server_hooks () =
  let tx packets = Path.send path packets in
  let client =
    Endpoint.create ~engine ~config:client_config ~cc:(cc client_config) ~flow
      ~dir:Packet.Outgoing ~tx ()
  in
  let server =
    Endpoint.create ~engine ~config:server_config ~cc:(cc server_config) ~flow
      ~dir:Packet.Incoming ?cpu:server_cpu ?hooks:server_hooks ~tx ()
  in
  Path.register path ~flow
    ~client:(fun p -> Endpoint.receive client p)
    ~server:(fun p -> Endpoint.receive server p);
  Path.set_serialized_callback path ~flow ~dir:Packet.Outgoing (Endpoint.notify_serialized client);
  Path.set_serialized_callback path ~flow ~dir:Packet.Incoming (Endpoint.notify_serialized server);
  { client; server; flow }

let client t = t.client
let server t = t.server
let flow t = t.flow
let open_ t = Endpoint.connect t.client
let on_established t f = Endpoint.set_on_established t.client f
