type decision = { tso_bytes : int; packet_payload : int; earliest_departure : float }

type t = { on_segment : now:float -> flow:int -> phase:Cc.phase -> decision -> decision }

let default = { on_segment = (fun ~now:_ ~flow:_ ~phase:_ d -> d) }

let clamp ~stack proposed =
  {
    tso_bytes = max 1 (min stack.tso_bytes proposed.tso_bytes);
    packet_payload = max 1 (min stack.packet_payload proposed.packet_payload);
    earliest_departure = Float.max stack.earliest_departure proposed.earliest_departure;
  }
