lib/sim/link.ml: Engine Queue
