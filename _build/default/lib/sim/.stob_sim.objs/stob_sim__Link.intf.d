lib/sim/link.mli: Engine
