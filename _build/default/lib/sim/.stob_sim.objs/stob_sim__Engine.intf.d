lib/sim/engine.mli:
