(** The discrete-event simulation engine.

    A simulation is a set of callbacks scheduled on a virtual clock.  The
    engine pops the earliest event, advances the clock to its timestamp and
    runs its callback, which may schedule further events.  All simulated
    subsystems (links, TCP timers, the CPU model, page-load drivers) share
    one engine, so cross-subsystem causality is exact. *)

type t

type event_id
(** Handle for cancellation (e.g., a retransmission timer that an ACK
    disarms). *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay].  A negative delay is
    clamped to zero (fires "immediately", after already-queued events for the
    current instant). *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant.  Times before [now] are clamped to [now]. *)

val cancel : t -> event_id -> unit
(** Disarm an event; cancelling an already-fired or cancelled event is a
    no-op. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stops once the next event lies
    strictly beyond [until] and sets the clock to [until]. *)

val step : t -> bool
(** Run exactly one event; [false] when the queue was empty. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events. *)

val events_processed : t -> int
(** Total callbacks executed so far (for engine-level sanity checks). *)
