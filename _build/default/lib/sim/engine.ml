type event = { callback : unit -> unit; mutable cancelled : bool }

type event_id = event

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable live : int;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.0; live = 0; processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let ev = { callback = f; cancelled = false } in
  Event_queue.push t.queue ~time ev;
  t.live <- t.live + 1;
  ev

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let rec step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      (* Cancelled events stay in the heap until popped; skip through them so
         that [step] reports whether real work happened. *)
      if ev.cancelled then step t
      else begin
        t.clock <- time;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        ev.callback ();
        true
      end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Event_queue.peek t.queue with
        | None -> continue := false
        | Some (time, ev) ->
            if ev.cancelled then ignore (Event_queue.pop t.queue)
            else if time > limit then continue := false
            else ignore (step t)
      done;
      if t.clock < limit then t.clock <- limit

let pending t = t.live
let events_processed t = t.processed
