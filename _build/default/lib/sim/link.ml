type 'a t = {
  engine : Engine.t;
  rate_bps : float;
  delay : float;
  queue_capacity : int;
  size : 'a -> int;
  deliver : 'a -> unit;
  waiting : 'a Queue.t;
  mutable waiting_bytes : int;
  mutable busy : bool;
  mutable frames_sent : int;
  mutable bytes_sent : int;
  mutable drops : int;
  mutable tap : (time:float -> 'a -> unit) option;
  mutable on_idle : (unit -> unit) option;
}

let create engine ~rate_bps ~delay ?(queue_capacity = max_int) ~size ~deliver () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  if delay < 0.0 then invalid_arg "Link.create: delay must be non-negative";
  {
    engine;
    rate_bps;
    delay;
    queue_capacity;
    size;
    deliver;
    waiting = Queue.create ();
    waiting_bytes = 0;
    busy = false;
    frames_sent = 0;
    bytes_sent = 0;
    drops = 0;
    tap = None;
    on_idle = None;
  }

let set_tap t f = t.tap <- Some f
let set_on_idle t f = t.on_idle <- Some f

let rec transmit t frame =
  t.busy <- true;
  let bytes = t.size frame in
  (match t.tap with
  | None -> ()
  | Some tap -> tap ~time:(Engine.now t.engine) frame);
  let serialization = float_of_int (bytes * 8) /. t.rate_bps in
  ignore
    (Engine.schedule t.engine ~delay:serialization (fun () ->
         t.frames_sent <- t.frames_sent + 1;
         t.bytes_sent <- t.bytes_sent + bytes;
         (* Propagation happens in parallel with the next serialization. *)
         ignore (Engine.schedule t.engine ~delay:t.delay (fun () -> t.deliver frame));
         match Queue.take_opt t.waiting with
         | None -> (
             t.busy <- false;
             match t.on_idle with None -> () | Some f -> f ())
         | Some next ->
             t.waiting_bytes <- t.waiting_bytes - t.size next;
             transmit t next))

let send t frame =
  if t.busy then begin
    let bytes = t.size frame in
    if t.waiting_bytes + bytes > t.queue_capacity then begin
      t.drops <- t.drops + 1;
      false
    end
    else begin
      Queue.add frame t.waiting;
      t.waiting_bytes <- t.waiting_bytes + bytes;
      true
    end
  end
  else begin
    transmit t frame;
    true
  end

let frames_sent t = t.frames_sent
let bytes_sent t = t.bytes_sent
let drops t = t.drops
let queue_bytes t = t.waiting_bytes
let busy t = t.busy
