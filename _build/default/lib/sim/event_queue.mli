(** Min-heap priority queue keyed by [(time, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant fire in insertion order — a property the TCP model relies on
    (e.g., an ACK processed before the timer armed after it). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with priority [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
