(** Unidirectional link with serialization, propagation and a drop-tail queue.

    A link transmits one frame at a time at [rate_bps]; frames arriving while
    the transmitter is busy wait in a finite FIFO measured in bytes (a
    bottleneck router queue).  After serialization, a frame propagates for
    [delay] seconds and is handed to the receiver callback.

    The type is polymorphic in the frame so the same model carries TCP
    packets, ACKs, or abstract records; only a [size] function is needed.
    Duplex paths are two links.  A tap point (see {!set_tap}) observes every
    frame at the moment it enters the wire — that is where tcpdump sits in
    the paper's data collection. *)

type 'a t

val create :
  Engine.t ->
  rate_bps:float ->
  delay:float ->
  ?queue_capacity:int ->
  size:('a -> int) ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [queue_capacity] is in bytes; default is effectively unbounded
    ([max_int]).  [delay] is one-way propagation.  Raises on non-positive
    [rate_bps] or negative [delay]. *)

val send : 'a t -> 'a -> bool
(** Offer a frame.  [false] means the queue was full and the frame was
    dropped (the drop is also counted in {!drops}). *)

val set_tap : 'a t -> (time:float -> 'a -> unit) -> unit
(** Install a wire observer, called when each frame starts serialization. *)

val set_on_idle : 'a t -> (unit -> unit) -> unit
(** Install a callback invoked whenever the transmitter finishes a frame and
    finds no queued successor — i.e., the link has gone idle.  A qdisc uses
    this to feed the next scheduled frame. *)

val frames_sent : 'a t -> int
(** Frames fully serialized onto the wire. *)

val bytes_sent : 'a t -> int
(** Bytes fully serialized onto the wire. *)

val drops : 'a t -> int
(** Frames dropped at the queue. *)

val queue_bytes : 'a t -> int
(** Bytes currently waiting (excluding the frame being serialized). *)

val busy : 'a t -> bool
(** Whether a frame is currently being serialized. *)
