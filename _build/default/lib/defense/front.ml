module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng

type params = {
  n_client_max : int;
  n_server_max : int;
  w_min : float;
  w_max : float;
  dummy_size : int;
}

let default_params =
  { n_client_max = 600; n_server_max = 1400; w_min = 1.0; w_max = 8.0; dummy_size = 1500 }

let rayleigh rng ~sigma =
  let rec nonzero () =
    let u = Rng.float rng 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  sigma *. sqrt (-2.0 *. log (nonzero ()))

let inject params rng trace dir n_max =
  let n = 1 + Rng.int rng (max 1 n_max) in
  let w = Rng.uniform rng params.w_min params.w_max in
  let t0 = if Trace.length trace = 0 then 0.0 else trace.(0).Trace.time in
  let horizon = t0 +. Trace.duration trace in
  List.init n (fun _ ->
      let t = t0 +. rayleigh rng ~sigma:(w /. 2.0) in
      (* Dummies beyond the trace end are clipped to the live window: an
         implementation stops padding once the page is loaded. *)
      { Trace.time = Float.min t horizon; dir; size = params.dummy_size })

let apply ?(params = default_params) ~rng trace =
  let client = inject params rng trace Packet.Outgoing params.n_client_max in
  let server = inject params rng trace Packet.Incoming params.n_server_max in
  Trace.concat_sorted [ trace; Array.of_list client; Array.of_list server ]
