module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng

let split ?(threshold = 1200) ?first_n trace =
  let bound = Option.value ~default:(Trace.length trace) first_n in
  let out = ref [] in
  Array.iteri
    (fun i (e : Trace.event) ->
      if i < bound && e.Trace.dir = Packet.Incoming && e.Trace.size > threshold then begin
        let first = e.Trace.size / 2 in
        let second = e.Trace.size - first in
        (* The second half leaves immediately after the first; a negligible
           offset keeps the trace strictly ordered without shifting later
           packets (the paper treats the split as instantaneous). *)
        out := { e with Trace.size = second; time = e.Trace.time +. 1e-7 } :: { e with Trace.size = first } :: !out
      end
      else out := e :: !out)
    trace;
  Trace.sort (Array.of_list (List.rev !out))

let delay ?(lo = 0.1) ?(hi = 0.3) ?first_n ~rng trace =
  let bound = Option.value ~default:(Trace.length trace) first_n in
  let offset = ref 0.0 in
  let shifted =
    Array.mapi
      (fun i (e : Trace.event) ->
        if i < bound && i > 0 && e.Trace.dir = Packet.Incoming then begin
          let gap = e.Trace.time -. trace.(i - 1).Trace.time in
          offset := !offset +. (gap *. Rng.uniform rng lo hi)
        end;
        { e with Trace.time = e.Trace.time +. !offset })
      trace
  in
  Trace.sort shifted

let combined ?threshold ?lo ?hi ?first_n ~rng trace =
  delay ?lo ?hi ?first_n ~rng (split ?threshold ?first_n trace)
