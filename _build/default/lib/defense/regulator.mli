(** RegulaTor (Holland & Hopper, PETS 2022), trace-level, simplified.

    Regularizes {e download} traffic into "surges": whenever queued incoming
    data exists, it is released at an initial rate [r] that decays
    exponentially with factor [d]; a new surge (rate reset) starts when the
    queue builds past a threshold fraction of recent volume.  Upload packets
    are released at a fixed ratio of download packets.  Shapes every site's
    download into the same decaying-rate envelope while adapting its length
    to the content. *)

type params = {
  initial_rate : float;  (** Packets per second at a surge start. *)
  decay : float;  (** Per-second multiplicative rate decay (0 < d <= 1). *)
  surge_threshold : int;  (** Queued packets that trigger a new surge. *)
  upload_ratio : int;  (** One upload packet per this many downloads. *)
  packet_size : int;
}

val default_params : params

val apply : ?params:params -> Stob_net.Trace.t -> Stob_net.Trace.t
