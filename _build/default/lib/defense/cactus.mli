(** Cactus (Xie et al., IEEE TIFS 2024), trace-level, simplified.

    Client-side bidirectional obfuscation of encrypted TCP traffic: packets
    are gathered into fixed time windows; within a window they are re-
    emitted at the window boundary as uniform-size packets in a randomly
    shuffled direction order, erasing fine-grained timing, size and
    ordering features while preserving per-window volume. *)

type params = {
  window : float;  (** Batching window, seconds. *)
  cell_size : int;  (** Uniform re-packetization size, bytes. *)
}

val default_params : params
(** 25 ms windows, 1200 B cells. *)

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
