(** Defense cost metrics.

    Section 2.3 argues that padding is the costliest primitive (it burns
    bandwidth non-work-conservingly — FRONT ~80 %, QCSD ~309 % overhead),
    timing manipulation wastes nothing (it is work-conserving), and size
    modification costs only extra headers.  These metrics make that
    comparison measurable for any trace transformation. *)

val bandwidth_overhead : original:Stob_net.Trace.t -> defended:Stob_net.Trace.t -> float
(** Extra wire bytes relative to the original: (defended - original) /
    original.  0.8 means "+80 %". *)

val latency_overhead : original:Stob_net.Trace.t -> defended:Stob_net.Trace.t -> float
(** Extra trace duration relative to the original. *)

val packet_overhead : original:Stob_net.Trace.t -> defended:Stob_net.Trace.t -> float
(** Extra packets relative to the original (header-cost proxy for size
    modification). *)

type summary = { bandwidth : float; latency : float; packets : float }

val summarize : original:Stob_net.Trace.t -> defended:Stob_net.Trace.t -> summary

val mean_summary : summary list -> summary
(** Component-wise mean over a corpus. *)

val pp : Format.formatter -> summary -> unit
