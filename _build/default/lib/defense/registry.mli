(** The WF-defense taxonomy (the paper's Table 1) as data.

    Every defense the paper's survey table lists is registered with its
    target (Tor / TLS / QUIC), strategy (regularization / obfuscation) and
    traffic manipulations.  Defenses this repository implements carry an
    [apply] function so the taxonomy can be extended with {e measured}
    overhead columns (experiment E3/E8 in DESIGN.md). *)

type target = Tor | Tls | Quic | Tls_and_quic

val target_name : target -> string

type strategy = Regularization | Obfuscation

val strategy_name : strategy -> string

type manipulation = Padding | Timing | Packet_size

val manipulation_name : manipulation -> string

type entry = {
  name : string;
  target : target;
  strategy : strategy;
  manipulations : manipulation list;
  apply : (rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t) option;
      (** Present for defenses implemented in this repository. *)
}

val all : entry list
(** Table 1's rows, plus this repository's Stob trace-level equivalents. *)

val implemented : entry list
val find : string -> entry
(** Raises [Not_found]. *)
