module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng
module Histogram = Stob_util.Histogram

type params = { gap_threshold : float; max_dummies_per_gap : int; dummy_size : int }

let default_params = { gap_threshold = 0.05; max_dummies_per_gap = 6; dummy_size = 1500 }

let apply ?(params = default_params) ~rng trace =
  (* Build the "typical gap" histogram from the trace's own sub-threshold
     inter-arrivals (the adaptive part of adaptive padding). *)
  let typical =
    Array.of_list
      (List.filter
         (fun g -> g > 0.0 && g <= params.gap_threshold)
         (Array.to_list (Trace.interarrivals trace)))
  in
  let hist =
    if Array.length typical = 0 then
      Histogram.of_samples ~lo:0.0 ~hi:params.gap_threshold ~bins:16 [| params.gap_threshold /. 4.0 |]
    else Histogram.of_samples ~lo:0.0 ~hi:params.gap_threshold ~bins:16 typical
  in
  let dummies = ref [] in
  Array.iteri
    (fun i (e : Trace.event) ->
      if i > 0 then begin
        let prev = trace.(i - 1) in
        let gap = e.Trace.time -. prev.Trace.time in
        if gap > params.gap_threshold then begin
          (* Fill the silence with dummies in the direction that went
             quiet. *)
          let t = ref (prev.Trace.time +. Histogram.sample hist rng) in
          let count = ref 0 in
          while !t < e.Trace.time && !count < params.max_dummies_per_gap do
            dummies := { Trace.time = !t; dir = prev.Trace.dir; size = params.dummy_size } :: !dummies;
            incr count;
            t := !t +. Histogram.sample hist rng
          done
        end
      end)
    trace;
  Trace.concat_sorted [ trace; Array.of_list !dummies ]
