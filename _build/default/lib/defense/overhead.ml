module Trace = Stob_net.Trace

let ratio extra base = if base <= 0.0 then 0.0 else extra /. base

let bandwidth_overhead ~original ~defended =
  let o = float_of_int (Trace.bytes original) and d = float_of_int (Trace.bytes defended) in
  ratio (d -. o) o

let latency_overhead ~original ~defended =
  ratio (Trace.duration defended -. Trace.duration original) (Trace.duration original)

let packet_overhead ~original ~defended =
  let o = float_of_int (Trace.length original) and d = float_of_int (Trace.length defended) in
  ratio (d -. o) o

type summary = { bandwidth : float; latency : float; packets : float }

let summarize ~original ~defended =
  {
    bandwidth = bandwidth_overhead ~original ~defended;
    latency = latency_overhead ~original ~defended;
    packets = packet_overhead ~original ~defended;
  }

let mean_summary summaries =
  let n = float_of_int (max 1 (List.length summaries)) in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 summaries in
  {
    bandwidth = sum (fun s -> s.bandwidth) /. n;
    latency = sum (fun s -> s.latency) /. n;
    packets = sum (fun s -> s.packets) /. n;
  }

let pp fmt s =
  Format.fprintf fmt "bandwidth %+.1f%%, latency %+.1f%%, packets %+.1f%%" (s.bandwidth *. 100.0)
    (s.latency *. 100.0) (s.packets *. 100.0)
