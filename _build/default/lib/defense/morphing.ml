module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng
module Histogram = Stob_util.Histogram

type params = { target : Stob_util.Histogram.t }

let default_params =
  (* Bimodal small-packet target: lots of 100-400 B, some 600-900 B. *)
  let samples =
    Array.init 400 (fun i -> if i mod 4 = 0 then 600.0 +. float_of_int (i mod 300) else 100.0 +. float_of_int (i mod 300))
  in
  { target = Histogram.of_samples ~lo:80.0 ~hi:1000.0 ~bins:32 samples }

let apply ?(params = default_params) ~rng trace =
  let out = ref [] in
  Array.iter
    (fun (e : Trace.event) ->
      if e.Trace.dir <> Packet.Incoming then out := e :: !out
      else begin
        (* Cover the real bytes with draws from the target distribution;
           the final draw's excess is padding. *)
        let remaining = ref e.Trace.size in
        let k = ref 0 in
        while !remaining > 0 do
          let size = max 80 (int_of_float (Histogram.sample params.target rng)) in
          out :=
            { e with Trace.size; time = e.Trace.time +. (float_of_int !k *. 5e-5) } :: !out;
          remaining := !remaining - size;
          incr k
        done
      end)
    trace;
  Trace.concat_sorted [ Array.of_list (List.rev !out) ]
