module Trace = Stob_net.Trace
module Packet = Stob_net.Packet

type params = {
  packet_size : int;
  interval_out : float;
  interval_in : float;
  pad_multiple : int;
}

let default_params =
  { packet_size = 1500; interval_out = 0.04; interval_in = 0.012; pad_multiple = 100 }

let stream params dir ~interval bytes =
  let needed = (bytes + params.packet_size - 1) / params.packet_size in
  let l = max 1 params.pad_multiple in
  let n = max l ((needed + l - 1) / l * l) in
  Array.init n (fun i -> { Trace.time = float_of_int i *. interval; dir; size = params.packet_size })

let apply ?(params = default_params) trace =
  let out =
    stream params Packet.Outgoing ~interval:params.interval_out
      (Trace.bytes ~dir:Packet.Outgoing trace)
  in
  let inc =
    stream params Packet.Incoming ~interval:params.interval_in
      (Trace.bytes ~dir:Packet.Incoming trace)
  in
  Trace.concat_sorted [ out; inc ]
