module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng

type params = { window : float; cell_size : int }

let default_params = { window = 0.025; cell_size = 1200 }

let apply ?(params = default_params) ~rng trace =
  if Trace.length trace = 0 then Trace.empty
  else begin
    let t0 = trace.(0).Trace.time in
    (* Per-window byte totals per direction. *)
    let windows : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun (e : Trace.event) ->
        let w = int_of_float ((e.Trace.time -. t0) /. params.window) in
        let out_bytes, in_bytes =
          match Hashtbl.find_opt windows w with
          | Some pair -> pair
          | None ->
              let pair = (ref 0, ref 0) in
              Hashtbl.add windows w pair;
              pair
        in
        (match e.Trace.dir with
        | Packet.Outgoing -> out_bytes := !out_bytes + e.Trace.size
        | Packet.Incoming -> in_bytes := !in_bytes + e.Trace.size))
      trace;
    let out = ref [] in
    Hashtbl.iter
      (fun w (out_bytes, in_bytes) ->
        let cells bytes = (bytes + params.cell_size - 1) / params.cell_size in
        let dirs =
          Array.append
            (Array.make (cells !out_bytes) Packet.Outgoing)
            (Array.make (cells !in_bytes) Packet.Incoming)
        in
        Rng.shuffle rng dirs;
        (* Everything re-emits at the window boundary, back to back. *)
        let release = t0 +. (float_of_int (w + 1) *. params.window) in
        Array.iteri
          (fun i dir ->
            out :=
              { Trace.time = release +. (float_of_int i *. 2e-5); dir; size = params.cell_size }
              :: !out)
          dirs)
      windows;
    Trace.sort (Array.of_list !out)
  end
