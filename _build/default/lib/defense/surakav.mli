(** Surakav (Gong et al., IEEE S&P 2022), trace-level, simplified.

    Shapes every page load onto a randomly drawn {e reference trace}: a
    burst schedule generated independently of the real content (the
    original uses a GAN trained on real loads; the simplification draws
    plausible burst schedules from parametric distributions).  Real bytes
    are transmitted on the reference schedule — padding when the real load
    is smaller than the reference burst, extending with further reference
    bursts until all real bytes have been carried. *)

type params = {
  burst_packets_mean : float;  (** Mean packets per reference burst. *)
  burst_gap_mean : float;  (** Mean silence between bursts, seconds. *)
  packet_interval : float;  (** In-burst packet spacing, seconds. *)
  packet_size : int;
  upload_every : int;  (** One upload packet per this many downloads. *)
}

val default_params : params

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
