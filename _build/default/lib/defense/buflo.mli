(** BuFLO (Dyer et al., IEEE S&P 2012), trace-level.

    The canonical regularization defense: both directions transmit fixed-
    size packets at a fixed interval, padding when no real data is queued,
    for at least [tau] seconds and until the real payload has drained.
    Every trace therefore looks like the same constant-rate stream, varying
    only in length — strong protection at extreme bandwidth and latency
    cost, the inefficiency the paper's Section 2.3 criticizes. *)

type params = {
  packet_size : int;  (** Fixed wire size, both directions. *)
  interval : float;  (** Seconds between packets in each direction. *)
  tau : float;  (** Minimum defended duration, seconds. *)
}

val default_params : params
(** 1500 B every 4 ms (3 Mb/s per direction), tau = 10 s. *)

val apply : ?params:params -> Stob_net.Trace.t -> Stob_net.Trace.t
(** Deterministic (no RNG): the output depends only on each direction's
    byte volume and the parameters. *)
