module Trace = Stob_net.Trace
module Packet = Stob_net.Packet

type params = {
  initial_rate : float;
  decay : float;
  surge_threshold : int;
  upload_ratio : int;
  packet_size : int;
}

let default_params =
  { initial_rate = 300.0; decay = 0.9; surge_threshold = 60; upload_ratio = 4; packet_size = 1500 }

let apply ?(params = default_params) trace =
  let arrivals =
    Array.to_list (Trace.times ~dir:Packet.Incoming trace)
  in
  match arrivals with
  | [] -> Trace.sort (Array.copy trace)
  | first :: _ ->
      let out = ref [] in
      let emitted = ref 0 in
      let pending = ref arrivals in
      let queued = ref 0 in
      let t = ref first in
      let surge_start = ref first in
      let continue = ref true in
      while !continue do
        (* Move arrivals whose time has passed into the queue. *)
        let rec absorb () =
          match !pending with
          | a :: rest when a <= !t ->
              incr queued;
              pending := rest;
              absorb ()
          | _ -> ()
        in
        absorb ();
        (* Queue pressure starts a fresh surge (rate reset). *)
        if !queued >= params.surge_threshold then surge_start := !t;
        let rate = params.initial_rate *. (params.decay ** (!t -. !surge_start)) in
        (* Emit one download packet per slot: real if queued, dummy during a
           live surge otherwise. *)
        let emit_real = !queued > 0 in
        if emit_real then decr queued;
        out := { Trace.time = !t; dir = Packet.Incoming; size = params.packet_size } :: !out;
        incr emitted;
        if !emitted mod params.upload_ratio = 0 then
          out := { Trace.time = !t; dir = Packet.Outgoing; size = params.packet_size } :: !out;
        let gap = Float.min 1.0 (1.0 /. Float.max rate 1.0) in
        t := !t +. gap;
        if !pending = [] && !queued = 0 then continue := false
      done;
      Trace.sort (Array.of_list (List.rev !out))
