(** Section 3's emulated kernel countermeasures, as trace transformations.

    The paper takes unmodified tcpdump traces and emulates two packet-
    sequence modifications a kernel defense could enforce, applied to
    incoming (server-to-client) traffic only:

    - {e splitting}: every incoming packet larger than 1200 B becomes two
      packets of half the size;
    - {e delaying}: each incoming packet's inter-arrival gap from the
      preceding packet grows by a uniform random 10-30 %, with the added
      delay cascading to everything after it (as a real kernel delay
      would);
    - {e combined}: splitting then delaying.

    Each transformation can be restricted to the first [n] packets of the
    trace — the censorship setting where only the connection prefix is
    defended/observed. *)

val split : ?threshold:int -> ?first_n:int -> Stob_net.Trace.t -> Stob_net.Trace.t
(** Default threshold 1200 B.  Byte-conserving: the two halves sum to the
    original size. *)

val delay :
  ?lo:float -> ?hi:float -> ?first_n:int -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
(** Defaults [lo = 0.1], [hi = 0.3] (the paper's 10-30 %). *)

val combined :
  ?threshold:int ->
  ?lo:float ->
  ?hi:float ->
  ?first_n:int ->
  rng:Stob_util.Rng.t ->
  Stob_net.Trace.t ->
  Stob_net.Trace.t
(** {!split} then {!delay}, both over the same prefix bound. *)
