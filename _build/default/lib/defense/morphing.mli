(** Traffic Morphing (Wright, Coull, Monrose — NDSS 2009), trace-level,
    simplified.

    Makes one site's packet-size distribution look like another's: each
    real packet's size is re-mapped to a draw from a {e target} size
    distribution (the original uses a convex-optimized morphing matrix to
    minimize overhead; the simplification re-samples, splitting when the
    drawn size is smaller than the real payload and padding when larger —
    preserving payload bytes while wearing the target's size histogram). *)

type params = {
  target : Stob_util.Histogram.t;  (** Target incoming packet-size distribution. *)
}

val default_params : params
(** A small-packet-heavy target (interactive-traffic-like), maximally
    unlike bulk web download sizes. *)

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
