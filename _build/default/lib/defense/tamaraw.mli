(** Tamaraw (Cai et al., CCS 2014 — reference [8] in the paper's BuFLO
    row), trace-level.

    The BuFLO family's refinement: per-direction constant intervals
    (downloads faster than uploads), fixed packet sizes, and — the key
    idea — each direction's {e total packet count} padded up to the next
    multiple of L, so trace lengths quantize into buckets and leak only
    log-many bits. *)

type params = {
  packet_size : int;
  interval_out : float;  (** Upload inter-packet interval, seconds. *)
  interval_in : float;  (** Download inter-packet interval, seconds. *)
  pad_multiple : int;  (** L: pad each direction's count to a multiple. *)
}

val default_params : params
(** 1500 B, uploads every 40 ms, downloads every 12 ms, L = 100. *)

val apply : ?params:params -> Stob_net.Trace.t -> Stob_net.Trace.t
