(** NetShaper (Sabzi et al., USENIX Security 2024), trace-level, simplified.

    A differentially-private traffic-shaping middlebox: time is divided into
    windows; in each window the shaper transmits at a rate equal to the
    recent observed demand plus Laplace noise (clamped to a floor), padding
    when demand falls short and queueing when it exceeds the budget.  The
    paper's Section 5.3 uses NetShaper as the contrast to Stob: it offers a
    DP guarantee but interposes a middlebox — a single point of observation
    — whereas Stob keeps the defense in the end host.

    This trace-level model reproduces the shaping behaviour (per-window
    noisy budgets, padding, spill-over queueing) for overhead and accuracy
    comparisons. *)

type params = {
  window : float;  (** Shaping-decision interval, seconds. *)
  noise_scale : float;  (** Laplace scale, bytes per window. *)
  floor_bytes : int;  (** Minimum per-window budget (padding floor). *)
  packet_size : int;
}

val default_params : params
(** 50 ms windows, 20 KiB noise scale, 8 KiB floor, MTU packets. *)

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
(** Shapes the incoming (server-to-client) direction; outgoing packets pass
    through (the client-side shaper is symmetric in the real system). *)
