module Trace = Stob_net.Trace
module Packet = Stob_net.Packet

type params = { packet_size : int; interval : float; tau : float }

let default_params = { packet_size = 1500; interval = 0.004; tau = 10.0 }

let stream params dir bytes =
  (* Enough fixed-size packets to carry the real bytes, and never shorter
     than tau. *)
  let needed = (bytes + params.packet_size - 1) / params.packet_size in
  let minimum = int_of_float (params.tau /. params.interval) in
  let n = max needed minimum in
  Array.init n (fun i ->
      { Trace.time = float_of_int i *. params.interval; dir; size = params.packet_size })

let apply ?(params = default_params) trace =
  let out = stream params Packet.Outgoing (Trace.bytes ~dir:Packet.Outgoing trace) in
  let inc = stream params Packet.Incoming (Trace.bytes ~dir:Packet.Incoming trace) in
  Trace.concat_sorted [ out; inc ]
