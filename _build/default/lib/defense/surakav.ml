module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng

type params = {
  burst_packets_mean : float;
  burst_gap_mean : float;
  packet_interval : float;
  packet_size : int;
  upload_every : int;
}

let default_params =
  {
    burst_packets_mean = 30.0;
    burst_gap_mean = 0.06;
    packet_interval = 0.0015;
    packet_size = 1500;
    upload_every = 5;
  }

let apply ?(params = default_params) ~rng trace =
  let real_bytes = Trace.bytes ~dir:Packet.Incoming trace in
  let out = ref [] in
  let sent = ref 0 in
  let t = ref 0.0 in
  let emitted = ref 0 in
  (* Draw reference bursts until the real payload is covered; every burst is
     fully transmitted (its tail beyond the real data is padding). *)
  while !sent < real_bytes do
    let burst_len = 1 + Rng.poisson rng ~lambda:params.burst_packets_mean in
    for _ = 1 to burst_len do
      out := { Trace.time = !t; dir = Packet.Incoming; size = params.packet_size } :: !out;
      sent := !sent + params.packet_size;
      incr emitted;
      if !emitted mod params.upload_every = 0 then
        out := { Trace.time = !t; dir = Packet.Outgoing; size = params.packet_size } :: !out;
      t := !t +. params.packet_interval
    done;
    t := !t +. Rng.exponential rng ~rate:(1.0 /. params.burst_gap_mean)
  done;
  Trace.sort (Array.of_list (List.rev !out))
