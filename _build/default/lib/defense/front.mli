(** FRONT (Gong & Wang, USENIX Security 2020), trace-level.

    A zero-delay padding defense: each side independently injects a random
    number of dummy packets whose timestamps are drawn from a Rayleigh
    distribution with a random window parameter, concentrating the noise at
    the trace front where WF features are most informative.  Real packets
    are never touched, so FRONT adds bandwidth overhead but no latency —
    this is the defense the paper cites at ~80 % bandwidth overhead. *)

type params = {
  n_client_max : int;  (** Max dummies injected by the client side. *)
  n_server_max : int;  (** Max dummies injected by the server side. *)
  w_min : float;  (** Minimum Rayleigh window, seconds. *)
  w_max : float;  (** Maximum Rayleigh window, seconds. *)
  dummy_size : int;  (** Wire size of a dummy packet. *)
}

val default_params : params
(** The paper's FT-1-ish setting scaled to short HTTPS traces:
    up to 600/1400 dummies, windows 1-8 s, MTU-sized dummies. *)

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
