lib/defense/alpaca.ml: Array Float List Stob_net
