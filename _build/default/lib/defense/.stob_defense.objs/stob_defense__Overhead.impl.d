lib/defense/overhead.ml: Format List Stob_net
