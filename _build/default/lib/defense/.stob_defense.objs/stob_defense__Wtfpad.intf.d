lib/defense/wtfpad.mli: Stob_net Stob_util
