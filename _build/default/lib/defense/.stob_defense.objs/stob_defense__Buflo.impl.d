lib/defense/buflo.ml: Array Stob_net
