lib/defense/regulator.mli: Stob_net
