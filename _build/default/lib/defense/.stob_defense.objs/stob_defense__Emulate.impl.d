lib/defense/emulate.ml: Array List Option Stob_net Stob_util
