lib/defense/morphing.ml: Array List Stob_net Stob_util
