lib/defense/emulate.mli: Stob_net Stob_util
