lib/defense/morphing.mli: Stob_net Stob_util
