lib/defense/front.mli: Stob_net Stob_util
