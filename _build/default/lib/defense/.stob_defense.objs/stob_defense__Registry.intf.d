lib/defense/registry.mli: Stob_net Stob_util
