lib/defense/front.ml: Array Float List Stob_net Stob_util
