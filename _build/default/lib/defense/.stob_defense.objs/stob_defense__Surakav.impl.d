lib/defense/surakav.ml: Array List Stob_net Stob_util
