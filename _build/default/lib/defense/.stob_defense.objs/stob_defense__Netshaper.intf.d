lib/defense/netshaper.mli: Stob_net Stob_util
