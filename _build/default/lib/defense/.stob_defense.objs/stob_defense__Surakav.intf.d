lib/defense/surakav.mli: Stob_net Stob_util
