lib/defense/overhead.mli: Format Stob_net
