lib/defense/tamaraw.mli: Stob_net
