lib/defense/wtfpad.ml: Array List Stob_net Stob_util
