lib/defense/regulator.ml: Array Float List Stob_net
