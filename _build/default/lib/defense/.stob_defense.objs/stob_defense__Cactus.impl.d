lib/defense/cactus.ml: Array Hashtbl Stob_net Stob_util
