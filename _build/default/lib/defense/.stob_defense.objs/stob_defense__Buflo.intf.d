lib/defense/buflo.mli: Stob_net
