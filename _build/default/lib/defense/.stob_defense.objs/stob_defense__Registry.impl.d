lib/defense/registry.ml: Alpaca Buflo Cactus Emulate Front List Morphing Netshaper Regulator Stob_net Stob_util Surakav Tamaraw Wtfpad
