lib/defense/alpaca.mli: Stob_net
