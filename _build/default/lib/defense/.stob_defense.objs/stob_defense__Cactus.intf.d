lib/defense/cactus.mli: Stob_net Stob_util
