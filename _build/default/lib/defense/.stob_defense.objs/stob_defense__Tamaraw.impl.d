lib/defense/tamaraw.ml: Array Stob_net
