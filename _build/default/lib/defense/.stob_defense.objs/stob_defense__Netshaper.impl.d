lib/defense/netshaper.ml: Array Float List Stob_net Stob_util
