module Trace = Stob_net.Trace
module Packet = Stob_net.Packet

type params = { lambda : int; burst_gap : float; dummy_size : int }

let default_params = { lambda = 8 * 1024; burst_gap = 0.025; dummy_size = 1500 }

(* Group the incoming packets into bursts separated by > burst_gap. *)
let bursts params trace =
  let incoming = List.filter (fun e -> e.Trace.dir = Packet.Incoming) (Array.to_list trace) in
  let rec go acc current last_time = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (e : Trace.event) :: rest ->
        if current <> [] && e.Trace.time -. last_time > params.burst_gap then
          go (List.rev current :: acc) [ e ] e.Trace.time rest
        else go acc (e :: current) e.Trace.time rest
  in
  go [] [] 0.0 incoming

let apply ?(params = default_params) trace =
  let padding =
    List.concat_map
      (fun burst ->
        let total = List.fold_left (fun acc e -> acc + e.Trace.size) 0 burst in
        let target = (total + params.lambda - 1) / params.lambda * params.lambda in
        let deficit = target - total in
        let tail_time =
          List.fold_left (fun acc (e : Trace.event) -> Float.max acc e.Trace.time) 0.0 burst
        in
        let n = (deficit + params.dummy_size - 1) / params.dummy_size in
        List.init n (fun i ->
            {
              Trace.time = tail_time +. (float_of_int (i + 1) *. 1e-4);
              dir = Packet.Incoming;
              size = (if i = n - 1 then deficit - ((n - 1) * params.dummy_size) else params.dummy_size);
            }))
      (bursts params trace)
  in
  Trace.concat_sorted [ trace; Array.of_list padding ]
