type target = Tor | Tls | Quic | Tls_and_quic

let target_name = function
  | Tor -> "Tor"
  | Tls -> "TLS"
  | Quic -> "QUIC"
  | Tls_and_quic -> "TLS & QUIC"

type strategy = Regularization | Obfuscation

let strategy_name = function Regularization -> "Regul." | Obfuscation -> "Obfus."

type manipulation = Padding | Timing | Packet_size

let manipulation_name = function
  | Padding -> "padding"
  | Timing -> "timing"
  | Packet_size -> "packet size"

type entry = {
  name : string;
  target : target;
  strategy : strategy;
  manipulations : manipulation list;
  apply : (rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t) option;
}

let not_implemented name target strategy manipulations =
  { name; target; strategy; manipulations; apply = None }

let all =
  [
    (* --- Table 1: Tor, regularization --- *)
    {
      name = "ALPaCA";
      target = Tor;
      strategy = Regularization;
      manipulations = [ Padding ];
      apply = Some (fun ~rng:_ trace -> Alpaca.apply trace);
    };
    {
      name = "BuFLO";
      target = Tor;
      strategy = Regularization;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng:_ trace -> Buflo.apply trace);
    };
    {
      name = "RegulaTor";
      target = Tor;
      strategy = Regularization;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng:_ trace -> Regulator.apply trace);
    };
    {
      name = "Tamaraw";
      target = Tor;
      strategy = Regularization;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng:_ trace -> Tamaraw.apply trace);
    };
    {
      name = "Surakav";
      target = Tor;
      strategy = Regularization;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng trace -> Surakav.apply ~rng trace);
    };
    not_implemented "Palette" Tor Regularization [ Padding; Timing ];
    (* --- Table 1: Tor, obfuscation --- *)
    {
      name = "WTF-PAD";
      target = Tor;
      strategy = Obfuscation;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng trace -> Wtfpad.apply ~rng trace);
    };
    {
      name = "FRONT";
      target = Tor;
      strategy = Obfuscation;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng trace -> Front.apply ~rng trace);
    };
    not_implemented "BLANKET" Tor Obfuscation [ Padding; Timing ];
    (* --- Table 1: TLS --- *)
    {
      name = "Morphing";
      target = Tls;
      strategy = Obfuscation;
      manipulations = [ Timing; Packet_size ];
      apply = Some (fun ~rng trace -> Morphing.apply ~rng trace);
    };
    not_implemented "HTTPOS" Tls Obfuscation [ Timing; Packet_size ];
    not_implemented "Burst Defense" Tls Obfuscation [ Timing; Packet_size ];
    {
      name = "Cactus";
      target = Tls;
      strategy = Obfuscation;
      manipulations = [ Timing; Packet_size ];
      apply = Some (fun ~rng trace -> Cactus.apply ~rng trace);
    };
    not_implemented "Adv. FRONT" Tls Obfuscation [ Padding; Timing ];
    (* --- Table 1: QUIC --- *)
    not_implemented "QCSD" Quic Obfuscation [ Padding; Timing; Packet_size ];
    not_implemented "pad-resource" Quic Obfuscation [ Padding; Timing; Packet_size ];
    (* --- Table 1: TLS & QUIC --- *)
    {
      name = "NetShaper";
      target = Tls_and_quic;
      strategy = Obfuscation;
      manipulations = [ Padding; Timing ];
      apply = Some (fun ~rng trace -> Netshaper.apply ~rng trace);
    };
    (* --- This repository: Section 3 / Stob equivalents --- *)
    {
      name = "Stob-split";
      target = Tls;
      strategy = Obfuscation;
      manipulations = [ Packet_size ];
      apply = Some (fun ~rng:_ trace -> Emulate.split trace);
    };
    {
      name = "Stob-delay";
      target = Tls;
      strategy = Obfuscation;
      manipulations = [ Timing ];
      apply = Some (fun ~rng trace -> Emulate.delay ~rng trace);
    };
    {
      name = "Stob-combined";
      target = Tls;
      strategy = Obfuscation;
      manipulations = [ Timing; Packet_size ];
      apply = Some (fun ~rng trace -> Emulate.combined ~rng trace);
    };
  ]

let implemented = List.filter (fun e -> e.apply <> None) all

let find name = List.find (fun e -> e.name = name) all
