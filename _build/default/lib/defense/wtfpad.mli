(** WTF-PAD (Juarez et al., 2016), trace-level, simplified.

    Adaptive padding: statistically unusual silences inside a flow leak
    burst boundaries, so the defense fills inter-arrival gaps larger than a
    threshold with dummy packets whose spacing is sampled from a histogram
    of the flow's own typical gaps.  Zero added latency (real packets are
    untouched); moderate bandwidth overhead concentrated where the trace
    had tell-tale silence. *)

type params = {
  gap_threshold : float;  (** Gaps above this get padded, seconds. *)
  max_dummies_per_gap : int;
  dummy_size : int;
}

val default_params : params
(** 50 ms threshold, at most 6 dummies per silence, MTU dummies. *)

val apply : ?params:params -> rng:Stob_util.Rng.t -> Stob_net.Trace.t -> Stob_net.Trace.t
