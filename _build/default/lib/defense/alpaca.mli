(** ALPaCA (Cherubin, Hayes, Juarez — PETS 2017), trace-level, simplified.

    The application-layer defense for onion services: the {e server} pads
    each web object so its size hits a less distinctive value (deterministic
    variant: the next multiple of a quantum lambda).  On the wire an object
    is an incoming burst, so the trace-level emulation detects bursts
    (incoming runs separated by client-visible gaps) and pads each burst's
    byte total up to the next multiple of lambda with MTU dummies appended
    at the burst tail. *)

type params = {
  lambda : int;  (** Object-size quantum, bytes. *)
  burst_gap : float;  (** Silence that separates two objects, seconds. *)
  dummy_size : int;
}

val default_params : params
(** lambda = 8 KiB, 25 ms burst separation, MTU dummies. *)

val apply : ?params:params -> Stob_net.Trace.t -> Stob_net.Trace.t
