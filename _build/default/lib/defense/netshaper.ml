module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Rng = Stob_util.Rng

type params = { window : float; noise_scale : float; floor_bytes : int; packet_size : int }

let default_params =
  { window = 0.05; noise_scale = 20.0 *. 1024.0; floor_bytes = 8 * 1024; packet_size = 1500 }

let laplace rng ~scale =
  let u = Rng.uniform rng (-0.5) 0.5 in
  -.scale *. Float.copy_sign (log (1.0 -. (2.0 *. Float.abs u))) u

let apply ?(params = default_params) ~rng trace =
  let incoming = List.filter (fun e -> e.Trace.dir = Packet.Incoming) (Array.to_list trace) in
  let outgoing =
    Array.of_list (List.filter (fun e -> e.Trace.dir = Packet.Outgoing) (Array.to_list trace))
  in
  match incoming with
  | [] -> Trace.sort (Array.copy trace)
  | first :: _ ->
      let t0 = first.Trace.time in
      let last = List.fold_left (fun acc e -> Float.max acc e.Trace.time) t0 incoming in
      let out = ref [] in
      (* Demand per window; the shaper's budget chases it with DP noise. *)
      let queue = ref 0 in
      let pending = ref incoming in
      let w = ref 0 in
      let continue = ref true in
      while !continue do
        let w_start = t0 +. (float_of_int !w *. params.window) in
        let w_end = w_start +. params.window in
        (* Absorb this window's arrivals into the queue. *)
        let rec absorb () =
          match !pending with
          | e :: rest when e.Trace.time < w_end ->
              queue := !queue + e.Trace.size;
              pending := rest;
              absorb ()
          | _ -> ()
        in
        absorb ();
        (* Noisy budget: demand estimate (current queue) + Laplace noise,
           floored. *)
        let budget =
          max params.floor_bytes
            (!queue + int_of_float (laplace rng ~scale:params.noise_scale))
        in
        (* Emit the budget as evenly spaced fixed-size packets: real bytes
           first, padding for the remainder. *)
        let n_packets = max 1 (budget / params.packet_size) in
        let spacing = params.window /. float_of_int n_packets in
        for i = 0 to n_packets - 1 do
          out :=
            { Trace.time = w_start +. (float_of_int i *. spacing);
              dir = Packet.Incoming;
              size = params.packet_size }
            :: !out
        done;
        queue := max 0 (!queue - (n_packets * params.packet_size));
        incr w;
        if !pending = [] && !queue = 0 && w_start > last then continue := false
      done;
      Trace.concat_sorted [ outgoing; Array.of_list (List.rev !out) ]
