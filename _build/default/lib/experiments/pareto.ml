module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Emulate = Stob_defense.Emulate
module Overhead = Stob_defense.Overhead

type point = {
  policy : Stob_core.Policy.t;
  accuracy : float;
  latency_overhead : float;
  packet_overhead : float;
  pareto : bool;
}

let sweep =
  let thresholds = [ 600; 900; 1200 ] in
  let delays = [ None; Some (0.1, 0.3); Some (0.3, 0.6) ] in
  List.concat_map
    (fun threshold -> List.map (fun delay -> (Some threshold, delay)) delays)
    thresholds
  @ List.map (fun delay -> (None, delay)) [ Some (0.1, 0.3); Some (0.3, 0.6) ]

let policy_of (threshold, delay) =
  match (threshold, delay) with
  | Some th, None -> Stob_core.Strategies.stack_split ~threshold:th ()
  | Some th, Some (lo, hi) -> Stob_core.Strategies.stack_combined ~threshold:th ~lo ~hi ()
  | None, Some (lo, hi) -> Stob_core.Strategies.stack_delay ~lo ~hi ()
  | None, None -> Stob_core.Policy.unmodified

let apply (threshold, delay) ~rng trace =
  let split = match threshold with Some th -> Emulate.split ~threshold:th trace | None -> trace in
  match delay with Some (lo, hi) -> Emulate.delay ~lo ~hi ~rng split | None -> split

let run ?(samples_per_site = 30) ?(trees = 100) ?(folds = 3) ?(seed = 42) ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "pareto: generating corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  let measured =
    List.map
      (fun params ->
        let policy = policy_of params in
        say "pareto: evaluating %s..." policy.Stob_core.Policy.name;
        let rng = Rng.create (seed + 3) in
        let defended = Dataset.map_traces base (fun s -> apply params ~rng s.Dataset.trace) in
        let accuracy = fst (Evalcommon.accuracy_cv ~folds ~trees ~seed defended) in
        let overheads =
          Array.to_list
            (Array.map2
               (fun (b : Dataset.sample) (d : Dataset.sample) ->
                 Overhead.summarize ~original:b.Dataset.trace ~defended:d.Dataset.trace)
               base.Dataset.samples defended.Dataset.samples)
        in
        let m = Overhead.mean_summary overheads in
        (policy, accuracy, m.Overhead.latency, m.Overhead.packets))
      sweep
  in
  (* Pareto efficiency: lower accuracy is better protection; lower cost
     (latency + packet overhead) is cheaper. *)
  let cost (_, _, lat, pkt) = lat +. pkt in
  let dominated p q =
    let (_, acc_p, _, _) = p and (_, acc_q, _, _) = q in
    acc_q <= acc_p && cost q <= cost p && (acc_q < acc_p || cost q < cost p)
  in
  List.map
    (fun p ->
      let policy, accuracy, latency_overhead, packet_overhead = p in
      {
        policy;
        accuracy;
        latency_overhead;
        packet_overhead;
        pareto = not (List.exists (fun q -> dominated p q) measured);
      })
    measured

let print points =
  Printf.printf "Stob policy sweep: protection vs. overhead (* = Pareto-efficient)\n";
  Printf.printf "  %-32s %-10s %-10s %-10s\n" "policy" "accuracy" "lat-ovhd" "pkt-ovhd";
  List.iter
    (fun p ->
      Printf.printf "  %-32s %-10.3f %+-10.1f%% %+-9.1f%% %s\n"
        p.policy.Stob_core.Policy.name p.accuracy
        (p.latency_overhead *. 100.0)
        (p.packet_overhead *. 100.0)
        (if p.pareto then "*" else ""))
    points
