module Rng = Stob_util.Rng
module Trace = Stob_net.Trace
module Dataset = Stob_web.Dataset
module Emulate = Stob_defense.Emulate

type point = { n : int; original : float; defended : float }

type result = { points : point list; crossover_packets : int option; threshold : float }

let run ?(samples_per_site = 60) ?(trees = 100) ?(folds = 3) ?(seed = 42)
    ?(ns = [ 10; 20; 30; 40; 50; 60; 70; 80 ]) ?(threshold = 0.8) ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "early-curve: generating corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  let accuracy_at ~defend n =
    let rng = Rng.create (seed + n) in
    let view (s : Dataset.sample) =
      let trace =
        if defend then Emulate.combined ~first_n:n ~rng s.Dataset.trace else s.Dataset.trace
      in
      Trace.prefix trace n
    in
    fst (Evalcommon.accuracy_cv ~folds ~trees ~seed (Dataset.map_traces base view))
  in
  let points =
    List.map
      (fun n ->
        say "early-curve: N=%d..." n;
        { n; original = accuracy_at ~defend:false n; defended = accuracy_at ~defend:true n })
      ns
  in
  let crossover_packets =
    List.find_map
      (fun p -> if p.original >= threshold && p.defended < threshold then Some p.n else None)
      points
  in
  { points; crossover_packets; threshold }

let print r =
  Printf.printf "Early-detection curve: k-FP accuracy vs. packets observed\n";
  Printf.printf "  %-6s %-10s %-10s\n" "N" "original" "defended";
  List.iter
    (fun p -> Printf.printf "  %-6d %-10.3f %-10.3f\n" p.n p.original p.defended)
    r.points;
  (match r.crossover_packets with
  | Some n ->
      Printf.printf
        "  at N=%d the undefended attack clears %.0f%% accuracy while the defended one\n\
        \  does not: the countermeasure delays a confident blocking decision.\n"
        n (r.threshold *. 100.0)
  | None ->
      Printf.printf "  (no crossover at the %.0f%% threshold in this range)\n"
        (r.threshold *. 100.0))
