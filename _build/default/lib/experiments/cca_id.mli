(** Extension experiment: passive CCA identification (Section 5.2).

    The paper notes packet sequences leak more than website identity:
    CCAnalyzer passively identifies a flow's congestion-control algorithm
    from its bottleneck-queue behaviour, revealing OS/application identity
    — and suggests "some users may wish to prevent their CCA from being
    identified".

    This harness builds the whole attack-and-defense loop: bulk transfers
    run over a lossy bottleneck under Reno / CUBIC / BBR with varied
    network conditions; a random-forest classifier identifies the CCA from
    the client-side packet trace (the k-FP feature set captures the
    dynamics: throughput evolution, burst structure, retransmission
    stalls); then the same classifier is evaluated against flows defended
    by a Stob policy. *)

type result = {
  undefended : float;  (** CCA-identification accuracy, stock stack. *)
  defended : float;  (** Accuracy with the Stob delay+TSO jitter policy. *)
  shaped : float;
      (** Accuracy under a Stob rate-floor (constant-rate shaping by pure
          delay): the queue-dynamics signature the classifier feeds on is
          flattened — at a throughput cost. *)
  n_classes : int;
}

val run :
  ?flows_per_cca:int -> ?trees:int -> ?seed:int -> ?quiet:bool -> unit -> result
(** Defaults: 40 flows per CCA (70/30 split), 100 trees.  Accuracy is on
    held-out flows; chance is 1/3. *)

val print : result -> unit
