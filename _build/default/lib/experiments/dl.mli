(** Extension experiment: deep-learning vs. feature-engineered WF attacks.

    The paper's motivation is that DL attacks (Deep Fingerprinting,
    Var-CNN) made WF practical.  This harness runs both attack families on
    the same corpora: k-FP (random forest over ~165 engineered features)
    and DF-lite (a CNN over raw packet directions, {!Stob_kfp.Dfnet}),
    undefended and under the Stob combined (split+delay) policy.

    Notably, packet splitting changes the {e direction sequence} that DF
    consumes (more incoming packets) while delaying does not — so the two
    attack families respond differently to the same defense. *)

type row = { attack : string; original : float; defended : float }

val run :
  ?samples_per_site:int ->
  ?trees:int ->
  ?epochs:int ->
  ?seed:int ->
  ?quiet:bool ->
  unit ->
  row list
(** Defaults: 60 visits/site (70/30 split), 100 trees, 30 epochs. *)

val print : row list -> unit
