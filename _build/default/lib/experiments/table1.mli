(** Experiment E3/E8: reproduce Table 1 — the WF-defense taxonomy — extended
    with measured overhead columns for every defense implemented in this
    repository.

    The taxonomy rows come from {!Stob_defense.Registry}; the measured
    columns apply each implemented defense to a corpus of undefended page-
    load traces and report mean bandwidth/latency/packet overheads,
    quantifying Section 2.3's claim that padding is the costly primitive
    (FRONT-class bandwidth cost) while timing manipulation is
    work-conserving. *)

type row = {
  entry : Stob_defense.Registry.entry;
  overhead : Stob_defense.Overhead.summary option;  (** Measured, if implemented. *)
}

val run : ?traces:Stob_net.Trace.t list -> ?seed:int -> unit -> row list
(** With no [traces], a small corpus is generated (3 sites x 8 visits). *)

val print : row list -> unit
