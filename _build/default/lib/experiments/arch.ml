(* The stage lists are assembled from live values where possible so the
   rendering tracks the implementation: CCA names come from instantiated
   controllers, hook fields from the Hooks decision record. *)

let cca_names =
  List.map
    (fun (factory : Stob_tcp.Cc.factory) -> (factory Stob_tcp.Config.default).Stob_tcp.Cc.name)
    [ Stob_tcp.Reno.make; Stob_tcp.Cubic.make; Stob_tcp.Bbr.make ]

let hook_decision_fields = [ "tso_bytes"; "packet_payload"; "earliest_departure" ]

let column ~app ~stack =
  let line s = Printf.sprintf "  | %-26s |" s in
  let rule = "  +----------------------------+" in
  List.concat
    [
      [ rule ];
      List.map line app;
      [ rule ^ "  -- user/kernel boundary" ];
      List.map (fun s -> line ("# " ^ s)) stack;
      [ rule ];
    ]

let figure1 () =
  let tls_tcp =
    column
      ~app:[ "application"; "TLS (records in app)" ]
      ~stack:[ "TCP (cwnd, segmentation)"; "pacing / qdisc (fq)"; "TSO split @ NIC"; "NIC I/O" ]
  in
  let ktls_tcp =
    column
      ~app:[ "application" ]
      ~stack:
        [ "kTLS (records in stack)"; "TCP (cwnd, segmentation)"; "pacing / qdisc (fq)";
          "TSO split @ NIC"; "NIC I/O" ]
  in
  let quic_udp =
    column
      ~app:[ "application"; "QUIC (streams, PMTU,"; "  pacing in library)" ]
      ~stack:[ "UDP"; "qdisc / (USO offload)"; "NIC I/O" ]
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 1: the stack model.  '#' marks the shaded in-stack stages whose\n\
     decisions the application cannot control; each '#' stage runs\n\
     asynchronously from the send() syscall.\n\n";
  Buffer.add_string buf "  (a) TLS over TCP\n";
  List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) tls_tcp;
  Buffer.add_string buf "\n  (b) kTLS over TCP\n";
  List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) ktls_tcp;
  Buffer.add_string buf "\n  (c) QUIC over UDP\n";
  List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) quic_udp;
  Buffer.add_string buf
    (Printf.sprintf "\n  congestion controllers available in this stack: %s\n"
       (String.concat ", " cca_names));
  Buffer.contents buf

let figure2 () =
  let policies =
    String.concat "\n"
      (List.map
         (fun (name, p) -> Printf.sprintf "      %-14s %s" name (Format.asprintf "%a" Stob_core.Policy.pp p))
         (Stob_core.Strategies.all_named ()))
  in
  Printf.sprintf
    "Figure 2: the Stob architecture.\n\n\
    \  application / administrator\n\
    \        |  installs policies (histograms, schedules)\n\
    \        v\n\
    \  +--------------------------- shared memory ---------------------------+\n\
    \  |  policy table: global | per-destination | per-flow                  |\n\
    \  +----------------------------------------------------------------------+\n\
    \        |  resolve at flow start -> per-flow controller\n\
    \        v\n\
    \  TCP/QUIC transport --- per-segment decision { %s }\n\
    \        |                      |\n\
    \        |                      v\n\
    \        |              Stob controller (may shrink sizes, delay release)\n\
    \        |                      |\n\
    \        |                      v  clamp: never exceed the CCA's decision\n\
    \        +--> pacing/qdisc --> TSO split --> NIC\n\n\
    \  built-in policies:\n%s\n"
    (String.concat ", " hook_decision_fields)
    policies

let print_figure1 () = print_string (figure1 ())
let print_figure2 () = print_string (figure2 ())
