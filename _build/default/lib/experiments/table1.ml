module Rng = Stob_util.Rng
module Registry = Stob_defense.Registry
module Overhead = Stob_defense.Overhead

type row = { entry : Registry.entry; overhead : Overhead.summary option }

let default_corpus seed =
  let master = Rng.create seed in
  let profiles = [ Stob_web.Sites.find "bing.com"; Stob_web.Sites.find "wikipedia.org"; Stob_web.Sites.find "netflix.com" ] in
  List.concat_map
    (fun profile ->
      List.init 8 (fun _ ->
          let rng = Rng.split master in
          (Stob_web.Browser.load ~rng profile).Stob_web.Browser.trace))
    profiles

let run ?traces ?(seed = 7) () =
  let corpus = match traces with Some t -> t | None -> default_corpus seed in
  List.map
    (fun (entry : Registry.entry) ->
      let overhead =
        Option.map
          (fun apply ->
            let rng = Rng.create (seed + 1) in
            Overhead.mean_summary
              (List.map
                 (fun original -> Overhead.summarize ~original ~defended:(apply ~rng original))
                 corpus))
          entry.Registry.apply
      in
      { entry; overhead })
    (Registry.all)

let print rows =
  Printf.printf "Table 1: WF defense summary (measured overheads where implemented)\n";
  Printf.printf "%-14s %-11s %-8s %-28s %-10s %-10s %-9s\n" "System" "Target" "Strategy"
    "Traffic manipulation" "BW ovhd" "Lat ovhd" "Pkt ovhd";
  List.iter
    (fun { entry; overhead } ->
      let manip =
        String.concat ", " (List.map Registry.manipulation_name entry.Registry.manipulations)
      in
      let bw, lat, pkt =
        match overhead with
        | None -> ("-", "-", "-")
        | Some s ->
            ( Printf.sprintf "%+.0f%%" (s.Overhead.bandwidth *. 100.0),
              Printf.sprintf "%+.0f%%" (s.Overhead.latency *. 100.0),
              Printf.sprintf "%+.0f%%" (s.Overhead.packets *. 100.0) )
      in
      Printf.printf "%-14s %-11s %-8s %-28s %-10s %-10s %-9s\n" entry.Registry.name
        (Registry.target_name entry.Registry.target)
        (Registry.strategy_name entry.Registry.strategy)
        manip bw lat pkt)
    rows
