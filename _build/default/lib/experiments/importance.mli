(** Extension experiment: which traffic features leak, and which a defense
    actually blunts.

    Random-forest Gini importance over the k-FP feature set, computed on an
    undefended corpus and on a Stob-defended one.  The shift in the ranking
    shows {e what} the defense removed (size-band and burst features under
    splitting; inter-arrival features under delaying) and what still leaks
    (counts, totals) — the feature-level view behind Table 2's accuracy
    numbers, and a design tool for building better policies. *)

type ranking = (string * float) list
(** Feature name with normalized importance, descending. *)

type result = { undefended : ranking; defended : ranking; policy_name : string }

val run :
  ?samples_per_site:int ->
  ?trees:int ->
  ?seed:int ->
  ?policy:Stob_core.Policy.t ->
  ?quiet:bool ->
  unit ->
  result
(** Defaults: 30 visits/site, 100 trees, the combined split+delay policy. *)

val print : ?top:int -> result -> unit
(** Side-by-side top-[top] (default 12) features. *)
