module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Browser = Stob_web.Browser
module Sites = Stob_web.Sites

type result = {
  base_accuracy : float;
  defended_accuracy : float;
  base_load_time : float;
  defended_load_time : float;
  rwnd : int;
}

let mean_load_time ?client_config ~seed () =
  let master = Rng.create seed in
  let times =
    List.concat_map
      (fun profile ->
        List.init 6 (fun _ ->
            let rng = Rng.split master in
            (Browser.load ?client_config ~rng profile).Browser.load_time))
      Sites.all
  in
  Stob_util.Stats.mean (Array.of_list times)

let run ?(samples_per_site = 30) ?(trees = 100) ?(rwnd = 8 * 1024) ?(seed = 42) ?(quiet = false)
    () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  let httpos_config = { Stob_tcp.Config.default with Stob_tcp.Config.rcv_wnd = rwnd } in
  say "httpos: generating undefended corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  say "httpos: generating small-window corpus...";
  let defended =
    Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ~client_config:httpos_config ())
  in
  say "httpos: evaluating k-FP...";
  let base_accuracy = fst (Evalcommon.accuracy_cv ~trees ~seed base) in
  let defended_accuracy = fst (Evalcommon.accuracy_cv ~trees ~seed defended) in
  say "httpos: measuring page-load times...";
  {
    base_accuracy;
    defended_accuracy;
    base_load_time = mean_load_time ~seed:(seed + 1) ();
    defended_load_time = mean_load_time ~client_config:httpos_config ~seed:(seed + 1) ();
    rwnd;
  }

let print r =
  Printf.printf "HTTPOS-style client-side defense (advertised window = %d B)\n" r.rwnd;
  Printf.printf "  %-26s %-10s %-14s\n" "" "k-FP acc" "mean load time";
  Printf.printf "  %-26s %-10.3f %-14.3f\n" "undefended" r.base_accuracy r.base_load_time;
  Printf.printf "  %-26s %-10.3f %-14.3f\n" "small advertised window" r.defended_accuracy
    r.defended_load_time;
  Printf.printf "  (load-time inflation: %.1fx — the Section 2.3 criticism, measured)\n"
    (r.defended_load_time /. Float.max 1e-9 r.base_load_time)
