(** Extension experiment: the HTTPOS-style client-side defense and its cost
    (Section 2.3).

    HTTPOS obfuscates packet sizes from the {e client} side by advertising a
    small receive window (and small MSS), forcing the server into small
    packets.  The paper criticizes it: "small MSS values apply for the
    connection lifetime and thus damage transmission efficiency; small
    advertised window prevents the server from sending the full congestion
    window of data, sacrificing bandwidth utilization and thus throughput."

    This experiment enforces exactly that configuration in the simulated
    stack (tiny advertised window — a real stack knob, no trace editing)
    and measures both sides of the trade: how much k-FP accuracy drops and
    how much page-load time inflates. *)

type result = {
  base_accuracy : float;
  defended_accuracy : float;
  base_load_time : float;  (** Mean page-load time, seconds. *)
  defended_load_time : float;
  rwnd : int;  (** The advertised window used, bytes. *)
}

val run :
  ?samples_per_site:int -> ?trees:int -> ?rwnd:int -> ?seed:int -> ?quiet:bool -> unit -> result
(** Defaults: 30 visits/site, 100 trees, 8 KiB advertised window. *)

val print : result -> unit
