(** Ablations E6 and E7 (DESIGN.md Section 3).

    E6 — {e emulation fidelity}: Section 3 emulates split/delay by editing
    captured traces; Section 4 argues the stack should enforce them.  This
    ablation evaluates k-FP against (a) trace-level emulation and (b) the
    same policy enforced in-stack by Stob during capture, quantifying how
    much the emulation under- or over-states the defense.

    E7 — {e CCA interplay}: Section 5.1 warns that packet-sequence control
    can conflict with CCAs whose pacing is load-bearing (BBR).  This
    ablation runs a delaying policy under Reno/CUBIC/BBR, with and without
    the phase-exemption accommodation, reporting throughput cost and the
    safety audit (a well-behaved policy never trips the clamp). *)

type fidelity_cell = { mean : float; std : float }

type fidelity_result = {
  baseline : fidelity_cell;  (** k-FP accuracy, undefended. *)
  emulated : fidelity_cell;  (** Trace-level split+delay (Section 3). *)
  in_stack : fidelity_cell;  (** Stob-enforced split+delay (Section 4). *)
}

val run_fidelity :
  ?samples_per_site:int -> ?folds:int -> ?trees:int -> ?seed:int -> ?quiet:bool -> unit -> fidelity_result

val print_fidelity : fidelity_result -> unit

(** E8b — {e transport comparison}: Section 2.3 argues QUIC inherits the
    same control problems as TCP (stream abstraction, library pacing,
    PMTU-decided datagram sizes) and that USO offload converges its
    segmentation on TLS/TCP's.  This ablation fingerprints the same sites
    over both transports, undefended and with the Stob combined policy
    enforced in-stack. *)

type transport_result = {
  tcp : fidelity_cell;  (** k-FP accuracy, HTTP/1.1-style over TCP. *)
  quic : fidelity_cell;  (** k-FP accuracy, HTTP/3-style over QUIC. *)
  quic_stob : fidelity_cell;  (** QUIC with the Stob combined policy. *)
}

val run_transport :
  ?samples_per_site:int -> ?folds:int -> ?trees:int -> ?seed:int -> ?quiet:bool -> unit -> transport_result

val print_transport : transport_result -> unit

type cca_row = {
  cca : string;
  baseline_gbps : float;
  delayed_gbps : float;  (** Under the delaying policy. *)
  exempt_gbps : float;  (** Same policy with phase exemptions. *)
  violations : int;  (** Safety-audit violations under the policy. *)
}

val run_cca : ?quiet:bool -> unit -> cca_row list
val print_cca : cca_row list -> unit
