(** Extension experiment: the early-detection curve.

    Table 2 samples the censor's confidence at N = 15/30/45; this harness
    traces the whole curve — k-FP accuracy as a function of the number of
    packets observed — for the undefended corpus and under the combined
    countermeasure.  The paper's core censorship claim is about this
    curve's {e slope}: "the rate at which k-FP's accuracy increases over N
    is slower when either defense is applied", i.e. the defense buys the
    user time before a confident blocking decision. *)

type point = { n : int; original : float; defended : float }

type result = {
  points : point list;
  crossover_packets : int option;
      (** First N where the undefended attack exceeds [threshold] accuracy
          but the defended one does not — the censor's bought time, in
          packets. *)
  threshold : float;
}

val run :
  ?samples_per_site:int ->
  ?trees:int ->
  ?folds:int ->
  ?seed:int ->
  ?ns:int list ->
  ?threshold:float ->
  ?quiet:bool ->
  unit ->
  result
(** Defaults: 60 visits/site, 100 trees, 3 folds,
    N in 10..80 by 10, threshold 0.8. *)

val print : result -> unit
