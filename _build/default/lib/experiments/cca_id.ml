module Rng = Stob_util.Rng
module Engine = Stob_sim.Engine
module Units = Stob_util.Units
module Trace = Stob_net.Trace
module Capture = Stob_net.Capture
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack

let ccas = [| ("reno", Stob_tcp.Reno.make); ("cubic", Stob_tcp.Cubic.make); ("bbr", Stob_tcp.Bbr.make) |]

(* One bulk download through a lossy bottleneck; the client-side capture is
   what a passive observer sees. *)
let bulk_trace ~cc ~policy rng =
  let engine = Engine.create () in
  (* Varied conditions, shallow buffer: the regime where CCA dynamics show
     (CUBIC's sawtooth, BBR's steady pacing with probe pulses). *)
  let rate_bps = Units.mbps (Rng.uniform rng 30.0 80.0) in
  let delay = Units.msec (Rng.uniform rng 8.0 25.0) in
  let queue_capacity = int_of_float (rate_bps *. Rng.uniform rng 0.01 0.03 /. 8.0) in
  let path = Path.create ~engine ~rate_bps ~delay ~queue_capacity () in
  let server_hooks =
    Option.map
      (fun p ->
        Stob_core.Controller.hooks (Stob_core.Controller.create ~seed:(Rng.int rng 1_000_000) p))
      policy
  in
  let conn = Connection.create ~engine ~path ~flow:1 ~cc ?server_hooks () in
  let server = Connection.server conn in
  (* Continuous download for the whole observation window, so the observer
     sees several congestion epochs. *)
  let rec refill () =
    if Endpoint.established server && Endpoint.unsent server < 2_000_000 then
      Endpoint.write server 4_000_000;
    ignore (Engine.schedule engine ~delay:0.05 refill)
  in
  ignore (Engine.schedule engine ~delay:0.0 refill);
  Connection.on_established conn (fun () -> Endpoint.write (Connection.client conn) 64);
  Connection.open_ conn;
  Engine.run ~until:4.0 engine;
  Trace.shift_to_zero (Capture.trace (Path.capture path))

(* Scale-invariant dynamics features: CCAnalyzer identifies CCAs from how
   the bottleneck queue evolves, not from absolute rates, so every series
   is normalized by its own mean.  CUBIC shows a sawtooth (drain on loss,
   cubic regrowth), Reno a sharper/longer sawtooth, BBR a flat line with
   small probe pulses and no loss response. *)
let dynamics_features trace =
  let module Stats = Stob_util.Stats in
  let bucket = 0.1 in
  let tput =
    let events =
      Array.of_list
        (List.filter (fun e -> e.Trace.dir = Stob_net.Packet.Incoming) (Array.to_list trace))
    in
    if Array.length events = 0 then [||]
    else begin
      let t0 = events.(0).Trace.time in
      let duration = events.(Array.length events - 1).Trace.time -. t0 in
      let buckets = max 1 (1 + int_of_float (duration /. bucket)) in
      let acc = Array.make buckets 0.0 in
      Array.iter
        (fun e ->
          let b = min (buckets - 1) (int_of_float ((e.Trace.time -. t0) /. bucket)) in
          acc.(b) <- acc.(b) +. float_of_int e.Trace.size)
        events;
      acc
    end
  in
  let mean = Stats.mean tput in
  let norm = if mean <= 0.0 then tput else Array.map (fun v -> v /. mean) tput in
  let diffs =
    if Array.length norm < 2 then [||]
    else Array.init (Array.length norm - 1) (fun i -> norm.(i + 1) -. norm.(i))
  in
  let autocorr lag =
    let n = Array.length norm in
    if n <= lag + 1 then 0.0
    else begin
      let m = Stats.mean norm and s = Stats.std norm in
      if s <= 0.0 then 0.0
      else begin
        let acc = ref 0.0 in
        for i = 0 to n - lag - 1 do
          acc := !acc +. ((norm.(i) -. m) *. (norm.(i + lag) -. m))
        done;
        !acc /. (float_of_int (n - lag) *. s *. s)
      end
    end
  in
  (* Dips: buckets more than 30% below the running level — loss responses. *)
  let dips = ref 0 and dip_gaps = ref [] and last_dip = ref (-1) in
  Array.iteri
    (fun i v ->
      if v < 0.7 && i > 0 then begin
        incr dips;
        if !last_dip >= 0 then dip_gaps := float_of_int (i - !last_dip) :: !dip_gaps;
        last_dip := i
      end)
    norm;
  let dip_gaps = Array.of_list !dip_gaps in
  (* Evenly-sampled normalized shape (16 points). *)
  let shape =
    Array.init 16 (fun i ->
        let n = Array.length norm in
        if n = 0 then 0.0 else norm.(min (n - 1) (i * n / 16)))
  in
  Array.concat
    [
      [| Stats.std norm; Stats.skewness norm; Stats.kurtosis norm |];
      [| Stats.std diffs; Stats.max_ diffs; Stats.min_ diffs |];
      [| autocorr 1; autocorr 2; autocorr 4; autocorr 8 |];
      [| float_of_int !dips; Stats.mean dip_gaps; Stats.std dip_gaps |];
      shape;
    ]

let featurize trace = Array.append (dynamics_features trace) (Features.extract trace)

let dataset ~flows_per_cca ~policy ~seed =
  let master = Rng.create seed in
  let samples =
    List.concat
      (List.init (Array.length ccas) (fun label ->
           let _, cc = ccas.(label) in
           List.init flows_per_cca (fun _ ->
               let rng = Rng.split master in
               (featurize (bulk_trace ~cc ~policy rng), label))))
  in
  let arr = Array.of_list samples in
  Rng.shuffle master arr;
  (Array.map fst arr, Array.map snd arr)

type result = { undefended : float; defended : float; shaped : float; n_classes : int }

let accuracy ~flows_per_cca ~trees ~seed ~policy =
  let features, labels = dataset ~flows_per_cca ~policy ~seed in
  let n = Array.length features in
  let n_train = n * 7 / 10 in
  let attack =
    Attack.train
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ~n_classes:(Array.length ccas)
      ~features:(Array.sub features 0 n_train) ~labels:(Array.sub labels 0 n_train) ()
  in
  Attack.evaluate attack ~mode:Attack.Forest_vote
    ~features:(Array.sub features n_train (n - n_train))
    ~labels:(Array.sub labels n_train (n - n_train))

let run ?(flows_per_cca = 40) ?(trees = 100) ?(seed = 42) ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "cca-id: generating %d undefended flows..." (flows_per_cca * Array.length ccas);
  let undefended = accuracy ~flows_per_cca ~trees ~seed ~policy:None in
  say "cca-id: generating defended flows...";
  let defended =
    accuracy ~flows_per_cca ~trees ~seed
      ~policy:
        (Some
           (Stob_core.Policy.make ~name:"cca-hide"
              ~tso:(Stob_core.Policy.Cycle_tso_reduction { step = 6; max_steps = 8 })
              ~timing:(Stob_core.Policy.Stretch_gap (0.05, 0.35))
              ()))
  in
  say "cca-id: generating rate-floor-shaped flows...";
  let shaped =
    accuracy ~flows_per_cca ~trees ~seed
      ~policy:(Some (Stob_core.Strategies.rate_floor ~rate_bps:25e6))
  in
  { undefended; defended; shaped; n_classes = Array.length ccas }

let print r =
  Printf.printf "CCA identification from passive traces (Section 5.2; chance = %.3f)\n"
    (1.0 /. float_of_int r.n_classes);
  Printf.printf "  %-26s %.3f\n" "undefended" r.undefended;
  Printf.printf "  %-26s %.3f\n" "Stob delay+TSO jitter" r.defended;
  Printf.printf "  %-26s %.3f\n" "Stob rate floor (25 Mb/s)" r.shaped
