module Rng = Stob_util.Rng
module Engine = Stob_sim.Engine
module Cpu = Stob_sim.Cpu
module Units = Stob_util.Units
module Dataset = Stob_web.Dataset
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path

(* ------------------------------------------------------------------ *)
(* E6: emulation fidelity                                               *)

type fidelity_cell = { mean : float; std : float }

type fidelity_result = {
  baseline : fidelity_cell;
  emulated : fidelity_cell;
  in_stack : fidelity_cell;
}

let cell (mean, std) = { mean; std }

let run_fidelity ?(samples_per_site = 40) ?(folds = 5) ?(trees = 100) ?(seed = 42)
    ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "ablation-stack: generating undefended corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  say "ablation-stack: generating Stob-defended corpus...";
  let stob =
    Dataset.sanitize
      (Dataset.generate ~samples_per_site ~seed
         ~policy:(Stob_core.Strategies.stack_combined ())
         ())
  in
  let rng = Rng.create (seed + 3) in
  let emulated =
    Dataset.map_traces base (fun s -> Stob_defense.Emulate.combined ~rng s.Dataset.trace)
  in
  say "ablation-stack: evaluating k-FP on the three corpora...";
  {
    baseline = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed base);
    emulated = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed emulated);
    in_stack = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed stob);
  }

let print_fidelity r =
  Printf.printf "Ablation E6: emulated vs. in-stack enforcement (k-FP accuracy)\n";
  let line name c = Printf.printf "  %-26s %.3f +/- %.3f\n" name c.mean c.std in
  line "undefended" r.baseline;
  line "emulated split+delay" r.emulated;
  line "Stob in-stack split+delay" r.in_stack

(* ------------------------------------------------------------------ *)
(* E8b: transport comparison                                            *)

type transport_result = { tcp : fidelity_cell; quic : fidelity_cell; quic_stob : fidelity_cell }

let run_transport ?(samples_per_site = 40) ?(folds = 5) ?(trees = 100) ?(seed = 42)
    ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  let corpus ?policy transport label =
    say "ablation-quic: generating %s corpus..." label;
    Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ?policy ~transport ())
  in
  let tcp = corpus `Tcp "TCP" in
  let quic = corpus `Quic "QUIC" in
  let quic_stob = corpus ~policy:(Stob_core.Strategies.stack_combined ()) `Quic "QUIC+Stob" in
  say "ablation-quic: evaluating k-FP on the three corpora...";
  {
    tcp = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed tcp);
    quic = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed quic);
    quic_stob = cell (Evalcommon.accuracy_cv ~folds ~trees ~seed quic_stob);
  }

let print_transport r =
  Printf.printf "Ablation E8b: transport comparison (k-FP accuracy)\n";
  let line name c = Printf.printf "  %-26s %.3f +/- %.3f\n" name c.mean c.std in
  line "HTTP/1.1 over TCP" r.tcp;
  line "HTTP/3 over QUIC" r.quic;
  line "QUIC + Stob split+delay" r.quic_stob

(* ------------------------------------------------------------------ *)
(* E7: CCA interplay                                                    *)

type cca_row = {
  cca : string;
  baseline_gbps : float;
  delayed_gbps : float;
  exempt_gbps : float;
  violations : int;
}

(* Bulk transfer on a pacing-bound WAN path (2 Gb/s, 20 ms RTT, shallow
   bottleneck queue, no CPU model): the regime where the CCA's pacing
   decisions — and thus Stob's departure perturbations — actually bind.  A
   safety audit wraps the policy's hooks. *)
let audited_throughput ~cc ~policy =
  let engine = Engine.create () in
  let path =
    Path.create ~engine ~rate_bps:(Units.gbps 2.0) ~delay:0.01
      ~queue_capacity:(2 * 1024 * 1024) ()
  in
  ignore (Cpu.create engine);
  let hooks = Stob_core.Controller.hooks (Stob_core.Controller.create policy) in
  let hooks, report = Stob_core.Safety.audit hooks in
  let conn = Connection.create ~engine ~path ~flow:1 ~cc ~server_hooks:hooks () in
  let server = Connection.server conn in
  let rec refill () =
    if Endpoint.established server && Endpoint.unsent server < 16_000_000 then
      Endpoint.write server 64_000_000;
    ignore (Engine.schedule engine ~delay:0.01 refill)
  in
  ignore (Engine.schedule engine ~delay:0.0 refill);
  Connection.on_established conn (fun () -> Endpoint.write (Connection.client conn) 64);
  Connection.open_ conn;
  let warmup = 1.0 and measure = 2.0 in
  let mark = ref 0 in
  ignore (Engine.schedule engine ~delay:warmup (fun () -> mark := Path.server_link_bytes path));
  Engine.run ~until:(warmup +. measure) engine;
  let bytes = Path.server_link_bytes path - !mark in
  ( Units.to_gbps ~bits_per_sec:(Units.throughput_bps ~bytes ~seconds:measure),
    (report ()).Stob_core.Safety.violations )

let run_cca ?(quiet = false) () =
  let ccas =
    [ ("reno", Stob_tcp.Reno.make); ("cubic", Stob_tcp.Cubic.make); ("bbr", Stob_tcp.Bbr.make) ]
  in
  List.map
    (fun (name, cc) ->
      if not quiet then Printf.eprintf "ablation-cca: %s...\n%!" name;
      let baseline_gbps, _ = audited_throughput ~cc ~policy:Stob_core.Policy.unmodified in
      let delayed = Stob_core.Strategies.stack_delay () in
      let delayed_gbps, violations = audited_throughput ~cc ~policy:delayed in
      let exempt_gbps, _ =
        audited_throughput ~cc ~policy:(Stob_core.Strategies.bbr_respecting delayed)
      in
      { cca = name; baseline_gbps; delayed_gbps; exempt_gbps; violations })
    ccas

let print_cca rows =
  Printf.printf "Ablation E7: Stob delay policy vs. congestion controller\n";
  Printf.printf "  %-7s %-12s %-14s %-18s %-10s\n" "CCA" "baseline" "with delay" "delay+exemptions"
    "violations";
  List.iter
    (fun r ->
      Printf.printf "  %-7s %-12s %-14s %-18s %-10d\n" r.cca
        (Printf.sprintf "%.1f Gb/s" r.baseline_gbps)
        (Printf.sprintf "%.1f Gb/s" r.delayed_gbps)
        (Printf.sprintf "%.1f Gb/s" r.exempt_gbps)
        r.violations)
    rows
