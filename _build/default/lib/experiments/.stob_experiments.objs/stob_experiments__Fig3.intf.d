lib/experiments/fig3.mli: Stob_core Stob_tcp
