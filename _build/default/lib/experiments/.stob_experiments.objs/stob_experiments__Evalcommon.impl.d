lib/experiments/evalcommon.ml: Array Hashtbl List Stob_kfp Stob_ml Stob_util Stob_web
