lib/experiments/openworld.ml: Array Printf Stob_core Stob_kfp Stob_ml Stob_util Stob_web
