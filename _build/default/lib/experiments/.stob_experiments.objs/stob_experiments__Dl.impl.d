lib/experiments/dl.ml: Array List Printf Stob_defense Stob_kfp Stob_ml Stob_nn Stob_util Stob_web
