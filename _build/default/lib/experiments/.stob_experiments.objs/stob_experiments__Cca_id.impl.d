lib/experiments/cca_id.ml: Array List Option Printf Stob_core Stob_kfp Stob_ml Stob_net Stob_sim Stob_tcp Stob_util
