lib/experiments/ablation.mli:
