lib/experiments/importance.ml: Array List Printf Stob_core Stob_kfp Stob_ml Stob_web
