lib/experiments/arch.mli:
