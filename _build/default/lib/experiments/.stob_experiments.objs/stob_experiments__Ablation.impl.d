lib/experiments/ablation.ml: Evalcommon List Printf Stob_core Stob_defense Stob_sim Stob_tcp Stob_util Stob_web
