lib/experiments/table2.ml: Array Hashtbl List Printf Stob_defense Stob_kfp Stob_ml Stob_net Stob_util Stob_web String
