lib/experiments/arch.ml: Buffer Format List Printf Stob_core Stob_tcp String
