lib/experiments/table2.mli: Stob_web
