lib/experiments/earlycurve.ml: Evalcommon List Printf Stob_defense Stob_net Stob_util Stob_web
