lib/experiments/httpos.mli:
