lib/experiments/httpos.ml: Array Evalcommon Float List Printf Stob_tcp Stob_util Stob_web
