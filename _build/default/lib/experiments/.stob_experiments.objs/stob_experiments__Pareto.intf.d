lib/experiments/pareto.mli: Stob_core
