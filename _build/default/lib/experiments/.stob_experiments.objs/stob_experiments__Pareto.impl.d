lib/experiments/pareto.ml: Array Evalcommon List Printf Stob_core Stob_defense Stob_util Stob_web
