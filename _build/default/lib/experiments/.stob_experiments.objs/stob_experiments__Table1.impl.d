lib/experiments/table1.ml: List Option Printf Stob_defense Stob_util Stob_web String
