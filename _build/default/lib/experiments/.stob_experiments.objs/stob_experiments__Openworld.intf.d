lib/experiments/openworld.mli:
