lib/experiments/table1.mli: Stob_defense Stob_net
