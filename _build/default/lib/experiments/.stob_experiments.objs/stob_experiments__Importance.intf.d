lib/experiments/importance.mli: Stob_core
