lib/experiments/earlycurve.mli:
