lib/experiments/dl.mli:
