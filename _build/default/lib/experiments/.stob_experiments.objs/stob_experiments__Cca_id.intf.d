lib/experiments/cca_id.mli:
