lib/experiments/evalcommon.mli: Stob_web
