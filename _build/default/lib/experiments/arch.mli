(** Experiments E4/E5: render Figures 1 and 2.

    Both paper figures are architecture diagrams; here they are regenerated
    as structured text derived from the code itself — the stack model's
    stage names come from the simulator's actual components and the Stob
    diagram's hook points come from the fields of
    {!Stob_tcp.Hooks.decision}, so the renderings cannot silently drift
    from the implementation. *)

val figure1 : unit -> string
(** The stack model: TLS/TCP, kTLS/TCP and QUIC/UDP organizations, with the
    in-stack (shaded) asynchronous stages marked. *)

val figure2 : unit -> string
(** The Stob architecture: policy table, controller, and the three
    intercepted decisions. *)

val print_figure1 : unit -> unit
val print_figure2 : unit -> unit
