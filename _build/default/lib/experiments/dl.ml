module Rng = Stob_util.Rng
module Dataset = Stob_web.Dataset
module Features = Stob_kfp.Features
module Attack = Stob_kfp.Attack
module Dfnet = Stob_kfp.Dfnet

type row = { attack : string; original : float; defended : float }

let evaluate ~trees ~epochs ~seed ~quiet dataset =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  let rng = Rng.create (seed + 11) in
  let train, test = Dataset.split dataset ~rng ~train_fraction:0.7 in
  let labels d = Array.map (fun (s : Dataset.sample) -> s.Dataset.label) d.Dataset.samples in
  let n_classes = Array.length dataset.Dataset.site_names in
  (* k-FP *)
  say "dl: training k-FP...";
  let feats d = Array.map (fun s -> Features.extract s.Dataset.trace) d.Dataset.samples in
  let kfp =
    Attack.train
      ~forest:{ Stob_ml.Random_forest.default_params with n_trees = trees; seed }
      ~n_classes ~features:(feats train) ~labels:(labels train) ()
  in
  let kfp_acc =
    Attack.evaluate kfp ~mode:Attack.Forest_vote ~features:(feats test) ~labels:(labels test)
  in
  (* DF-lite *)
  say "dl: training DF-lite CNN (%d epochs)..." epochs;
  let encode d = Array.map (fun (s : Dataset.sample) -> Dfnet.encode s.Dataset.trace) d.Dataset.samples in
  let net =
    Dfnet.train ~epochs ~seed ~n_classes ~xs:(encode train) ~labels:(labels train)
      ~on_epoch:(fun p ->
        if (not quiet) && p.Stob_nn.Network.epoch mod 10 = 0 then
          Printf.eprintf "dl:   epoch %d, loss %.3f\n%!" p.Stob_nn.Network.epoch
            p.Stob_nn.Network.mean_loss)
      ()
  in
  let df_acc = Dfnet.accuracy net ~xs:(encode test) ~labels:(labels test) in
  (kfp_acc, df_acc)

let run ?(samples_per_site = 60) ?(trees = 100) ?(epochs = 30) ?(seed = 42) ?(quiet = false) () =
  let say fmt = Printf.ksprintf (fun s -> if not quiet then Printf.eprintf "%s\n%!" s) fmt in
  say "dl: generating corpus...";
  let base = Dataset.sanitize (Dataset.generate ~samples_per_site ~seed ()) in
  let rng = Rng.create (seed + 13) in
  let defended =
    Dataset.map_traces base (fun s -> Stob_defense.Emulate.combined ~rng s.Dataset.trace)
  in
  let kfp_o, df_o = evaluate ~trees ~epochs ~seed ~quiet base in
  say "dl: evaluating on the defended corpus...";
  let kfp_d, df_d = evaluate ~trees ~epochs ~seed ~quiet defended in
  [
    { attack = "k-FP (forest, features)"; original = kfp_o; defended = kfp_d };
    { attack = "DF-lite (CNN, directions)"; original = df_o; defended = df_d };
  ]

let print rows =
  Printf.printf "Attack family comparison (closed world, 9 sites)\n";
  Printf.printf "  %-28s %-10s %-18s\n" "attack" "original" "split+delay";
  List.iter
    (fun r -> Printf.printf "  %-28s %-10.3f %-18.3f\n" r.attack r.original r.defended)
    rows
