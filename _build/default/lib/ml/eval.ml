let accuracy ~predicted ~actual =
  let n = Array.length predicted in
  if n = 0 || n <> Array.length actual then invalid_arg "Eval.accuracy: bad inputs";
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = actual.(i) then incr hits) predicted;
  float_of_int !hits /. float_of_int n

let confusion ~n_classes ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Eval.confusion: length mismatch";
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri (fun i p -> m.(actual.(i)).(p) <- m.(actual.(i)).(p) + 1) predicted;
  m

let per_class_recall m =
  Array.mapi
    (fun i row ->
      let total = Array.fold_left ( + ) 0 row in
      if total = 0 then 0.0 else float_of_int row.(i) /. float_of_int total)
    m

let mean_std values =
  let a = Array.of_list values in
  (Stob_util.Stats.mean a, Stob_util.Stats.sample_std a)

let pp_confusion ~names fmt m =
  Format.fprintf fmt "%-16s" "";
  Array.iter (fun n -> Format.fprintf fmt "%8s" (String.sub n 0 (min 7 (String.length n)))) names;
  Format.pp_print_newline fmt ();
  Array.iteri
    (fun i row ->
      Format.fprintf fmt "%-16s" names.(i);
      Array.iter (fun c -> Format.fprintf fmt "%8d" c) row;
      Format.pp_print_newline fmt ())
    m
