lib/ml/eval.mli: Format
