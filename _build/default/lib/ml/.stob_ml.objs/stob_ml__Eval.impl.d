lib/ml/eval.ml: Array Format Stob_util String
