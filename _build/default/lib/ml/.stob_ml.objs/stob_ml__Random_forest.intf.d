lib/ml/random_forest.mli:
