lib/ml/knn.mli:
