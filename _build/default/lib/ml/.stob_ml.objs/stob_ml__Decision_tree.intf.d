lib/ml/decision_tree.mli: Stob_util
