lib/ml/knn.ml: Array List
