lib/ml/random_forest.ml: Array Decision_tree Stob_util
