lib/ml/decision_tree.ml: Array List Stob_util
