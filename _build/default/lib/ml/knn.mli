(** k-nearest-neighbour classification over leaf fingerprints.

    k-FP's open-world classifier: a test instance's forest fingerprint is
    compared to every training fingerprint by Hamming distance; the label is
    the majority among the k closest (ties toward the smaller distance
    sum). *)

val hamming : int array -> int array -> int
(** Number of differing positions.  Raises on length mismatch. *)

type t

val create : fingerprints:int array array -> labels:int array -> n_classes:int -> t

val classify : t -> k:int -> int array -> int
(** Majority label among the [k] nearest training fingerprints. *)

val nearest : t -> k:int -> int array -> (int * int) list
(** The [k] nearest as [(label, distance)] pairs, closest first. *)
