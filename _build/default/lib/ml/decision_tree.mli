(** CART decision trees (Gini impurity) with random feature subsets.

    The building block of the random forest behind k-FP.  Trees grow fully
    (until purity or the configured limits) on bootstrap samples; at each
    split only a random subset of features is considered, which is what
    decorrelates the forest's trees. *)

type params = {
  max_depth : int;
  min_samples_leaf : int;
  features_per_split : int option;
      (** [None] = all features; forests pass ~sqrt(n_features). *)
}

val default_params : params
(** Depth 32, leaf size 1, all features. *)

type t

val train :
  ?params:params ->
  rng:Stob_util.Rng.t ->
  n_classes:int ->
  features:float array array ->
  labels:int array ->
  unit ->
  t
(** [features] is row-major: one float array per sample.  All rows must
    share a length; labels must lie in [\[0, n_classes)]. *)

val predict : t -> float array -> int
val predict_dist : t -> float array -> float array
(** Class distribution at the reached leaf. *)

val leaf_id : t -> float array -> int
(** Identifier of the leaf a sample lands in (k-FP's fingerprint element).
    Leaves are numbered consecutively from 0 in construction order. *)

val n_leaves : t -> int
val depth : t -> int

val feature_gains : t -> float array
(** Per-feature total impurity decrease (Gini importance), weighted by the
    fraction of training samples reaching each split.  Length equals the
    training feature count. *)
