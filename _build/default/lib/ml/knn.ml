let hamming a b =
  if Array.length a <> Array.length b then invalid_arg "Knn.hamming: length mismatch";
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then incr d
  done;
  !d

type t = { fingerprints : int array array; labels : int array; n_classes : int }

let create ~fingerprints ~labels ~n_classes =
  if Array.length fingerprints <> Array.length labels then
    invalid_arg "Knn.create: fingerprints/labels length mismatch";
  if Array.length fingerprints = 0 then invalid_arg "Knn.create: empty training set";
  { fingerprints; labels; n_classes }

let nearest t ~k x =
  let distances =
    Array.mapi (fun i fp -> (hamming fp x, t.labels.(i))) t.fingerprints
  in
  Array.sort compare distances;
  Array.to_list (Array.sub distances 0 (min k (Array.length distances)))
  |> List.map (fun (d, l) -> (l, d))

let classify t ~k x =
  let votes = Array.make t.n_classes 0 in
  List.iter (fun (l, _) -> votes.(l) <- votes.(l) + 1) (nearest t ~k x);
  let best = ref 0 in
  Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
  !best
