module Rng = Stob_util.Rng

type params = { max_depth : int; min_samples_leaf : int; features_per_split : int option }

let default_params = { max_depth = 32; min_samples_leaf = 1; features_per_split = None }

type leaf = { id : int; label : int; dist : float array }

type node = Leaf of leaf | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_leaves : int; depth : int; gains : float array }

let class_counts ~n_classes labels indices =
  let counts = Array.make n_classes 0 in
  Array.iter (fun i -> counts.(labels.(i)) <- counts.(labels.(i)) + 1) indices;
  counts

let gini_of_counts counts total =
  if total = 0 then 0.0
  else
    let t = float_of_int total in
    1.0
    -. Array.fold_left
         (fun acc c ->
           let p = float_of_int c /. t in
           acc +. (p *. p))
         0.0 counts

let majority counts =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best

(* Find the best (threshold, gini) split of [indices] on [feature], or None
   if the feature is constant on this node. *)
let best_split_on_feature ~features ~labels ~n_classes indices feature =
  let n = Array.length indices in
  let order = Array.copy indices in
  Array.sort (fun a b -> compare features.(a).(feature) features.(b).(feature)) order;
  let total_counts = class_counts ~n_classes labels order in
  let left_counts = Array.make n_classes 0 in
  let best = ref None in
  for i = 0 to n - 2 do
    let idx = order.(i) in
    left_counts.(labels.(idx)) <- left_counts.(labels.(idx)) + 1;
    let v = features.(idx).(feature) and v' = features.(order.(i + 1)).(feature) in
    if v < v' then begin
      let n_left = i + 1 in
      let n_right = n - n_left in
      let right_counts = Array.mapi (fun c total -> total - left_counts.(c)) total_counts in
      let score =
        (float_of_int n_left *. gini_of_counts left_counts n_left
        +. float_of_int n_right *. gini_of_counts right_counts n_right)
        /. float_of_int n
      in
      let threshold = (v +. v') /. 2.0 in
      match !best with
      | Some (_, s) when s <= score -> ()
      | _ -> best := Some (threshold, score)
    end
  done;
  !best

let train ?(params = default_params) ~rng ~n_classes ~features ~labels () =
  if Array.length features = 0 then invalid_arg "Decision_tree.train: no samples";
  if Array.length features <> Array.length labels then
    invalid_arg "Decision_tree.train: features/labels length mismatch";
  let n_features = Array.length features.(0) in
  let n_root = float_of_int (Array.length features) in
  let gains = Array.make n_features 0.0 in
  let next_leaf = ref 0 in
  let max_depth_seen = ref 0 in
  let make_leaf counts total depth =
    if depth > !max_depth_seen then max_depth_seen := depth;
    let id = !next_leaf in
    incr next_leaf;
    let dist = Array.map (fun c -> float_of_int c /. float_of_int (max 1 total)) counts in
    Leaf { id; label = majority counts; dist }
  in
  let feature_candidates () =
    match params.features_per_split with
    | None -> Array.init n_features (fun i -> i)
    | Some k -> Rng.sample_without_replacement rng (min k n_features) n_features
  in
  let rec grow indices depth =
    let total = Array.length indices in
    let counts = class_counts ~n_classes labels indices in
    let pure = Array.exists (fun c -> c = total) counts in
    if pure || depth >= params.max_depth || total < 2 * params.min_samples_leaf then
      make_leaf counts total depth
    else begin
      (* Best split over the random feature subset. *)
      let best = ref None in
      Array.iter
        (fun f ->
          match best_split_on_feature ~features ~labels ~n_classes indices f with
          | None -> ()
          | Some (threshold, score) -> (
              match !best with
              | Some (_, _, s) when s <= score -> ()
              | _ -> best := Some (f, threshold, score)))
        (feature_candidates ());
      match !best with
      | None -> make_leaf counts total depth
      | Some (feature, threshold, score) ->
          let left_idx = Array.of_list (List.filter (fun i -> features.(i).(feature) <= threshold) (Array.to_list indices)) in
          let right_idx = Array.of_list (List.filter (fun i -> features.(i).(feature) > threshold) (Array.to_list indices)) in
          if
            Array.length left_idx < params.min_samples_leaf
            || Array.length right_idx < params.min_samples_leaf
          then make_leaf counts total depth
          else begin
            (* Gini importance: impurity decrease weighted by node mass. *)
            let parent_gini = gini_of_counts counts total in
            gains.(feature) <-
              gains.(feature) +. ((parent_gini -. score) *. float_of_int total /. n_root);
            let left = grow left_idx (depth + 1) in
            let right = grow right_idx (depth + 1) in
            Split { feature; threshold; left; right }
          end
    end
  in
  let root = grow (Array.init (Array.length features) (fun i -> i)) 0 in
  { root; n_leaves = !next_leaf; depth = !max_depth_seen; gains }

let rec descend node x =
  match node with
  | Leaf l -> l
  | Split { feature; threshold; left; right } ->
      if x.(feature) <= threshold then descend left x else descend right x

let predict t x = (descend t.root x).label
let predict_dist t x = Array.copy (descend t.root x).dist
let leaf_id t x = (descend t.root x).id

let n_leaves t = t.n_leaves
let depth t = t.depth

let feature_gains t = Array.copy t.gains
