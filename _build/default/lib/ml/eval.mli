(** Classifier evaluation: accuracy, confusion matrices, fold aggregation.

    Experiment tables report accuracy as "mean +/- sample std over folds",
    matching the paper's Table 2 presentation. *)

val accuracy : predicted:int array -> actual:int array -> float
(** Fraction of agreeing positions.  Raises on length mismatch or empty. *)

val confusion : n_classes:int -> predicted:int array -> actual:int array -> int array array
(** [m.(actual).(predicted)] counts. *)

val per_class_recall : int array array -> float array
(** Recall per class from a confusion matrix (0 for absent classes). *)

val mean_std : float list -> float * float
(** Mean and sample standard deviation across folds. *)

val pp_confusion : names:string array -> Format.formatter -> int array array -> unit
