lib/net/trace.mli: Format Packet
