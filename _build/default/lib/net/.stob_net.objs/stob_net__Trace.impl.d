lib/net/trace.ml: Array Buffer Format Fun List Packet Printf String
