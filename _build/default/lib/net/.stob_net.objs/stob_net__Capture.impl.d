lib/net/capture.ml: Array List Packet Trace
