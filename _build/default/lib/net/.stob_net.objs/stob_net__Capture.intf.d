lib/net/capture.mli: Packet Trace
