(** Wire traces: what the eavesdropper records.

    A trace is the time-ordered sequence of (timestamp, direction, wire size)
    triples for one page load, exactly the metadata the paper's tcpdump
    collection extracts.  Traces are the interchange format between the
    workload generator, the defenses (which transform them, Section 3) and
    the k-FP attack (which featurizes them). *)

type event = { time : float; dir : Packet.direction; size : int }

type t = event array
(** Invariant for well-formed traces: timestamps are non-decreasing.  Use
    {!sort} after a transformation that may reorder events. *)

val empty : t
val length : t -> int
val is_sorted : t -> bool

val sort : t -> t
(** Stable sort by timestamp (preserves relative order of equal times). *)

val prefix : t -> int -> t
(** First [n] events (all of them if the trace is shorter). *)

val duration : t -> float
(** Last timestamp minus first; [0.] for traces shorter than 2. *)

val count : ?dir:Packet.direction -> t -> int
(** Number of events, optionally restricted to one direction. *)

val bytes : ?dir:Packet.direction -> t -> int
(** Total wire bytes, optionally restricted to one direction. *)

val times : ?dir:Packet.direction -> t -> float array
val sizes : ?dir:Packet.direction -> t -> float array

val interarrivals : ?dir:Packet.direction -> t -> float array
(** Gaps between consecutive selected events; empty for fewer than 2. *)

val signed_sizes : t -> float array
(** Size with direction sign (+out / -in), the WF-literature encoding. *)

val shift_to_zero : t -> t
(** Rebase timestamps so the first event is at time 0. *)

val concat_sorted : t list -> t
(** Merge several traces into one time-ordered trace (e.g., the per-
    connection captures of one page load). *)

val to_csv : t -> string
(** "time,dir,size" lines; dir is [+1]/[-1]. *)

val of_csv : string -> t
(** Inverse of {!to_csv}.  Raises [Failure] on malformed input. *)

val save : string -> t -> unit
val load : string -> t

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: counts, bytes and duration per direction. *)
