lib/kfp/features.ml: Array List Printf Stob_net Stob_util
