lib/kfp/attack.mli: Stob_ml
