lib/kfp/dfnet.ml: Array Stob_net Stob_nn Stob_util
