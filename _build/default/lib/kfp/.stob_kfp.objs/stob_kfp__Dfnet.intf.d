lib/kfp/dfnet.mli: Stob_net Stob_nn
