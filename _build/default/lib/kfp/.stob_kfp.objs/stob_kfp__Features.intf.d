lib/kfp/features.mli: Stob_net
