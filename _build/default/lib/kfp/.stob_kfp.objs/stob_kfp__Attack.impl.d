lib/kfp/attack.ml: Array List Stob_ml
