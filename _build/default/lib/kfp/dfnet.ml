module Trace = Stob_net.Trace
module Packet = Stob_net.Packet
module Layer = Stob_nn.Layer
module Network = Stob_nn.Network
module Rng = Stob_util.Rng

let input_length = 600

let encode trace =
  Array.init input_length (fun i ->
      if i < Trace.length trace then float_of_int (Packet.direction_sign trace.(i).Trace.dir)
      else 0.0)

type t = Network.t

(* Two conv/relu/pool blocks then two dense layers — the DF shape. *)
let build ~rng ~n_classes =
  let l1 = input_length in
  let c1 = Layer.conv_output_length ~length:l1 ~kernel:8 in
  let p1 = Layer.pool_output_length ~length:c1 ~factor:3 in
  let c2 = Layer.conv_output_length ~length:p1 ~kernel:8 in
  let p2 = Layer.pool_output_length ~length:c2 ~factor:3 in
  Network.create
    [
      Layer.conv1d ~rng ~in_channels:1 ~out_channels:8 ~kernel:8 ~length:l1;
      Layer.relu ();
      Layer.maxpool1d ~channels:8 ~length:c1 ~factor:3;
      Layer.conv1d ~rng ~in_channels:8 ~out_channels:16 ~kernel:8 ~length:p1;
      Layer.relu ();
      Layer.maxpool1d ~channels:16 ~length:c2 ~factor:3;
      Layer.dense ~rng ~inputs:(16 * p2) ~outputs:64;
      Layer.relu ();
      Layer.dense ~rng ~inputs:64 ~outputs:n_classes;
    ]

let train ?(epochs = 30) ?(seed = 0) ?on_epoch ~n_classes ~xs ~labels () =
  let rng = Rng.create seed in
  let net = build ~rng ~n_classes in
  Network.fit net ~rng ~xs ~labels ~epochs ?on_epoch ();
  net

let predict = Network.predict
let accuracy = Network.accuracy
