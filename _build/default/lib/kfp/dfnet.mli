(** DF-lite: a Deep-Fingerprinting-style CNN attack.

    The paper's threat model centres on deep-learning WF attacks (Sirinam
    et al.'s Deep Fingerprinting, Var-CNN) that reach >95 % closed-world
    accuracy on Tor.  This is a scaled-down clean-room version of that
    architecture: the input is the sequence of packet {e directions} (+1
    outgoing, -1 incoming, zero-padded), fed through two 1-D
    convolution/ReLU/max-pool blocks and two dense layers — no
    hand-engineered features at all, which is exactly what made the DL
    attacks notable.

    Scaled for CPU training on simulator corpora: 600-step input, 8/16
    filters (the original uses 5000 steps and hundreds of filters on a
    GPU). *)

type t

val input_length : int
(** Number of leading packet directions consumed (600). *)

val encode : Stob_net.Trace.t -> float array
(** Signed-direction encoding, zero-padded/truncated to {!input_length}. *)

val train :
  ?epochs:int ->
  ?seed:int ->
  ?on_epoch:(Stob_nn.Network.progress -> unit) ->
  n_classes:int ->
  xs:float array array ->
  labels:int array ->
  unit ->
  t
(** Train on {!encode}d traces.  Default 30 epochs. *)

val predict : t -> float array -> int
val accuracy : t -> xs:float array array -> labels:int array -> float
