lib/quic/frame.ml: Format List Printf String
