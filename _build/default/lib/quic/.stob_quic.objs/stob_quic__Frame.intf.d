lib/quic/frame.mli: Format
