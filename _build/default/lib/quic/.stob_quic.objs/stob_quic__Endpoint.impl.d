lib/quic/endpoint.ml: Array Frame Hashtbl List Option Stob_net Stob_sim Stob_tcp
