lib/quic/connection.ml: Endpoint Hashtbl Stob_net Stob_tcp
