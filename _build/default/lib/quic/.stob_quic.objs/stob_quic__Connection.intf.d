lib/quic/connection.mli: Endpoint Stob_sim Stob_tcp
