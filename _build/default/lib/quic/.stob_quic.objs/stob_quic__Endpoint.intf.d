lib/quic/endpoint.mli: Frame Hashtbl Stob_net Stob_sim Stob_tcp
