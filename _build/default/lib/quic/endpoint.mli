(** One side of a QUIC connection.

    Figure 1's third stack organization: QUIC provides the stream
    abstraction and makes the datagram-sizing, pacing and scheduling
    decisions itself (in the library), handing UDP datagrams to the kernel.
    Section 2.3 argues the application therefore has no more control over
    the final packet sequence than with TCP — and with UDP GSO/USO offload
    the segmentation behaviour converges on TLS/TCP's.  This endpoint
    reproduces those decision points and exposes the same Stob hook
    ({!Stob_tcp.Hooks.t}): the decision triple is (GSO burst bytes,
    datagram payload size, earliest departure).

    Model notes: packet-number loss detection with ACK ranges and a
    threshold of 3, a PTO probe timer, reassembling streams, and the same
    congestion-controller interface as TCP (Reno/CUBIC/BBR all plug in).
    Flow-control credit is modelled as unbounded (the experiments never
    exercise backpressure); handshake flights travel as CRYPTO-like data on
    reserved streams 0 (each side's flight) and 2 (client finished). *)

type t

val default_config : Stob_tcp.Config.t
(** TCP's config record reused with QUIC framing: 1350-byte datagram
    payloads, 43 bytes of IP+UDP+QUIC header, 64 KiB GSO bursts. *)

val create :
  engine:Stob_sim.Engine.t ->
  config:Stob_tcp.Config.t ->
  cc:Stob_tcp.Cc.t ->
  flow:int ->
  dir:Stob_net.Packet.direction ->
  wire:(Stob_net.Packet.direction * int, Frame.t list) Hashtbl.t ->
  ?cpu:Stob_sim.Cpu.t * Stob_tcp.Cpu_costs.t ->
  ?hooks:Stob_tcp.Hooks.t ->
  tx:(Stob_net.Packet.t array -> unit) ->
  unit ->
  t
(** [wire] is the shared frame table both endpoints use to attach frame
    metadata to packet numbers on the wire (the simulator's stand-in for
    packet contents — see Connection). *)

(** {1 Lifecycle} *)

val connect : t -> ?crypto_bytes:int -> flight_bytes:int -> unit -> unit
(** Client active open: sends its Initial flight (padded to 1200 B) and
    expects a [flight_bytes] handshake flight back. *)

val listen : t -> flight_bytes:int -> unit
(** Server passive open with the size of its handshake flight (certificate
    chain — the site-characteristic bytes). *)

val established : t -> bool
val set_on_established : t -> (unit -> unit) -> unit

(** {1 Streams} *)

val send_stream : t -> stream:int -> ?fin:bool -> int -> unit
(** Queue bytes on a stream (ids >= 4 for application data). *)

val set_on_stream : t -> (stream:int -> int -> unit) -> unit
(** In-order delivery callback: [stream, bytes]. *)

val set_on_stream_fin : t -> (stream:int -> unit) -> unit

val send_padding_datagram : t -> int -> unit
(** Emit a PADDING-only datagram (defense dummy traffic); not
    acknowledged. *)

(** {1 Stob / path interface} *)

val set_hooks : t -> Stob_tcp.Hooks.t -> unit
val cc : t -> Stob_tcp.Cc.t
val receive : t -> Stob_net.Packet.t -> unit

(** {1 Introspection} *)

val inflight : t -> int
val packets_sent : t -> int
val datagrams_sent : t -> int
val retransmitted_chunks : t -> int
val srtt : t -> float option
