(** A full client-server QUIC connection wired over a {!Stob_tcp.Path}.

    Creates both endpoints with the shared wire-frame table (the simulator's
    stand-in for encrypted packet contents), registers the path demux, and
    runs the handshake.  One QUIC connection multiplexes many streams, so a
    whole page load uses a single [flow] — the HTTP/3 deployment model the
    QUIC WF literature (QCSD, Siby et al.) studies. *)

type t

val create :
  engine:Stob_sim.Engine.t ->
  path:Stob_tcp.Path.t ->
  flow:int ->
  ?config:Stob_tcp.Config.t ->
  ?cc:Stob_tcp.Cc.factory ->
  ?server_cpu:Stob_sim.Cpu.t * Stob_tcp.Cpu_costs.t ->
  ?server_hooks:Stob_tcp.Hooks.t ->
  flight_bytes:int ->
  unit ->
  t
(** [flight_bytes] is the server's handshake flight (certificate chain)
    size.  Defaults: {!Endpoint.default_config} and CUBIC. *)

val client : t -> Endpoint.t
val server : t -> Endpoint.t
val flow : t -> int

val open_ : t -> unit
(** Client sends its Initial. *)

val on_established : t -> (unit -> unit) -> unit
(** Fires when the client completes the handshake. *)
