type stream_chunk = { stream : int; offset : int; length : int; fin : bool }

type t = Stream of stream_chunk | Ack of { ranges : (int * int) list } | Padding of int | Ping

(* Frame header estimates: type byte + varint fields. *)
let wire_bytes = function
  | Stream c -> 8 + c.length  (* type + stream id + offset + length varints *)
  | Ack { ranges } -> 8 + (4 * List.length ranges)
  | Padding n -> n
  | Ping -> 1

let is_ack_eliciting = function Ack _ -> false | Stream _ | Padding _ | Ping -> true

let pp fmt = function
  | Stream c ->
      Format.fprintf fmt "STREAM(%d off=%d len=%d%s)" c.stream c.offset c.length
        (if c.fin then " FIN" else "")
  | Ack { ranges } ->
      Format.fprintf fmt "ACK(%s)"
        (String.concat "," (List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) ranges))
  | Padding n -> Format.fprintf fmt "PADDING(%d)" n
  | Ping -> Format.pp_print_string fmt "PING"
