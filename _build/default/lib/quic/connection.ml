module Packet = Stob_net.Packet
module Path = Stob_tcp.Path

type t = { client : Endpoint.t; server : Endpoint.t; flow : int; flight_bytes : int }

let create ~engine ~path ~flow ?(config = Endpoint.default_config) ?(cc = Stob_tcp.Cubic.make)
    ?server_cpu ?server_hooks ~flight_bytes () =
  let wire = Hashtbl.create 1024 in
  let tx packets = Path.send path packets in
  let client =
    Endpoint.create ~engine ~config ~cc:(cc config) ~flow ~dir:Packet.Outgoing ~wire ~tx ()
  in
  let server =
    Endpoint.create ~engine ~config ~cc:(cc config) ~flow ~dir:Packet.Incoming ~wire ?cpu:server_cpu
      ?hooks:server_hooks ~tx ()
  in
  Endpoint.listen server ~flight_bytes;
  Path.register path ~flow
    ~client:(fun p -> Endpoint.receive client p)
    ~server:(fun p -> Endpoint.receive server p);
  { client; server; flow; flight_bytes }

let client t = t.client
let server t = t.server
let flow t = t.flow
let open_ t = Endpoint.connect t.client ~flight_bytes:t.flight_bytes ()
let on_established t f = Endpoint.set_on_established t.client f
