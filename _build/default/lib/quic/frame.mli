(** QUIC frames (sizes-only model).

    The simulator carries no real bytes, so a frame is its metadata: which
    stream, how many bytes, at what offset.  Frames are grouped into
    datagrams by the {!Endpoint}; an eavesdropper sees only the datagram's
    wire size, exactly as with encrypted QUIC. *)

type stream_chunk = {
  stream : int;  (** Stream id; 0 is reserved for handshake CRYPTO data. *)
  offset : int;
  length : int;
  fin : bool;
}

type t =
  | Stream of stream_chunk
  | Ack of { ranges : (int * int) list }
      (** ACK ranges as inclusive [lo, hi] packet-number intervals, highest
          first — real QUIC ACK frames, needed because drops leave holes a
          cumulative ACK could not express. *)
  | Padding of int  (** PADDING bytes (Initial anti-amplification, defenses). *)
  | Ping

val wire_bytes : t -> int
(** Encoded frame size (headers + payload for stream/padding frames). *)

val is_ack_eliciting : t -> bool
(** Frames that require acknowledgement (everything but ACK). *)

val pp : Format.formatter -> t -> unit
