(** Safety auditing for obfuscation policies.

    Section 4.2: "Stob must ensure that it does not generate more aggressive
    traffic to the network (e.g., higher pacing rate than what CCA
    desired)."  The endpoint already clamps every hook answer; this module
    makes the invariant observable: {!is_safe} is the predicate itself, and
    {!audit} wraps a hook to count how often a policy {e proposed} something
    the clamp had to correct — a well-behaved policy audits clean. *)

val is_safe : stack:Stob_tcp.Hooks.decision -> Stob_tcp.Hooks.decision -> bool
(** No larger segment, no larger packets, no earlier departure. *)

type report = {
  decisions : int;  (** Hook invocations audited. *)
  violations : int;  (** Proposals the clamp had to correct. *)
  max_rate_ratio : float;
      (** Worst-case ratio of proposed implied sending rate to the stack's
          implied rate (> 1 would mean the policy tried to send faster). *)
}

val audit : Stob_tcp.Hooks.t -> Stob_tcp.Hooks.t * (unit -> report)
(** [audit hooks] is a wrapped hook enforcing the clamp itself, plus a
    report thunk.  Install the wrapped hook; read the report after a run. *)
