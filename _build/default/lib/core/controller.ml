module Hooks = Stob_tcp.Hooks

type stats = { segments : int; modified : int; added_delay : float; stood_down : int }

type t = {
  policy : Policy.t;
  rng : Stob_util.Rng.t;
  mutable size_step : int;  (* position in a Cycle_reduction *)
  mutable tso_step : int;  (* position in a Cycle_tso_reduction *)
  mutable last_release : float option;
  mutable segments : int;
  mutable modified : int;
  mutable added_delay : float;
  mutable stood_down : int;
}

let create ?(seed = 0) policy =
  (match Policy.validate policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Controller.create: invalid policy: " ^ msg));
  {
    policy;
    rng = Stob_util.Rng.create seed;
    size_step = 0;
    tso_step = 0;
    last_release = None;
    segments = 0;
    modified = 0;
    added_delay = 0.0;
    stood_down = 0;
  }

let apply_size t ~stack_payload =
  match t.policy.Policy.size with
  | Policy.Default_size -> stack_payload
  | Policy.Fixed_payload n -> min n stack_payload
  | Policy.Split_above threshold ->
      let wire = stack_payload + Stob_net.Packet.default_header_bytes in
      if wire > threshold then (stack_payload + 1) / 2 else stack_payload
  | Policy.Cycle_reduction { step; max_steps } ->
      let k = t.size_step in
      t.size_step <- (if k >= max_steps then 0 else k + 1);
      max 1 (stack_payload - (step * k))
  | Policy.Sampled_size h ->
      min stack_payload (max 1 (int_of_float (Stob_util.Histogram.sample h t.rng)))

let apply_tso t ~stack_tso ~payload =
  let stack_packets = max 1 (stack_tso / max 1 payload) in
  match t.policy.Policy.tso with
  | Policy.Default_tso -> stack_tso
  | Policy.Fixed_tso_packets n -> min stack_tso (max 1 (min n stack_packets) * payload)
  | Policy.Single_packet_tso -> min stack_tso payload
  | Policy.Cycle_tso_reduction { step; max_steps } ->
      let k = t.tso_step in
      t.tso_step <- (if k >= max_steps then 0 else k + 1);
      let packets = max 1 (stack_packets - (step * k)) in
      min stack_tso (packets * payload)

let apply_timing t ~now ~bytes ~stack_departure =
  ignore bytes;
  match t.policy.Policy.timing with
  | Policy.Default_timing -> stack_departure
  | Policy.Add_constant d -> stack_departure +. d
  | Policy.Add_uniform (lo, hi) -> stack_departure +. Stob_util.Rng.uniform t.rng lo hi
  | Policy.Stretch_gap (lo, hi) -> (
      (* The first segment has no predecessor: nothing to stretch. *)
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = Float.max 0.0 (stack_departure -. last) in
          stack_departure +. (gap *. Stob_util.Rng.uniform t.rng lo hi))
  | Policy.Sampled_gap h -> (
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = Stob_util.Histogram.sample h t.rng in
          Float.max stack_departure (last +. gap) |> Float.max now)
  | Policy.Pace_at rate -> (
      match t.last_release with
      | None -> stack_departure
      | Some last ->
          let gap = float_of_int (bytes * 8) /. rate in
          Float.max stack_departure (last +. gap))

let hooks t =
  {
    Hooks.on_segment =
      (fun ~now ~flow:_ ~phase (d : Hooks.decision) ->
        t.segments <- t.segments + 1;
        if List.mem phase t.policy.Policy.exempt_phases then begin
          t.stood_down <- t.stood_down + 1;
          t.last_release <-
            Some
              (Float.max
                 (Option.value ~default:neg_infinity t.last_release)
                 d.Hooks.earliest_departure);
          d
        end
        else begin
          let payload = apply_size t ~stack_payload:d.Hooks.packet_payload in
          let tso = apply_tso t ~stack_tso:d.Hooks.tso_bytes ~payload in
          let departure =
            apply_timing t ~now ~bytes:tso ~stack_departure:d.Hooks.earliest_departure
          in
          let result =
            { Hooks.tso_bytes = tso; packet_payload = payload; earliest_departure = departure }
          in
          if result <> d then t.modified <- t.modified + 1;
          t.added_delay <- t.added_delay +. Float.max 0.0 (departure -. d.Hooks.earliest_departure);
          t.last_release <- Some (Float.max departure d.Hooks.earliest_departure);
          result
        end);
  }

let stats t =
  { segments = t.segments; modified = t.modified; added_delay = t.added_delay; stood_down = t.stood_down }

let policy t = t.policy
