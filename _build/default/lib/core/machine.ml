module Hooks = Stob_tcp.Hooks
module Rng = Stob_util.Rng

type transition = { target : int; weight : float }

type state = { name : string; policy : Policy.t; transitions : transition list }

type t = { states : state array; start : int }

let validate t =
  let n = Array.length t.states in
  if n = 0 then Error "machine has no states"
  else if t.start < 0 || t.start >= n then Error "start state out of range"
  else
    Array.fold_left
      (fun acc state ->
        Result.bind acc (fun () ->
            Result.bind
              (List.fold_left
                 (fun acc tr ->
                   Result.bind acc (fun () ->
                       if tr.target < 0 || tr.target >= n then
                         Error (state.name ^ ": transition target out of range")
                       else if tr.weight < 0.0 then
                         Error (state.name ^ ": negative transition weight")
                       else Ok ()))
                 (Ok ()) state.transitions)
              (fun () ->
                Result.map_error (fun e -> state.name ^ ": " ^ e) (Policy.validate state.policy))))
      (Ok ()) t.states

type controller = {
  machine : t;
  rng : Rng.t;
  per_state : Controller.t array;  (* one policy controller per state *)
  counts : int array;
  mutable current : int;
}

let create ?(seed = 0) machine =
  (match validate machine with
  | Ok () -> ()
  | Error e -> invalid_arg ("Machine.create: " ^ e));
  {
    machine;
    rng = Rng.create seed;
    per_state =
      Array.mapi (fun i s -> Controller.create ~seed:(seed + (31 * (i + 1))) s.policy) machine.states;
    counts = Array.make (Array.length machine.states) 0;
    current = machine.start;
  }

let step_transitions c =
  let state = c.machine.states.(c.current) in
  match state.transitions with
  | [] -> ()
  | transitions ->
      let total = List.fold_left (fun acc tr -> acc +. tr.weight) 0.0 transitions in
      (* Remaining probability mass = stay in place. *)
      let stay = Float.max 0.0 (1.0 -. total) in
      let target = Rng.float c.rng (total +. stay) in
      let rec pick acc = function
        | [] -> c.current  (* fell into the stay mass *)
        | tr :: rest -> if target < acc +. tr.weight then tr.target else pick (acc +. tr.weight) rest
      in
      c.current <- pick 0.0 transitions

let hooks c =
  {
    Hooks.on_segment =
      (fun ~now ~flow ~phase d ->
        c.counts.(c.current) <- c.counts.(c.current) + 1;
        let inner = Controller.hooks c.per_state.(c.current) in
        let result = inner.Hooks.on_segment ~now ~flow ~phase d in
        step_transitions c;
        result);
  }

let current_state c = c.machine.states.(c.current).name

let segments_in_state c =
  Array.to_list (Array.mapi (fun i s -> (s.name, c.counts.(i))) c.machine.states)

let intermittent ~on ?(p_enter = 0.1) ?(p_exit = 0.2) () =
  {
    states =
      [|
        {
          name = "idle";
          policy = Policy.unmodified;
          transitions = [ { target = 1; weight = p_enter } ];
        };
        { name = "obfuscate"; policy = on; transitions = [ { target = 0; weight = p_exit } ] };
      |];
    start = 0;
  }
