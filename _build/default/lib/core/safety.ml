module Hooks = Stob_tcp.Hooks

let is_safe ~stack (d : Hooks.decision) =
  d.Hooks.tso_bytes <= stack.Hooks.tso_bytes
  && d.Hooks.packet_payload <= stack.Hooks.packet_payload
  && d.Hooks.earliest_departure >= stack.Hooks.earliest_departure

type report = { decisions : int; violations : int; max_rate_ratio : float }

(* Implied instantaneous sending rate of a decision: segment bytes over the
   time from now until it has fully departed.  A proposal with a higher
   implied rate than the stack's is trying to out-run the CCA. *)
let implied_rate ~now (d : Hooks.decision) =
  let horizon = Float.max 1e-9 (d.Hooks.earliest_departure -. now +. 1e-9) in
  float_of_int d.Hooks.tso_bytes /. horizon

let audit hooks =
  let decisions = ref 0 and violations = ref 0 and max_ratio = ref 1.0 in
  let wrapped =
    {
      Hooks.on_segment =
        (fun ~now ~flow ~phase stack ->
          incr decisions;
          let proposed = hooks.Hooks.on_segment ~now ~flow ~phase stack in
          if not (is_safe ~stack proposed) then begin
            incr violations;
            let ratio = implied_rate ~now proposed /. implied_rate ~now stack in
            if ratio > !max_ratio then max_ratio := ratio
          end;
          Hooks.clamp ~stack proposed);
    }
  in
  ( wrapped,
    fun () -> { decisions = !decisions; violations = !violations; max_rate_ratio = !max_ratio } )
