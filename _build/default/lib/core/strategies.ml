let incremental_packet_reduction ~alpha =
  Policy.make
    ~name:(Printf.sprintf "incr-pkt(a=%d)" alpha)
    ~size:(Policy.Cycle_reduction { step = alpha; max_steps = 10 })
    ()

let incremental_tso_reduction ~alpha =
  Policy.make
    ~name:(Printf.sprintf "incr-tso(a=%d)" alpha)
    ~tso:(Policy.Cycle_tso_reduction { step = max 1 (alpha / 4); max_steps = 8 })
    ()

let incremental_combined ~alpha =
  Policy.make
    ~name:(Printf.sprintf "incr-both(a=%d)" alpha)
    ~size:(Policy.Cycle_reduction { step = alpha; max_steps = 10 })
    ~tso:(Policy.Cycle_tso_reduction { step = max 1 (alpha / 4); max_steps = 8 })
    ()

let stack_split ?(threshold = 1200) () =
  Policy.make
    ~name:(Printf.sprintf "split(>%dB)" threshold)
    ~size:(Policy.Split_above threshold)
      (* Splitting a segment's packets doubles their count; keep the TSO
         budget in packets rather than bytes so the burst length matches a
         kernel that splits at packetization time. *)
    ()

let stack_delay ?(lo = 0.1) ?(hi = 0.3) () =
  Policy.make
    ~name:(Printf.sprintf "delay(%g-%g)" lo hi)
    ~timing:(Policy.Stretch_gap (lo, hi))
    ()

let stack_combined ?(threshold = 1200) ?(lo = 0.1) ?(hi = 0.3) () =
  Policy.make
    ~name:(Printf.sprintf "split+delay(>%dB,%g-%g)" threshold lo hi)
    ~size:(Policy.Split_above threshold)
    ~timing:(Policy.Stretch_gap (lo, hi))
    ()

let histogram_sizes h = Policy.make ~name:"histogram-sizes" ~size:(Policy.Sampled_size h) ()

let rate_floor ~rate_bps =
  Policy.make
    ~name:(Printf.sprintf "pace@%.0fMb/s" (rate_bps /. 1e6))
    ~timing:(Policy.Pace_at rate_bps)
    ()
let histogram_gaps h = Policy.make ~name:"histogram-gaps" ~timing:(Policy.Sampled_gap h) ()

let bbr_respecting p =
  {
    p with
    Policy.name = p.Policy.name ^ "+bbr-exempt";
    exempt_phases = Stob_tcp.Cc.[ Startup; Drain ];
  }

let all_named () =
  [
    ("unmodified", Policy.unmodified);
    ("split", stack_split ());
    ("delay", stack_delay ());
    ("combined", stack_combined ());
    ("incr-pkt-20", incremental_packet_reduction ~alpha:20);
    ("incr-tso-20", incremental_tso_reduction ~alpha:20);
    ("incr-both-20", incremental_combined ~alpha:20);
    ("pace-25", rate_floor ~rate_bps:25e6);
  ]
