type size_rule =
  | Default_size
  | Fixed_payload of int
  | Split_above of int
  | Cycle_reduction of { step : int; max_steps : int }
  | Sampled_size of Stob_util.Histogram.t

type tso_rule =
  | Default_tso
  | Fixed_tso_packets of int
  | Cycle_tso_reduction of { step : int; max_steps : int }
  | Single_packet_tso

type timing_rule =
  | Default_timing
  | Add_constant of float
  | Add_uniform of float * float
  | Stretch_gap of float * float
  | Sampled_gap of Stob_util.Histogram.t
  | Pace_at of float

type t = {
  name : string;
  size : size_rule;
  tso : tso_rule;
  timing : timing_rule;
  exempt_phases : Stob_tcp.Cc.phase list;
}

let unmodified =
  { name = "unmodified"; size = Default_size; tso = Default_tso; timing = Default_timing; exempt_phases = [] }

let make ~name ?(size = Default_size) ?(tso = Default_tso) ?(timing = Default_timing)
    ?(exempt_phases = []) () =
  { name; size; tso; timing; exempt_phases }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () =
    match t.size with
    | Default_size -> Ok ()
    | Fixed_payload n -> check (n > 0) "Fixed_payload must be positive"
    | Split_above n -> check (n > 0) "Split_above threshold must be positive"
    | Cycle_reduction { step; max_steps } ->
        check (step >= 0 && max_steps > 0) "Cycle_reduction needs step >= 0 and max_steps > 0"
    | Sampled_size h ->
        check
          (Stob_util.Histogram.count h > 0 && Stob_util.Histogram.lo h >= 1.0)
          "Sampled_size histogram must be non-empty with domain >= 1 byte"
  in
  let* () =
    match t.tso with
    | Default_tso | Single_packet_tso -> Ok ()
    | Fixed_tso_packets n -> check (n > 0) "Fixed_tso_packets must be positive"
    | Cycle_tso_reduction { step; max_steps } ->
        check (step >= 0 && max_steps > 0) "Cycle_tso_reduction needs step >= 0 and max_steps > 0"
  in
  match t.timing with
  | Default_timing -> Ok ()
  | Add_constant d -> check (d >= 0.0) "Add_constant delay must be non-negative"
  | Add_uniform (lo, hi) -> check (0.0 <= lo && lo <= hi) "Add_uniform needs 0 <= lo <= hi"
  | Stretch_gap (lo, hi) -> check (0.0 <= lo && lo <= hi) "Stretch_gap needs 0 <= lo <= hi"
  | Sampled_gap h ->
      check
        (Stob_util.Histogram.count h > 0 && Stob_util.Histogram.lo h >= 0.0)
        "Sampled_gap histogram must be non-empty with non-negative domain"
  | Pace_at rate -> check (rate > 0.0) "Pace_at rate must be positive"

let pp_size fmt = function
  | Default_size -> Format.pp_print_string fmt "default"
  | Fixed_payload n -> Format.fprintf fmt "fixed(%dB)" n
  | Split_above n -> Format.fprintf fmt "split>%dB" n
  | Cycle_reduction { step; max_steps } -> Format.fprintf fmt "cycle(-%dB x%d)" step max_steps
  | Sampled_size _ -> Format.pp_print_string fmt "histogram"

let pp_tso fmt = function
  | Default_tso -> Format.pp_print_string fmt "default"
  | Fixed_tso_packets n -> Format.fprintf fmt "fixed(%dpkt)" n
  | Cycle_tso_reduction { step; max_steps } -> Format.fprintf fmt "cycle(-%dpkt x%d)" step max_steps
  | Single_packet_tso -> Format.pp_print_string fmt "off"

let pp_timing fmt = function
  | Default_timing -> Format.pp_print_string fmt "default"
  | Add_constant d -> Format.fprintf fmt "+%.2gms" (d *. 1e3)
  | Add_uniform (lo, hi) -> Format.fprintf fmt "+U(%.2g,%.2g)ms" (lo *. 1e3) (hi *. 1e3)
  | Stretch_gap (lo, hi) -> Format.fprintf fmt "gap*(1+U(%.2g,%.2g))" lo hi
  | Sampled_gap _ -> Format.pp_print_string fmt "histogram"
  | Pace_at rate -> Format.fprintf fmt "pace@%.1fMb/s" (rate /. 1e6)

let pp fmt t =
  Format.fprintf fmt "%s{size=%a tso=%a timing=%a%s}" t.name pp_size t.size pp_tso t.tso pp_timing
    t.timing
    (if t.exempt_phases = [] then ""
     else
       " exempt=" ^ String.concat "," (List.map Stob_tcp.Cc.phase_name t.exempt_phases))
