(** Ready-made Stob policies.

    These are the concrete obfuscation strategies the paper exercises or
    implies; each is an ordinary {!Policy.t} so they compose with the
    {!Policy_table} and {!Controller} like user-defined ones. *)

val incremental_packet_reduction : alpha:int -> Policy.t
(** Figure 3, packet-size axis: reduce the packet size by [alpha] bytes per
    segment, down to [alpha * 10] below the default, then reset and
    repeat. *)

val incremental_tso_reduction : alpha:int -> Policy.t
(** Figure 3, TSO axis: reduce the TSO size by [alpha/4] packets per
    segment, down to [8 * alpha/4] packets below the default (floor 1),
    then reset and repeat. *)

val incremental_combined : alpha:int -> Policy.t
(** Both Figure 3 axes at once. *)

val stack_split : ?threshold:int -> unit -> Policy.t
(** In-stack equivalent of Section 3's trace-level splitting: packets whose
    wire size would exceed [threshold] (default 1200 B) are halved. *)

val stack_delay : ?lo:float -> ?hi:float -> unit -> Policy.t
(** In-stack equivalent of Section 3's delaying: stretch each departure gap
    by a uniform random 10-30 % (defaults [lo = 0.1], [hi = 0.3]). *)

val stack_combined : ?threshold:int -> ?lo:float -> ?hi:float -> unit -> Policy.t
(** Split and delay together (Section 3's "Combined"). *)

val histogram_sizes : Stob_util.Histogram.t -> Policy.t
(** Draw packet payloads from an application-supplied size distribution
    (the Section 4.1 histogram-policy use case). *)

val histogram_gaps : Stob_util.Histogram.t -> Policy.t
(** Enforce minimum inter-departure gaps drawn from a histogram. *)

val rate_floor : rate_bps:float -> Policy.t
(** Constant-rate shaping by delay alone ({!Policy.Pace_at}): below the
    CCA's own rate the wire shows a constant-rate stream — hiding CCA
    identity (Section 5.2) at the cost of capping throughput. *)

val bbr_respecting : Policy.t -> Policy.t
(** Wrap any policy so it stands down during BBR's startup and drain (the
    Section 5.1 co-design accommodation). *)

val all_named : unit -> (string * Policy.t) list
(** The fixed (non-parameterized-by-histogram) strategies, for CLIs and
    sweeps. *)
