type t = {
  mutable global : Policy.t option;
  by_destination : (string, Policy.t) Hashtbl.t;
  by_flow : (int, Policy.t) Hashtbl.t;
}

let create () = { global = None; by_destination = Hashtbl.create 16; by_flow = Hashtbl.create 16 }

let set_global t p = t.global <- Some p
let set_for_destination t dest p = Hashtbl.replace t.by_destination dest p
let set_for_flow t flow p = Hashtbl.replace t.by_flow flow p
let remove_flow t flow = Hashtbl.remove t.by_flow flow
let remove_destination t dest = Hashtbl.remove t.by_destination dest
let clear_global t = t.global <- None

let lookup t ?destination flow =
  match Hashtbl.find_opt t.by_flow flow with
  | Some p -> p
  | None -> (
      let by_dest = Option.bind destination (Hashtbl.find_opt t.by_destination) in
      match by_dest with
      | Some p -> p
      | None -> ( match t.global with Some p -> p | None -> Policy.unmodified))

let attach t ?destination ?seed flow =
  let policy = lookup t ?destination flow in
  Controller.create ~seed:(Option.value ~default:flow seed) policy

let installed t =
  let entries = ref [] in
  (match t.global with Some p -> entries := [ ("*", p) ] | None -> ());
  Hashtbl.iter (fun d p -> entries := ("dst:" ^ d, p) :: !entries) t.by_destination;
  Hashtbl.iter (fun f p -> entries := (Printf.sprintf "flow:%d" f, p) :: !entries) t.by_flow;
  List.sort (fun (a, _) (b, _) -> compare a b) !entries
