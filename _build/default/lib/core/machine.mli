(** Probabilistic defense state machines (a Maybenot-style framework on top
    of Stob's hook).

    The paper's related work (Pulls & Witwer's Maybenot) frames traffic-
    analysis defenses as state machines: states carry actions, transitions
    fire probabilistically on traffic events.  Stob can host exactly that
    in-stack: each state carries an ordinary {!Policy.t}; on every committed
    segment the machine first applies the current state's policy, then takes
    a weighted random transition.  Multi-state policies obfuscate
    {e intermittently} — which also makes the defense itself harder to
    fingerprint than an always-on transform.

    Everything a machine emits still flows through the endpoint clamp: no
    state can make traffic more aggressive than the CCA decided. *)

type transition = { target : int; weight : float }
(** Weighted edge to [states.(target)]; weights need not normalize. *)

type state = {
  name : string;
  policy : Policy.t;  (** Applied to every segment while in this state. *)
  transitions : transition list;
      (** Evaluated after each segment; empty = absorbing state. *)
}

type t = { states : state array; start : int }

val validate : t -> (unit, string) result
(** Checks: non-empty, start in range, transition targets in range,
    non-negative weights, every state's policy validates. *)

type controller

val create : ?seed:int -> t -> controller
(** Raises [Invalid_argument] on an invalid machine. *)

val hooks : controller -> Stob_tcp.Hooks.t

val current_state : controller -> string
val segments_in_state : controller -> (string * int) list
(** How many segment decisions each state handled. *)

val intermittent : on:Policy.t -> ?p_enter:float -> ?p_exit:float -> unit -> t
(** Two-state machine: "idle" (unmodified) entering the obfuscating state
    with probability [p_enter] per segment (default 0.1), leaving with
    [p_exit] (default 0.2). *)
