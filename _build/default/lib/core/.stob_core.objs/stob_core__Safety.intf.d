lib/core/safety.mli: Stob_tcp
