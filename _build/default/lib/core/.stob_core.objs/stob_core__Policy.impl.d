lib/core/policy.ml: Format List Result Stob_tcp Stob_util String
