lib/core/controller.mli: Policy Stob_tcp
