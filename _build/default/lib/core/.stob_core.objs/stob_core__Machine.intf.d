lib/core/machine.mli: Policy Stob_tcp
