lib/core/policy.mli: Format Stob_tcp Stob_util
