lib/core/policy_table.mli: Controller Policy
