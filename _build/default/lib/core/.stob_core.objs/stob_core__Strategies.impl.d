lib/core/strategies.ml: Policy Printf Stob_tcp
