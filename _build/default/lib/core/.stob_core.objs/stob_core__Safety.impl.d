lib/core/safety.ml: Float Stob_tcp
