lib/core/controller.ml: Float List Option Policy Stob_net Stob_tcp Stob_util
