lib/core/machine.ml: Array Controller Float List Policy Result Stob_tcp Stob_util
