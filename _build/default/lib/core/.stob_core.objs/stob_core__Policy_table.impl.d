lib/core/policy_table.ml: Controller Hashtbl List Option Policy Printf
