lib/core/strategies.mli: Policy Stob_util
