(** Stob obfuscation policies.

    A policy declares how the stack's three per-segment decisions — packet
    size, TSO size, departure time — are perturbed (Section 4.2).  Policies
    are deliberately compact, declarative data ("relatively compact
    distribution functions like histograms", Section 4.1): they can be
    stored in the shared {!Policy_table} between application and stack and
    instantiated per flow by the {!Controller}.

    Policies only ever {e reduce} sizes and {e delay} departures; the
    controller and the endpoint clamp anything else, so no policy can make
    traffic more aggressive than the congestion controller decided. *)

type size_rule =
  | Default_size  (** Leave the stack's MSS-derived packet size alone. *)
  | Fixed_payload of int  (** Constant payload per packet (clamped to MSS). *)
  | Split_above of int
      (** Halve the payload of packets whose wire size would exceed the
          threshold — the in-stack equivalent of Section 3's packet
          splitting. *)
  | Cycle_reduction of { step : int; max_steps : int }
      (** Figure 3's strategy: reduce payload by [step] bytes per segment,
          reset to the default after [max_steps] reductions. *)
  | Sampled_size of Stob_util.Histogram.t
      (** Draw each segment's packet payload from a histogram. *)

type tso_rule =
  | Default_tso  (** Leave the stack's TSO autosizing decision alone. *)
  | Fixed_tso_packets of int  (** Constant segment size in packets. *)
  | Cycle_tso_reduction of { step : int; max_steps : int }
      (** Figure 3: reduce the segment's packet count by [step] per segment,
          reset after [max_steps] reductions (floor 1 packet). *)
  | Single_packet_tso  (** Disable TSO: one packet per segment. *)

type timing_rule =
  | Default_timing  (** Leave the pacing departure time alone. *)
  | Add_constant of float  (** Delay every segment by a fixed time. *)
  | Add_uniform of float * float  (** Delay by U(lo, hi) seconds. *)
  | Stretch_gap of float * float
      (** Lengthen the gap since the previous release by a uniform random
          fraction — the in-stack equivalent of Section 3's 10-30 %
          inter-arrival delaying is [Stretch_gap (0.1, 0.3)]. *)
  | Sampled_gap of Stob_util.Histogram.t
      (** Draw a minimum inter-departure gap (seconds) from a histogram. *)
  | Pace_at of float
      (** Enforce a constant departure rate (bits/s) by spacing segments at
          [bytes * 8 / rate] — shaping by pure delay.  When the rate sits
          below the CCA's, the wire shows a constant-rate stream regardless
          of the CCA's window dynamics (the Section 5.2 CCA-hiding use
          case); it can never {e exceed} the CCA's own schedule. *)

type t = {
  name : string;
  size : size_rule;
  tso : tso_rule;
  timing : timing_rule;
  exempt_phases : Stob_tcp.Cc.phase list;
      (** CCA phases in which the policy stands down entirely (Section 5.1:
          e.g. BBR's startup, where pacing is load-bearing). *)
}

val unmodified : t
(** The identity policy: stock stack behaviour. *)

val make :
  name:string ->
  ?size:size_rule ->
  ?tso:tso_rule ->
  ?timing:timing_rule ->
  ?exempt_phases:Stob_tcp.Cc.phase list ->
  unit ->
  t

val validate : t -> (unit, string) result
(** Static sanity check: positive steps, sane ranges, histogram domains. *)

val pp : Format.formatter -> t -> unit
