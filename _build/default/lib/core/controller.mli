(** The packet-sequence controller: compiles a {!Policy.t} into stack hooks.

    One controller instance serves one flow; it carries the mutable state a
    policy needs (cycle counters, RNG stream, last release time) and emits a
    {!Stob_tcp.Hooks.t} the endpoint consults once per segment.  The
    controller never proposes anything more aggressive than the stack's own
    decision — and even if a buggy policy did, the endpoint clamps it (see
    {!Stob_tcp.Hooks.clamp} and {!Safety}). *)

type t

type stats = {
  segments : int;  (** Segment decisions seen. *)
  modified : int;  (** Decisions the policy actually changed. *)
  added_delay : float;  (** Total departure delay added, seconds. *)
  stood_down : int;  (** Decisions skipped due to an exempt CCA phase. *)
}

val create : ?seed:int -> Policy.t -> t
(** Instantiate the policy's per-flow state.  [seed] fixes the random
    stream used by stochastic rules (default 0). *)

val hooks : t -> Stob_tcp.Hooks.t
(** The hook to install with {!Stob_tcp.Endpoint.set_hooks} (or pass at
    endpoint creation). *)

val stats : t -> stats
val policy : t -> Policy.t
