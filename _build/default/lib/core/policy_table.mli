(** The shared policy table between applications and the stack.

    Section 4.1: policies "could be maintained in the shared memory between
    the application and stack" and "shared between flows in some cases
    (e.g., same destination)".  This table is that shared object: the
    application (or an administrator) installs policies keyed by flow, by
    destination, or globally; the stack resolves the most specific match
    when a flow starts and instantiates a per-flow {!Controller}. *)

type t

val create : unit -> t

val set_global : t -> Policy.t -> unit
val set_for_destination : t -> string -> Policy.t -> unit
val set_for_flow : t -> int -> Policy.t -> unit

val remove_flow : t -> int -> unit
val remove_destination : t -> string -> unit
val clear_global : t -> unit

val lookup : t -> ?destination:string -> int -> Policy.t
(** Resolution order: flow-specific, then destination, then global, then
    {!Policy.unmodified}. *)

val attach : t -> ?destination:string -> ?seed:int -> int -> Controller.t
(** Resolve and instantiate a controller for a new flow.  [seed] defaults to
    the flow id so different flows draw different random streams. *)

val installed : t -> (string * Policy.t) list
(** Human-readable dump of every installed entry (for the `stobctl` CLI). *)
