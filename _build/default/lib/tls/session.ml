type mode = User_tls | Ktls

type t = {
  config : Record.config;
  mutable padding : Record.padding;
  mode : mode;
  endpoint : Stob_tcp.Endpoint.t;
  mutable plaintext : int;
  mutable ciphertext : int;
  mutable ktls_pending : int;  (* plaintext not yet framed, kTLS coalescing *)
}

let create ?(config = Record.default) ?(padding = Record.No_padding) ~mode endpoint =
  { config; padding; mode; endpoint; plaintext = 0; ciphertext = 0; ktls_pending = 0 }

let push_records t records =
  List.iter
    (fun bytes ->
      t.ciphertext <- t.ciphertext + bytes;
      Stob_tcp.Endpoint.write t.endpoint bytes)
    records

let send t n =
  if n <= 0 then invalid_arg "Session.send: byte count must be positive";
  t.plaintext <- t.plaintext + n;
  match t.mode with
  | User_tls ->
      (* Application-formed records: write boundaries are record
         boundaries. *)
      push_records t (Record.records_for t.config ~padding:t.padding n)
  | Ktls ->
      (* Stack-formed records: coalesce successive writes into full records;
         the tail waits for more data or an explicit {!flush}. *)
      let total = t.ktls_pending + n in
      let full = total / t.config.max_plaintext in
      let rest = total mod t.config.max_plaintext in
      if full > 0 then
        push_records t (Record.records_for t.config ~padding:t.padding (full * t.config.max_plaintext));
      t.ktls_pending <- rest

let flush t =
  if t.ktls_pending > 0 then begin
    push_records t (Record.records_for t.config ~padding:t.padding t.ktls_pending);
    t.ktls_pending <- 0
  end

let set_padding t p = t.padding <- p
let plaintext_sent t = t.plaintext
let ciphertext_sent t = t.ciphertext

let overhead_ratio t =
  if t.plaintext = 0 then 0.0
  else float_of_int (t.ciphertext - t.plaintext) /. float_of_int t.plaintext

let handshake_wire_bytes _t ~client rng =
  if client then Record.client_hello_bytes rng else Record.server_hello_bytes rng
