type config = { max_plaintext : int; overhead : int }

let default = { max_plaintext = 16384; overhead = 22 }

type padding =
  | No_padding
  | Pad_to_multiple of int
  | Pad_to_fixed of int
  | Pad_random of Stob_util.Rng.t * int

let fragment config n =
  if n <= 0 then invalid_arg "Record.fragment: byte count must be positive";
  let rec go acc remaining =
    if remaining <= 0 then List.rev acc
    else
      let take = min config.max_plaintext remaining in
      go (take :: acc) (remaining - take)
  in
  go [] n

let padded_plaintext padding size =
  match padding with
  | No_padding -> size
  | Pad_to_multiple n when n > 0 -> (size + n - 1) / n * n
  | Pad_to_multiple _ -> size
  | Pad_to_fixed n -> max size n
  | Pad_random (rng, n) when n > 0 -> size + Stob_util.Rng.int rng (n + 1)
  | Pad_random _ -> size

let records_for config ~padding n =
  List.map (fun frag -> padded_plaintext padding frag + config.overhead) (fragment config n)

let wire_bytes config ~padding n = List.fold_left ( + ) 0 (records_for config ~padding n)

let padding_overhead config ~padding n =
  let padded = wire_bytes config ~padding n in
  let plain = wire_bytes config ~padding:No_padding n in
  if plain = 0 then 0.0 else float_of_int (padded - plain) /. float_of_int plain

let client_hello_bytes rng = Stob_util.Rng.int_in rng 300 600
let server_hello_bytes rng = Stob_util.Rng.int_in rng 2500 5000
let client_finished_bytes rng = Stob_util.Rng.int_in rng 60 80
