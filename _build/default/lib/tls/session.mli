(** A TLS session bound to a TCP endpoint.

    Figure 1's three stack organizations differ in {e where} records are
    formed.  [User_tls] models the classic arrangement: the application
    frames records itself, so each application write turns into records
    before entering the socket buffer.  [Ktls] models in-kernel TLS: the
    application writes plaintext byte counts and the stack forms records —
    the framing the defense can influence when it lives in the stack.

    Either way, what reaches the TCP endpoint is ciphertext byte counts;
    the mode affects how padding can be applied and how write boundaries
    map to record boundaries. *)

type mode = User_tls | Ktls

type t

val create : ?config:Record.config -> ?padding:Record.padding -> mode:mode -> Stob_tcp.Endpoint.t -> t

val send : t -> int -> unit
(** Write [n] plaintext application bytes through the session.  In [Ktls]
    mode, partial records coalesce across writes until {!flush}. *)

val flush : t -> unit
(** Emit any coalesced partial record ([Ktls] mode; no-op for [User_tls]).
    Servers flush at response boundaries. *)

val set_padding : t -> Record.padding -> unit
(** Change the padding policy mid-session (defenses adjust per object). *)

val plaintext_sent : t -> int
val ciphertext_sent : t -> int

val overhead_ratio : t -> float
(** (ciphertext - plaintext) / plaintext so far; [0.] before any send. *)

val handshake_wire_bytes : t -> client:bool -> Stob_util.Rng.t -> int
(** Size of this side's handshake flight (see {!Record} helpers). *)
