(** TLS record framing and record padding.

    The paper leaves padding policy to the application (Section 4.2),
    observing that it can be implemented in TLS record padding.  This module
    models TLS 1.3 record framing — plaintext fragmented into records of at
    most 16 KiB, each expanded by the record header and AEAD overhead — plus
    the RFC 8446 record-padding mechanism that padding-based defenses use.

    Only sizes matter here (the simulator carries no real bytes): framing a
    write yields the list of ciphertext record sizes handed to TCP. *)

type config = {
  max_plaintext : int;  (** Maximum plaintext fragment per record (16384). *)
  overhead : int;
      (** Bytes added per record: 5-byte header + content-type byte +
          16-byte AEAD tag = 22 for TLS 1.3. *)
}

val default : config

type padding =
  | No_padding
  | Pad_to_multiple of int
      (** Pad each record's plaintext up to the next multiple of n bytes. *)
  | Pad_to_fixed of int
      (** Pad every record's plaintext to exactly n (records larger than n
          are left unpadded). *)
  | Pad_random of Stob_util.Rng.t * int
      (** Add uniform random [0, n] bytes of padding to each record. *)

val fragment : config -> int -> int list
(** [fragment cfg n] splits an [n]-byte write into plaintext fragment
    sizes.  [n] must be positive. *)

val records_for : config -> padding:padding -> int -> int list
(** [records_for cfg ~padding n] is the list of {e ciphertext} record sizes
    (padding and overhead included) produced by writing [n] bytes. *)

val wire_bytes : config -> padding:padding -> int -> int
(** Total ciphertext bytes for an [n]-byte write. *)

val padding_overhead : config -> padding:padding -> int -> float
(** Fraction of extra bytes relative to unpadded framing (0.0 = none). *)

(** {1 Handshake}

    Typical TLS 1.3 handshake message sizes, used by the web workload so
    captured page-load traces begin with the handshake exchange an
    eavesdropper actually sees. *)

val client_hello_bytes : Stob_util.Rng.t -> int
(** ~300-600 B depending on extensions (ECH, key shares). *)

val server_hello_bytes : Stob_util.Rng.t -> int
(** ServerHello + EncryptedExtensions + Certificate (+ chain) + Finished:
    ~2.5-5 KiB. *)

val client_finished_bytes : Stob_util.Rng.t -> int
(** ~60-80 B. *)
