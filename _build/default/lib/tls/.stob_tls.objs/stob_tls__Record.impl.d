lib/tls/record.ml: List Stob_util
