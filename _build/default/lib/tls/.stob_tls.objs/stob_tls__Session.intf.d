lib/tls/session.mli: Record Stob_tcp Stob_util
