lib/tls/record.mli: Stob_util
