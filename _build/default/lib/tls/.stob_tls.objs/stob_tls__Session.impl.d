lib/tls/session.ml: List Record Stob_tcp
