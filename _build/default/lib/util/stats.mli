(** Descriptive statistics over float arrays.

    These are the building blocks for the k-FP feature extractor, dataset
    sanitization (IQR filtering) and experiment reporting (mean +/- std).
    All functions are total on empty input where a sensible neutral value
    exists; otherwise they raise [Invalid_argument]. *)

val sum : float array -> float
val mean : float array -> float
(** Mean; [0.] on empty input (the k-FP extractor relies on this neutral). *)

val variance : float array -> float
(** Population variance; [0.] for fewer than two elements. *)

val std : float array -> float
(** Population standard deviation. *)

val sample_std : float array -> float
(** Sample (n-1) standard deviation; [0.] for fewer than two elements. *)

val min_ : float array -> float
(** Minimum; [0.] on empty input. *)

val max_ : float array -> float
(** Maximum; [0.] on empty input. *)

val median : float array -> float
(** Median (average of middle two for even length); [0.] on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics; [0.] on empty input. *)

val quantiles : float array -> float list -> float list
(** Batch {!percentile} sharing one sort. *)

val iqr_bounds : float array -> float * float
(** [(lo, hi)] Tukey fences: [q1 - 1.5*iqr, q3 + 1.5*iqr].  Values outside
    are outliers.  Raises on empty input. *)

val mean_std : float array -> float * float
(** [(mean, sample std)] pair, the "x +/- s" used in experiment tables. *)

val skewness : float array -> float
(** Fisher skewness; [0.] when undefined (fewer than 3 points or zero std). *)

val kurtosis : float array -> float
(** Excess kurtosis; [0.] when undefined. *)

val mad : float array -> float
(** Median absolute deviation; [0.] on empty input. *)

val cumulative : float array -> float array
(** Prefix sums: [cumulative a].(i) = sum of [a.(0..i)]. *)
