type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into xoshiro's 256-bit state, as
   recommended by the xoshiro authors. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh SplitMix64 expansion from the parent's stream. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits (OCaml's int width) to avoid
     modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits -> [0,1), scaled. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0
let bernoulli t p = float t 1.0 < p

let normal t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  scale /. (nonzero () ** (1.0 /. shape))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  let rec count acc = if bernoulli t p then acc else count (acc + 1) in
  count 0

let poisson t ~lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: lambda must be non-negative";
  if lambda = 0.0 then 0
  else begin
    let threshold = exp (-.lambda) in
    let rec count k p =
      let p = p *. float t 1.0 in
      if p <= threshold then k else count (k + 1) p
    in
    count 0 1.0
  end

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let weighted_choice t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: total weight must be positive";
  let target = float t total in
  let n = Array.length items in
  let rec pick i acc =
    if i = n - 1 then fst items.(i)
    else
      let acc = acc +. snd items.(i) in
      if target < acc then fst items.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Rng.sample_without_replacement";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: only the first k positions need finalizing. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
