let usec x = x *. 1e-6
let msec x = x *. 1e-3
let nsec x = x *. 1e-9
let kbps x = x *. 1e3
let mbps x = x *. 1e6
let gbps x = x *. 1e9
let kib x = x * 1024
let mib x = x * 1024 * 1024

let tx_time ~rate_bps ~bytes =
  if rate_bps <= 0.0 then invalid_arg "Units.tx_time: rate must be positive";
  float_of_int (bytes * 8) /. rate_bps

let to_gbps ~bits_per_sec = bits_per_sec /. 1e9

let throughput_bps ~bytes ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int (bytes * 8) /. seconds

let pp_rate fmt bps =
  if bps >= 1e9 then Format.fprintf fmt "%.1f Gb/s" (bps /. 1e9)
  else if bps >= 1e6 then Format.fprintf fmt "%.1f Mb/s" (bps /. 1e6)
  else if bps >= 1e3 then Format.fprintf fmt "%.1f Kb/s" (bps /. 1e3)
  else Format.fprintf fmt "%.0f b/s" bps

let pp_bytes fmt b =
  let bf = float_of_int b in
  if bf >= 1048576.0 then Format.fprintf fmt "%.1f MiB" (bf /. 1048576.0)
  else if bf >= 1024.0 then Format.fprintf fmt "%.1f KiB" (bf /. 1024.0)
  else Format.fprintf fmt "%d B" b

let pp_time fmt s =
  if s >= 1.0 then Format.fprintf fmt "%.2f s" s
  else if s >= 1e-3 then Format.fprintf fmt "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf fmt "%.2f us" (s *. 1e6)
  else Format.fprintf fmt "%.0f ns" (s *. 1e9)
