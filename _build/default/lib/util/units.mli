(** Unit conventions and conversions.

    Throughout the project: time is a [float] in seconds, data sizes are
    [int] bytes, and rates are [float] bits per second.  This module keeps
    the conversions in one place so constants like "100 Gb/s" or "50 us"
    read literally at use sites. *)

val usec : float -> float
(** Microseconds to seconds. *)

val msec : float -> float
(** Milliseconds to seconds. *)

val nsec : float -> float
(** Nanoseconds to seconds. *)

val kbps : float -> float
(** Kilobits/s to bits/s. *)

val mbps : float -> float
(** Megabits/s to bits/s. *)

val gbps : float -> float
(** Gigabits/s to bits/s. *)

val kib : int -> int
(** KiB to bytes. *)

val mib : int -> int
(** MiB to bytes. *)

val tx_time : rate_bps:float -> bytes:int -> float
(** Serialization delay of [bytes] on a link of [rate_bps].
    Raises [Invalid_argument] on a non-positive rate. *)

val to_gbps : bits_per_sec:float -> float
(** Bits/s to Gb/s (for reporting). *)

val throughput_bps : bytes:int -> seconds:float -> float
(** Goodput of [bytes] transferred over [seconds], in bits/s. *)

val pp_rate : Format.formatter -> float -> unit
(** Human rendering of a bits/s value ("42.0 Gb/s", "3.1 Mb/s", ...). *)

val pp_bytes : Format.formatter -> int -> unit
(** Human rendering of a byte count ("64.0 KiB", ...). *)

val pp_time : Format.formatter -> float -> unit
(** Human rendering of a duration in seconds ("120 ns", "1.5 ms", ...). *)
