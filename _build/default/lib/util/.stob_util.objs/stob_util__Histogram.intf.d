lib/util/histogram.mli: Format Rng
