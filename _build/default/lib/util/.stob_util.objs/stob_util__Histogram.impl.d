lib/util/histogram.ml: Array Format Rng
