lib/util/rng.mli:
