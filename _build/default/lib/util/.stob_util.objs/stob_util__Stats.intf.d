lib/util/stats.mli:
