type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts
let lo t = t.lo
let hi t = t.hi
let count t = t.total

let width t = (t.hi -. t.lo) /. float_of_int (bins t)

let bin_index t x =
  let i = int_of_float ((x -. t.lo) /. width t) in
  if i < 0 then 0 else if i >= bins t then bins t - 1 else i

let add t x =
  t.counts.(bin_index t x) <- t.counts.(bin_index t x) + 1;
  t.total <- t.total + 1

let of_samples ~lo ~hi ~bins samples =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) samples;
  t

let bin_count t i = t.counts.(i)

let bin_edges t i =
  let w = width t in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let density t =
  let n = bins t in
  if t.total = 0 then Array.make n 0.0
  else Array.init n (fun i -> float_of_int t.counts.(i) /. float_of_int t.total)

let sample t rng =
  if t.total = 0 then invalid_arg "Histogram.sample: empty histogram";
  let target = Rng.int rng t.total in
  let rec find i acc =
    let acc = acc + t.counts.(i) in
    if target < acc then i else find (i + 1) acc
  in
  let i = find 0 0 in
  let left, right = bin_edges t i in
  Rng.uniform rng left right

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
  let target = q *. float_of_int t.total in
  let rec find i acc =
    if i >= bins t - 1 then i
    else
      let acc' = acc +. float_of_int t.counts.(i) in
      if target <= acc' then i else find (i + 1) acc'
  in
  let i = find 0 0.0 in
  let before =
    let acc = ref 0.0 in
    for j = 0 to i - 1 do
      acc := !acc +. float_of_int t.counts.(j)
    done;
    !acc
  in
  let in_bin = float_of_int t.counts.(i) in
  let frac = if in_bin = 0.0 then 0.5 else (target -. before) /. in_bin in
  let frac = if frac < 0.0 then 0.0 else if frac > 1.0 then 1.0 else frac in
  let left, right = bin_edges t i in
  left +. (frac *. (right -. left))

let merge a b =
  if bins a <> bins b || a.lo <> b.lo || a.hi <> b.hi then
    invalid_arg "Histogram.merge: geometry mismatch";
  let t = create ~lo:a.lo ~hi:a.hi ~bins:(bins a) in
  for i = 0 to bins a - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- a.total + b.total;
  t

let pp fmt t =
  Format.fprintf fmt "histogram [%g, %g) %d bins, %d samples:" t.lo t.hi (bins t) t.total;
  Array.iteri (fun i c -> if c > 0 then Format.fprintf fmt " %d:%d" i c) t.counts
