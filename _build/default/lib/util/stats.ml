let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int n

let std a = sqrt (variance a)

let sample_std a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))

let min_ a = if Array.length a = 0 then 0.0 else Array.fold_left min a.(0) a
let max_ a = if Array.length a = 0 then 0.0 else Array.fold_left max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile a p = percentile_sorted (sorted_copy a) p
let median a = percentile a 50.0

let quantiles a ps =
  let sorted = sorted_copy a in
  List.map (percentile_sorted sorted) ps

let iqr_bounds a =
  if Array.length a = 0 then invalid_arg "Stats.iqr_bounds: empty input";
  let sorted = sorted_copy a in
  let q1 = percentile_sorted sorted 25.0 and q3 = percentile_sorted sorted 75.0 in
  let iqr = q3 -. q1 in
  (q1 -. (1.5 *. iqr), q3 +. (1.5 *. iqr))

let mean_std a = (mean a, sample_std a)

let skewness a =
  let n = Array.length a in
  if n < 3 then 0.0
  else
    let m = mean a and s = std a in
    if s = 0.0 then 0.0
    else
      let acc = Array.fold_left (fun acc x -> acc +. (((x -. m) /. s) ** 3.0)) 0.0 a in
      acc /. float_of_int n

let kurtosis a =
  let n = Array.length a in
  if n < 4 then 0.0
  else
    let m = mean a and s = std a in
    if s = 0.0 then 0.0
    else
      let acc = Array.fold_left (fun acc x -> acc +. (((x -. m) /. s) ** 4.0)) 0.0 a in
      (acc /. float_of_int n) -. 3.0

let mad a =
  if Array.length a = 0 then 0.0
  else
    let m = median a in
    median (Array.map (fun x -> Float.abs (x -. m)) a)

let cumulative a =
  let n = Array.length a in
  let out = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. a.(i);
    out.(i) <- !acc
  done;
  out
