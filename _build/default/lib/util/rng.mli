(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    xoshiro256** seeded via SplitMix64, both public-domain algorithms with
    well-studied statistical quality.

    Generators are values, not global state: independent subsystems (workload
    generation, forest training, defense sampling) each derive their own
    generator with {!split} so that adding draws to one subsystem does not
    perturb another. *)

type t
(** A mutable pseudo-random generator. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream.  The child's stream
    is statistically independent of further draws from [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s future. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp] of a [normal] with the given log-space params. *)

val exponential : t -> rate:float -> float
(** Exponential draw with the given rate (mean [1. /. rate]). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto draw with minimum [scale] and tail index [shape]. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli([p]) failures before the first success; [>= 0]. *)

val poisson : t -> lambda:float -> int
(** Poisson draw (Knuth's method; suitable for small-to-moderate rates). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_choice : t -> ('a * float) array -> 'a
(** [weighted_choice t items] picks an element with probability proportional
    to its non-negative weight.  Total weight must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct indices drawn from
    [\[0, n)], in random order.  Requires [k <= n]. *)
