(** Fixed-bin histograms.

    The paper proposes representing obfuscation policies as "relatively
    compact distribution functions like histograms" shared between the
    application and the stack (Section 4.1).  This module is that
    representation: a histogram can be built from observations, queried, and
    sampled from, so a Stob policy can say "draw the next packet size (or
    inter-departure gap) from this distribution". *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Empty histogram over [\[lo, hi)] with [bins] equal-width bins.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val of_samples : lo:float -> hi:float -> bins:int -> float array -> t
(** Build and fill in one step. *)

val add : t -> float -> unit
(** Record one observation.  Values outside [\[lo, hi)] are clamped into the
    first/last bin, so the histogram always accounts for every observation. *)

val count : t -> int
(** Total observations recorded. *)

val bin_count : t -> int -> int
(** Observations in bin [i]. *)

val bins : t -> int
val lo : t -> float
val hi : t -> float

val bin_edges : t -> int -> float * float
(** [(left, right)] edges of bin [i]. *)

val density : t -> float array
(** Normalized bin masses (sums to 1; all zeros when empty). *)

val sample : t -> Rng.t -> float
(** Draw from the empirical distribution: pick a bin proportionally to its
    mass, then uniformly within the bin.  Raises [Invalid_argument] when the
    histogram is empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: approximate inverse CDF using bin
    interpolation.  Raises when empty. *)

val merge : t -> t -> t
(** Pointwise sum; both histograms must share geometry. *)

val pp : Format.formatter -> t -> unit
(** Compact textual rendering (for logs and the policy-table dump). *)
