module Rng = Stob_util.Rng

type t = { layers : Layer.t list }

let create layers = { layers }

let logits t x = List.fold_left (fun acc layer -> layer.Layer.forward acc) x t.layers

let predict t x =
  let out = logits t x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > out.(!best) then best := i) out;
  !best

let softmax z =
  let m = Array.fold_left Float.max neg_infinity z in
  let exps = Array.map (fun v -> exp (v -. m)) z in
  let sum = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun v -> v /. sum) exps

let train_sample t ~x ~label =
  let out = logits t x in
  let probs = softmax out in
  let loss = -.log (Float.max 1e-12 probs.(label)) in
  (* dLoss/dlogits of softmax cross-entropy: p - onehot. *)
  let dout = Array.mapi (fun i p -> if i = label then p -. 1.0 else p) probs in
  ignore (List.fold_left (fun acc layer -> layer.Layer.backward acc) dout (List.rev t.layers));
  loss

let apply_update t ~lr = List.iter (fun layer -> layer.Layer.update ~lr) t.layers

type progress = { epoch : int; mean_loss : float }

let fit t ~rng ~xs ~labels ?(epochs = 30) ?(batch = 16) ?(lr = 0.01) ?on_epoch () =
  let n = Array.length xs in
  if n = 0 || n <> Array.length labels then invalid_arg "Network.fit: bad inputs";
  let order = Array.init n (fun i -> i) in
  for epoch = 1 to epochs do
    Rng.shuffle rng order;
    let total_loss = ref 0.0 in
    let in_batch = ref 0 in
    Array.iter
      (fun i ->
        total_loss := !total_loss +. train_sample t ~x:xs.(i) ~label:labels.(i);
        incr in_batch;
        if !in_batch >= batch then begin
          apply_update t ~lr:(lr /. float_of_int !in_batch);
          in_batch := 0
        end)
      order;
    if !in_batch > 0 then apply_update t ~lr:(lr /. float_of_int !in_batch);
    match on_epoch with
    | Some f -> f { epoch; mean_loss = !total_loss /. float_of_int n }
    | None -> ()
  done

let accuracy t ~xs ~labels =
  let hits = ref 0 in
  Array.iteri (fun i x -> if predict t x = labels.(i) then incr hits) xs;
  float_of_int !hits /. float_of_int (max 1 (Array.length xs))
