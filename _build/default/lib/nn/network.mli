(** Sequential networks with softmax cross-entropy training.

    Composes {!Layer.t}s, trains with minibatch SGD (gradients accumulate
    per sample; one update per batch) under a softmax cross-entropy loss,
    and predicts by argmax over logits. *)

type t

val create : Layer.t list -> t

val logits : t -> float array -> float array
(** Forward pass. *)

val predict : t -> float array -> int
(** Argmax class. *)

val softmax : float array -> float array
(** Numerically stable softmax (exposed for tests). *)

val train_sample : t -> x:float array -> label:int -> float
(** Forward + backward for one sample; returns its cross-entropy loss.
    Gradients accumulate until {!apply_update}. *)

val apply_update : t -> lr:float -> unit

type progress = { epoch : int; mean_loss : float }

val fit :
  t ->
  rng:Stob_util.Rng.t ->
  xs:float array array ->
  labels:int array ->
  ?epochs:int ->
  ?batch:int ->
  ?lr:float ->
  ?on_epoch:(progress -> unit) ->
  unit ->
  unit
(** Shuffled minibatch SGD.  Defaults: 30 epochs, batch 16, lr 0.01 (the
    learning rate is divided by the batch size internally so loss gradients
    average rather than sum). *)

val accuracy : t -> xs:float array array -> labels:int array -> float
