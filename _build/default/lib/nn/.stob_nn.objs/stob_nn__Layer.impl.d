lib/nn/layer.ml: Array Stob_util
