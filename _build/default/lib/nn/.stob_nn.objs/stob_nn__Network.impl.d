lib/nn/network.ml: Array Float Layer List Stob_util
