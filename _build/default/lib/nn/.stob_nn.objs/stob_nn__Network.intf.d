lib/nn/network.mli: Layer Stob_util
