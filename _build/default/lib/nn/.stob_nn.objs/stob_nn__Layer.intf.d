lib/nn/layer.mli: Stob_util
