module Rng = Stob_util.Rng

type t = {
  forward : float array -> float array;
  backward : float array -> float array;
  update : lr:float -> unit;
}

let momentum = 0.9

(* Parameter block with gradient accumulation and momentum. *)
type param = { value : float array; grad : float array; vel : float array }

let make_param values =
  let n = Array.length values in
  { value = values; grad = Array.make n 0.0; vel = Array.make n 0.0 }

let sgd_step p ~lr =
  for i = 0 to Array.length p.value - 1 do
    p.vel.(i) <- (momentum *. p.vel.(i)) -. (lr *. p.grad.(i));
    p.value.(i) <- p.value.(i) +. p.vel.(i);
    p.grad.(i) <- 0.0
  done

let he_init rng n fan_in =
  let scale = sqrt (2.0 /. float_of_int (max 1 fan_in)) in
  Array.init n (fun _ -> Rng.normal rng ~mu:0.0 ~sigma:scale)

let dense ~rng ~inputs ~outputs =
  let w = make_param (he_init rng (inputs * outputs) inputs) in
  let b = make_param (Array.make outputs 0.0) in
  let cached_input = ref [||] in
  let forward x =
    cached_input := x;
    Array.init outputs (fun o ->
        let acc = ref b.value.(o) in
        let row = o * inputs in
        for i = 0 to inputs - 1 do
          acc := !acc +. (w.value.(row + i) *. x.(i))
        done;
        !acc)
  in
  let backward dout =
    let x = !cached_input in
    let din = Array.make inputs 0.0 in
    for o = 0 to outputs - 1 do
      let g = dout.(o) in
      b.grad.(o) <- b.grad.(o) +. g;
      let row = o * inputs in
      for i = 0 to inputs - 1 do
        w.grad.(row + i) <- w.grad.(row + i) +. (g *. x.(i));
        din.(i) <- din.(i) +. (g *. w.value.(row + i))
      done
    done;
    din
  in
  let update ~lr =
    sgd_step w ~lr;
    sgd_step b ~lr
  in
  { forward; backward; update }

let relu () =
  let cached = ref [||] in
  let forward x =
    cached := x;
    Array.map (fun v -> if v > 0.0 then v else 0.0) x
  in
  let backward dout =
    Array.mapi (fun i g -> if !cached.(i) > 0.0 then g else 0.0) dout
  in
  { forward; backward; update = (fun ~lr:_ -> ()) }

let conv_output_length ~length ~kernel = length - kernel + 1
let pool_output_length ~length ~factor = length / factor

let conv1d ~rng ~in_channels ~out_channels ~kernel ~length =
  let out_len = conv_output_length ~length ~kernel in
  if out_len <= 0 then invalid_arg "Layer.conv1d: kernel larger than input";
  let w = make_param (he_init rng (out_channels * in_channels * kernel) (in_channels * kernel)) in
  let b = make_param (Array.make out_channels 0.0) in
  let cached_input = ref [||] in
  let widx oc ic k = (((oc * in_channels) + ic) * kernel) + k in
  let forward x =
    cached_input := x;
    let out = Array.make (out_channels * out_len) 0.0 in
    for oc = 0 to out_channels - 1 do
      let obase = oc * out_len in
      for p = 0 to out_len - 1 do
        let acc = ref b.value.(oc) in
        for ic = 0 to in_channels - 1 do
          let ibase = ic * length in
          for k = 0 to kernel - 1 do
            acc := !acc +. (w.value.(widx oc ic k) *. x.(ibase + p + k))
          done
        done;
        out.(obase + p) <- !acc
      done
    done;
    out
  in
  let backward dout =
    let x = !cached_input in
    let din = Array.make (in_channels * length) 0.0 in
    for oc = 0 to out_channels - 1 do
      let obase = oc * out_len in
      for p = 0 to out_len - 1 do
        let g = dout.(obase + p) in
        if g <> 0.0 then begin
          b.grad.(oc) <- b.grad.(oc) +. g;
          for ic = 0 to in_channels - 1 do
            let ibase = ic * length in
            for k = 0 to kernel - 1 do
              w.grad.(widx oc ic k) <- w.grad.(widx oc ic k) +. (g *. x.(ibase + p + k));
              din.(ibase + p + k) <- din.(ibase + p + k) +. (g *. w.value.(widx oc ic k))
            done
          done
        end
      done
    done;
    din
  in
  let update ~lr =
    sgd_step w ~lr;
    sgd_step b ~lr
  in
  { forward; backward; update }

let maxpool1d ~channels ~length ~factor =
  if factor <= 0 then invalid_arg "Layer.maxpool1d: factor must be positive";
  let out_len = pool_output_length ~length ~factor in
  if out_len = 0 then invalid_arg "Layer.maxpool1d: input shorter than factor";
  let argmax = Array.make (channels * out_len) 0 in
  let forward x =
    let out = Array.make (channels * out_len) 0.0 in
    for c = 0 to channels - 1 do
      let ibase = c * length and obase = c * out_len in
      for p = 0 to out_len - 1 do
        let start = ibase + (p * factor) in
        let best = ref start in
        for k = 1 to factor - 1 do
          if x.(start + k) > x.(!best) then best := start + k
        done;
        argmax.(obase + p) <- !best;
        out.(obase + p) <- x.(!best)
      done
    done;
    out
  in
  let backward dout =
    let din = Array.make (channels * length) 0.0 in
    Array.iteri (fun i g -> din.(argmax.(i)) <- din.(argmax.(i)) +. g) dout;
    din
  in
  { forward; backward; update = (fun ~lr:_ -> ()) }
