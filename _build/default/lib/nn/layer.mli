(** Neural-network layers with hand-derived backpropagation.

    A deliberately small, dependency-free substrate for the deep-learning
    WF attacks the paper's Section 2 centres on (Deep Fingerprinting,
    Var-CNN): 1-D convolutions over the packet-direction sequence, ReLU,
    max-pooling, dense layers, and SGD-with-momentum updates.

    Layers are stateful: [forward] caches what [backward] needs, so a layer
    instance processes one sample at a time (per-sample SGD).  Gradients
    accumulate across [backward] calls until [update] applies and clears
    them — which is how minibatches are realized.

    1-D feature maps use channel-major layout: channel [c], position [p]
    lives at index [c * length + p]. *)

type t = {
  forward : float array -> float array;
  backward : float array -> float array;
      (** Maps dLoss/dOutput to dLoss/dInput, accumulating parameter
          gradients. Must follow the corresponding [forward]. *)
  update : lr:float -> unit;
      (** SGD-with-momentum step over accumulated gradients; clears them. *)
}

val dense : rng:Stob_util.Rng.t -> inputs:int -> outputs:int -> t
(** Fully connected layer, He-initialized. *)

val relu : unit -> t

val conv1d :
  rng:Stob_util.Rng.t -> in_channels:int -> out_channels:int -> kernel:int -> length:int -> t
(** Valid (no padding) 1-D convolution over channel-major input of
    [in_channels * length]; output is [out_channels * (length - kernel + 1)]. *)

val maxpool1d : channels:int -> length:int -> factor:int -> t
(** Non-overlapping max pooling per channel; trailing remainder dropped. *)

val conv_output_length : length:int -> kernel:int -> int
val pool_output_length : length:int -> factor:int -> int
