type kind = Html | Stylesheet | Script | Font | Image | Media | Api

let kind_name = function
  | Html -> "html"
  | Stylesheet -> "css"
  | Script -> "js"
  | Font -> "font"
  | Image -> "image"
  | Media -> "media"
  | Api -> "api"

type t = { kind : kind; size : int; request_bytes : int; think : float }

type page = { html : t; head_wave : t list; body_wave : t list }

let total_bytes page =
  let sum = List.fold_left (fun acc r -> acc + r.size) 0 in
  page.html.size + sum page.head_wave + sum page.body_wave

let object_count page = 1 + List.length page.head_wave + List.length page.body_wave
