lib/web/sites.mli: Profile
