lib/web/dataset.mli: Profile Stob_core Stob_net Stob_tcp Stob_util
