lib/web/browser.ml: Array Hashtbl List Option Profile Queue Resource Stob_core Stob_net Stob_sim Stob_tcp Stob_tls Stob_util
