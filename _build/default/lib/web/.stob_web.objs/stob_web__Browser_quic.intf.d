lib/web/browser_quic.mli: Browser Profile Stob_core Stob_tcp Stob_util
