lib/web/profile.ml: List Resource Stob_util
