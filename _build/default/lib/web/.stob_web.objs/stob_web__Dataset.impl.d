lib/web/dataset.ml: Array Browser Browser_quic Hashtbl List Profile Sites Stob_net Stob_util
