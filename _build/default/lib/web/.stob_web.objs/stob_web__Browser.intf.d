lib/web/browser.mli: Profile Resource Stob_core Stob_net Stob_tcp Stob_util
