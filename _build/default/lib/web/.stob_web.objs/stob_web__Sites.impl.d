lib/web/sites.ml: List Printf Profile Stob_util
