lib/web/profile.mli: Resource Stob_util
