lib/web/resource.mli:
