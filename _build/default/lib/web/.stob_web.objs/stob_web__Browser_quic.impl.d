lib/web/browser_quic.ml: Browser Hashtbl List Option Profile Queue Resource Stob_core Stob_net Stob_quic Stob_sim Stob_tcp Stob_util
