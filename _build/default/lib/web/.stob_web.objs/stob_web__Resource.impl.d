lib/web/resource.ml: List
