open Profile

let kb x = x *. 1024.0

let size median sigma = { median; sigma }
let cls mean_count median sigma = { mean_count; size = { median; sigma } }

(* Server think time: tens of milliseconds, long-tailed. *)
let typical_think = size 0.015 0.5

(* The client access link is drawn from the same range for every site so the
   classifier cannot key on it; the discriminative signal is composition and
   CDN RTT.  The range is narrow because the paper's corpus was collected
   from one vantage point within three hours — stable access conditions. *)
let access_rate = (80.0, 100.0)

let bing =
  {
    name = "bing.com";
    html = size (kb 45.0) 0.30;
    css = cls 2.0 (kb 25.0) 0.35;
    js = cls 4.0 (kb 90.0) 0.35;
    fonts = cls 1.0 (kb 30.0) 0.25;
    images = cls 6.0 (kb 15.0) 0.50;
    media = cls 0.3 (kb 250.0) 0.40;
    api = cls 2.0 (kb 3.0) 0.45;
    think = typical_think;
    tls_flight = size 3200.0 0.06;
    rtt_ms = (10.0, 20.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let github =
  {
    name = "github.com";
    html = size (kb 180.0) 0.25;
    css = cls 2.0 (kb 60.0) 0.25;
    js = cls 5.0 (kb 250.0) 0.30;
    fonts = cls 2.0 (kb 80.0) 0.20;
    images = cls 8.0 (kb 8.0) 0.55;
    media = cls 0.0 (kb 1.0) 0.10;
    api = cls 3.0 (kb 5.0) 0.40;
    think = size 0.020 0.5;
    tls_flight = size 3800.0 0.06;
    rtt_ms = (25.0, 45.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let instagram =
  {
    name = "instagram.com";
    html = size (kb 60.0) 0.30;
    css = cls 1.0 (kb 40.0) 0.30;
    js = cls 8.0 (kb 300.0) 0.30;
    fonts = cls 0.5 (kb 35.0) 0.25;
    images = cls 20.0 (kb 80.0) 0.45;
    media = cls 1.0 (kb 500.0) 0.40;
    api = cls 6.0 (kb 8.0) 0.45;
    think = size 0.018 0.5;
    tls_flight = size 4400.0 0.06;
    rtt_ms = (15.0, 30.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let netflix =
  {
    name = "netflix.com";
    html = size (kb 90.0) 0.28;
    css = cls 2.0 (kb 50.0) 0.30;
    js = cls 6.0 (kb 400.0) 0.28;
    fonts = cls 2.0 (kb 40.0) 0.22;
    images = cls 15.0 (kb 120.0) 0.40;
    media = cls 1.0 (kb 1500.0) 0.35;
    api = cls 4.0 (kb 6.0) 0.40;
    think = size 0.015 0.5;
    tls_flight = size 2800.0 0.06;
    rtt_ms = (12.0, 25.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let office =
  {
    name = "office.com";
    html = size (kb 70.0) 0.28;
    css = cls 3.0 (kb 45.0) 0.30;
    js = cls 12.0 (kb 180.0) 0.30;
    fonts = cls 3.0 (kb 60.0) 0.22;
    images = cls 8.0 (kb 25.0) 0.45;
    media = cls 0.0 (kb 1.0) 0.10;
    api = cls 8.0 (kb 4.0) 0.45;
    think = size 0.025 0.5;
    tls_flight = size 5200.0 0.06;
    rtt_ms = (20.0, 40.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let spotify =
  {
    name = "spotify.com";
    html = size (kb 55.0) 0.30;
    css = cls 2.0 (kb 35.0) 0.30;
    js = cls 7.0 (kb 280.0) 0.30;
    fonts = cls 2.0 (kb 50.0) 0.22;
    images = cls 12.0 (kb 60.0) 0.45;
    media = cls 0.8 (kb 350.0) 0.40;
    api = cls 5.0 (kb 5.0) 0.45;
    think = size 0.018 0.5;
    tls_flight = size 3500.0 0.06;
    rtt_ms = (15.0, 35.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let whatsapp =
  {
    name = "whatsapp.net";
    html = size (kb 35.0) 0.30;
    css = cls 1.0 (kb 20.0) 0.30;
    js = cls 3.0 (kb 150.0) 0.30;
    fonts = cls 1.0 (kb 25.0) 0.22;
    images = cls 3.0 (kb 40.0) 0.45;
    media = cls 0.0 (kb 1.0) 0.10;
    api = cls 1.0 (kb 2.0) 0.40;
    think = size 0.015 0.5;
    tls_flight = size 2600.0 0.06;
    rtt_ms = (20.0, 50.0);
    rate_mbps = access_rate;
    parallel_connections = 4;
  }

let wikipedia =
  {
    name = "wikipedia.org";
    html = size (kb 85.0) 0.35;
    css = cls 1.0 (kb 15.0) 0.25;
    js = cls 2.0 (kb 50.0) 0.30;
    fonts = cls 0.2 (kb 30.0) 0.20;
    images = cls 10.0 (kb 30.0) 0.55;
    media = cls 0.0 (kb 1.0) 0.10;
    api = cls 0.5 (kb 2.0) 0.40;
    think = size 0.012 0.5;
    tls_flight = size 3000.0 0.06;
    rtt_ms = (15.0, 35.0);
    rate_mbps = access_rate;
    parallel_connections = 4;
  }

let youtube =
  {
    name = "youtube.com";
    html = size (kb 500.0) 0.22;
    css = cls 1.0 (kb 80.0) 0.25;
    js = cls 6.0 (kb 600.0) 0.25;
    fonts = cls 1.0 (kb 40.0) 0.22;
    images = cls 18.0 (kb 20.0) 0.50;
    media = cls 2.0 (kb 800.0) 0.35;
    api = cls 5.0 (kb 8.0) 0.45;
    think = size 0.012 0.5;
    tls_flight = size 4800.0 0.06;
    rtt_ms = (8.0, 20.0);
    rate_mbps = access_rate;
    parallel_connections = 6;
  }

let all = [ bing; github; instagram; netflix; office; spotify; whatsapp; wikipedia; youtube ]

let synthetic_background ~n ~seed =
  let module Rng = Stob_util.Rng in
  let rng = Rng.create (0x6261636b + seed) in
  List.init n (fun i ->
      let rtt_lo = Rng.uniform rng 8.0 45.0 in
      {
        name = Printf.sprintf "bg-%d-%d.example" seed i;
        html = size (kb (Rng.uniform rng 20.0 400.0)) (Rng.uniform rng 0.2 0.4);
        css = cls (Rng.uniform rng 0.5 4.0) (kb (Rng.uniform rng 10.0 80.0)) 0.3;
        js = cls (Rng.uniform rng 1.0 12.0) (kb (Rng.uniform rng 40.0 500.0)) 0.3;
        fonts = cls (Rng.uniform rng 0.0 3.0) (kb (Rng.uniform rng 20.0 80.0)) 0.25;
        images = cls (Rng.uniform rng 1.0 20.0) (kb (Rng.uniform rng 5.0 120.0)) 0.5;
        media = cls (Rng.uniform rng 0.0 1.5) (kb (Rng.uniform rng 100.0 1200.0)) 0.4;
        api = cls (Rng.uniform rng 0.0 8.0) (kb (Rng.uniform rng 1.0 10.0)) 0.45;
        think = size (Rng.uniform rng 0.008 0.03) 0.5;
        tls_flight = size (Rng.uniform rng 2400.0 5400.0) 0.06;
        rtt_ms = (rtt_lo, rtt_lo +. Rng.uniform rng 5.0 20.0);
        rate_mbps = access_rate;
        parallel_connections = Rng.int_in rng 4 6;
      })

let names = List.map (fun p -> p.name) all

let find name = List.find (fun p -> p.name = name) all
