module Rng = Stob_util.Rng

type size_dist = { median : float; sigma : float }

type class_spec = { mean_count : float; size : size_dist }

type t = {
  name : string;
  html : size_dist;
  css : class_spec;
  js : class_spec;
  fonts : class_spec;
  images : class_spec;
  media : class_spec;
  api : class_spec;
  think : size_dist;
  tls_flight : size_dist;
  rtt_ms : float * float;
  rate_mbps : float * float;
  parallel_connections : int;
}

let sample_size dist rng =
  max 1 (int_of_float (Rng.lognormal rng ~mu:(log dist.median) ~sigma:dist.sigma))

let sample_think dist rng = Rng.lognormal rng ~mu:(log dist.median) ~sigma:dist.sigma

let request_bytes rng = Rng.int_in rng 350 650

let draw_class t spec rng kind =
  let n = Rng.poisson rng ~lambda:spec.mean_count in
  List.init n (fun _ ->
      {
        Resource.kind;
        size = sample_size spec.size rng;
        request_bytes = request_bytes rng;
        think = sample_think t.think rng;
      })

let generate_page t rng =
  let html =
    {
      Resource.kind = Resource.Html;
      size = sample_size t.html rng;
      request_bytes = request_bytes rng;
      think = sample_think t.think rng;
    }
  in
  let head_wave =
    draw_class t t.css rng Resource.Stylesheet
    @ draw_class t t.js rng Resource.Script
    @ draw_class t t.fonts rng Resource.Font
  in
  let body_wave =
    draw_class t t.images rng Resource.Image
    @ draw_class t t.media rng Resource.Media
    @ draw_class t t.api rng Resource.Api
  in
  { Resource.html; head_wave; body_wave }

let sample_network t rng =
  let rate_lo, rate_hi = t.rate_mbps in
  let rtt_lo, rtt_hi = t.rtt_ms in
  let rate_bps = Rng.uniform rng rate_lo rate_hi *. 1e6 in
  let one_way = Rng.uniform rng rtt_lo rtt_hi *. 1e-3 /. 2.0 in
  (rate_bps, one_way)
