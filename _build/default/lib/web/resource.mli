(** Web resources: the objects a page load fetches.

    A page is an HTML document plus dependent resources fetched in waves:
    head resources (stylesheets, scripts, fonts) unblock before body
    resources (images, media, API calls), which is what gives page-load
    traces their characteristic burst structure. *)

type kind = Html | Stylesheet | Script | Font | Image | Media | Api

val kind_name : kind -> string

type t = {
  kind : kind;
  size : int;  (** Response body bytes. *)
  request_bytes : int;  (** HTTP request size (method, path, headers). *)
  think : float;  (** Server processing time before the response, seconds. *)
}

type page = {
  html : t;
  head_wave : t list;  (** Fetched as soon as the HTML arrives. *)
  body_wave : t list;  (** Fetched after the head wave completes. *)
}

val total_bytes : page -> int
(** Sum of all response bodies (the "total download size" the paper's
    sanitization filters on). *)

val object_count : page -> int
