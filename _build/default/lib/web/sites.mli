(** The paper's nine monitored sites, as synthetic profiles.

    Section 3 collects traces for bing.com, github.com, instagram.com,
    netflix.com, office.com, spotify.com, whatsapp.net, wikipedia.org and
    youtube.com.  Each profile here encodes a plausible, {e distinctive}
    composition for that site (script-heavy, image-heavy, minimal, media-
    bearing, ...) plus a characteristic CDN RTT; exact parameters are
    inventions calibrated only to be mutually distinguishable and
    realistically noisy — see DESIGN.md on the tcpdump substitution. *)

val all : Profile.t list
(** The nine profiles, in the paper's (alphabetical) order. *)

val names : string list

val find : string -> Profile.t
(** Lookup by name.  Raises [Not_found] for unknown sites. *)

val synthetic_background : n:int -> seed:int -> Profile.t list
(** [n] procedurally generated "unmonitored web" profiles for open-world
    evaluation: parameters are drawn from wide plausible ranges so each
    background site is distinct, with compositions overlapping the
    monitored sites' space.  Deterministic in [seed]; profiles are named
    [bg-<seed>-<i>.example]. *)
