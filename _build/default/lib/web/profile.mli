(** Site profiles: the stochastic model a website's page loads are drawn
    from.

    The paper collects 100 tcpdump samples for each of 9 real sites; we
    substitute per-site profiles whose draws produce distinctive but noisy
    page compositions (object counts and sizes per class, server think
    times) and network conditions (characteristic RTT to the site's CDN,
    access-link rate).  Within-site variance comes from the distributions;
    between-site signal comes from the parameters — the same
    signal/noise structure a WF attack feeds on. *)

type size_dist = { median : float; sigma : float }
(** Log-normal in bytes: [mu = ln median], log-space std [sigma]. *)

type class_spec = { mean_count : float; size : size_dist }
(** Poisson object count with log-normal sizes. *)

type t = {
  name : string;
  html : size_dist;
  css : class_spec;
  js : class_spec;
  fonts : class_spec;
  images : class_spec;
  media : class_spec;
  api : class_spec;
  think : size_dist;  (** Server think time per object, seconds. *)
  tls_flight : size_dist;
      (** ServerHello..Finished flight size — certificate chains are
          site-characteristic, which is most of what the first packets of a
          real HTTPS visit reveal. *)
  rtt_ms : float * float;  (** Round-trip range to this site's CDN, ms. *)
  rate_mbps : float * float;  (** Client access-link rate range, Mb/s. *)
  parallel_connections : int;  (** Browser connection pool size. *)
}

val generate_page : t -> Stob_util.Rng.t -> Resource.page
(** Draw one page composition. *)

val sample_network : t -> Stob_util.Rng.t -> float * float
(** Draw [(rate_bps, one_way_delay_seconds)] for one visit. *)

val sample_size : size_dist -> Stob_util.Rng.t -> int
(** One log-normal draw, at least 1. *)
