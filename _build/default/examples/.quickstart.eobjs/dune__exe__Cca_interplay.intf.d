examples/cca_interplay.mli:
