examples/stob_throughput.mli:
