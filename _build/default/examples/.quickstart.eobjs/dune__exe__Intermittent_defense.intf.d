examples/intermittent_defense.mli:
