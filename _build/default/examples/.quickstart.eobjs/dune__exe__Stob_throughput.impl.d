examples/stob_throughput.ml: List Printf Stob_core Stob_experiments
