examples/quickstart.ml: Array Format List Printf Stob_core Stob_experiments Stob_net Stob_web
