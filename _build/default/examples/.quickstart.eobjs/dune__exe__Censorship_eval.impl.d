examples/censorship_eval.ml: List Printf Stob_defense Stob_experiments Stob_net Stob_util Stob_web
