examples/intermittent_defense.ml: List Printf Stob_core Stob_sim Stob_tcp Stob_util
