examples/defense_comparison.ml: Array List Printf Stob_defense Stob_experiments Stob_util Stob_web
