examples/censorship_eval.mli:
