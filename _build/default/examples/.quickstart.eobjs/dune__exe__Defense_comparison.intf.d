examples/defense_comparison.mli:
