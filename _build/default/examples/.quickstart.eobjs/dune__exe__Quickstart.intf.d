examples/quickstart.mli:
