examples/cca_interplay.ml: Format List Stob_core Stob_experiments
