(* Censorship-setting evaluation (Section 3 in miniature).

   A censor must decide to block a page early in the connection, so the
   attack only sees the first N packets.  This example applies the paper's
   two emulated countermeasures to trace prefixes and shows how they slow
   the attacker's confidence growth over N.

   Run with: dune exec examples/censorship_eval.exe *)

module Dataset = Stob_web.Dataset
module Trace = Stob_net.Trace
module Emulate = Stob_defense.Emulate
module Rng = Stob_util.Rng

let prefixes = [ 15; 30; 45 ]

let accuracy_on ~view dataset =
  let transformed = Dataset.map_traces dataset view in
  fst (Stob_experiments.Evalcommon.accuracy_cv ~folds:3 ~trees:60 transformed)

let () =
  print_endline "== censorship-setting evaluation ==";
  print_endline "generating corpus (9 sites x 20 visits)...";
  let dataset = Dataset.sanitize (Dataset.generate ~samples_per_site:20 ~seed:11 ()) in
  Printf.printf "%-6s %-12s %-12s %-12s\n" "N" "original" "split" "delayed";
  List.iter
    (fun n ->
      let original =
        accuracy_on ~view:(fun s -> Trace.prefix s.Dataset.trace n) dataset
      in
      let rng = Rng.create 5 in
      let split =
        accuracy_on
          ~view:(fun s -> Trace.prefix (Emulate.split ~first_n:n s.Dataset.trace) n)
          dataset
      in
      let delayed =
        accuracy_on
          ~view:(fun s -> Trace.prefix (Emulate.delay ~first_n:n ~rng s.Dataset.trace) n)
          dataset
      in
      Printf.printf "%-6d %-12.3f %-12.3f %-12.3f\n%!" n original split delayed)
    prefixes;
  print_endline "\n(the attacker's accuracy should grow more slowly under either";
  print_endline " countermeasure — exactly the paper's Table 2 observation)"
