(* Defense state machines: Maybenot-style policies hosted in the stack.

   An always-on transform is itself a fingerprint ("this server runs
   defense X").  A state machine obfuscates intermittently: it idles most
   of the time and probabilistically enters an obfuscating state for short
   stretches.  This example builds such a machine, attaches it to a bulk
   transfer, and shows the state occupancy plus the safety audit.

   Run with: dune exec examples/intermittent_defense.exe *)

module Engine = Stob_sim.Engine
module Units = Stob_util.Units
module Endpoint = Stob_tcp.Endpoint
module Connection = Stob_tcp.Connection
module Path = Stob_tcp.Path
module Machine = Stob_core.Machine

let () =
  print_endline "== intermittent defense via a state machine ==";
  let machine =
    Machine.intermittent ~on:(Stob_core.Strategies.stack_combined ()) ~p_enter:0.05 ~p_exit:0.15 ()
  in
  (match Machine.validate machine with
  | Ok () -> print_endline "machine validates: idle <-> obfuscate(split+delay)"
  | Error e -> failwith e);
  let controller = Machine.create ~seed:11 machine in
  let hooks, report = Stob_core.Safety.audit (Machine.hooks controller) in

  let engine = Engine.create () in
  let path = Path.create ~engine ~rate_bps:(Units.mbps 100.0) ~delay:0.01 () in
  let conn = Connection.create ~engine ~path ~flow:1 ~server_hooks:hooks () in
  let server = Connection.server conn in
  let received = ref 0 in
  Endpoint.set_on_receive (Connection.client conn) (fun n -> received := !received + n);
  Endpoint.set_on_receive server (fun n -> if n = 64 then Endpoint.write server 8_000_000);
  Connection.on_established conn (fun () -> Endpoint.write (Connection.client conn) 64);
  Connection.open_ conn;
  Engine.run ~until:10.0 engine;

  Printf.printf "transferred %d bytes\n" !received;
  print_endline "state occupancy (segments handled per state):";
  List.iter
    (fun (name, n) -> Printf.printf "  %-12s %d\n" name n)
    (Machine.segments_in_state controller);
  let audit = report () in
  Printf.printf "safety audit: %d decisions, %d violations\n"
    audit.Stob_core.Safety.decisions audit.Stob_core.Safety.violations;
  print_endline
    "\n(the obfuscating state fires in bursts, so an observer cannot key on a\n\
    \ constant defense signature; the clamp still guarantees no state ever\n\
    \ exceeds the congestion controller's decision)"
