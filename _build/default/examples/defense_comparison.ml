(* Protection vs. cost across defense families.

   Applies every implemented defense from the Table 1 registry to the same
   corpus and reports (a) the k-FP accuracy that survives and (b) the
   bandwidth/latency overheads — making Section 2.3's argument measurable:
   padding buys protection with non-work-conserving bandwidth cost, while
   timing/size manipulation is nearly free.

   Run with: dune exec examples/defense_comparison.exe *)

module Dataset = Stob_web.Dataset
module Registry = Stob_defense.Registry
module Overhead = Stob_defense.Overhead
module Rng = Stob_util.Rng

let () =
  print_endline "== defense comparison: protection vs. cost ==";
  print_endline "generating corpus (9 sites x 15 visits)...";
  let dataset = Dataset.sanitize (Dataset.generate ~samples_per_site:15 ~seed:21 ()) in
  let baseline = fst (Stob_experiments.Evalcommon.accuracy_cv ~folds:3 ~trees:60 dataset) in
  Printf.printf "undefended k-FP accuracy: %.3f\n\n" baseline;
  Printf.printf "%-14s %-10s %-10s %-10s %-10s\n" "defense" "accuracy" "delta" "bw-ovhd" "lat-ovhd";
  List.iter
    (fun (entry : Registry.entry) ->
      match entry.Registry.apply with
      | None -> ()
      | Some apply ->
          let rng = Rng.create 9 in
          let defended = Dataset.map_traces dataset (fun s -> apply ~rng s.Dataset.trace) in
          let acc = fst (Stob_experiments.Evalcommon.accuracy_cv ~folds:3 ~trees:60 defended) in
          let rng2 = Rng.create 9 in
          let overheads =
            Array.to_list
              (Array.map
                 (fun s ->
                   Overhead.summarize ~original:s.Dataset.trace
                     ~defended:(apply ~rng:rng2 s.Dataset.trace))
                 dataset.Dataset.samples)
          in
          let m = Overhead.mean_summary overheads in
          Printf.printf "%-14s %-10.3f %+-10.3f %+-10.1f%% %+-9.1f%%\n%!" entry.Registry.name acc
            (acc -. baseline)
            (m.Overhead.bandwidth *. 100.0)
            (m.Overhead.latency *. 100.0))
    Registry.all
