(* Figure 3 in miniature: what does in-stack obfuscation cost the sender?

   Runs a single bulk TCP connection over a simulated 100 Gb/s link with
   the calibrated single-core CPU model, then applies Stob's incremental
   size-reduction strategies at a few aggressiveness levels.

   Run with: dune exec examples/stob_throughput.exe *)

module Fig3 = Stob_experiments.Fig3
module Strategies = Stob_core.Strategies

let () =
  print_endline "== Stob throughput cost (Figure 3 in miniature) ==";
  let config = Fig3.default_config in
  let measure policy = Fig3.throughput_with_policy ~config ~policy /. 1e9 in
  Printf.printf "unmodified stack:            %.1f Gb/s\n%!" (measure Stob_core.Policy.unmodified);
  List.iter
    (fun alpha ->
      Printf.printf "packet-size reduction a=%-3d  %.1f Gb/s\n%!"
        alpha
        (measure (Strategies.incremental_packet_reduction ~alpha)))
    [ 10; 40 ];
  List.iter
    (fun alpha ->
      Printf.printf "TSO-size reduction a=%-3d     %.1f Gb/s\n%!"
        alpha
        (measure (Strategies.incremental_tso_reduction ~alpha)))
    [ 10; 40 ];
  Printf.printf "both at a=40:                %.1f Gb/s\n%!"
    (measure (Strategies.incremental_combined ~alpha:40));
  print_endline "\n(shrinking TSO multiplies per-segment CPU work; shrinking packets";
  print_endline " multiplies per-packet work — the overheads stay tens of Gb/s,";
  print_endline " far above typical Internet access links, the paper's point)"
