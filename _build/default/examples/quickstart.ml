(* Quickstart: the whole pipeline in ~60 lines.

   1. Simulate page loads for three websites through the TCP/TLS stack.
   2. Sanitize the corpus the way the paper does.
   3. Train the k-FP attack and measure closed-world accuracy.
   4. Install a Stob policy server-side and measure again.

   Run with: dune exec examples/quickstart.exe *)

let sites = [ "bing.com"; "wikipedia.org"; "netflix.com" ]

let corpus ?policy () =
  let profiles = List.map Stob_web.Sites.find sites in
  Stob_web.Dataset.sanitize
    (Stob_web.Dataset.generate ~samples_per_site:25 ~seed:7 ?policy ~profiles ())

let accuracy dataset =
  (* Featurize every trace with the k-FP feature set, then 3-fold CV. *)
  let mean, std = Stob_experiments.Evalcommon.accuracy_cv ~folds:3 ~trees:60 dataset in
  (mean, std)

let () =
  print_endline "== Stob quickstart ==";
  Printf.printf "simulating %d visits (3 sites x 25 samples)...\n%!" (3 * 25);
  let undefended = corpus () in
  Printf.printf "sanitized corpus: %d traces\n%!"
    (Array.length undefended.Stob_web.Dataset.samples);

  (* A first look at one trace. *)
  let sample = undefended.Stob_web.Dataset.samples.(0) in
  Format.printf "example %s trace: %a@." sample.Stob_web.Dataset.site Stob_net.Trace.pp_summary
    sample.Stob_web.Dataset.trace;

  let base_mean, base_std = accuracy undefended in
  Printf.printf "k-FP accuracy, undefended:      %.3f +/- %.3f\n%!" base_mean base_std;

  (* Now defend: install the in-stack split+delay policy on the server side
     of every connection and regenerate. *)
  let policy = Stob_core.Strategies.stack_combined () in
  Format.printf "installing policy: %a@." Stob_core.Policy.pp policy;
  let defended = corpus ~policy () in
  let def_mean, def_std = accuracy defended in
  Printf.printf "k-FP accuracy, Stob-defended:   %.3f +/- %.3f\n" def_mean def_std;
  Printf.printf "(closed world, %d sites; chance is %.3f)\n" (List.length sites)
    (1.0 /. float_of_int (List.length sites));
  print_endline
    "\nNote: on full traces a mild defense can even help the attacker — the\n\
     paper's Table 2 'All' row observes the same counterintuitive effect;\n\
     the defense's value shows on connection prefixes (see\n\
     examples/censorship_eval.ml)."
