(* Section 5.1: obfuscation vs. congestion control.

   Demonstrates the policy-table API end to end, and that a delaying Stob
   policy is harmless to window-based CCAs (Reno/CUBIC) on a pacing-bound
   WAN path while it perturbs BBR, whose bandwidth model feeds on its own
   pacing — the co-design problem the paper leaves open.  Also shows the
   safety audit: no policy may ever make traffic more aggressive than the
   CCA decided.

   Run with: dune exec examples/cca_interplay.exe *)

module Policy_table = Stob_core.Policy_table
module Strategies = Stob_core.Strategies
module Controller = Stob_core.Controller

let () =
  print_endline "== CCA interplay (Section 5.1) ==";

  (* The application/administrator side: install policies in the shared
     table.  Flows to a sensitive destination get split+delay; everything
     else runs unmodified. *)
  let table = Policy_table.create () in
  Policy_table.set_global table Stob_core.Policy.unmodified;
  Policy_table.set_for_destination table "sensitive.example" (Strategies.stack_combined ());
  print_endline "policy table:";
  List.iter
    (fun (key, p) -> Format.printf "  %-24s %a@." key Stob_core.Policy.pp p)
    (Policy_table.installed table);

  (* The stack side: resolve at flow start. *)
  let ctrl = Policy_table.attach table ~destination:"sensitive.example" 7 in
  Format.printf "flow 7 resolved to: %a@." Stob_core.Policy.pp (Controller.policy ctrl);

  print_endline "\nthroughput under the delaying policy (2 Gb/s, 20 ms RTT):";
  Stob_experiments.Ablation.print_cca (Stob_experiments.Ablation.run_cca ~quiet:true ());

  print_endline "\nnotes:";
  print_endline " - reno/cubic are window-clocked: stretched departures are absorbed";
  print_endline "   by the ACK clock, so the delay policy costs nothing;";
  print_endline " - bbr paces from its own delivery-rate model, so Stob's delays feed";
  print_endline "   back into the model and cost real throughput;";
  print_endline " - violations = 0: the audit confirms no policy ever proposed more";
  print_endline "   aggressive traffic than the CCA's own decision."
