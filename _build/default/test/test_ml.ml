(* Tests for stob_ml: decision trees, random forests, k-NN, evaluation. *)

module Rng = Stob_util.Rng
open Stob_ml

(* A linearly separable 2-class toy problem in 2D. *)
let toy_dataset rng n =
  let features =
    Array.init n (fun _ ->
        let x = Rng.uniform rng 0.0 10.0 and y = Rng.uniform rng 0.0 10.0 in
        [| x; y |])
  in
  let labels = Array.map (fun f -> if f.(0) +. f.(1) > 10.0 then 1 else 0) features in
  (features, labels)

(* Four-class XOR-like grid: needs at least depth-2 trees. *)
let grid_dataset rng n =
  let features =
    Array.init n (fun _ -> [| Rng.uniform rng 0.0 2.0; Rng.uniform rng 0.0 2.0 |])
  in
  let labels =
    Array.map (fun f -> (if f.(0) > 1.0 then 2 else 0) + if f.(1) > 1.0 then 1 else 0) features
  in
  (features, labels)

(* --- Decision tree --- *)

let test_tree_fits_training_data () =
  let rng = Rng.create 1 in
  let features, labels = toy_dataset rng 200 in
  let tree = Decision_tree.train ~rng ~n_classes:2 ~features ~labels () in
  Array.iteri
    (fun i f -> Alcotest.(check int) "training point" labels.(i) (Decision_tree.predict tree f))
    features

let test_tree_generalizes () =
  let rng = Rng.create 2 in
  let features, labels = toy_dataset rng 400 in
  let tree = Decision_tree.train ~rng ~n_classes:2 ~features ~labels () in
  let test_f, test_l = toy_dataset rng 200 in
  let predicted = Array.map (Decision_tree.predict tree) test_f in
  let acc = Eval.accuracy ~predicted ~actual:test_l in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f > 0.9" acc) true (acc > 0.9)

let test_tree_max_depth_respected () =
  let rng = Rng.create 3 in
  let features, labels = grid_dataset rng 300 in
  let params = { Decision_tree.default_params with max_depth = 1 } in
  let tree = Decision_tree.train ~params ~rng ~n_classes:4 ~features ~labels () in
  Alcotest.(check bool) "depth <= 1" true (Decision_tree.depth tree <= 1);
  Alcotest.(check bool) "at most 2 leaves" true (Decision_tree.n_leaves tree <= 2)

let test_tree_pure_node_is_leaf () =
  let rng = Rng.create 4 in
  let features = Array.init 50 (fun i -> [| float_of_int i |]) in
  let labels = Array.make 50 1 in
  let tree = Decision_tree.train ~rng ~n_classes:2 ~features ~labels () in
  Alcotest.(check int) "single leaf" 1 (Decision_tree.n_leaves tree);
  Alcotest.(check int) "predicts the constant class" 1 (Decision_tree.predict tree [| 3.0 |])

let test_tree_predict_dist_sums_to_one () =
  let rng = Rng.create 5 in
  let features, labels = grid_dataset rng 200 in
  let tree = Decision_tree.train ~rng ~n_classes:4 ~features ~labels () in
  let dist = Decision_tree.predict_dist tree [| 0.5; 1.5 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 dist)

let test_tree_leaf_ids_distinct () =
  let rng = Rng.create 6 in
  let features, labels = grid_dataset rng 400 in
  let tree = Decision_tree.train ~rng ~n_classes:4 ~features ~labels () in
  let ids =
    List.sort_uniq compare
      [
        Decision_tree.leaf_id tree [| 0.5; 0.5 |];
        Decision_tree.leaf_id tree [| 0.5; 1.5 |];
        Decision_tree.leaf_id tree [| 1.5; 0.5 |];
        Decision_tree.leaf_id tree [| 1.5; 1.5 |];
      ]
  in
  Alcotest.(check int) "four distinct leaves" 4 (List.length ids)

let test_tree_invalid_inputs () =
  let rng = Rng.create 7 in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Decision_tree.train ~rng ~n_classes:2 ~features:[||] ~labels:[||] ());
       false
     with Invalid_argument _ -> true)

(* --- Random forest --- *)

let test_forest_beats_chance_on_grid () =
  let rng = Rng.create 8 in
  let features, labels = grid_dataset rng 400 in
  let forest =
    Random_forest.train
      ~params:{ Random_forest.default_params with n_trees = 30 }
      ~n_classes:4 ~features ~labels ()
  in
  let test_f, test_l = grid_dataset rng 200 in
  let predicted = Array.map (Random_forest.predict forest) test_f in
  let acc = Eval.accuracy ~predicted ~actual:test_l in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f > 0.85" acc) true (acc > 0.85)

let test_forest_deterministic_given_seed () =
  let rng = Rng.create 9 in
  let features, labels = grid_dataset rng 200 in
  let train () =
    Random_forest.train
      ~params:{ Random_forest.default_params with n_trees = 10; seed = 5 }
      ~n_classes:4 ~features ~labels ()
  in
  let a = train () and b = train () in
  let test_f, _ = grid_dataset rng 100 in
  Array.iter
    (fun f ->
      Alcotest.(check int) "same predictions" (Random_forest.predict a f) (Random_forest.predict b f))
    test_f

let test_forest_proba_normalized () =
  let rng = Rng.create 10 in
  let features, labels = grid_dataset rng 200 in
  let forest =
    Random_forest.train
      ~params:{ Random_forest.default_params with n_trees = 10 }
      ~n_classes:4 ~features ~labels ()
  in
  let proba = Random_forest.predict_proba forest [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 proba)

let test_forest_fingerprint_shape () =
  let rng = Rng.create 11 in
  let features, labels = grid_dataset rng 100 in
  let forest =
    Random_forest.train
      ~params:{ Random_forest.default_params with n_trees = 7 }
      ~n_classes:4 ~features ~labels ()
  in
  Alcotest.(check int) "one leaf per tree" 7
    (Array.length (Random_forest.leaf_fingerprint forest [| 1.0; 1.0 |]))

let test_forest_feature_importance () =
  let rng = Rng.create 12 in
  (* Feature 1 is the only informative one; feature 0 is noise. *)
  let features = Array.init 300 (fun _ -> [| Rng.uniform rng 0.0 1.0; Rng.uniform rng 0.0 1.0 |]) in
  let labels = Array.map (fun f -> if f.(1) > 0.5 then 1 else 0) features in
  let forest =
    Random_forest.train
      ~params:{ Random_forest.default_params with n_trees = 15 }
      ~n_classes:2 ~features ~labels ()
  in
  let imp = Random_forest.feature_importance forest in
  Alcotest.(check (float 1e-6)) "normalized" 1.0 (Array.fold_left ( +. ) 0.0 imp);
  Alcotest.(check bool)
    (Printf.sprintf "informative feature dominates (%.2f vs %.2f)" imp.(1) imp.(0))
    true
    (imp.(1) > 5.0 *. imp.(0))

(* --- Knn --- *)

let test_knn_hamming () =
  Alcotest.(check int) "distance" 2 (Knn.hamming [| 1; 2; 3; 4 |] [| 1; 9; 3; 9 |]);
  Alcotest.(check int) "identical" 0 (Knn.hamming [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Knn.hamming [| 1 |] [| 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_knn_classify () =
  let fingerprints = [| [| 0; 0; 0 |]; [| 0; 0; 1 |]; [| 9; 9; 9 |]; [| 9; 9; 8 |] |] in
  let labels = [| 0; 0; 1; 1 |] in
  let knn = Knn.create ~fingerprints ~labels ~n_classes:2 in
  Alcotest.(check int) "near class 0" 0 (Knn.classify knn ~k:2 [| 0; 1; 0 |]);
  Alcotest.(check int) "near class 1" 1 (Knn.classify knn ~k:2 [| 9; 8; 9 |])

let test_knn_nearest_sorted () =
  let fingerprints = [| [| 0; 0 |]; [| 5; 5 |]; [| 0; 1 |] |] in
  let labels = [| 0; 1; 2 |] in
  let knn = Knn.create ~fingerprints ~labels ~n_classes:3 in
  match Knn.nearest knn ~k:3 [| 0; 0 |] with
  | [ (l1, d1); (_, d2); (_, d3) ] ->
      Alcotest.(check int) "closest label" 0 l1;
      Alcotest.(check bool) "sorted distances" true (d1 <= d2 && d2 <= d3)
  | _ -> Alcotest.fail "expected three neighbours"

(* --- Eval --- *)

let test_eval_accuracy () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75
    (Eval.accuracy ~predicted:[| 1; 0; 1; 1 |] ~actual:[| 1; 0; 0; 1 |])

let test_eval_confusion () =
  let m = Eval.confusion ~n_classes:2 ~predicted:[| 0; 1; 1; 0 |] ~actual:[| 0; 1; 0; 0 |] in
  Alcotest.(check int) "true 0 predicted 0" 2 m.(0).(0);
  Alcotest.(check int) "true 0 predicted 1" 1 m.(0).(1);
  Alcotest.(check int) "true 1 predicted 1" 1 m.(1).(1)

let test_eval_per_class_recall () =
  let m = [| [| 8; 2 |]; [| 1; 9 |] |] in
  let r = Eval.per_class_recall m in
  Alcotest.(check (float 1e-9)) "class 0" 0.8 r.(0);
  Alcotest.(check (float 1e-9)) "class 1" 0.9 r.(1)

let test_eval_mean_std () =
  let m, s = Eval.mean_std [ 0.8; 0.9; 1.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 0.9 m;
  Alcotest.(check (float 1e-6)) "std" 0.1 s

(* --- qcheck --- *)

let prop_forest_predicts_known_class =
  QCheck.Test.make ~name:"forest prediction is a valid class" ~count:50
    QCheck.(int_range 2 5)
    (fun n_classes ->
      let rng = Rng.create n_classes in
      let features = Array.init 60 (fun _ -> [| Rng.uniform rng 0.0 1.0 |]) in
      let labels = Array.init 60 (fun i -> i mod n_classes) in
      let forest =
        Random_forest.train
          ~params:{ Random_forest.default_params with n_trees = 5 }
          ~n_classes ~features ~labels ()
      in
      let p = Random_forest.predict forest [| 0.5 |] in
      p >= 0 && p < n_classes)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "ml.decision_tree",
      [
        Alcotest.test_case "fits training data" `Quick test_tree_fits_training_data;
        Alcotest.test_case "generalizes" `Quick test_tree_generalizes;
        Alcotest.test_case "max depth" `Quick test_tree_max_depth_respected;
        Alcotest.test_case "pure node" `Quick test_tree_pure_node_is_leaf;
        Alcotest.test_case "dist sums to one" `Quick test_tree_predict_dist_sums_to_one;
        Alcotest.test_case "leaf ids distinct" `Quick test_tree_leaf_ids_distinct;
        Alcotest.test_case "invalid inputs" `Quick test_tree_invalid_inputs;
      ] );
    ( "ml.random_forest",
      [
        Alcotest.test_case "beats chance on grid" `Quick test_forest_beats_chance_on_grid;
        Alcotest.test_case "deterministic given seed" `Quick test_forest_deterministic_given_seed;
        Alcotest.test_case "proba normalized" `Quick test_forest_proba_normalized;
        Alcotest.test_case "fingerprint shape" `Quick test_forest_fingerprint_shape;
        Alcotest.test_case "feature importance" `Quick test_forest_feature_importance;
        q prop_forest_predicts_known_class;
      ] );
    ( "ml.knn",
      [
        Alcotest.test_case "hamming" `Quick test_knn_hamming;
        Alcotest.test_case "classify" `Quick test_knn_classify;
        Alcotest.test_case "nearest sorted" `Quick test_knn_nearest_sorted;
      ] );
    ( "ml.eval",
      [
        Alcotest.test_case "accuracy" `Quick test_eval_accuracy;
        Alcotest.test_case "confusion" `Quick test_eval_confusion;
        Alcotest.test_case "per-class recall" `Quick test_eval_per_class_recall;
        Alcotest.test_case "mean/std" `Quick test_eval_mean_std;
      ] );
  ]
